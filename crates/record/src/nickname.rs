//! Name-equivalence ("nicknames") table.
//!
//! §3.2: "A nicknames database or name equivalence database is used to assign
//! a common name to records containing identified nicknames" — e.g. Joseph
//! and Giuseppe are the same name in English and Italian but match in only
//! three characters.

use std::collections::HashMap;

/// Built-in equivalence classes: the first entry of each class is the common
/// form assigned to every member.
const STANDARD_CLASSES: &[&[&str]] = &[
    &[
        "ROBERT", "BOB", "BOBBY", "ROB", "ROBBIE", "RUPERT", "ROBERTO",
    ],
    &[
        "WILLIAM",
        "BILL",
        "BILLY",
        "WILL",
        "WILLIE",
        "LIAM",
        "GUILLERMO",
        "WILHELM",
    ],
    &["JOSEPH", "JOE", "JOEY", "JOS", "GIUSEPPE", "JOSE", "PEPE"],
    &[
        "JOHN", "JACK", "JOHNNY", "JON", "JUAN", "GIOVANNI", "JOHANN", "IAN", "SEAN",
    ],
    &[
        "MICHAEL", "MIKE", "MICKEY", "MICK", "MIGUEL", "MICHEL", "MIKHAIL",
    ],
    &["JAMES", "JIM", "JIMMY", "JAMIE", "DIEGO", "SEAMUS"],
    &["RICHARD", "RICK", "RICKY", "DICK", "RICH", "RICARDO"],
    &[
        "CHARLES", "CHUCK", "CHARLIE", "CARLOS", "CARL", "KARL", "CARLO",
    ],
    &["THOMAS", "TOM", "TOMMY", "TOMAS"],
    &["CHRISTOPHER", "CHRIS", "KIT", "CRISTOBAL", "CHRISTOPH"],
    &["DANIEL", "DAN", "DANNY", "DANILO"],
    &["MATTHEW", "MATT", "MATEO", "MATTEO", "MATTHIAS"],
    &["ANTHONY", "TONY", "ANTONIO", "ANTON", "ANTOINE"],
    &["STEVEN", "STEVE", "STEPHEN", "ESTEBAN", "STEFAN", "STEFANO"],
    &["EDWARD", "ED", "EDDIE", "TED", "TEDDY", "NED", "EDUARDO"],
    &["HENRY", "HANK", "HARRY", "ENRIQUE", "HEINRICH", "ENRICO"],
    &[
        "ALEXANDER",
        "ALEX",
        "SASHA",
        "ALEJANDRO",
        "ALESSANDRO",
        "SANDY",
    ],
    &[
        "FRANCIS",
        "FRANK",
        "FRANKIE",
        "FRANCISCO",
        "FRANCESCO",
        "PACO",
    ],
    &["LAWRENCE", "LARRY", "LORENZO", "LAURENT"],
    &["PETER", "PETE", "PEDRO", "PIETRO", "PIERRE", "PIOTR"],
    &[
        "ELIZABETH",
        "LIZ",
        "BETH",
        "BETTY",
        "BETSY",
        "LISA",
        "ELISA",
        "ISABEL",
    ],
    &[
        "MARGARET",
        "PEGGY",
        "MEG",
        "MAGGIE",
        "MARGE",
        "MARGARITA",
        "GRETA",
    ],
    &[
        "KATHERINE",
        "KATE",
        "KATHY",
        "KATIE",
        "KAY",
        "CATALINA",
        "KATARINA",
        "CATHERINE",
    ],
    &["MARY", "MARIA", "MARIE", "MOLLY", "POLLY", "MIRIAM"],
    &["PATRICIA", "PAT", "PATTY", "TRICIA", "TRISH"],
    &["JENNIFER", "JEN", "JENNY", "JENNA"],
    &["SUSAN", "SUE", "SUZY", "SUSANNA", "SUSANA", "SUZANNE"],
    &["BARBARA", "BARB", "BARBIE", "BABS"],
    &["DOROTHY", "DOT", "DOTTIE", "DOLLY", "DOROTEA"],
    &["REBECCA", "BECKY", "BECCA"],
    &["DEBORAH", "DEB", "DEBBIE", "DEBRA"],
    &["VICTORIA", "VICKY", "TORI", "VITTORIA"],
];

/// The built-in equivalence classes behind [`NicknameTable::standard`]; the
/// first entry of each class is the common form. Exposed so the database
/// generator can inject realistic nickname substitutions that the standard
/// table will later recognize.
pub fn standard_classes() -> &'static [&'static [&'static str]] {
    STANDARD_CLASSES
}

/// Maps nicknames and foreign variants to a canonical common form.
///
/// ```
/// use mp_record::NicknameTable;
/// let t = NicknameTable::standard();
/// assert_eq!(t.common_form("GIUSEPPE"), Some("JOSEPH"));
/// assert_eq!(t.common_form("BOB"), Some("ROBERT"));
/// assert_eq!(t.common_form("ZELDA"), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NicknameTable {
    map: HashMap<String, String>,
}

impl NicknameTable {
    /// An empty table (no substitutions ever apply).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The built-in table covering common English nicknames and a sample of
    /// cross-language variants.
    pub fn standard() -> Self {
        let mut t = Self::default();
        for class in STANDARD_CLASSES {
            t.add_class(class);
        }
        t
    }

    /// Registers an equivalence class; the first name is the common form the
    /// others map to. Names are stored upper-cased.
    ///
    /// # Panics
    ///
    /// Panics when the class is empty.
    pub fn add_class(&mut self, class: &[&str]) {
        let common = class
            .first()
            .expect("nickname class must not be empty")
            .to_uppercase();
        for &variant in &class[1..] {
            self.map.insert(variant.to_uppercase(), common.clone());
        }
    }

    /// The common form for `name`, if it is a known variant. The common form
    /// itself maps to `None` (it is already canonical).
    pub fn common_form(&self, name: &str) -> Option<&str> {
        self.map.get(name).map(String::as_str)
    }

    /// Resolves a name to its canonical form, returning the input when it is
    /// not a known variant.
    pub fn resolve<'a>(&'a self, name: &'a str) -> &'a str {
        self.common_form(name).unwrap_or(name)
    }

    /// True when two names share a canonical form (either directly equal or
    /// equivalent through the table).
    pub fn equivalent(&self, a: &str, b: &str) -> bool {
        self.resolve(a) == self.resolve(b)
    }

    /// Number of variant → common-form entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_joseph_giuseppe() {
        let t = NicknameTable::standard();
        assert!(t.equivalent("JOSEPH", "GIUSEPPE"));
        assert!(t.equivalent("JOE", "JOSE"));
    }

    #[test]
    fn common_form_is_fixed_point() {
        let t = NicknameTable::standard();
        assert_eq!(t.common_form("ROBERT"), None);
        assert_eq!(t.resolve("ROBERT"), "ROBERT");
        assert_eq!(t.resolve("BOBBY"), "ROBERT");
    }

    #[test]
    fn unknown_names_pass_through() {
        let t = NicknameTable::standard();
        assert_eq!(t.resolve("XAVIERA"), "XAVIERA");
        assert!(!t.equivalent("XAVIERA", "ROBERT"));
        assert!(t.equivalent("SAME", "SAME"));
    }

    #[test]
    fn custom_class_and_case_insensitivity() {
        let mut t = NicknameTable::empty();
        assert!(t.is_empty());
        t.add_class(&["Aleksandra", "sasha", "OLA"]);
        assert_eq!(t.common_form("SASHA"), Some("ALEKSANDRA"));
        assert_eq!(t.common_form("OLA"), Some("ALEKSANDRA"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_class_panics() {
        NicknameTable::empty().add_class(&[]);
    }
}
