//! The default 26-rule equational theory for the employee domain.
//!
//! The paper wrote "an OPS5 rule program consisting of 26 rules for this
//! particular domain of employee records" (§2.3). This module carries our
//! equivalent program in the rule DSL; [`crate::native`] holds the
//! hand-recoded Rust version (the paper's OPS5 → C step). A cross-check
//! test asserts the two agree pair-for-pair on generated data.
//!
//! The rules are grouped by the error class they recover (see the
//! generator's `mp_datagen::ErrorProfile` for the corresponding noise):
//! SSN-anchored matches, name+address matches (including the paper's
//! worked example), phonetic and typewriter variants, moved-person rules,
//! city/zip typos, missing-field fallbacks, and swapped-name repairs.

use crate::eval::RuleProgram;

/// DSL source of the employee theory (26 rules).
pub const EMPLOYEE_RULES_SRC: &str = r#"
// ---- Group A: SSN-anchored (5 rules) -------------------------------------

rule exact_ssn_close_last {
    when not is_empty(r1.ssn)
     and r1.ssn == r2.ssn
     and differ_slightly(r1.last_name, r2.last_name, 0.4)
    then match
}

rule exact_ssn_close_first {
    when not is_empty(r1.ssn)
     and r1.ssn == r2.ssn
     and differ_slightly(r1.first_name, r2.first_name, 0.4)
    then match
}

rule exact_ssn_same_zip {
    when not is_empty(r1.ssn)
     and r1.ssn == r2.ssn
     and not is_empty(r1.zip)
     and r1.zip == r2.zip
    then match
}

rule ssn_transposed_close_names {
    when digits_transposed(r1.ssn, r2.ssn)
     and differ_slightly(r1.last_name, r2.last_name, 0.3)
     and (differ_slightly(r1.first_name, r2.first_name, 0.3)
          or initials_match(r1.first_name, r2.first_name)
          or nickname_eq(r1.first_name, r2.first_name))
    then match
}

rule ssn_one_digit_off_same_address {
    when edit_distance(r1.ssn, r2.ssn) <= 1
     and r1.street_number == r2.street_number
     and not is_empty(r1.street_number)
     and edit_sim(r1.street_name, r2.street_name) >= 0.8
    then match
}

// ---- Group B: name + address (6 rules) -----------------------------------

// The worked example of section 2.3 of the paper.
rule same_last_close_first_same_address {
    when r1.last_name == r2.last_name
     and not is_empty(r1.last_name)
     and differ_slightly(r1.first_name, r2.first_name, 0.3)
     and r1.street_number == r2.street_number
     and edit_sim(r1.street_name, r2.street_name) >= 0.8
    then match
}

rule close_last_same_first_same_address {
    when differ_slightly(r1.last_name, r2.last_name, 0.25)
     and r1.first_name == r2.first_name
     and not is_empty(r1.first_name)
     and r1.street_number == r2.street_number
     and edit_sim(r1.street_name, r2.street_name) >= 0.8
    then match
}

rule close_names_same_address_and_zip {
    when not is_empty(r1.last_name)
     and not is_empty(r1.zip)
     and differ_slightly(r1.last_name, r2.last_name, 0.25)
     and differ_slightly(r1.first_name, r2.first_name, 0.25)
     and r1.street_number == r2.street_number
     and edit_sim(r1.street_name, r2.street_name) >= 0.7
     and r1.zip == r2.zip
    then match
}

rule nickname_same_last_same_zip {
    when nickname_eq(r1.first_name, r2.first_name)
     and r1.last_name == r2.last_name
     and not is_empty(r1.last_name)
     and r1.zip == r2.zip
     and not is_empty(r1.zip)
    then match
}

rule nickname_same_last_same_address {
    when nickname_eq(r1.first_name, r2.first_name)
     and r1.last_name == r2.last_name
     and not is_empty(r1.last_name)
     and r1.street_number == r2.street_number
     and edit_sim(r1.street_name, r2.street_name) >= 0.8
    then match
}

rule initials_same_last_same_address {
    when initials_match(r1.first_name, r2.first_name)
     and r1.last_name == r2.last_name
     and not is_empty(r1.last_name)
     and r1.street_number == r2.street_number
     and edit_sim(r1.street_name, r2.street_name) >= 0.85
    then match
}

// ---- Group C: phonetic (3 rules) ------------------------------------------

rule soundex_last_same_first_same_address {
    when soundex_eq(r1.last_name, r2.last_name)
     and r1.first_name == r2.first_name
     and not is_empty(r1.first_name)
     and r1.street_number == r2.street_number
     and edit_sim(r1.street_name, r2.street_name) >= 0.8
    then match
}

rule nysiis_last_initials_same_zip_street {
    when nysiis_eq(r1.last_name, r2.last_name)
     and initials_match(r1.first_name, r2.first_name)
     and r1.zip == r2.zip
     and not is_empty(r1.zip)
     and r1.street_number == r2.street_number
    then match
}

rule soundex_both_names_same_city_street {
    when soundex_eq(r1.last_name, r2.last_name)
     and soundex_eq(r1.first_name, r2.first_name)
     and r1.city == r2.city
     and not is_empty(r1.city)
     and r1.street_number == r2.street_number
     and edit_sim(r1.street_name, r2.street_name) >= 0.75
    then match
}

// ---- Group D: typewriter / jaro / q-gram (3 rules) -------------------------

rule keyboard_last_same_first_same_city {
    when keyboard_dist(r1.last_name, r2.last_name) <= 1.0
     and r1.first_name == r2.first_name
     and not is_empty(r1.first_name)
     and r1.city == r2.city
     and r1.street_number == r2.street_number
    then match
}

rule jaro_names_same_address {
    when jaro_winkler(r1.last_name, r2.last_name) >= 0.92
     and jaro_winkler(r1.first_name, r2.first_name) >= 0.9
     and r1.street_number == r2.street_number
     and not is_empty(r1.street_number)
     and edit_sim(r1.street_name, r2.street_name) >= 0.7
    then match
}

rule trigram_street_same_names {
    when trigram_sim(r1.street_name, r2.street_name) >= 0.75
     and r1.street_number == r2.street_number
     and r1.last_name == r2.last_name
     and not is_empty(r1.last_name)
     and (r1.first_name == r2.first_name
          or initials_match(r1.first_name, r2.first_name))
    then match
}

// ---- Group E: moved person (2 rules) ---------------------------------------

rule moved_same_name_similar_ssn {
    when r1.last_name == r2.last_name
     and not is_empty(r1.last_name)
     and r1.first_name == r2.first_name
     and not is_empty(r1.first_name)
     and edit_distance(r1.ssn, r2.ssn) <= 2
    then match
}

rule moved_same_full_name_with_middle {
    when r1.last_name == r2.last_name
     and not is_empty(r1.last_name)
     and r1.first_name == r2.first_name
     and not is_empty(r1.first_name)
     and r1.middle_initial == r2.middle_initial
     and not is_empty(r1.middle_initial)
     and edit_distance(r1.ssn, r2.ssn) <= 3
    then match
}

// ---- Group F: city / zip / state errors (3 rules) ---------------------------

rule city_typo_same_rest {
    when r1.last_name == r2.last_name
     and not is_empty(r1.last_name)
     and r1.first_name == r2.first_name
     and r1.street_number == r2.street_number
     and edit_sim(r1.street_name, r2.street_name) >= 0.8
     and differ_slightly(r1.city, r2.city, 0.35)
    then match
}

rule zip_error_same_rest {
    when r1.last_name == r2.last_name
     and not is_empty(r1.last_name)
     and r1.first_name == r2.first_name
     and r1.street_number == r2.street_number
     and edit_sim(r1.street_name, r2.street_name) >= 0.8
     and edit_distance(r1.zip, r2.zip) <= 2
    then match
}

// Deliberately the loosest rule of the program: two records with the same
// full (compatible) name in the same city are declared equivalent. This is
// what catches same-city movers — and what produces the small false-positive
// rate of Fig. 2(b), since distinct people do share names (especially under
// the Zipf-skewed name distribution of real data).
rule same_full_name_same_city {
    when r1.last_name == r2.last_name
     and not is_empty(r1.last_name)
     and r1.first_name == r2.first_name
     and not is_empty(r1.first_name)
     and (r1.middle_initial == r2.middle_initial
          or is_empty(r1.middle_initial)
          or is_empty(r2.middle_initial))
     and r1.city == r2.city
     and not is_empty(r1.city)
    then match
}

// ---- Group G: missing fields / swapped names (4 rules) ----------------------

rule empty_first_same_ssn_last {
    when (is_empty(r1.first_name) or is_empty(r2.first_name))
     and r1.last_name == r2.last_name
     and not is_empty(r1.last_name)
     and r1.ssn == r2.ssn
     and not is_empty(r1.ssn)
    then match
}

rule empty_street_same_ssn_city {
    when (is_empty(r1.street_name) or is_empty(r2.street_name))
     and r1.ssn == r2.ssn
     and not is_empty(r1.ssn)
     and r1.city == r2.city
     and not is_empty(r1.city)
    then match
}

rule apartment_anchor_close_names {
    when r1.apartment == r2.apartment
     and not is_empty(r1.apartment)
     and r1.street_number == r2.street_number
     and differ_slightly(r1.last_name, r2.last_name, 0.3)
     and (initials_match(r1.first_name, r2.first_name)
          or differ_slightly(r1.first_name, r2.first_name, 0.3))
    then match
}

rule swapped_first_and_middle {
    when r1.first_name == r2.middle_initial
     and r1.middle_initial == r2.first_name
     and not is_empty(r1.first_name)
     and not is_empty(r1.middle_initial)
     and r1.last_name == r2.last_name
     and (r1.ssn == r2.ssn or r1.zip == r2.zip)
    then match
}
"#;

/// Compiles the employee theory. The source is a crate constant, so failure
/// is a programming error and panics.
pub fn employee_program() -> RuleProgram {
    RuleProgram::compile(EMPLOYEE_RULES_SRC).expect("built-in employee rules must compile")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EquationalTheory;
    use mp_record::{Record, RecordId};

    #[test]
    fn has_exactly_26_rules() {
        assert_eq!(employee_program().rule_count(), 26);
    }

    fn base() -> Record {
        let mut r = Record::empty(RecordId(0));
        r.ssn = "123456789".into();
        r.first_name = "ROBERT".into();
        r.middle_initial = "J".into();
        r.last_name = "JOHNSON".into();
        r.street_number = "42".into();
        r.street_name = "MAIN STREET".into();
        r.apartment = "APT 3B".into();
        r.city = "CHICAGO".into();
        r.state = "IL".into();
        r.zip = "60601".into();
        r
    }

    #[test]
    fn identical_records_match() {
        let p = employee_program();
        let a = base();
        assert!(p.matches(&a, &a.clone()));
    }

    #[test]
    fn ssn_transposition_recovered() {
        let p = employee_program();
        let a = base();
        let mut b = base();
        b.ssn = "213456789".into(); // adjacent transposition
        assert!(p.matches(&a, &b));
        assert_eq!(p.matching_rule(&a, &b), Some("ssn_transposed_close_names"));
    }

    #[test]
    fn nickname_recovered() {
        let p = employee_program();
        let a = base();
        let mut b = base();
        b.first_name = "BOB".into();
        b.ssn = "999999999".into();
        assert!(p.matches(&a, &b));
    }

    #[test]
    fn moved_person_recovered() {
        let p = employee_program();
        let a = base();
        let mut b = base();
        b.street_number = "7".into();
        b.street_name = "ELM AVENUE".into();
        b.city = "BOSTON".into();
        b.state = "MA".into();
        b.zip = "02101".into();
        b.ssn = "123456780".into(); // one digit off
        assert!(p.matches(&a, &b));
    }

    #[test]
    fn unrelated_records_do_not_match() {
        let p = employee_program();
        let a = base();
        let mut b = Record::empty(RecordId(1));
        b.ssn = "987654321".into();
        b.first_name = "XENIA".into();
        b.last_name = "QUARTERMAINE".into();
        b.street_number = "9999".into();
        b.street_name = "DESOLATION ROW".into();
        b.city = "RENO".into();
        b.state = "NV".into();
        b.zip = "89501".into();
        assert!(!p.matches(&a, &b));
    }

    #[test]
    fn blank_records_do_not_match() {
        let p = employee_program();
        let a = Record::empty(RecordId(0));
        let b = Record::empty(RecordId(1));
        assert!(!p.matches(&a, &b));
    }
}
