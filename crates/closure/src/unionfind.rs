//! Sequential disjoint-set forest.

/// Union-find over the dense id space `0..n` with path halving and union by
/// rank — effectively linear in the number of operations.
///
/// Ids are `u32` because the paper's closure operates on "pairs of tuple
/// id's, each at most 30 bits" (§3.3); four billion records is comfortably
/// beyond the billion-record scenario of §4.3.
///
/// ```
/// use mp_closure::UnionFind;
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0)); // already joined
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(0, 2));
/// assert_eq!(uf.set_count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// `n` singleton sets `{0}, {1}, ..., {n-1}`.
    ///
    /// # Panics
    ///
    /// Panics when `n` exceeds `u32::MAX` elements.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "id space exceeds u32");
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements in the id space.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Extends the id space to `n` elements, adding `n − len` fresh
    /// singletons; a no-op when `n ≤ len`. Existing connectivity is
    /// untouched, so incremental pipelines can grow the forest as new
    /// record batches arrive instead of rebuilding it.
    ///
    /// # Panics
    ///
    /// Panics when `n` exceeds `u32::MAX` elements.
    pub fn grow(&mut self, n: usize) {
        assert!(n <= u32::MAX as usize, "id space exceeds u32");
        let old = self.parent.len();
        if n <= old {
            return;
        }
        self.parent.extend(old as u32..n as u32);
        self.rank.resize(n, 0);
        self.sets += n - old;
    }

    /// Serializes the forest into `out` as a little-endian byte stream
    /// (`n`, then parents, then ranks). The encoding captures the *current*
    /// forest shape — paths already compressed stay compressed — so
    /// [`UnionFind::decode`] reproduces identical connectivity and identical
    /// future behavior. Used by the durable match store (`mp-store`) to
    /// checkpoint closure state.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(4 + self.parent.len() * 5);
        out.extend_from_slice(&(self.parent.len() as u32).to_le_bytes());
        for &p in &self.parent {
            out.extend_from_slice(&p.to_le_bytes());
        }
        out.extend_from_slice(&self.rank);
    }

    /// Reconstructs a forest serialized by [`UnionFind::encode_into`].
    /// Validates structure (every parent in range, byte length exact) and
    /// recomputes the set count from the root count rather than trusting
    /// the input.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem found.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < 4 {
            return Err("union-find blob shorter than its length header".into());
        }
        let n = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        let want = 4 + n * 4 + n;
        if bytes.len() != want {
            return Err(format!(
                "union-find blob length {} != expected {want} for n={n}",
                bytes.len()
            ));
        }
        let mut parent = Vec::with_capacity(n);
        for i in 0..n {
            let off = 4 + i * 4;
            let p = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            if p as usize >= n {
                return Err(format!("parent {p} of element {i} out of range (n={n})"));
            }
            parent.push(p);
        }
        let rank = bytes[4 + n * 4..].to_vec();
        // Union-by-rank invariant: rank strictly increases along parent
        // pointers (path halving only ever re-points to a higher ancestor).
        // Checking it rules out cycles, so a corrupt blob that slipped past
        // the store's CRCs cannot make `find` spin forever.
        for (i, &p) in parent.iter().enumerate() {
            if p as usize != i && rank[p as usize] <= rank[i] {
                return Err(format!(
                    "rank does not increase from element {i} (rank {}) to parent {p} (rank {})",
                    rank[i], rank[p as usize]
                ));
            }
        }
        let sets = parent
            .iter()
            .enumerate()
            .filter(|&(i, &p)| i == p as usize)
            .count();
        Ok(UnionFind { parent, rank, sets })
    }

    /// True when the id space is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// True when `x` has never been merged with another element.
    ///
    /// Singletons are exactly the rank-0 roots (a root that ever won a
    /// union has rank ≥ 1, and a merged loser is no longer a root), so this
    /// is two array loads with no find walk — cheap enough to gate a full
    /// [`Self::connected`] query in hot scans.
    pub fn is_singleton(&self, x: u32) -> bool {
        self.parent[x as usize] == x && self.rank[x as usize] == 0
    }

    /// Representative of `x`'s set, compressing the path by halving.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Joins the sets of `a` and `b`; returns `true` when they were
    /// previously disjoint.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (hi, lo) = match self.rank[ra as usize].cmp(&self.rank[rb as usize]) {
            std::cmp::Ordering::Less => (rb, ra),
            std::cmp::Ordering::Greater => (ra, rb),
            std::cmp::Ordering::Equal => {
                self.rank[ra as usize] += 1;
                (ra, rb)
            }
        };
        self.parent[lo as usize] = hi;
        self.sets -= 1;
        true
    }

    /// True when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Every equivalence class with at least two members: members sorted
    /// ascending, classes ordered by smallest member.
    pub fn classes(&mut self) -> Vec<Vec<u32>> {
        let n = self.parent.len();
        // Map root -> slot, first-seen (= smallest member) order.
        let mut slot_of_root = vec![u32::MAX; n];
        let mut classes: Vec<Vec<u32>> = Vec::new();
        for x in 0..n as u32 {
            let r = self.find(x) as usize;
            let slot = slot_of_root[r];
            if slot == u32::MAX {
                slot_of_root[r] = classes.len() as u32;
                classes.push(vec![x]);
            } else {
                classes[slot as usize].push(x);
            }
        }
        classes.retain(|c| c.len() > 1);
        classes
    }

    /// All pairs `(a, b)`, `a < b`, implied by the closure — every pair of
    /// records in the same class. The multi-pass evaluation compares this
    /// set against ground truth.
    ///
    /// The output size is quadratic in class sizes; real duplicate classes
    /// are tiny (the generator caps duplicates per record), so this stays
    /// close to linear in practice.
    pub fn closed_pairs(&mut self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for class in self.classes() {
            for i in 0..class.len() {
                for j in i + 1..class.len() {
                    out.push((class[i], class[j]));
                }
            }
        }
        out
    }

    /// Count of [`UnionFind::closed_pairs`] without materializing them.
    pub fn closed_pair_count(&mut self) -> u64 {
        self.classes()
            .iter()
            .map(|c| {
                let k = c.len() as u64;
                k * (k - 1) / 2
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_is_all_singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert_eq!(uf.set_count(), 5);
        assert!(uf.classes().is_empty());
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_reduces_set_count_once_per_merge() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert_eq!(uf.set_count(), 2);
        assert!(uf.union(0, 3));
        assert_eq!(uf.set_count(), 1);
        assert!(!uf.union(1, 2));
        assert_eq!(uf.set_count(), 1);
    }

    #[test]
    fn classes_sorted_and_deterministic() {
        let mut uf = UnionFind::new(7);
        uf.union(5, 3);
        uf.union(3, 6);
        uf.union(0, 2);
        assert_eq!(uf.classes(), vec![vec![0, 2], vec![3, 5, 6]]);
    }

    #[test]
    fn closed_pairs_quadratic_expansion() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(1, 2);
        assert_eq!(uf.closed_pairs(), vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(uf.closed_pair_count(), 3);
    }

    #[test]
    fn grow_adds_singletons_and_preserves_connectivity() {
        let mut uf = UnionFind::new(3);
        uf.union(0, 2);
        uf.grow(6);
        assert_eq!(uf.len(), 6);
        assert_eq!(uf.set_count(), 5); // {0,2} {1} {3} {4} {5}
        assert!(uf.connected(0, 2));
        for i in 3..6 {
            assert!(uf.is_singleton(i));
        }
        uf.grow(2); // shrinking request is a no-op
        assert_eq!(uf.len(), 6);
        assert!(uf.union(5, 1));
        assert_eq!(uf.set_count(), 4);
    }

    #[test]
    fn encode_decode_roundtrip_preserves_everything() {
        let mut uf = UnionFind::new(10);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(7, 8);
        let mut blob = Vec::new();
        uf.encode_into(&mut blob);
        let mut back = UnionFind::decode(&blob).unwrap();
        assert_eq!(back.len(), uf.len());
        assert_eq!(back.set_count(), uf.set_count());
        assert_eq!(back.classes(), uf.classes());
        // The decoded forest keeps working: future unions behave normally.
        assert!(back.union(2, 7));
        assert!(back.connected(0, 8));
    }

    #[test]
    fn decode_rejects_corrupt_blobs() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        let mut blob = Vec::new();
        uf.encode_into(&mut blob);

        assert!(UnionFind::decode(&blob[..3]).is_err(), "short header");
        assert!(
            UnionFind::decode(&blob[..blob.len() - 1]).is_err(),
            "truncated body"
        );
        let mut bad_parent = blob.clone();
        bad_parent[4] = 200; // parent out of range
        assert!(UnionFind::decode(&bad_parent).is_err());
        // A two-cycle (0→1, 1→0) with equal ranks violates the rank
        // invariant and must be rejected rather than looping forever.
        let mut cycle = Vec::new();
        UnionFind::new(2).encode_into(&mut cycle);
        cycle[4..8].copy_from_slice(&1u32.to_le_bytes());
        cycle[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert!(UnionFind::decode(&cycle).is_err());
    }

    #[test]
    fn empty_universe() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
        assert!(uf.classes().is_empty());
    }

    proptest! {
        #[test]
        fn connectivity_matches_naive_model(
            n in 1usize..40,
            unions in proptest::collection::vec((0u32..40, 0u32..40), 0..80),
        ) {
            let mut uf = UnionFind::new(n);
            // Naive model: component label per element, relabel on union.
            let mut label: Vec<usize> = (0..n).collect();
            for (a, b) in unions {
                let (a, b) = (a % n as u32, b % n as u32);
                uf.union(a, b);
                let (la, lb) = (label[a as usize], label[b as usize]);
                if la != lb {
                    for l in &mut label {
                        if *l == lb {
                            *l = la;
                        }
                    }
                }
            }
            for a in 0..n as u32 {
                for b in 0..n as u32 {
                    prop_assert_eq!(
                        uf.connected(a, b),
                        label[a as usize] == label[b as usize]
                    );
                }
            }
            let distinct: std::collections::HashSet<usize> = label.iter().copied().collect();
            prop_assert_eq!(uf.set_count(), distinct.len());
        }

        #[test]
        fn closed_pair_count_matches_materialized(
            n in 1usize..30,
            unions in proptest::collection::vec((0u32..30, 0u32..30), 0..40),
        ) {
            let mut uf = UnionFind::new(n);
            for (a, b) in unions {
                uf.union(a % n as u32, b % n as u32);
            }
            prop_assert_eq!(uf.closed_pair_count() as usize, uf.closed_pairs().len());
        }
    }
}
