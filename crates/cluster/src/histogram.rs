//! Frequency histograms over key prefixes.

/// Alphabet size per key character: 26 letters plus one bucket for
/// everything else ("26 letters plus the space", paper footnote 1).
pub const ALPHABET: usize = 27;

fn char_bucket(c: u8) -> usize {
    let u = c.to_ascii_uppercase();
    if u.is_ascii_uppercase() {
        1 + (u - b'A') as usize
    } else {
        0
    }
}

/// A `27^prefix_len`-bin frequency histogram over the first `prefix_len`
/// characters of keys.
///
/// The paper computes such histograms offline ("This information can be
/// gathered off-line before applying the clustering method"), either from a
/// known field distribution or from a random sample; both constructors are
/// provided.
///
/// ```
/// use mp_cluster::KeyHistogram;
/// let h = KeyHistogram::from_keys(["ADAMS", "BAKER", "BROWN"].into_iter(), 2);
/// assert_eq!(h.bins(), 27 * 27);
/// assert_eq!(h.total(), 3);
/// assert!(h.frequency(h.bin_of("BROWN")) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct KeyHistogram {
    counts: Vec<u64>,
    total: u64,
    prefix_len: usize,
}

impl KeyHistogram {
    /// Builds the histogram from a full scan of the keys.
    ///
    /// # Panics
    ///
    /// Panics when `prefix_len` is 0 or large enough to overflow the bin
    /// space (`27^prefix_len` must fit in memory; 1–4 are sensible).
    pub fn from_keys<'a, I>(keys: I, prefix_len: usize) -> Self
    where
        I: Iterator<Item = &'a str>,
    {
        assert!((1..=6).contains(&prefix_len), "prefix length must be 1..=6");
        let bins = ALPHABET.pow(prefix_len as u32);
        let mut counts = vec![0u64; bins];
        let mut total = 0u64;
        for key in keys {
            counts[Self::bin_index(key, prefix_len)] += 1;
            total += 1;
        }
        KeyHistogram {
            counts,
            total,
            prefix_len,
        }
    }

    /// Number of bins `B`.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Number of keys observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Prefix length this histogram was built with.
    pub fn prefix_len(&self) -> usize {
        self.prefix_len
    }

    /// The bin index of a key.
    pub fn bin_of(&self, key: &str) -> usize {
        Self::bin_index(key, self.prefix_len)
    }

    /// Raw count of a bin.
    pub fn count(&self, bin: usize) -> u64 {
        self.counts[bin]
    }

    /// Normalized frequency `b_i` of a bin (0 when no keys were observed).
    pub fn frequency(&self, bin: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[bin] as f64 / self.total as f64
        }
    }

    /// Cumulative counts — `cum[i]` = keys in bins `0..i`; length `B + 1`.
    pub(crate) fn cumulative(&self) -> Vec<u64> {
        let mut cum = Vec::with_capacity(self.counts.len() + 1);
        cum.push(0);
        let mut acc = 0u64;
        for &c in &self.counts {
            acc += c;
            cum.push(acc);
        }
        cum
    }

    fn bin_index(key: &str, prefix_len: usize) -> usize {
        let mut idx = 0usize;
        let bytes = key.as_bytes();
        for i in 0..prefix_len {
            let bucket = bytes.get(i).map_or(0, |&b| char_bucket(b));
            idx = idx * ALPHABET + bucket;
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_index_is_lexicographic() {
        let h = KeyHistogram::from_keys(std::iter::empty(), 3);
        // Ordering of bins must follow ordering of (uppercased) prefixes so
        // that contiguous bin ranges are contiguous key ranges.
        assert!(h.bin_of("AAA") < h.bin_of("AAB"));
        assert!(h.bin_of("AZZ") < h.bin_of("BAA"));
        assert!(h.bin_of("ABC") < h.bin_of("ABD"));
        // Short keys pad with the catch-all bucket 0, sorting first.
        assert!(h.bin_of("A") < h.bin_of("AA"));
        assert!(h.bin_of("") < h.bin_of("A"));
    }

    #[test]
    fn case_insensitive_and_non_alpha_bucket() {
        let h = KeyHistogram::from_keys(std::iter::empty(), 2);
        assert_eq!(h.bin_of("ab"), h.bin_of("AB"));
        assert_eq!(h.bin_of("3M"), h.bin_of("#M"));
        assert_eq!(h.bin_of(" X"), h.bin_of("9X"));
    }

    #[test]
    fn counts_and_frequencies() {
        let keys = ["ADAMS", "ADLER", "BAKER", "BAKER", "ZWEIG"];
        let h = KeyHistogram::from_keys(keys.into_iter(), 3);
        assert_eq!(h.total(), 5);
        assert_eq!(h.count(h.bin_of("BAKER")), 2);
        assert!((h.frequency(h.bin_of("BAKER")) - 0.4).abs() < 1e-12);
        assert_eq!(h.count(h.bin_of("QQQ")), 0);
        let sum: f64 = (0..h.bins()).map(|b| h.frequency(b)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram() {
        let h = KeyHistogram::from_keys(std::iter::empty(), 1);
        assert_eq!(h.total(), 0);
        assert_eq!(h.frequency(0), 0.0);
        assert_eq!(h.bins(), 27);
    }

    #[test]
    fn paper_bin_space_for_three_letters() {
        let h = KeyHistogram::from_keys(std::iter::empty(), 3);
        assert_eq!(h.bins(), 27 * 27 * 27);
    }

    #[test]
    fn cumulative_monotone_and_totals() {
        let keys = ["AA", "AB", "BA", "ZZ"];
        let h = KeyHistogram::from_keys(keys.into_iter(), 2);
        let cum = h.cumulative();
        assert_eq!(cum[0], 0);
        assert_eq!(*cum.last().unwrap(), 4);
        assert!(cum.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "prefix length")]
    fn zero_prefix_rejected() {
        KeyHistogram::from_keys(std::iter::empty(), 0);
    }
}
