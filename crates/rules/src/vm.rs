//! The rule bytecode VM and [`CompiledTheory`], the planned, compiled
//! counterpart of [`crate::RuleProgram`].
//!
//! Execution is allocation-free on the hot path: each thread keeps one
//! `VmScratch` (register banks, temp strings, kernel scratch buffers, and
//! the per-pair memo) in a thread-local, re-sized only when a different
//! program runs on the thread. The memo uses epoch stamping — advancing a
//! counter per record pair instead of clearing the table — so starting a
//! pair costs O(1) regardless of memo size.
//!
//! Decisions are bit-identical to the interpreter's: every opcode calls the
//! same shared builtin implementation (or a [`ScratchBuffers`] method
//! tested bit-identical to it), and first-match *attribution* stays exact
//! even though blocks run in planned order — rules are pure, so the
//! first-firing rule in source order is simply the minimum original index
//! among all firing rules, which [`EquationalTheory::matching_rule_id`]
//! computes by skipping any block that could not improve on the best
//! firing block found so far.

use crate::ast::{CmpOp, Program, PurgeSpec};
use crate::builtins::{shared, Ctx};
use crate::compile::{compile_program, BoolKernel, CompiledProgram, NumKernel, NumSrc, Op, StrSrc};
use crate::eval::RuleProgram;
use crate::plan::Plan;
use crate::{CompileError, EquationalTheory};
use mp_record::{NicknameTable, Record};
use mp_strsim::{self as ss, ScratchBuffers};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-thread mutable state for one executing program: the three register
/// banks, kernel scratch buffers, and the epoch-stamped per-pair memo.
#[derive(Default)]
struct VmScratch {
    buffers: ScratchBuffers,
    bools: Vec<bool>,
    nums: Vec<f64>,
    tmps: Vec<String>,
    memo_stamp: Vec<u32>,
    memo_val: Vec<f64>,
    epoch: u32,
    program_id: u64,
}

thread_local! {
    static SCRATCH: RefCell<VmScratch> = RefCell::new(VmScratch::default());
}

/// A rule program lowered to planned bytecode, usable anywhere an
/// [`EquationalTheory`] is (the engine, the daemon, the CLI).
///
/// Same decisions as [`RuleProgram`], typically an order of magnitude
/// faster; `BENCH_rules.json` quantifies it.
///
/// ```
/// use mp_rules::{CompiledTheory, EquationalTheory};
/// use mp_record::{Record, RecordId};
///
/// let theory = CompiledTheory::compile(
///     "rule same_ssn { when r1.ssn == r2.ssn and not is_empty(r1.ssn) then match }",
/// )
/// .unwrap();
/// let mut a = Record::empty(RecordId(0));
/// let mut b = Record::empty(RecordId(1));
/// a.ssn = "123456789".into();
/// b.ssn = "123456789".into();
/// assert!(theory.matches(&a, &b));
/// assert_eq!(theory.matching_rule(&a, &b), Some("same_ssn"));
/// ```
pub struct CompiledTheory {
    prog: CompiledProgram,
    program: Program,
    rule_names: Vec<String>,
    ctx: Ctx,
    name: String,
    planned: bool,
    subexpr_hits: AtomicU64,
}

impl CompiledTheory {
    /// Parses, checks, and compiles a rule program with the static plan
    /// ([`Plan::of`]) and the standard nickname table.
    pub fn compile(src: &str) -> Result<Self, CompileError> {
        Self::compile_with(src, NicknameTable::standard())
    }

    /// [`CompiledTheory::compile`] with a custom nickname table.
    pub fn compile_with(src: &str, nicknames: NicknameTable) -> Result<Self, CompileError> {
        let rules = RuleProgram::compile_with(src, nicknames)?;
        let plan = Plan::of(rules.ast());
        Ok(Self::from_program(&rules, Some(&plan)))
    }

    /// Compiles without a plan: blocks and conjuncts keep source order and
    /// nothing is memoized. The `--no-plan` escape hatch, and the
    /// "compiled" (versus "compiled+planned") benchmark leg.
    pub fn compile_unplanned(src: &str) -> Result<Self, CompileError> {
        let rules = RuleProgram::compile(src)?;
        Ok(Self::from_program(&rules, None))
    }

    /// Lowers an already-interpreted program, optionally under a plan — the
    /// entry point for calibrated plans
    /// ([`Plan::calibrated`](crate::Plan::calibrated)).
    pub fn from_program(rules: &RuleProgram, plan: Option<&Plan>) -> Self {
        let program = rules.ast().clone();
        let prog = compile_program(&program, plan);
        let rule_names = program.rules.iter().map(|r| r.name.clone()).collect();
        CompiledTheory {
            prog,
            program,
            rule_names,
            ctx: Ctx {
                nicknames: rules.ctx().nicknames.clone(),
            },
            name: "dsl-compiled".to_string(),
            planned: plan.is_some(),
            subexpr_hits: AtomicU64::new(0),
        }
    }

    /// The program's `purge { ... }` survivorship spec, if any.
    pub fn purge_spec(&self) -> Option<&PurgeSpec> {
        self.program.purge.as_ref()
    }

    /// Number of rules.
    pub fn rule_count(&self) -> usize {
        self.prog.blocks.len()
    }

    /// Rules lowered to bytecode — feeds the `rules_compiled` counter.
    pub fn rules_compiled(&self) -> u64 {
        self.prog.blocks.len() as u64
    }

    /// Kernel evaluations answered from the per-pair memo instead of
    /// recomputed, accumulated across all pairs (and threads) this theory
    /// has evaluated — feeds the `subexpr_hits` counter.
    pub fn subexpr_hits(&self) -> u64 {
        self.subexpr_hits.load(Ordering::Relaxed)
    }

    /// Whether this theory was compiled under a plan.
    pub fn is_planned(&self) -> bool {
        self.planned
    }

    /// The name of the first rule (in source order) that fires for this
    /// pair, if any — the "explain" entry point.
    pub fn matching_rule(&self, a: &Record, b: &Record) -> Option<&str> {
        self.matching_rule_id(a, b)
            .map(|i| self.rule_names[i].as_str())
    }

    /// Human-readable bytecode listing (see `docs/RULE_COMPILER.md` for a
    /// walkthrough of the format).
    pub fn disassemble(&self) -> String {
        self.prog.disassemble(&self.rule_names)
    }

    /// Runs `f` with per-pair scratch prepared: scratch resized for this
    /// program if the thread last ran a different one, memo epoch advanced.
    fn with_pair_scratch<R>(&self, f: impl FnOnce(&mut VmScratch, u32, &mut u64) -> R) -> R {
        SCRATCH.with(|cell| {
            let mut s = cell.borrow_mut();
            if s.program_id != self.prog.id {
                s.program_id = self.prog.id;
                s.bools.clear();
                s.bools.resize(self.prog.bool_regs, false);
                s.nums.clear();
                s.nums.resize(self.prog.num_regs, 0.0);
                s.tmps.clear();
                s.tmps.resize(self.prog.tmp_slots, String::new());
                s.memo_stamp.clear();
                s.memo_stamp.resize(self.prog.memo_slots, 0);
                s.memo_val.clear();
                s.memo_val.resize(self.prog.memo_slots, 0.0);
                s.epoch = 0;
            }
            s.epoch = s.epoch.wrapping_add(1);
            if s.epoch == 0 {
                // u32 wrapped: stale stamps could alias the new epoch, so
                // reset once every ~4 billion pairs.
                s.memo_stamp.fill(0);
                s.epoch = 1;
            }
            let epoch = s.epoch;
            let mut hits = 0u64;
            let r = f(&mut s, epoch, &mut hits);
            if hits > 0 {
                self.subexpr_hits.fetch_add(hits, Ordering::Relaxed);
            }
            r
        })
    }
}

impl EquationalTheory for CompiledTheory {
    fn matches(&self, a: &Record, b: &Record) -> bool {
        self.with_pair_scratch(|s, epoch, hits| {
            self.prog
                .blocks
                .iter()
                .any(|blk| exec_block(&self.prog, blk.start, a, b, &self.ctx, s, epoch, hits))
        })
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn matching_rule_id(&self, a: &Record, b: &Record) -> Option<usize> {
        self.with_pair_scratch(|s, epoch, hits| {
            let mut best: Option<usize> = None;
            for blk in &self.prog.blocks {
                // Rules are pure: the source-order first match is the
                // minimum original index among firing rules, so a block
                // that cannot improve on the current best is skipped.
                if best.is_some_and(|id| blk.orig >= id) {
                    continue;
                }
                if exec_block(&self.prog, blk.start, a, b, &self.ctx, s, epoch, hits) {
                    best = Some(blk.orig);
                }
            }
            best
        })
    }

    fn rule_names(&self) -> Vec<String> {
        self.rule_names.clone()
    }
}

fn str_of<'a>(
    s: StrSrc,
    r1: &'a Record,
    r2: &'a Record,
    consts: &'a [String],
    tmps: &'a [String],
) -> &'a str {
    match s {
        StrSrc::R1(f) => r1.field(f),
        StrSrc::R2(f) => r2.field(f),
        StrSrc::Const(i) => &consts[i as usize],
        StrSrc::Tmp(i) => &tmps[i as usize],
    }
}

fn num_of(n: NumSrc, nums: &[f64], consts: &[f64]) -> f64 {
    match n {
        NumSrc::Reg(i) => nums[i as usize],
        NumSrc::Const(i) => consts[i as usize],
    }
}

#[allow(clippy::too_many_arguments)]
fn num_kernel(
    k: NumKernel,
    a: StrSrc,
    b: StrSrc,
    n: Option<NumSrc>,
    r1: &Record,
    r2: &Record,
    prog: &CompiledProgram,
    buffers: &mut ScratchBuffers,
    nums: &[f64],
    tmps: &[String],
) -> f64 {
    let sa = str_of(a, r1, r2, &prog.str_consts, tmps);
    let sb = str_of(b, r1, r2, &prog.str_consts, tmps);
    match k {
        NumKernel::EditDistance => buffers.levenshtein(sa, sb) as f64,
        NumKernel::NormLev => buffers.normalized_levenshtein(sa, sb),
        NumKernel::Damerau => buffers.damerau_levenshtein(sa, sb) as f64,
        NumKernel::Jaro => buffers.jaro(sa, sb),
        NumKernel::JaroWinkler => buffers.jaro_winkler(sa, sb),
        NumKernel::Keyboard => buffers.keyboard_distance(sa, sb),
        NumKernel::Ngram => {
            // Same clamp as the interpreted builtin.
            let nv = num_of(n.expect("ngram carries n"), nums, &prog.num_consts);
            buffers.ngram_similarity(sa, sb, nv.max(1.0) as usize)
        }
        NumKernel::Trigram => buffers.trigram_similarity(sa, sb),
        NumKernel::Lcs => buffers.lcs_similarity(sa, sb),
    }
}

#[allow(clippy::too_many_arguments)]
fn bool_kernel(
    k: BoolKernel,
    a: StrSrc,
    b: StrSrc,
    n: Option<NumSrc>,
    r1: &Record,
    r2: &Record,
    ctx: &Ctx,
    prog: &CompiledProgram,
    buffers: &mut ScratchBuffers,
    nums: &[f64],
    tmps: &[String],
) -> bool {
    let sa = str_of(a, r1, r2, &prog.str_consts, tmps);
    let sb = str_of(b, r1, r2, &prog.str_consts, tmps);
    match k {
        BoolKernel::SoundexEq => ss::soundex_eq(sa, sb),
        BoolKernel::NysiisEq => shared::nysiis_eq(sa, sb),
        BoolKernel::NicknameEq => ctx.nicknames.equivalent(sa, sb),
        BoolKernel::InitialsMatch => shared::initials_match(sa, sb),
        BoolKernel::DigitsTransposed => shared::digits_transposed(sa, sb),
        BoolKernel::DifferSlightly => {
            let t = num_of(
                n.expect("differ_slightly carries t"),
                nums,
                &prog.num_consts,
            );
            buffers.differ_slightly(sa, sb, t)
        }
    }
}

/// Executes one rule block; returns whether the rule fired.
#[allow(clippy::too_many_arguments)]
fn exec_block(
    prog: &CompiledProgram,
    start: usize,
    r1: &Record,
    r2: &Record,
    ctx: &Ctx,
    s: &mut VmScratch,
    epoch: u32,
    hits: &mut u64,
) -> bool {
    let VmScratch {
        buffers,
        bools,
        nums,
        tmps,
        memo_stamp,
        memo_val,
        ..
    } = s;
    let mut pc = start;
    loop {
        match &prog.code[pc] {
            Op::JumpIfTrue(r, t) => {
                if bools[*r as usize] {
                    pc = *t;
                    continue;
                }
            }
            Op::JumpIfFalse(r, t) => {
                if !bools[*r as usize] {
                    pc = *t;
                    continue;
                }
            }
            Op::Fire => return true,
            Op::Fail => return false,
            Op::LoadBool { val, dst } => bools[*dst as usize] = *val,
            Op::NotBool { src, dst } => bools[*dst as usize] = !bools[*src as usize],
            Op::StrEq { a, b, ne, dst } => {
                let sa = str_of(*a, r1, r2, &prog.str_consts, tmps);
                let sb = str_of(*b, r1, r2, &prog.str_consts, tmps);
                bools[*dst as usize] = (sa == sb) != *ne;
            }
            Op::NumCmp { op, a, b, dst } => {
                let x = num_of(*a, nums, &prog.num_consts);
                let y = num_of(*b, nums, &prog.num_consts);
                bools[*dst as usize] = match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                };
            }
            Op::BoolCmp { a, b, ne, dst } => {
                bools[*dst as usize] = (bools[*a as usize] == bools[*b as usize]) != *ne;
            }
            Op::NumKernel {
                k,
                a,
                b,
                n,
                memo,
                dst,
            } => {
                let v = match memo {
                    Some(slot) => {
                        let i = *slot as usize;
                        if memo_stamp[i] == epoch {
                            *hits += 1;
                            memo_val[i]
                        } else {
                            let v = num_kernel(*k, *a, *b, *n, r1, r2, prog, buffers, nums, tmps);
                            memo_stamp[i] = epoch;
                            memo_val[i] = v;
                            v
                        }
                    }
                    None => num_kernel(*k, *a, *b, *n, r1, r2, prog, buffers, nums, tmps),
                };
                nums[*dst as usize] = v;
            }
            Op::BoolKernel {
                k,
                a,
                b,
                n,
                memo,
                dst,
            } => {
                let v = match memo {
                    Some(slot) => {
                        let i = *slot as usize;
                        if memo_stamp[i] == epoch {
                            *hits += 1;
                            memo_val[i] != 0.0
                        } else {
                            let v =
                                bool_kernel(*k, *a, *b, *n, r1, r2, ctx, prog, buffers, nums, tmps);
                            memo_stamp[i] = epoch;
                            memo_val[i] = if v { 1.0 } else { 0.0 };
                            v
                        }
                    }
                    None => bool_kernel(*k, *a, *b, *n, r1, r2, ctx, prog, buffers, nums, tmps),
                };
                bools[*dst as usize] = v;
            }
            Op::StrLen { s, dst } => {
                let sv = str_of(*s, r1, r2, &prog.str_consts, tmps);
                nums[*dst as usize] = sv.chars().count() as f64;
            }
            Op::IsEmpty { s, dst } => {
                bools[*dst as usize] = str_of(*s, r1, r2, &prog.str_consts, tmps).is_empty();
            }
            Op::Contains { a, b, dst } => {
                let sa = str_of(*a, r1, r2, &prog.str_consts, tmps);
                let sb = str_of(*b, r1, r2, &prog.str_consts, tmps);
                bools[*dst as usize] = sa.contains(sb);
            }
            Op::StartsWith { a, b, dst } => {
                let sa = str_of(*a, r1, r2, &prog.str_consts, tmps);
                let sb = str_of(*b, r1, r2, &prog.str_consts, tmps);
                bools[*dst as usize] = sa.starts_with(sb);
            }
            Op::StrSlice { suffix, s, n, dst } => {
                // Same clamp as the interpreted prefix/suffix builtins.
                let count = num_of(*n, nums, &prog.num_consts).max(0.0) as usize;
                let mut out = std::mem::take(&mut tmps[*dst as usize]);
                out.clear();
                {
                    let full = str_of(*s, r1, r2, &prog.str_consts, tmps);
                    out.push_str(if *suffix {
                        shared::char_suffix(full, count)
                    } else {
                        shared::char_prefix(full, count)
                    });
                }
                tmps[*dst as usize] = out;
            }
        }
        pc += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_record::RecordId;

    fn rec(first: &str, last: &str, ssn: &str) -> Record {
        let mut r = Record::empty(RecordId(0));
        r.first_name = first.into();
        r.last_name = last.into();
        r.ssn = ssn.into();
        r
    }

    /// Every interpreter test case must agree with the VM; the dedicated
    /// agreement suite in `tests/` covers the 26-rule theory and random
    /// programs — these are fast smoke checks on each opcode family.
    fn agree(src: &str, a: &Record, b: &Record) {
        let interp = RuleProgram::compile(src).unwrap();
        let planned = CompiledTheory::compile(src).unwrap();
        let unplanned = CompiledTheory::compile_unplanned(src).unwrap();
        assert_eq!(
            interp.matches(a, b),
            planned.matches(a, b),
            "planned: {src}"
        );
        assert_eq!(
            interp.matches(a, b),
            unplanned.matches(a, b),
            "unplanned: {src}"
        );
        assert_eq!(
            interp.matching_rule_id(a, b),
            planned.matching_rule_id(a, b),
            "attribution: {src}"
        );
    }

    #[test]
    fn paper_example_rule_fires_identically() {
        let src = r#"
            rule paper_example {
                when r1.last_name == r2.last_name
                 and differ_slightly(r1.first_name, r2.first_name, 0.3)
                 and r1.street_number == r2.street_number
                 and r1.street_name == r2.street_name
                then match
            }
        "#;
        let mut a = rec("MICHAEL", "SMITH", "1");
        a.street_number = "42".into();
        a.street_name = "MAIN STREET".into();
        let mut b = rec("MICHAL", "SMITH", "2");
        b.street_number = "42".into();
        b.street_name = "MAIN STREET".into();
        let t = CompiledTheory::compile(src).unwrap();
        assert!(t.matches(&a, &b));
        assert_eq!(t.matching_rule(&a, &b), Some("paper_example"));
        agree(src, &a, &b);
        b.last_name = "JONES".into();
        assert!(!t.matches(&a, &b));
        agree(src, &a, &b);
    }

    #[test]
    fn every_opcode_family_agrees_with_interpreter() {
        let cases = [
            r#"rule r { when r1.city == "AUSTIN" or r2.city != "AUSTIN" then match }"#,
            "rule r { when len(r1.last_name) >= 3 and len(r2.last_name) <= 10 then match }",
            "rule r { when is_empty(r1.city) == is_empty(r2.city) then match }",
            "rule r { when not is_empty(r1.ssn) and digits_transposed(r1.ssn, r2.ssn) then match }",
            "rule r { when soundex_eq(r1.last_name, r2.last_name) or nysiis_eq(r1.last_name, r2.last_name) then match }",
            "rule r { when nickname_eq(r1.first_name, r2.first_name) then match }",
            "rule r { when initials_match(r1.first_name, r2.first_name) then match }",
            "rule r { when edit_distance(r1.ssn, r2.ssn) <= 2 then match }",
            "rule r { when jaro_winkler(r1.last_name, r2.last_name) > 0.9 then match }",
            "rule r { when keyboard_dist(r1.first_name, r2.first_name) < 1.5 then match }",
            "rule r { when ngram_sim(r1.last_name, r2.last_name, 2) >= 0.5 then match }",
            "rule r { when trigram_sim(r1.last_name, r2.last_name) >= 0.5 then match }",
            "rule r { when lcs_sim(r1.last_name, r2.last_name) >= 0.6 then match }",
            "rule r { when damerau(r1.ssn, r2.ssn) <= 1 then match }",
            r#"rule r { when contains(r1.street_name, "MAIN") and starts_with(r2.street_name, "M") then match }"#,
            "rule r { when prefix(r1.last_name, 4) == prefix(r2.last_name, 4) then match }",
            "rule r { when suffix(r1.ssn, 4) == suffix(r2.ssn, 4) then match }",
            "rule r { when edit_sim(prefix(r1.last_name, 5), prefix(r2.last_name, 5)) >= 0.7 then match }",
            "rule r { when true and not false then match }",
            "rule r { when differ_slightly(r1.last_name, r2.last_name, len(r1.city)) then match }",
        ];
        let pairs = [
            (
                rec("MICHAEL", "SMITH", "123456789"),
                rec("MICHAL", "SMYTH", "123456798"),
            ),
            (
                rec("BOB", "JOHNSON", "111223333"),
                rec("ROBERT", "JOHNSEN", "111223333"),
            ),
            (rec("J", "HERNANDEZ", ""), rec("JOSE", "HERNANDES", "")),
            (rec("", "", ""), rec("", "", "")),
            (
                rec("ANNA", "KOWALSKI", "987654321"),
                rec("ANNE", "KOWALSKY", "987654312"),
            ),
        ];
        for src in cases {
            for (a, b) in &pairs {
                let mut a = a.clone();
                let mut b = b.clone();
                a.city = "AUSTIN".into();
                a.street_name = "MAIN STREET".into();
                b.street_name = "MAINE ST".into();
                agree(src, &a, &b);
            }
        }
    }

    #[test]
    fn planned_attribution_is_first_match_in_source_order() {
        // Rule order in the plan differs from source order (b fires far
        // more often), yet the reported id must stay the source-order
        // first match.
        let src = r#"
            rule a { when r1.last_name == r2.last_name then match }
            rule b { when r1.ssn == r2.ssn then match }
        "#;
        let rules = RuleProgram::compile(src).unwrap();
        let mut plan = Plan::of(rules.ast());
        plan.rule_order.reverse(); // force b's block first
        let t = CompiledTheory::from_program(&rules, Some(&plan));
        let a = rec("X", "SMITH", "1");
        let b = rec("Y", "SMITH", "1");
        // Both rules fire; attribution must be rule 0 (a).
        assert_eq!(t.matching_rule_id(&a, &b), Some(0));
        assert_eq!(t.matching_rule(&a, &b), Some("a"));
    }

    #[test]
    fn memo_hits_accumulate() {
        let src = r#"
            rule a { when edit_sim(r1.last_name, r2.last_name) >= 0.95 then match }
            rule b { when edit_sim(r1.last_name, r2.last_name) >= 0.1
                      and r1.first_name == r2.first_name then match }
        "#;
        let t = CompiledTheory::compile(src).unwrap();
        let a = rec("JO", "SMITH", "1");
        let b = rec("JO", "SMITHE", "2");
        assert_eq!(t.subexpr_hits(), 0);
        // matching_rule_id runs both blocks (rule a misses at 0.95, rule b
        // fires): the second edit_sim must be a memo hit.
        assert_eq!(t.matching_rule_id(&a, &b), Some(1));
        assert_eq!(t.subexpr_hits(), 1);
        // A fresh pair re-computes (epoch advanced), then hits again.
        assert_eq!(t.matching_rule_id(&a, &b), Some(1));
        assert_eq!(t.subexpr_hits(), 2);
    }

    #[test]
    fn unplanned_theory_reports_zero_hits() {
        let src = r#"
            rule a { when edit_sim(r1.last_name, r2.last_name) >= 0.95 then match }
            rule b { when edit_sim(r1.last_name, r2.last_name) >= 0.1 then match }
        "#;
        let t = CompiledTheory::compile_unplanned(src).unwrap();
        let a = rec("JO", "SMITH", "1");
        let b = rec("JO", "SMITHE", "2");
        let _ = t.matching_rule_id(&a, &b);
        assert_eq!(t.subexpr_hits(), 0);
        assert!(!t.is_planned());
    }

    #[test]
    fn counters_and_metadata() {
        let t = CompiledTheory::compile("rule r { when r1.ssn == r2.ssn then match }").unwrap();
        assert_eq!(t.rule_count(), 1);
        assert_eq!(t.rules_compiled(), 1);
        assert_eq!(t.name(), "dsl-compiled");
        assert!(t.is_planned());
        assert_eq!(t.rule_names(), vec!["r".to_string()]);
        assert!(t.purge_spec().is_none());
        assert!(t.disassemble().contains("str_eq r1.ssn, r2.ssn"));
    }
}
