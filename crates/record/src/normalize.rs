//! Record conditioning: the cheap, purely syntactic cleanup pass run over
//! every record before keys are extracted (§2.2 "after conditioning the
//! records" / §3.2 pre-processing).

use crate::nickname::NicknameTable;
use crate::record::Record;

/// Honorifics stripped from name fields.
const SALUTATIONS: [&str; 8] = ["MR", "MRS", "MS", "DR", "MISS", "PROF", "REV", "HON"];

/// Generational suffixes stripped from last-name fields.
const SUFFIXES: [&str; 7] = ["JR", "SR", "II", "III", "IV", "ESQ", "PHD"];

/// Street-type abbreviations expanded to a canonical long form, so that
/// "MAIN ST" and "MAIN STREET" compare equal before any fuzzy matching.
const STREET_ABBREVS: [(&str, &str); 12] = [
    ("ST", "STREET"),
    ("AVE", "AVENUE"),
    ("AV", "AVENUE"),
    ("BLVD", "BOULEVARD"),
    ("RD", "ROAD"),
    ("DR", "DRIVE"),
    ("LN", "LANE"),
    ("CT", "COURT"),
    ("PL", "PLACE"),
    ("SQ", "SQUARE"),
    ("HWY", "HIGHWAY"),
    ("PKWY", "PARKWAY"),
];

/// Upper-cases, trims, and collapses internal whitespace runs to single
/// spaces; also drops periods and commas (common punctuation noise).
///
/// ```
/// use mp_record::normalize::canonical;
/// assert_eq!(canonical("  j.  smith, "), "J SMITH");
/// ```
pub fn canonical(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut pending_space = false;
    for c in s.chars() {
        if c.is_whitespace() {
            pending_space = !out.is_empty();
            continue;
        }
        if c == '.' || c == ',' {
            continue;
        }
        if pending_space {
            out.push(' ');
            pending_space = false;
        }
        for u in c.to_uppercase() {
            out.push(u);
        }
    }
    out
}

/// Removes a leading salutation token ("MR", "DR", ...) from a name.
pub fn strip_salutation(name: &str) -> &str {
    for sal in SALUTATIONS {
        if let Some(rest) = name.strip_prefix(sal) {
            if let Some(rest) = rest.strip_prefix(' ') {
                return rest;
            }
        }
    }
    name
}

/// Removes a trailing generational suffix ("JR", "III", ...) from a name.
pub fn strip_suffix(name: &str) -> &str {
    for suf in SUFFIXES {
        if let Some(rest) = name.strip_suffix(suf) {
            if let Some(rest) = rest.strip_suffix(' ') {
                return rest;
            }
        }
    }
    name
}

/// Expands trailing street-type abbreviations ("ST" → "STREET").
///
/// Only the final token is considered, which is where street types appear;
/// expanding interior tokens would corrupt names like "ST JOHNS AVENUE".
pub fn expand_street(street: &str) -> String {
    match street.rsplit_once(' ') {
        Some((head, last)) => {
            for (abbr, long) in STREET_ABBREVS {
                if last == abbr {
                    return format!("{head} {long}");
                }
            }
            street.to_string()
        }
        None => street.to_string(),
    }
}

/// Conditions one record in place: canonical form for every field, name
/// cleanup, street expansion, and nickname substitution on the first name.
///
/// This is the paper's "create keys / conditioning" O(N) pass, minus key
/// extraction (which the core crate fuses into its sort phase).
pub fn condition(record: &mut Record, nicknames: &NicknameTable) {
    record.ssn = record.ssn.chars().filter(char::is_ascii_digit).collect();
    record.first_name = canonical(&record.first_name);
    record.first_name = strip_salutation(&record.first_name).to_string();
    if let Some(common) = nicknames.common_form(&record.first_name) {
        record.first_name = common.to_string();
    }
    record.middle_initial = canonical(&record.middle_initial);
    record.middle_initial.truncate(
        record
            .middle_initial
            .char_indices()
            .nth(1)
            .map_or(record.middle_initial.len(), |(i, _)| i),
    );
    record.last_name = canonical(&record.last_name);
    record.last_name = strip_suffix(&record.last_name).to_string();
    record.street_number = canonical(&record.street_number);
    record.street_name = expand_street(&canonical(&record.street_name));
    record.apartment = canonical(&record.apartment);
    record.city = canonical(&record.city);
    record.state = canonical(&record.state);
    record.zip = record.zip.chars().filter(char::is_ascii_digit).collect();
}

/// Conditions a whole list of records.
pub fn condition_all(records: &mut [Record], nicknames: &NicknameTable) {
    for r in records {
        condition(r, nicknames);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordId;

    #[test]
    fn canonical_uppercases_and_collapses() {
        assert_eq!(canonical("  two   words "), "TWO WORDS");
        assert_eq!(canonical("a.b,c"), "ABC");
        assert_eq!(canonical(""), "");
        assert_eq!(canonical("   "), "");
    }

    #[test]
    fn salutations_stripped_only_as_leading_token() {
        assert_eq!(strip_salutation("MR JONES"), "JONES");
        assert_eq!(strip_salutation("DR DRE"), "DRE");
        // "DREW" starts with "DR" but is not a salutation token.
        assert_eq!(strip_salutation("DREW"), "DREW");
        assert_eq!(strip_salutation("MRS"), "MRS");
    }

    #[test]
    fn suffixes_stripped_only_as_trailing_token() {
        assert_eq!(strip_suffix("SMITH JR"), "SMITH");
        assert_eq!(strip_suffix("KING III"), "KING");
        // "NAJR" ends with "JR" but is not a suffix token.
        assert_eq!(strip_suffix("NAJR"), "NAJR");
    }

    #[test]
    fn street_expansion_final_token_only() {
        assert_eq!(expand_street("MAIN ST"), "MAIN STREET");
        assert_eq!(expand_street("AMSTERDAM AVE"), "AMSTERDAM AVENUE");
        assert_eq!(expand_street("ST JOHNS AVE"), "ST JOHNS AVENUE");
        assert_eq!(expand_street("BROADWAY"), "BROADWAY");
        assert_eq!(expand_street(""), "");
    }

    #[test]
    fn condition_full_record() {
        let mut r = Record::empty(RecordId(0));
        r.ssn = "123-45-6789".into();
        r.first_name = "mr. bob".into();
        r.middle_initial = "ja".into();
        r.last_name = "o'neill jr".into();
        r.street_name = "w 120th st".into();
        r.city = "new  york".into();
        r.zip = "10027-1234".into();
        let nicks = NicknameTable::standard();
        condition(&mut r, &nicks);
        assert_eq!(r.ssn, "123456789");
        assert_eq!(r.first_name, "ROBERT"); // BOB -> ROBERT via nickname table
        assert_eq!(r.middle_initial, "J");
        assert_eq!(r.last_name, "O'NEILL");
        assert_eq!(r.street_name, "W 120TH STREET");
        assert_eq!(r.city, "NEW YORK");
        assert_eq!(r.zip, "100271234");
    }

    #[test]
    fn condition_is_idempotent() {
        let mut r = Record::empty(RecordId(0));
        r.first_name = "Mr. Joe".into();
        r.last_name = "Smith Jr".into();
        r.street_name = "Main St".into();
        let nicks = NicknameTable::standard();
        condition(&mut r, &nicks);
        let once = r.clone();
        condition(&mut r, &nicks);
        assert_eq!(r, once);
    }
}
