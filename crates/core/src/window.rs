//! The merge phase: fixed-size window scanning over a sorted record order.

use mp_closure::PairSet;
use mp_record::Record;
use mp_rules::EquationalTheory;

/// Slides a `window`-record window over `order` (indices into `records`,
/// already sorted by key) and applies `theory` to every pair inside the
/// window, accumulating matches into `pairs`.
///
/// "If the size of the window is w records, then every new record entering
/// the window is compared with the previous w − 1 records to find 'matching'
/// records" (§2.2). Returns the number of pair comparisons performed —
/// `(N − w/2 ish) · (w − 1)` — which the cost model and benches consume.
///
/// # Panics
///
/// Panics when `window < 2` (a window of one record can compare nothing).
pub fn window_scan(
    records: &[Record],
    order: &[u32],
    window: usize,
    theory: &dyn EquationalTheory,
    pairs: &mut PairSet,
) -> u64 {
    assert!(window >= 2, "window must hold at least two records");
    let mut comparisons = 0u64;
    for i in 1..order.len() {
        let lo = i.saturating_sub(window - 1);
        let new = &records[order[i] as usize];
        for &prev in &order[lo..i] {
            comparisons += 1;
            let old = &records[prev as usize];
            if theory.matches(old, new) {
                pairs.insert(old.id.0, new.id.0);
            }
        }
    }
    comparisons
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_record::RecordId;

    /// Theory matching records with equal last names.
    struct SameLast;
    impl EquationalTheory for SameLast {
        fn matches(&self, a: &Record, b: &Record) -> bool {
            !a.last_name.is_empty() && a.last_name == b.last_name
        }
        fn name(&self) -> &str {
            "same-last"
        }
    }

    fn records(lasts: &[&str]) -> Vec<Record> {
        lasts
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let mut r = Record::empty(RecordId(i as u32));
                r.last_name = (*l).to_string();
                r
            })
            .collect()
    }

    #[test]
    fn adjacent_matches_found_with_minimal_window() {
        let recs = records(&["A", "A", "B", "C", "C"]);
        let order: Vec<u32> = (0..recs.len() as u32).collect();
        let mut pairs = PairSet::new();
        window_scan(&recs, &order, 2, &SameLast, &mut pairs);
        assert_eq!(pairs.sorted(), vec![(0, 1), (3, 4)]);
    }

    #[test]
    fn matches_beyond_window_are_missed() {
        // The fundamental SNM limitation the multi-pass approach fixes.
        let recs = records(&["A", "B", "C", "A"]);
        let order: Vec<u32> = (0..4).collect();
        let mut pairs = PairSet::new();
        window_scan(&recs, &order, 3, &SameLast, &mut pairs);
        assert!(pairs.is_empty());
        let mut pairs = PairSet::new();
        window_scan(&recs, &order, 4, &SameLast, &mut pairs);
        assert_eq!(pairs.sorted(), vec![(0, 3)]);
    }

    #[test]
    fn comparison_count_matches_formula() {
        let recs = records(&["A"; 10]);
        let order: Vec<u32> = (0..10).collect();
        let mut pairs = PairSet::new();
        let w = 4;
        let c = window_scan(&recs, &order, w, &SameLast, &mut pairs);
        // First w-1 entries compare with fewer: sum_{i=1}^{N-1} min(i, w-1).
        let expected: u64 = (1..10u64).map(|i| i.min(w as u64 - 1)).sum();
        assert_eq!(c, expected);
        // All 45 pairs of equal records within distance 3 match.
        assert_eq!(pairs.len() as u64, expected);
    }

    #[test]
    fn order_indirection_respected() {
        // Records sorted differently from their id order.
        let recs = records(&["Z", "A", "Z"]);
        let order = vec![1u32, 0, 2]; // A, Z, Z
        let mut pairs = PairSet::new();
        window_scan(&recs, &order, 2, &SameLast, &mut pairs);
        assert_eq!(pairs.sorted(), vec![(0, 2)]);
    }

    #[test]
    fn window_larger_than_list_is_fine() {
        let recs = records(&["A", "A"]);
        let order = vec![0u32, 1];
        let mut pairs = PairSet::new();
        let c = window_scan(&recs, &order, 100, &SameLast, &mut pairs);
        assert_eq!(c, 1);
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let recs = records(&[]);
        let mut pairs = PairSet::new();
        assert_eq!(window_scan(&recs, &[], 2, &SameLast, &mut pairs), 0);
        let recs = records(&["A"]);
        assert_eq!(window_scan(&recs, &[0], 2, &SameLast, &mut pairs), 0);
        assert!(pairs.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn window_of_one_rejected() {
        let recs = records(&["A"]);
        let mut pairs = PairSet::new();
        window_scan(&recs, &[0], 1, &SameLast, &mut pairs);
    }
}
