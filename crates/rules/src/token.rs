//! Token definitions for the rule language.

use std::fmt;

/// Source position (1-based line and column) for error reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Keyword `rule`.
    Rule,
    /// Keyword `when`.
    When,
    /// Keyword `then`.
    Then,
    /// Keyword `match`.
    Match,
    /// Keyword `purge`.
    Purge,
    /// Arrow `<-` (purge assignment).
    Arrow,
    /// Keyword `and`.
    And,
    /// Keyword `or`.
    Or,
    /// Keyword `not`.
    Not,
    /// Keyword `true`.
    True,
    /// Keyword `false`.
    False,
    /// Record designator `r1`.
    R1,
    /// Record designator `r2`.
    R2,
    /// Identifier (rule name, function, or field).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// String literal.
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `<`
    Lt,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Rule => write!(f, "rule"),
            Tok::When => write!(f, "when"),
            Tok::Then => write!(f, "then"),
            Tok::Match => write!(f, "match"),
            Tok::Purge => write!(f, "purge"),
            Tok::Arrow => write!(f, "<-"),
            Tok::And => write!(f, "and"),
            Tok::Or => write!(f, "or"),
            Tok::Not => write!(f, "not"),
            Tok::True => write!(f, "true"),
            Tok::False => write!(f, "false"),
            Tok::R1 => write!(f, "r1"),
            Tok::R2 => write!(f, "r2"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Number(n) => write!(f, "{n}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::EqEq => write!(f, "=="),
            Tok::NotEq => write!(f, "!="),
            Tok::Ge => write!(f, ">="),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Lt => write!(f, "<"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}
