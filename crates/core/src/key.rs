//! Sort-key specification and extraction.
//!
//! §2.4: "A key is defined to be a sequence of a subset of attributes, or
//! substrings within the attributes, chosen from the record. ... Attributes
//! that appear first in the key have a higher priority than those appearing
//! after them." Key extraction is knowledge-intensive and error-prone by
//! design — keys inherit the corruption of the fields they are built from,
//! which is exactly why no single key suffices and the multi-pass approach
//! wins.

use mp_record::{Field, Record};

/// One component of a key, applied to a field in priority order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyPart {
    /// The entire field value.
    Full(Field),
    /// The first `n` characters of the field.
    Prefix(Field, usize),
    /// The first non-blank character of the field (the paper's example uses
    /// "the first non blank character of the first name sub-field"). Note
    /// that a character whose uppercase form expands (e.g. 'ᾼ' → "ΑΙ")
    /// contributes every expanded character.
    FirstNonBlank(Field),
    /// The first `n` decimal digits found in the field ("the first six
    /// digits of the social security field").
    Digits(Field, usize),
}

impl KeyPart {
    /// Appends this part's contribution for `record` to `out`, upper-cased,
    /// with non-alphanumerics dropped so punctuation noise cannot reorder
    /// the sort.
    pub fn append(&self, record: &Record, out: &mut String) {
        match *self {
            KeyPart::Full(f) => push_clean(record.field(f), usize::MAX, out),
            KeyPart::Prefix(f, n) => push_clean(record.field(f), n, out),
            KeyPart::FirstNonBlank(f) => {
                if let Some(c) = record.field(f).chars().find(|c| !c.is_whitespace()) {
                    for u in c.to_uppercase() {
                        out.push(u);
                    }
                }
            }
            KeyPart::Digits(f, n) => {
                out.extend(record.field(f).chars().filter(char::is_ascii_digit).take(n));
            }
        }
    }
}

fn push_clean(s: &str, limit: usize, out: &mut String) {
    out.extend(
        s.chars()
            .filter(|c| c.is_alphanumeric())
            .flat_map(char::to_uppercase)
            .take(limit),
    );
}

/// An ordered sequence of [`KeyPart`]s, named for reports.
///
/// ```
/// use merge_purge::KeySpec;
/// use mp_record::{Record, RecordId};
/// let mut r = Record::empty(RecordId(0));
/// r.last_name = "O'BRIEN".into();
/// r.first_name = " MAURICIO".into();
/// r.ssn = "123-45-6789".into();
/// assert_eq!(KeySpec::last_name_key().extract(&r), "OBRIENM123456");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeySpec {
    name: String,
    parts: Vec<KeyPart>,
}

impl KeySpec {
    /// A key from explicit parts.
    pub fn new(name: impl Into<String>, parts: Vec<KeyPart>) -> Self {
        KeySpec {
            name: name.into(),
            parts,
        }
    }

    /// Display name of the key.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The component parts.
    pub fn parts(&self) -> &[KeyPart] {
        &self.parts
    }

    /// Extracts the key for one record into a fresh string.
    pub fn extract(&self, record: &Record) -> String {
        let mut out = String::with_capacity(24);
        self.extract_into(record, &mut out);
        out
    }

    /// Extracts the key, appending into a caller-provided buffer (cleared
    /// first). The create-keys phase runs this for every record; reusing the
    /// buffer keeps it allocation-free.
    pub fn extract_into(&self, record: &Record, out: &mut String) {
        out.clear();
        for part in &self.parts {
            part.append(record, out);
        }
    }

    /// Paper run 1: last name principal, then first initial, then the first
    /// six SSN digits.
    pub fn last_name_key() -> Self {
        KeySpec::new(
            "last-name",
            vec![
                KeyPart::Full(Field::LastName),
                KeyPart::FirstNonBlank(Field::FirstName),
                KeyPart::Digits(Field::Ssn, 6),
            ],
        )
    }

    /// Paper run 2: first name principal.
    pub fn first_name_key() -> Self {
        KeySpec::new(
            "first-name",
            vec![
                KeyPart::Full(Field::FirstName),
                KeyPart::FirstNonBlank(Field::LastName),
                KeyPart::Digits(Field::Ssn, 6),
            ],
        )
    }

    /// Paper run 3: street address principal (street name, then number,
    /// then city prefix).
    pub fn address_key() -> Self {
        KeySpec::new(
            "address",
            vec![
                KeyPart::Full(Field::StreetName),
                KeyPart::Digits(Field::StreetNumber, 6),
                KeyPart::Prefix(Field::City, 4),
            ],
        )
    }

    /// An SSN-principal key (the §2.4 example of a *bad* principal field
    /// when digits transpose).
    pub fn ssn_key() -> Self {
        KeySpec::new(
            "ssn",
            vec![
                KeyPart::Digits(Field::Ssn, 9),
                KeyPart::Prefix(Field::LastName, 4),
            ],
        )
    }

    /// The three standard paper keys, in the order used for the figures.
    pub fn standard_three() -> Vec<KeySpec> {
        vec![
            KeySpec::last_name_key(),
            KeySpec::first_name_key(),
            KeySpec::address_key(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_record::RecordId;

    fn sample() -> Record {
        let mut r = Record::empty(RecordId(0));
        r.ssn = "123456789".into();
        r.first_name = "MAURICIO".into();
        r.last_name = "HERNANDEZ".into();
        r.street_number = "500".into();
        r.street_name = "WEST 120TH STREET".into();
        r.city = "NEW YORK".into();
        r
    }

    #[test]
    fn paper_key_shapes() {
        let r = sample();
        assert_eq!(KeySpec::last_name_key().extract(&r), "HERNANDEZM123456");
        assert_eq!(KeySpec::first_name_key().extract(&r), "MAURICIOH123456");
        assert_eq!(KeySpec::address_key().extract(&r), "WEST120THSTREET500NEWY");
        assert_eq!(KeySpec::ssn_key().extract(&r), "123456789HERN");
    }

    #[test]
    fn punctuation_and_case_insensitive() {
        let mut a = sample();
        a.last_name = "o'brien-SMITH".into();
        let mut b = sample();
        b.last_name = "OBRIENSMITH".into();
        let k = KeySpec::new("t", vec![KeyPart::Full(Field::LastName)]);
        assert_eq!(k.extract(&a), k.extract(&b));
    }

    #[test]
    fn prefix_and_digit_truncation() {
        let r = sample();
        let k = KeySpec::new(
            "t",
            vec![
                KeyPart::Prefix(Field::City, 3),
                KeyPart::Digits(Field::Ssn, 2),
            ],
        );
        // "NEW YORK" -> alphanumerics "NEWYORK" -> prefix 3 "NEW".
        assert_eq!(k.extract(&r), "NEW12");
    }

    #[test]
    fn first_non_blank_of_empty_contributes_nothing() {
        let mut r = sample();
        r.first_name = "   ".into();
        let k = KeySpec::new("t", vec![KeyPart::FirstNonBlank(Field::FirstName)]);
        assert_eq!(k.extract(&r), "");
        r.first_name = "  joe".into();
        assert_eq!(k.extract(&r), "J");
    }

    #[test]
    fn extract_into_reuses_buffer() {
        let r = sample();
        let k = KeySpec::last_name_key();
        let mut buf = String::from("STALE");
        k.extract_into(&r, &mut buf);
        assert_eq!(buf, "HERNANDEZM123456");
    }

    #[test]
    fn corrupted_principal_field_corrupts_key_head() {
        // §2.4: errors in the principal field move records far apart.
        let a = sample();
        let mut b = sample();
        b.last_name = "GERNANDEZ".into(); // typo in first character
        let k = KeySpec::last_name_key();
        assert_ne!(k.extract(&a).as_bytes()[0], k.extract(&b).as_bytes()[0]);
        // But the head of the first-name key (the full first name) is
        // unaffected; only the trailing last-initial component changes.
        let k2 = KeySpec::first_name_key();
        assert_eq!(k2.extract(&a)[..8], k2.extract(&b)[..8]);
    }

    #[test]
    fn standard_three_distinct_names() {
        let keys = KeySpec::standard_three();
        assert_eq!(keys.len(), 3);
        let names: std::collections::HashSet<&str> = keys.iter().map(KeySpec::name).collect();
        assert_eq!(names.len(), 3);
    }
}
