//! Pretty-printing rule programs back to DSL source.
//!
//! Round-trip guarantee: `parse(print(p))` yields a program equal to `p`
//! up to source positions (tested on the employee theory and on targeted
//! samples). Useful for tooling — normalizing user programs, diffing rule
//! bases, and emitting the effective program after programmatic edits.

use crate::ast::{CmpOp, Expr, Program, Rule};
use std::fmt::Write;

/// Renders a full program as canonical DSL source.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for rule in &p.rules {
        print_rule(rule, &mut out);
        out.push('\n');
    }
    if let Some(purge) = &p.purge {
        out.push_str("purge {\n");
        for (field, strategy) in &purge.assignments {
            let _ = writeln!(out, "    {} <- {}", field.name(), strategy.name());
        }
        out.push_str("}\n");
    }
    out
}

fn print_rule(r: &Rule, out: &mut String) {
    let _ = writeln!(out, "rule {} {{", r.name);
    out.push_str("    when ");
    print_expr(&r.condition, Prec::Or, out);
    out.push_str("\n    then match\n}\n");
}

/// Operator precedence levels, loosest first.
#[derive(Clone, Copy, PartialEq, PartialOrd)]
enum Prec {
    Or,
    And,
    Not,
    Atom,
}

fn print_expr(e: &Expr, min: Prec, out: &mut String) {
    let prec = match e {
        Expr::Or(..) => Prec::Or,
        Expr::And(..) => Prec::And,
        Expr::Not(..) => Prec::Not,
        _ => Prec::Atom,
    };
    let parens = prec < min;
    if parens {
        out.push('(');
    }
    match e {
        Expr::Or(parts, _) => {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(" or ");
                }
                print_expr(p, Prec::And, out);
            }
        }
        Expr::And(parts, _) => {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(" and ");
                }
                print_expr(p, Prec::Not, out);
            }
        }
        Expr::Not(inner, _) => {
            out.push_str("not ");
            print_expr(inner, Prec::Not, out);
        }
        Expr::Cmp(op, l, r, _) => {
            print_expr(l, Prec::Atom, out);
            let sym = match op {
                CmpOp::Eq => "==",
                CmpOp::Ne => "!=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
            };
            let _ = write!(out, " {sym} ");
            print_expr(r, Prec::Atom, out);
        }
        Expr::Call(name, args, _) => {
            let _ = write!(out, "{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(a, Prec::Or, out);
            }
            out.push(')');
        }
        Expr::FieldRef(rec, field, _) => {
            let r = match rec {
                crate::ast::RecordRef::R1 => "r1",
                crate::ast::RecordRef::R2 => "r2",
            };
            let _ = write!(out, "{r}.{}", field.name());
        }
        Expr::Num(n, _) => {
            let _ = write!(out, "{n}");
        }
        Expr::Str(s, _) => {
            let _ = write!(out, "{s:?}");
        }
        Expr::Bool(b, _) => {
            let _ = write!(out, "{b}");
        }
    }
    if parens {
        out.push(')');
    }
}

/// Structural equality ignoring source positions.
pub fn programs_equivalent(a: &Program, b: &Program) -> bool {
    a.rules.len() == b.rules.len()
        && a.purge == b.purge
        && a.rules
            .iter()
            .zip(&b.rules)
            .all(|(x, y)| x.name == y.name && exprs_equivalent(&x.condition, &y.condition))
}

fn exprs_equivalent(a: &Expr, b: &Expr) -> bool {
    use Expr::{And, Bool, Call, Cmp, FieldRef, Not, Num, Or, Str};
    match (a, b) {
        (Or(x, _), Or(y, _)) | (And(x, _), And(y, _)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| exprs_equivalent(p, q))
        }
        (Not(x, _), Not(y, _)) => exprs_equivalent(x, y),
        (Cmp(o1, l1, r1, _), Cmp(o2, l2, r2, _)) => {
            o1 == o2 && exprs_equivalent(l1, l2) && exprs_equivalent(r1, r2)
        }
        (Call(n1, a1, _), Call(n2, a2, _)) => {
            n1 == n2
                && a1.len() == a2.len()
                && a1.iter().zip(a2).all(|(p, q)| exprs_equivalent(p, q))
        }
        (FieldRef(x1, f1, _), FieldRef(x2, f2, _)) => x1 == x2 && f1 == f2,
        (Num(x, _), Num(y, _)) => x == y,
        (Str(x, _), Str(y, _)) => x == y,
        (Bool(x, _), Bool(y, _)) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::employee::EMPLOYEE_RULES_SRC;
    use crate::parser::parse;

    fn roundtrips(src: &str) {
        let original = parse(src).unwrap();
        let printed = print_program(&original);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed program failed to parse: {e}\n---\n{printed}"));
        assert!(
            programs_equivalent(&original, &reparsed),
            "round trip changed the program:\n---original src---\n{src}\n---printed---\n{printed}"
        );
    }

    #[test]
    fn employee_theory_roundtrips() {
        roundtrips(EMPLOYEE_RULES_SRC);
    }

    #[test]
    fn precedence_preserved() {
        roundtrips("rule r { when (true or false) and not (true and false) then match }");
        roundtrips("rule r { when not not is_empty(r1.city) then match }");
        roundtrips(
            "rule r { when len(r1.city) >= 3 and (r1.zip == r2.zip or r1.city == r2.city) then match }",
        );
    }

    #[test]
    fn literals_and_calls_roundtrip() {
        roundtrips(
            r#"rule r { when contains(r1.city, "NEW YORK") and len(r1.zip) == 5 then match }"#,
        );
        roundtrips("rule r { when differ_slightly(prefix(r1.last_name, 4), suffix(r2.last_name, 4), 0.25) then match }");
    }

    #[test]
    fn purge_block_roundtrips() {
        roundtrips(
            "rule r { when true then match } \
             purge { first_name <- longest city <- most_frequent zip <- first }",
        );
    }

    #[test]
    fn printed_employee_theory_behaves_identically() {
        use crate::{EquationalTheory, RuleProgram};
        use mp_datagen::{DatabaseGenerator, GeneratorConfig};
        let original = RuleProgram::compile(EMPLOYEE_RULES_SRC).unwrap();
        let printed_src = print_program(original.ast());
        let reprinted = RuleProgram::compile(&printed_src).unwrap();
        let db = DatabaseGenerator::new(GeneratorConfig::new(80).duplicate_fraction(0.6).seed(42))
            .generate();
        for w in db.records.windows(2) {
            assert_eq!(
                original.matches(&w[0], &w[1]),
                reprinted.matches(&w[0], &w[1])
            );
        }
    }
}
