#![warn(missing_docs)]

//! Vendored, dependency-free stand-in for `serde`.
//!
//! The workspace annotates a few types with `#[derive(Serialize,
//! Deserialize)]` but performs no serde serialization anywhere (report
//! emission in `mp-metrics` is hand-rolled JSON). These marker traits keep
//! those annotations compiling without network access to crates.io.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize {}

// The derive macros live in the macro namespace, the traits in the type
// namespace, so both can be exported under the same names — exactly the
// layout real serde uses with its `derive` feature.
pub use serde_derive::{Deserialize, Serialize};
