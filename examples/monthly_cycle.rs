//! The monthly business cycle (§1): new subscription lists arrive every
//! month and must be merged against an ever-growing base "within a small
//! portion of a month". This example compares the incremental engine
//! against naive monthly reruns over six cycles.
//!
//! Run with: `cargo run --release --example monthly_cycle`

use merge_purge::{incremental::IncrementalMergePurge, KeySpec, SortedNeighborhood};
use mp_datagen::{DatabaseGenerator, ErrorProfile, GeneratorConfig};
use mp_record::{Record, RecordId};
use mp_rules::NativeEmployeeTheory;
use std::time::Instant;

const MONTHS: usize = 6;
const PER_MONTH: usize = 4_000;

fn month_batch(month: usize) -> Vec<Record> {
    // Each month's list draws from the same underlying population (same
    // seed ⇒ same entities), with its own duplication noise — so cross-month
    // duplicates are real and the base keeps growing.
    DatabaseGenerator::new(
        GeneratorConfig::new(PER_MONTH)
            .duplicate_fraction(0.25)
            .max_duplicates_per_record(2)
            .errors(if month.is_multiple_of(2) {
                ErrorProfile::default()
            } else {
                ErrorProfile::light()
            })
            .population_seed(500) // one underlying population of people
            .seed(600 + month as u64), // fresh noise every month
    )
    .generate()
    .records
}

fn main() {
    let theory = NativeEmployeeTheory::new();
    let w = 10;

    let mut inc = IncrementalMergePurge::new()
        .pass(KeySpec::last_name_key(), w)
        .pass(KeySpec::first_name_key(), w);

    let mut base: Vec<Record> = Vec::new();
    println!("month | base size | incremental time | full-rerun time | groups");
    println!("------|-----------|------------------|-----------------|-------");
    for month in 0..MONTHS {
        let batch = month_batch(month);

        let t0 = Instant::now();
        inc.add_batch(batch.clone(), &theory);
        let groups = inc.classes().len();
        let inc_time = t0.elapsed();

        // The naive alternative: concatenate and rerun both passes.
        base.extend(batch);
        for (i, r) in base.iter_mut().enumerate() {
            r.id = RecordId(i as u32);
        }
        let t1 = Instant::now();
        for key in [KeySpec::last_name_key(), KeySpec::first_name_key()] {
            let _ = SortedNeighborhood::new(key, w).run(&base, &theory);
        }
        let rerun_time = t1.elapsed();

        println!(
            "{month:>5} | {:>9} | {:>16.1?} | {:>15.1?} | {groups}",
            base.len(),
            inc_time,
            rerun_time
        );
    }
    println!(
        "\ntotal incremental comparisons: {} (a full rerun each month repeats \
         all old-vs-old work; incremental touches only pairs involving the \
         new batch and is provably a superset of the rerun's matches)",
        inc.comparisons()
    );
}
