#![warn(missing_docs)]

//! Parallel merge/purge engines (§4).
//!
//! The paper's shared-nothing multiprocessor is simulated with OS threads:
//! each "processor" is a worker owning its fragment of the data, and only
//! match pairs (tuple-id pairs) flow back to the coordinator — the same
//! communication structure as the HP-cluster implementation, minus the FDDI
//! network in the middle.
//!
//! * [`psort`] — parallel merge sort of the (key, record) list: fragments
//!   sorted locally in parallel, then a P-way coordinator merge (§4.1's
//!   sort phase).
//! * [`snm::ParallelSnm`] — the parallel sorted-neighborhood method:
//!   band-replicated fragments ("small 'bands' of replicated records are
//!   needed to make the fragmentation of the database invisible") scanned
//!   concurrently.
//! * [`clustering::ParallelClustering`] — the parallel clustering method:
//!   histogram range partitioning into `C·P` clusters, LPT re-balancing
//!   across processors, per-processor local sorts and scans (§4.2).
//! * [`multipass`] — concurrent independent passes followed by the closure,
//!   the configuration behind Fig. 6's multi-pass series.

pub mod clustering;
pub mod multipass;
pub mod psort;
pub mod snm;

pub use clustering::ParallelClustering;
pub use multipass::{
    parallel_multipass, parallel_multipass_observed, parallel_multipass_streaming, ParallelPass,
};
pub use psort::parallel_sorted_order;
pub use snm::ParallelSnm;

use merge_purge::{KeyArena, KeySpec};
use mp_record::Record;

/// Extracts `key` for every record across `procs` worker threads.
///
/// Each worker builds a [`KeyArena`] for its contiguous record chunk — one
/// string buffer plus one span list, no per-record `String` — and the
/// coordinator concatenates the chunk arenas in fragment order, so the
/// result is identical to a serial [`KeyArena::extract`].
pub(crate) fn parallel_extract_keys(key: &KeySpec, records: &[Record], procs: usize) -> KeyArena {
    assert!(procs >= 1, "need at least one processor");
    if records.is_empty() {
        return KeyArena::new();
    }
    let chunk = records.len().div_ceil(procs);
    let mut keys = KeyArena::with_capacity(records.len(), 16);
    std::thread::scope(|s| {
        let handles: Vec<_> = records
            .chunks(chunk)
            .map(|recs| s.spawn(move || KeyArena::extract(key, recs)))
            .collect();
        for h in handles {
            keys.append(&h.join().expect("key worker panicked"));
        }
    });
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datagen::{DatabaseGenerator, GeneratorConfig};

    #[test]
    fn parallel_key_extraction_matches_serial() {
        let db = DatabaseGenerator::new(GeneratorConfig::new(500).seed(71)).generate();
        let key = KeySpec::last_name_key();
        let serial: Vec<String> = db.records.iter().map(|r| key.extract(r)).collect();
        for procs in [1, 2, 3, 8] {
            let parallel = parallel_extract_keys(&key, &db.records, procs);
            assert_eq!(parallel.len(), serial.len(), "procs = {procs}");
            for (i, k) in serial.iter().enumerate() {
                assert_eq!(parallel.get(i), k, "procs = {procs}, record {i}");
            }
        }
    }

    #[test]
    fn empty_input() {
        let key = KeySpec::last_name_key();
        assert!(parallel_extract_keys(&key, &[], 4).is_empty());
    }
}
