//! Runtime values and static types of the rule language.

use std::borrow::Cow;
use std::fmt;

/// Static type of an expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    /// String values (record fields, literals, `prefix(...)` results).
    Str,
    /// Numeric values (distances, thresholds, lengths).
    Num,
    /// Boolean values (predicates, comparisons).
    Bool,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Str => write!(f, "string"),
            Type::Num => write!(f, "number"),
            Type::Bool => write!(f, "bool"),
        }
    }
}

/// A runtime value. Strings borrow from the records under comparison when
/// possible (field references) and own only derived strings (`prefix`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value<'a> {
    /// String value.
    Str(Cow<'a, str>),
    /// Numeric value.
    Num(f64),
    /// Boolean value.
    Bool(bool),
}

impl<'a> Value<'a> {
    /// The value's type.
    pub fn ty(&self) -> Type {
        match self {
            Value::Str(_) => Type::Str,
            Value::Num(_) => Type::Num,
            Value::Bool(_) => Type::Bool,
        }
    }

    /// The string payload.
    ///
    /// # Panics
    ///
    /// Panics when the value is not a string (the type checker rules this
    /// out for compiled programs).
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            other => panic!("expected string, got {}", other.ty()),
        }
    }

    /// The numeric payload.
    ///
    /// # Panics
    ///
    /// Panics when the value is not a number.
    pub fn as_num(&self) -> f64 {
        match self {
            Value::Num(n) => *n,
            other => panic!("expected number, got {}", other.ty()),
        }
    }

    /// The boolean payload.
    ///
    /// # Panics
    ///
    /// Panics when the value is not a boolean.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("expected bool, got {}", other.ty()),
        }
    }

    /// A borrowed string value.
    pub fn str(s: &'a str) -> Self {
        Value::Str(Cow::Borrowed(s))
    }

    /// An owned string value.
    pub fn owned_str(s: String) -> Self {
        Value::Str(Cow::Owned(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn types_and_accessors() {
        assert_eq!(Value::str("x").ty(), Type::Str);
        assert_eq!(Value::Num(1.5).ty(), Type::Num);
        assert_eq!(Value::Bool(true).ty(), Type::Bool);
        assert_eq!(Value::owned_str("y".into()).as_str(), "y");
        assert_eq!(Value::Num(2.0).as_num(), 2.0);
        assert!(Value::Bool(true).as_bool());
    }

    #[test]
    #[should_panic(expected = "expected string")]
    fn wrong_accessor_panics() {
        Value::Num(1.0).as_str();
    }

    #[test]
    fn type_display() {
        assert_eq!(Type::Str.to_string(), "string");
        assert_eq!(Type::Num.to_string(), "number");
        assert_eq!(Type::Bool.to_string(), "bool");
    }
}
