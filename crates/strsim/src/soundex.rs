//! American Soundex phonetic coding.

/// Encodes a name as its 4-character American Soundex code
/// (letter + three digits, zero-padded).
///
/// Non-alphabetic characters are ignored; an input with no letters encodes
/// as `"0000"` so that two garbage fields never spuriously "sound alike"
/// with a real name.
///
/// ```
/// use mp_strsim::soundex;
/// assert_eq!(soundex("Robert"), "R163");
/// assert_eq!(soundex("Rupert"), "R163");
/// assert_eq!(soundex("Tymczak"), "T522");
/// ```
pub fn soundex(name: &str) -> String {
    let letters: Vec<u8> = name
        .bytes()
        .filter(u8::is_ascii_alphabetic)
        .map(|b| b.to_ascii_uppercase())
        .collect();
    let Some((&first, rest)) = letters.split_first() else {
        return "0000".to_string();
    };
    let mut code = String::with_capacity(4);
    code.push(first as char);
    let mut last_digit = digit(first);
    for &c in rest {
        let d = digit(c);
        if d == 0 {
            // H and W are transparent: they do not reset the run; vowels
            // (and Y) do.
            if c != b'H' && c != b'W' {
                last_digit = 0;
            }
        } else if d != last_digit {
            code.push((b'0' + d) as char);
            if code.len() == 4 {
                return code;
            }
            last_digit = d;
        }
    }
    while code.len() < 4 {
        code.push('0');
    }
    code
}

/// `true` when both names have identical Soundex codes and at least one
/// letter each.
pub fn soundex_eq(a: &str, b: &str) -> bool {
    let ca = soundex(a);
    ca != "0000" && ca == soundex(b)
}

fn digit(c: u8) -> u8 {
    match c {
        b'B' | b'F' | b'P' | b'V' => 1,
        b'C' | b'G' | b'J' | b'K' | b'Q' | b'S' | b'X' | b'Z' => 2,
        b'D' | b'T' => 3,
        b'L' => 4,
        b'M' | b'N' => 5,
        b'R' => 6,
        _ => 0, // vowels, H, W, Y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nara_reference_codes() {
        // Examples from the U.S. National Archives Soundex specification.
        assert_eq!(soundex("Washington"), "W252");
        assert_eq!(soundex("Lee"), "L000");
        assert_eq!(soundex("Gutierrez"), "G362");
        assert_eq!(soundex("Pfister"), "P236");
        assert_eq!(soundex("Jackson"), "J250");
        assert_eq!(soundex("Tymczak"), "T522");
        assert_eq!(soundex("Ashcraft"), "A261");
    }

    #[test]
    fn hw_transparent_vowel_resets() {
        // 'H' between same-coded letters does not split the run...
        assert_eq!(soundex("Ashcraft"), soundex("Ashcroft"));
        // ...but a vowel does: "Tymczak" keeps the 2 after the vowel A.
        assert_eq!(soundex("Tymczak"), "T522");
    }

    #[test]
    fn case_and_punctuation_insensitive() {
        assert_eq!(soundex("o'brien"), soundex("OBRIEN"));
        assert_eq!(soundex("McDonald"), soundex("MCDONALD"));
    }

    #[test]
    fn empty_and_non_alpha() {
        assert_eq!(soundex(""), "0000");
        assert_eq!(soundex("12345"), "0000");
        assert!(!soundex_eq("", ""));
        assert!(!soundex_eq("123", "456"));
    }

    #[test]
    fn sound_alike_names() {
        assert!(soundex_eq("Robert", "Rupert"));
        assert!(soundex_eq("Smith", "Smyth"));
        assert!(!soundex_eq("Smith", "Garcia"));
    }
}
