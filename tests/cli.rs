//! End-to-end tests of the `mergepurge` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mergepurge"))
}

fn work_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mp-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_dedupe_purge_pipeline() {
    let dir = work_dir();
    let db = dir.join("db.mp");
    let clean = dir.join("clean.mp");
    let groups = dir.join("groups.txt");

    let out = bin()
        .args(["generate", "--out", db.to_str().unwrap()])
        .args(["--records", "800", "--duplicates", "0.5", "--seed", "3"])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("true pairs"), "{stdout}");

    let out = bin()
        .args(["dedupe", "--input", db.to_str().unwrap(), "--eval"])
        .args(["--classes-out", groups.to_str().unwrap()])
        .output()
        .expect("run dedupe");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("accuracy:"), "{stdout}");
    assert!(groups.exists());
    let group_lines = std::fs::read_to_string(&groups).unwrap();
    assert!(group_lines.lines().count() > 10);

    let out = bin()
        .args([
            "purge",
            "--input",
            db.to_str().unwrap(),
            "--out",
            clean.to_str().unwrap(),
        ])
        .output()
        .expect("run purge");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The purged file must parse and be smaller than the input.
    let before = std::fs::read_to_string(&db).unwrap().lines().count();
    let after = std::fs::read_to_string(&clean).unwrap().lines().count();
    assert!(after < before, "purge did not shrink: {before} -> {after}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dedupe_with_custom_rules_and_explain() {
    let dir = work_dir();
    let db = dir.join("db2.mp");
    let rules = dir.join("rules.mpr");
    std::fs::write(
        &rules,
        "rule by_ssn { when not is_empty(r1.ssn) and r1.ssn == r2.ssn then match }\n\
         purge { first_name <- longest }",
    )
    .unwrap();

    assert!(bin()
        .args([
            "generate",
            "--out",
            db.to_str().unwrap(),
            "--records",
            "300",
            "--seed",
            "9"
        ])
        .status()
        .unwrap()
        .success());

    let out = bin()
        .args(["dedupe", "--input", db.to_str().unwrap()])
        .args([
            "--rules",
            rules.to_str().unwrap(),
            "--keys",
            "ssn",
            "--window",
            "4",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args([
            "explain",
            "--input",
            db.to_str().unwrap(),
            "--a",
            "0",
            "--b",
            "1",
        ])
        .args(["--rules", rules.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("no rule fires") || stdout.contains("MATCH via rule"),
        "{stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn helpful_errors() {
    // Unknown command.
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing required flag.
    let out = bin().arg("generate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out is required"));

    // Missing input file.
    let out = bin()
        .args(["dedupe", "--input", "/nonexistent/db.mp"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // Bad rules file.
    let dir = work_dir();
    let bad = dir.join("bad.mpr");
    std::fs::write(&bad, "rule r { when r1.salary == 1 then match }").unwrap();
    let db = dir.join("tiny.mp");
    assert!(bin()
        .args(["generate", "--out", db.to_str().unwrap(), "--records", "10"])
        .status()
        .unwrap()
        .success());
    let out = bin()
        .args([
            "dedupe",
            "--input",
            db.to_str().unwrap(),
            "--rules",
            bad.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown field"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("commands:"));
}
