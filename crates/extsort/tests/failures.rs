//! Failure injection for the disk-resident engines: corrupted inputs and
//! impossible environments must surface as errors, never panics or silent
//! wrong answers.

use merge_purge::KeySpec;
use mp_extsort::{ExternalClustering, ExternalConfig, ExternalSnm};
use mp_rules::NativeEmployeeTheory;
use std::path::{Path, PathBuf};

fn work_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mp-xfail-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn write_valid_db(dir: &Path, n: usize) -> PathBuf {
    let db =
        mp_datagen::DatabaseGenerator::new(mp_datagen::GeneratorConfig::new(n).seed(42)).generate();
    let path = dir.join("db.mp");
    mp_record::io::write_records(std::fs::File::create(&path).unwrap(), &db.records).unwrap();
    path
}

#[test]
fn missing_input_file_is_an_error() {
    let dir = work_dir("missing");
    let theory = NativeEmployeeTheory::new();
    let snm = ExternalSnm::new(KeySpec::last_name_key(), 5, ExternalConfig::default());
    let err = snm
        .run(Path::new("/definitely/not/here.mp"), &dir, &theory)
        .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_line_reports_invalid_data_with_position() {
    let dir = work_dir("corrupt");
    let input = write_valid_db(&dir, 50);
    // Append a malformed line.
    let mut content = std::fs::read_to_string(&input).unwrap();
    content.push_str("only|three|columns\n");
    std::fs::write(&input, content).unwrap();

    let theory = NativeEmployeeTheory::new();
    let snm = ExternalSnm::new(KeySpec::last_name_key(), 5, ExternalConfig::default());
    let err = snm.run(&input, &dir, &theory).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("columns"), "{err}");

    let cl = ExternalClustering::new(KeySpec::last_name_key(), 8, 5, ExternalConfig::default());
    let err = cl.run(&input, &dir, &theory).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corruption_beyond_first_chunk_still_detected() {
    // The streaming reader must propagate errors found mid-sort, after
    // some runs have already been written.
    let dir = work_dir("midstream");
    let input = write_valid_db(&dir, 200);
    let mut content = std::fs::read_to_string(&input).unwrap();
    content.push_str("bad line\n");
    std::fs::write(&input, content).unwrap();

    let theory = NativeEmployeeTheory::new();
    let snm = ExternalSnm::new(
        KeySpec::last_name_key(),
        5,
        ExternalConfig {
            memory_records: 32,
            fan_in: 2,
            ..ExternalConfig::default()
        },
    );
    assert!(snm.run(&input, &dir, &theory).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_file_yields_empty_result_not_error() {
    let dir = work_dir("empty");
    let input = dir.join("empty.mp");
    std::fs::write(&input, "").unwrap();
    let theory = NativeEmployeeTheory::new();
    let snm = ExternalSnm::new(KeySpec::last_name_key(), 5, ExternalConfig::default());
    let outcome = snm.run(&input, &dir, &theory).unwrap();
    assert_eq!(outcome.records, 0);
    assert!(outcome.pairs.is_empty());
    let cl = ExternalClustering::new(KeySpec::last_name_key(), 4, 5, ExternalConfig::default());
    let outcome = cl.run(&input, &dir, &theory).unwrap();
    assert_eq!(outcome.records, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn work_dir_is_created_if_absent() {
    let dir = work_dir("autodir");
    let input = write_valid_db(&dir, 30);
    let nested = dir.join("deeply/nested/work");
    let theory = NativeEmployeeTheory::new();
    let snm = ExternalSnm::new(KeySpec::last_name_key(), 4, ExternalConfig::default());
    let outcome = snm.run(&input, &nested, &theory).unwrap();
    // 30 originals plus however many duplicates the default config added.
    assert!(outcome.records >= 30);
    assert!(nested.exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn temporaries_are_cleaned_up_after_success() {
    let dir = work_dir("cleanup");
    let input = write_valid_db(&dir, 120);
    let work = dir.join("scratch");
    let theory = NativeEmployeeTheory::new();
    let snm = ExternalSnm::new(
        KeySpec::last_name_key(),
        4,
        ExternalConfig {
            memory_records: 16,
            fan_in: 2,
            ..ExternalConfig::default()
        },
    );
    let _ = snm.run(&input, &work, &theory).unwrap();
    let leftovers: Vec<_> = std::fs::read_dir(&work)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.file_name())
        .collect();
    assert!(
        leftovers.is_empty(),
        "temp files left behind: {leftovers:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
