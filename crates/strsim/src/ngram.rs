//! Q-gram (n-gram) overlap similarity, robust to block transpositions such
//! as swapped name parts ("MARIA LUISA" vs "LUISA MARIA").

/// Dice-coefficient similarity over character n-grams with boundary padding.
///
/// Each string is padded with `n - 1` sentinel characters on both sides so
/// that leading/trailing characters contribute full n-grams. Returns a value
/// in `[0, 1]`; two empty strings are perfectly similar, an empty and a
/// non-empty string score `0`.
///
/// ```
/// use mp_strsim::ngram_similarity;
/// assert_eq!(ngram_similarity("NIGHT", "NIGHT", 2), 1.0);
/// assert!(ngram_similarity("NIGHT", "NACHT", 2) > 0.3);
/// assert_eq!(ngram_similarity("ABC", "XYZ", 2), 0.0);
/// ```
pub fn ngram_similarity(a: &str, b: &str, n: usize) -> f64 {
    assert!(n >= 1, "n-gram size must be at least 1");
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let ga = grams(a, n);
    let gb = grams(b, n);
    let mut gb_remaining = gb.clone();
    let mut shared = 0usize;
    for g in &ga {
        if let Some(pos) = gb_remaining.iter().position(|h| h == g) {
            gb_remaining.swap_remove(pos);
            shared += 1;
        }
    }
    2.0 * shared as f64 / (ga.len() + gb.len()) as f64
}

/// [`ngram_similarity`] with `n = 3`, the usual choice for city/street names.
pub fn trigram_similarity(a: &str, b: &str) -> f64 {
    ngram_similarity(a, b, 3)
}

fn grams(s: &str, n: usize) -> Vec<Vec<char>> {
    let pad = n - 1;
    let mut chars: Vec<char> = Vec::with_capacity(s.chars().count() + 2 * pad);
    chars.extend(std::iter::repeat_n('\u{1}', pad));
    chars.extend(s.chars());
    chars.extend(std::iter::repeat_n('\u{2}', pad));
    chars.windows(n).map(<[char]>::to_vec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_score_one() {
        assert_eq!(ngram_similarity("HELLO", "HELLO", 2), 1.0);
        assert_eq!(trigram_similarity("WORLD", "WORLD"), 1.0);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(ngram_similarity("", "", 2), 1.0);
        assert_eq!(ngram_similarity("", "A", 2), 0.0);
        assert_eq!(ngram_similarity("A", "", 2), 0.0);
    }

    #[test]
    fn symmetric() {
        for (a, b) in [("NIGHT", "NACHT"), ("MAIN ST", "MAIN STREET"), ("A", "AB")] {
            let d = (ngram_similarity(a, b, 2) - ngram_similarity(b, a, 2)).abs();
            assert!(d < 1e-12);
        }
    }

    #[test]
    fn swapped_tokens_keep_high_overlap() {
        // Block transpositions defeat edit distance but not q-grams.
        let s = ngram_similarity("MARIA LUISA", "LUISA MARIA", 2);
        assert!(s > 0.6, "got {s}");
    }

    #[test]
    fn multiset_semantics_not_set() {
        // "AAA" vs "AA": padded bigrams are {^A, AA, AA, A$} vs {^A, AA, A$};
        // multiset counting shares 3 of them -> 2*3/7.
        let s = ngram_similarity("AAA", "AA", 2);
        assert!((s - 6.0 / 7.0).abs() < 1e-12, "got {s}");
    }

    #[test]
    fn unigram_mode_works() {
        assert_eq!(ngram_similarity("AB", "BA", 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_gram_panics() {
        ngram_similarity("A", "B", 0);
    }
}
