//! Reusable scratch space making every distance kernel allocation-free.

use crate::damerau::damerau_impl;
use crate::jaro::jaro_impl;
use crate::keyboard::keyboard_substitution_cost;
use crate::lcs::lcs_impl;
use crate::levenshtein::{bounded_impl, distance_impl, normalize};
use crate::timing::{Kernel, KernelTimer};

/// Strips the common prefix and suffix of two slices. Edit distance is
/// invariant under this (those positions never contribute an edit), and the
/// conditioned records the hot loop compares are near-duplicates, so the
/// surviving DP problem is usually tiny.
fn trim_common<'s>(mut a: &'s [u8], mut b: &'s [u8]) -> (&'s [u8], &'s [u8]) {
    let prefix = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
    a = &a[prefix..];
    b = &b[prefix..];
    let suffix = a
        .iter()
        .rev()
        .zip(b.iter().rev())
        .take_while(|(x, y)| x == y)
        .count();
    (&a[..a.len() - suffix], &b[..b.len() - suffix])
}

/// Reusable work buffers for the whole distance-kernel family.
///
/// Every free function in this crate decodes its arguments into fresh
/// `Vec<char>`s and allocates DP rows per call. Inside a window scan that
/// evaluates the equational theory millions of times, those allocations
/// dominate the constant factor the paper calls `c_wscan`. A
/// `ScratchBuffers` owns one copy of every buffer the kernels need; each
/// method clears and reuses them, so after warm-up no call allocates.
///
/// Keep one instance per worker thread (the rule engine keeps one per OS
/// thread in a thread-local) — the buffers are cheap to create but are only
/// profitable when reused.
///
/// Results are bit-identical to the free functions:
///
/// ```
/// use mp_strsim::{jaro_winkler, levenshtein, ScratchBuffers};
///
/// let mut scratch = ScratchBuffers::new();
/// assert_eq!(scratch.levenshtein("KITTEN", "SITTING"), 3);
/// assert_eq!(scratch.levenshtein("KITTEN", "SITTING"), levenshtein("KITTEN", "SITTING"));
/// assert_eq!(scratch.jaro_winkler("MARTHA", "MARHTA"), jaro_winkler("MARTHA", "MARHTA"));
/// ```
#[derive(Debug, Default)]
pub struct ScratchBuffers {
    a_chars: Vec<char>,
    b_chars: Vec<char>,
    row_a: Vec<usize>,
    row_b: Vec<usize>,
    row_c: Vec<usize>,
    frow_a: Vec<f64>,
    frow_b: Vec<f64>,
    b_used: Vec<bool>,
    match_a: Vec<char>,
    match_b: Vec<char>,
}

impl ScratchBuffers {
    /// Creates empty buffers; they grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decodes `a` and `b` into the owned char buffers.
    fn decode(&mut self, a: &str, b: &str) {
        self.a_chars.clear();
        self.a_chars.extend(a.chars());
        self.b_chars.clear();
        self.b_chars.extend(b.chars());
    }

    /// Allocation-free [`crate::levenshtein`].
    pub fn levenshtein(&mut self, a: &str, b: &str) -> usize {
        let _t = KernelTimer::start(Kernel::Levenshtein);
        if a.is_ascii() && b.is_ascii() {
            let (a, b) = trim_common(a.as_bytes(), b.as_bytes());
            return distance_impl(a, b, &mut self.row_a);
        }
        self.decode(a, b);
        distance_impl(&self.a_chars, &self.b_chars, &mut self.row_a)
    }

    /// Allocation-free [`crate::levenshtein_bounded`].
    pub fn levenshtein_bounded(&mut self, a: &str, b: &str, max: usize) -> Option<usize> {
        let _t = KernelTimer::start(Kernel::LevenshteinBounded);
        if a.is_ascii() && b.is_ascii() {
            let (a, b) = trim_common(a.as_bytes(), b.as_bytes());
            return bounded_impl(a, b, max, &mut self.row_a);
        }
        self.decode(a, b);
        bounded_impl(&self.a_chars, &self.b_chars, max, &mut self.row_a)
    }

    /// Allocation-free [`crate::normalized_levenshtein`].
    pub fn normalized_levenshtein(&mut self, a: &str, b: &str) -> f64 {
        let _t = KernelTimer::start(Kernel::NormalizedLevenshtein);
        if a.is_ascii() && b.is_ascii() {
            // For ASCII the byte count is the char count, so the trimmed
            // distance normalizes against the original byte lengths.
            let (ta, tb) = trim_common(a.as_bytes(), b.as_bytes());
            let d = distance_impl(ta, tb, &mut self.row_a);
            return normalize(d, a.len(), b.len());
        }
        self.decode(a, b);
        let d = distance_impl(&self.a_chars, &self.b_chars, &mut self.row_a);
        normalize(d, self.a_chars.len(), self.b_chars.len())
    }

    /// Allocation-free [`crate::differ_slightly`].
    pub fn differ_slightly(&mut self, a: &str, b: &str, threshold: f64) -> bool {
        self.normalized_levenshtein(a, b) >= 1.0 - threshold
    }

    /// Allocation-free [`crate::damerau_levenshtein`].
    pub fn damerau_levenshtein(&mut self, a: &str, b: &str) -> usize {
        let _t = KernelTimer::start(Kernel::DamerauLevenshtein);
        self.decode(a, b);
        damerau_impl(
            &self.a_chars,
            &self.b_chars,
            &mut self.row_a,
            &mut self.row_b,
            &mut self.row_c,
        )
    }

    /// Allocation-free [`crate::jaro`].
    pub fn jaro(&mut self, a: &str, b: &str) -> f64 {
        let _t = KernelTimer::start(Kernel::Jaro);
        self.decode(a, b);
        jaro_impl(
            &self.a_chars,
            &self.b_chars,
            &mut self.b_used,
            &mut self.match_a,
            &mut self.match_b,
        )
    }

    /// Allocation-free [`crate::jaro_winkler`].
    pub fn jaro_winkler(&mut self, a: &str, b: &str) -> f64 {
        let _t = KernelTimer::start(Kernel::JaroWinkler);
        let j = self.jaro(a, b);
        let prefix = self
            .a_chars
            .iter()
            .zip(self.b_chars.iter())
            .take(4)
            .take_while(|(x, y)| x == y)
            .count();
        j + prefix as f64 * 0.1 * (1.0 - j)
    }

    /// Allocation-free [`crate::lcs_length`].
    pub fn lcs_length(&mut self, a: &str, b: &str) -> usize {
        let _t = KernelTimer::start(Kernel::Lcs);
        self.decode(a, b);
        lcs_impl(
            &self.a_chars,
            &self.b_chars,
            &mut self.row_a,
            &mut self.row_b,
        )
    }

    /// Allocation-free [`crate::lcs_similarity`].
    pub fn lcs_similarity(&mut self, a: &str, b: &str) -> f64 {
        let l = self.lcs_length(a, b);
        let max = self.a_chars.len().max(self.b_chars.len());
        if max == 0 {
            1.0
        } else {
            l as f64 / max as f64
        }
    }

    /// Allocation-free [`crate::keyboard_distance`].
    pub fn keyboard_distance(&mut self, a: &str, b: &str) -> f64 {
        let _t = KernelTimer::start(Kernel::Keyboard);
        self.decode(a, b);
        if self.a_chars.is_empty() {
            return self.b_chars.len() as f64;
        }
        if self.b_chars.is_empty() {
            return self.a_chars.len() as f64;
        }
        let w = self.b_chars.len() + 1;
        self.frow_a.clear();
        self.frow_a.extend((0..w).map(|j| j as f64));
        self.frow_b.resize(w, 0.0);
        let ScratchBuffers {
            a_chars,
            b_chars,
            frow_a: prev,
            frow_b: cur,
            ..
        } = self;
        for (i, &ca) in a_chars.iter().enumerate() {
            cur[0] = (i + 1) as f64;
            for (j, &cb) in b_chars.iter().enumerate() {
                let sub = prev[j] + keyboard_substitution_cost(ca, cb);
                cur[j + 1] = sub.min(prev[j + 1] + 1.0).min(cur[j] + 1.0);
            }
            std::mem::swap(prev, cur);
        }
        prev[b_chars.len()]
    }

    /// Allocation-free [`crate::ngram_similarity`].
    ///
    /// Counts the shared q-gram multiset with a used-mark sweep over the
    /// padded windows instead of materializing gram vectors; greedy
    /// exact-equality matching yields the same multiset-intersection size as
    /// the free function's `swap_remove` loop, so results are bit-identical.
    pub fn ngram_similarity(&mut self, a: &str, b: &str, n: usize) -> f64 {
        let _t = KernelTimer::start(Kernel::Ngram);
        assert!(n >= 1, "n-gram size must be at least 1");
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let pad = n - 1;
        self.a_chars.clear();
        self.a_chars.extend(std::iter::repeat_n('\u{1}', pad));
        self.a_chars.extend(a.chars());
        self.a_chars.extend(std::iter::repeat_n('\u{2}', pad));
        self.b_chars.clear();
        self.b_chars.extend(std::iter::repeat_n('\u{1}', pad));
        self.b_chars.extend(b.chars());
        self.b_chars.extend(std::iter::repeat_n('\u{2}', pad));
        let na = self.a_chars.len() + 1 - n;
        let nb = self.b_chars.len() + 1 - n;
        self.b_used.clear();
        self.b_used.resize(nb, false);
        let ScratchBuffers {
            a_chars,
            b_chars,
            b_used,
            ..
        } = self;
        let mut shared = 0usize;
        for i in 0..na {
            let wa = &a_chars[i..i + n];
            for (j, used) in b_used.iter_mut().enumerate() {
                if !*used && &b_chars[j..j + n] == wa {
                    *used = true;
                    shared += 1;
                    break;
                }
            }
        }
        2.0 * shared as f64 / (na + nb) as f64
    }

    /// Allocation-free [`crate::trigram_similarity`].
    pub fn trigram_similarity(&mut self, a: &str, b: &str) -> f64 {
        self.ngram_similarity(a, b, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        damerau_levenshtein, differ_slightly, jaro, jaro_winkler, keyboard_distance, lcs_length,
        lcs_similarity, levenshtein, levenshtein_bounded, ngram_similarity, normalized_levenshtein,
        trigram_similarity,
    };

    /// Name pairs spanning the interesting shapes: equal, empty, unicode,
    /// transposed, disjoint, and length-skewed.
    const PAIRS: &[(&str, &str)] = &[
        ("KITTEN", "SITTING"),
        ("MARTHA", "MARHTA"),
        ("DIXON", "DICKSONX"),
        ("", ""),
        ("", "ABC"),
        ("ABC", ""),
        ("SAME", "SAME"),
        ("AB", "BA"),
        ("café", "cafe"),
        ("MAIN STREET", "MN ST"),
        ("HERNANDEZ", "HERNANDES"),
        ("A", "ZZZZZZZZZZ"),
    ];

    #[test]
    fn scratch_matches_free_functions_across_reuse() {
        // One scratch reused across every pair — stale state from a previous
        // call must never leak into the next result.
        let mut s = ScratchBuffers::new();
        for &(a, b) in PAIRS {
            assert_eq!(s.levenshtein(a, b), levenshtein(a, b), "{a:?} {b:?}");
            assert_eq!(
                s.damerau_levenshtein(a, b),
                damerau_levenshtein(a, b),
                "{a:?} {b:?}"
            );
            assert_eq!(s.jaro(a, b).to_bits(), jaro(a, b).to_bits(), "{a:?} {b:?}");
            assert_eq!(
                s.jaro_winkler(a, b).to_bits(),
                jaro_winkler(a, b).to_bits(),
                "{a:?} {b:?}"
            );
            assert_eq!(s.lcs_length(a, b), lcs_length(a, b), "{a:?} {b:?}");
            assert_eq!(
                s.lcs_similarity(a, b).to_bits(),
                lcs_similarity(a, b).to_bits(),
                "{a:?} {b:?}"
            );
            assert_eq!(
                s.normalized_levenshtein(a, b).to_bits(),
                normalized_levenshtein(a, b).to_bits(),
                "{a:?} {b:?}"
            );
            for max in 0..4 {
                assert_eq!(
                    s.levenshtein_bounded(a, b, max),
                    levenshtein_bounded(a, b, max),
                    "{a:?} {b:?} max={max}"
                );
            }
            assert_eq!(
                s.differ_slightly(a, b, 0.25),
                differ_slightly(a, b, 0.25),
                "{a:?} {b:?}"
            );
            assert_eq!(
                s.keyboard_distance(a, b).to_bits(),
                keyboard_distance(a, b).to_bits(),
                "{a:?} {b:?}"
            );
            for n in 1..4 {
                assert_eq!(
                    s.ngram_similarity(a, b, n).to_bits(),
                    ngram_similarity(a, b, n).to_bits(),
                    "{a:?} {b:?} n={n}"
                );
            }
            assert_eq!(
                s.trigram_similarity(a, b).to_bits(),
                trigram_similarity(a, b).to_bits(),
                "{a:?} {b:?}"
            );
        }
    }

    #[test]
    fn shrinking_inputs_do_not_reuse_stale_tail() {
        let mut s = ScratchBuffers::new();
        // Long pair first grows every buffer...
        assert_eq!(s.levenshtein("ABCDEFGHIJ", "ABCDEFGHIJKLM"), 3);
        assert_eq!(s.damerau_levenshtein("ABCDEFGHIJ", "BACDEFGHIJ"), 1);
        // ...then short pairs must still be exact.
        assert_eq!(s.levenshtein("A", "B"), 1);
        assert_eq!(s.damerau_levenshtein("AB", "BA"), 1);
        assert_eq!(s.lcs_length("A", "A"), 1);
        assert_eq!(s.jaro("", ""), 1.0);
    }
}
