#![warn(missing_docs)]

//! Record model and data conditioning for the merge/purge pipeline.
//!
//! The paper's idealized "employee" database (§2.1): each record carries a
//! social security number, a name (first, middle initial, last), and an
//! address (street, apartment, city, state, zip). Records arrive from many
//! sources, typically inconsistent and often incorrect, so before any
//! matching runs the pipeline *conditions* the data (§3.2):
//!
//! * [`normalize`] — canonical upper-case form, collapsed whitespace,
//!   stripped salutations/suffixes, expanded street abbreviations;
//! * [`nickname`] — a name-equivalence table assigning a common form to
//!   known nicknames (Joseph/Giuseppe, Bob/Robert, ...);
//! * [`spell`] — a corpus-based spelling corrector in the style of
//!   Bickel (CACM 1987) applied to the city field;
//! * [`io`] — a simple pipe-separated flat-file format for persisting
//!   generated databases.
//!
//! [`Record`] is deliberately a plain owned struct: the sorted-neighborhood
//! method sorts multi-hundred-megabyte lists of them, and flat ownership
//! keeps sort keys and comparisons cache-friendly.

pub mod field;
pub mod io;
pub mod nickname;
pub mod normalize;
pub mod record;
pub mod spell;

pub use field::Field;
pub use io::RecordStream;
pub use nickname::NicknameTable;
pub use record::{EntityId, Record, RecordId};
pub use spell::SpellCorrector;
