#![warn(missing_docs)]

//! Controlled-noise database generator with exact ground truth.
//!
//! §3.1: "All databases used to test the sorted neighborhood method and the
//! clustering method were generated automatically by a database generator
//! that allows us to perform controlled studies and to establish the
//! accuracy of the solution method." The generator's parameters mirror the
//! paper's: database size, the percentage of records selected for
//! duplication, the maximum number of duplicates per selected record, and
//! the amount and kind of error introduced into duplicates — typographical
//! noise following the error-class frequencies of Kukich's survey, plus
//! gross field corruptions (transposed SSN digits, replaced names, moved
//! addresses, missing fields, inserted salutations, nickname swaps).
//!
//! Every record carries a hidden [`mp_record::EntityId`]; [`GroundTruth`]
//! exposes the true duplicate classes so accuracy can be measured exactly.
//!
//! # Example
//!
//! ```
//! use mp_datagen::{DatabaseGenerator, GeneratorConfig};
//!
//! let config = GeneratorConfig::new(1_000)
//!     .duplicate_fraction(0.3)
//!     .max_duplicates_per_record(5)
//!     .seed(42);
//! let db = DatabaseGenerator::new(config).generate();
//! assert!(db.records.len() >= 1_000);
//! assert_eq!(db.truth.total_records(), db.records.len());
//! assert!(db.truth.true_pair_count() > 0);
//! ```

pub mod config;
pub mod corrupt;
pub mod generator;
pub mod geo;
pub mod names;
pub mod truth;
pub mod typo;

pub use config::{ErrorProfile, GeneratorConfig};
pub use generator::{DatabaseGenerator, GeneratedDatabase};
pub use truth::GroundTruth;
