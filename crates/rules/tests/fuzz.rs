//! Robustness properties of the rule-language front end: the lexer,
//! parser, and type checker must reject garbage with an error — never
//! panic — and accepted programs must evaluate without panicking.

use mp_rules::{EquationalTheory, RuleProgram};
use proptest::prelude::*;

proptest! {
    /// Arbitrary byte soup never panics the compiler pipeline.
    #[test]
    fn compile_never_panics_on_arbitrary_input(src in "\\PC*") {
        let _ = RuleProgram::compile(&src);
    }

    /// Arbitrary *token-shaped* soup never panics either (denser coverage
    /// of parser states than raw bytes).
    #[test]
    fn compile_never_panics_on_token_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("rule".to_string()),
                Just("when".to_string()),
                Just("then".to_string()),
                Just("match".to_string()),
                Just("purge".to_string()),
                Just("and".to_string()),
                Just("or".to_string()),
                Just("not".to_string()),
                Just("r1".to_string()),
                Just("r2".to_string()),
                Just(".".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just(",".to_string()),
                Just("==".to_string()),
                Just("<-".to_string()),
                Just(">=".to_string()),
                Just("last_name".to_string()),
                Just("is_empty".to_string()),
                Just("longest".to_string()),
                Just("0.5".to_string()),
                Just("\"str\"".to_string()),
                Just("true".to_string()),
            ],
            0..40,
        )
    ) {
        let src = toks.join(" ");
        let _ = RuleProgram::compile(&src);
    }

    /// Programs built from a tiny well-formed template always compile and
    /// evaluate on arbitrary record contents without panicking.
    #[test]
    fn wellformed_programs_evaluate_safely(
        threshold in 0.0f64..1.0,
        field in prop_oneof![
            Just("last_name"), Just("first_name"), Just("city"), Just("ssn")
        ],
        a in "\\PC{0,24}",
        b in "\\PC{0,24}",
    ) {
        let src = format!(
            "rule t {{ when differ_slightly(r1.{field}, r2.{field}, {threshold}) \
             or soundex_eq(r1.{field}, r2.{field}) then match }}"
        );
        let program = RuleProgram::compile(&src).expect("template compiles");
        let mut r1 = mp_record::Record::empty(mp_record::RecordId(0));
        let mut r2 = mp_record::Record::empty(mp_record::RecordId(1));
        *r1.field_mut(field.parse().unwrap()) = a;
        *r2.field_mut(field.parse().unwrap()) = b;
        // Must not panic, and must be symmetric for symmetric predicates.
        prop_assert_eq!(program.matches(&r1, &r2), program.matches(&r2, &r1));
    }
}
