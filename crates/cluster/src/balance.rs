//! Longest-processing-time-first (LPT) load balancing.
//!
//! §4.2: "It then redistributes the clusters among processors using a
//! *longest processing time first* strategy. That is, move the largest job
//! in an overloaded processor to the most underloaded processor, and repeat
//! until a 'well' balanced load is obtained" — Graham's classic rule, with
//! a 4/3 − 1/(3P) makespan guarantee.

/// Result of an LPT assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// `job_to_proc[j]` = processor assigned to job `j`.
    pub job_to_proc: Vec<usize>,
    /// Total load per processor.
    pub loads: Vec<u64>,
}

impl Assignment {
    /// Largest processor load (the parallel makespan).
    pub fn makespan(&self) -> u64 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Smallest processor load.
    pub fn min_load(&self) -> u64 {
        self.loads.iter().copied().min().unwrap_or(0)
    }

    /// Jobs assigned to processor `p`, in descending size order.
    pub fn jobs_of(&self, p: usize) -> Vec<usize> {
        self.job_to_proc
            .iter()
            .enumerate()
            .filter_map(|(j, &q)| (q == p).then_some(j))
            .collect()
    }
}

/// Assigns `jobs` (sizes, e.g. cluster record counts) to `procs` processors
/// by Graham's LPT rule: sort descending, give each job to the currently
/// least-loaded processor.
///
/// # Panics
///
/// Panics when `procs` is zero.
///
/// ```
/// use mp_cluster::lpt_assign;
/// let a = lpt_assign(&[7, 5, 4, 3, 1], 2);
/// assert_eq!(a.makespan(), 10); // {7,3} vs {5,4,1}
/// ```
pub fn lpt_assign(jobs: &[u64], procs: usize) -> Assignment {
    assert!(procs >= 1, "need at least one processor");
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&j| std::cmp::Reverse(jobs[j]));
    let mut loads = vec![0u64; procs];
    let mut job_to_proc = vec![0usize; jobs.len()];
    // A binary heap keyed on (load, proc) would be O(n log P); with the few
    // hundred clusters the paper uses (100 per processor), a linear scan of
    // the load vector is simpler and just as fast in practice.
    for j in order {
        let p = loads
            .iter()
            .enumerate()
            .min_by_key(|&(i, &l)| (l, i))
            .map(|(i, _)| i)
            .expect("procs >= 1");
        loads[p] += jobs[j];
        job_to_proc[j] = p;
    }
    Assignment { job_to_proc, loads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn textbook_example() {
        // Jobs 7,5,4,3,1 on 2 procs: LPT gives makespan 10 (optimal).
        let a = lpt_assign(&[7, 5, 4, 3, 1], 2);
        assert_eq!(a.makespan(), 10);
        assert_eq!(a.loads.iter().sum::<u64>(), 20);
    }

    #[test]
    fn empty_jobs_and_excess_processors() {
        let a = lpt_assign(&[], 4);
        assert_eq!(a.makespan(), 0);
        assert_eq!(a.loads, vec![0; 4]);
        let b = lpt_assign(&[5, 3], 8);
        assert_eq!(b.makespan(), 5);
        assert_eq!(b.min_load(), 0);
    }

    #[test]
    fn single_processor_gets_everything() {
        let a = lpt_assign(&[4, 4, 4], 1);
        assert_eq!(a.makespan(), 12);
        assert_eq!(a.job_to_proc, vec![0, 0, 0]);
        assert_eq!(a.jobs_of(0), vec![0, 1, 2]);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let a = lpt_assign(&[2, 2, 2, 2], 2);
        let b = lpt_assign(&[2, 2, 2, 2], 2);
        assert_eq!(a, b);
        assert_eq!(a.loads, vec![4, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        lpt_assign(&[1], 0);
    }

    proptest! {
        #[test]
        fn loads_consistent_and_graham_bound(
            jobs in proptest::collection::vec(0u64..1_000, 0..60),
            procs in 1usize..8,
        ) {
            let a = lpt_assign(&jobs, procs);
            // Per-processor loads must equal sum of assigned jobs.
            let mut check = vec![0u64; procs];
            for (j, &p) in a.job_to_proc.iter().enumerate() {
                prop_assert!(p < procs);
                check[p] += jobs[j];
            }
            prop_assert_eq!(&check, &a.loads);
            // Greedy list-scheduling bound (valid without knowing OPT):
            // makespan <= total/P + (1 - 1/P) * max_job.
            let total: u64 = jobs.iter().sum();
            let max_job = jobs.iter().copied().max().unwrap_or(0);
            let p = procs as f64;
            let bound = total as f64 / p + (1.0 - 1.0 / p) * max_job as f64 + 1e-9;
            prop_assert!(
                a.makespan() as f64 <= bound,
                "makespan {} exceeds list-scheduling bound {bound}",
                a.makespan()
            );
        }
    }
}
