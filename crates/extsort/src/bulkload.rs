//! Spill-aware bulk load: cold-start a durable merge/purge state from a
//! flat record file without ever holding the full database in memory.
//!
//! The incremental engine's `add_batch` is the right tool for monthly
//! deltas, but cold-loading an entire 10M-record database through it
//! means an in-memory sort of every pass's key list at once. The bulk
//! loader replaces that with the external pipeline: per pass, an
//! [`ExternalSorter`] run formation + merge (bounded by
//! `memory_records`), then a *streaming* window scan over the sorted run
//! holding only the window's worth of records.
//!
//! # Fingerprint equivalence
//!
//! The loader is constructed to be **fingerprint-identical** to feeding
//! the same file to `IncrementalMergePurge::add_batch` as one batch
//! (condition off, exactly like daemon ingest): same pairs, same
//! comparison count, same per-pass `pairs_found`/`pairs_first_found`
//! attribution, same closure classes, same per-pass key order. The
//! ingredients, mirroring the run-merge invariants in the crate docs:
//!
//! * record ids are positional (`RecordStream` assigns them), so the
//!   external sort's (key, id) order equals the engine's stable
//!   key sort;
//! * the streaming scan visits window positions in ascending order and
//!   each window farthest-predecessor-first, the exact comparison
//!   sequence of the engine's `scan_band` over positions `1..n`;
//! * passes fold into the global pair set and closure sequentially, in
//!   configuration order, as `add_batch` does.
//!
//! A bulk-loaded state therefore checkpoints to a snapshot that a
//! restarted daemon cannot distinguish from one built by ingesting the
//! whole file as a single batch — `batches_applied` is 1 by definition.
//!
//! What stays in memory: per-pass keys and order (a few dozen bytes per
//! record), the pair set, and the union-find — never the records
//! themselves. Peak record residency is `memory_records` during run
//! formation and `window` during the scan.

use crate::runfile::RunReader;
use crate::sorter::ExternalSorter;
use crate::{ExternalConfig, IoStats};
use merge_purge::KeySpec;
use mp_closure::{PairSet, UnionFind};
use mp_metrics::{span, span_labeled, Counter, NoopObserver, Phase, PipelineObserver};
use mp_record::Record;
use mp_rules::EquationalTheory;
use std::collections::VecDeque;
use std::io;
use std::path::Path;
use std::time::Instant;

/// One pass's reconstructed state, field-for-field what the durable
/// snapshot stores per pass (`keys` indexed by record id, `order` the
/// sorted permutation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BulkPass {
    /// The pass key's name (`KeySpec::name`).
    pub key_name: String,
    /// Window size.
    pub window: u32,
    /// Matching comparisons this pass produced (counts re-finds).
    pub pairs_found: u64,
    /// Matching comparisons that were new to the global pair set.
    pub pairs_first_found: u64,
    /// Extracted key per record, indexed by record id.
    pub keys: Vec<String>,
    /// Record ids in (key, id) order.
    pub order: Vec<u32>,
}

/// Aggregate accounting for one bulk load.
#[derive(Debug, Clone, Copy, Default)]
pub struct BulkLoadStats {
    /// Records loaded.
    pub records: u64,
    /// Pair comparisons across all passes.
    pub comparisons: u64,
    /// Distinct matching pairs found.
    pub pairs: u64,
    /// Sort + scan I/O summed over all passes (each pass sweeps the
    /// input independently, exactly as §3.5 charges the multi-pass
    /// method).
    pub io: IoStats,
}

/// Everything a bulk load reconstructs: the same state
/// `IncrementalMergePurge::add_batch` would have built from the file as
/// one batch, minus the in-memory record list (stream the records back
/// from the input file when materializing a snapshot).
#[derive(Debug)]
pub struct BulkOutcome {
    /// Number of records loaded (ids are `0..records`).
    pub records: usize,
    /// Per-pass state in configuration order.
    pub passes: Vec<BulkPass>,
    /// Global deduplicated pair set.
    pub pairs: PairSet,
    /// Transitive closure over the pairs.
    pub closure: UnionFind,
    /// Total pair comparisons.
    pub comparisons: u64,
    /// Aggregate accounting.
    pub stats: BulkLoadStats,
}

/// Multi-pass bulk loader over a flat record file.
///
/// ```
/// use merge_purge::KeySpec;
/// use mp_extsort::{BulkLoader, ExternalConfig};
/// use mp_record::io as rio;
/// use mp_rules::NativeEmployeeTheory;
///
/// let dir = std::env::temp_dir().join(format!("mp-bulk-doc-{}", std::process::id()));
/// std::fs::create_dir_all(&dir).unwrap();
/// let db = mp_datagen::DatabaseGenerator::new(
///     mp_datagen::GeneratorConfig::new(300).duplicate_fraction(0.5).seed(11),
/// )
/// .generate();
/// let n = db.records.len(); // base records plus generated duplicates
/// let input = dir.join("db.mp");
/// rio::write_records(std::fs::File::create(&input).unwrap(), &db.records).unwrap();
///
/// let theory = NativeEmployeeTheory::new();
/// let outcome = BulkLoader::new(ExternalConfig {
///     memory_records: 64, // force spilling even at 300 records
///     ..ExternalConfig::default()
/// })
/// .pass(KeySpec::last_name_key(), 10)
/// .pass(KeySpec::first_name_key(), 10)
/// .load(&input, &dir, &theory)
/// .unwrap();
/// assert_eq!(outcome.records, n);
/// assert!(!outcome.pairs.is_empty());
/// std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug)]
pub struct BulkLoader {
    passes: Vec<(KeySpec, usize)>,
    config: ExternalConfig,
}

impl BulkLoader {
    /// A loader with no passes yet; add at least one before loading.
    pub fn new(config: ExternalConfig) -> Self {
        BulkLoader {
            passes: Vec::new(),
            config,
        }
    }

    /// Adds a sorted-neighborhood pass.
    ///
    /// # Panics
    ///
    /// Panics when `window < 2`.
    #[must_use]
    pub fn pass(mut self, key: KeySpec, window: usize) -> Self {
        assert!(window >= 2, "window must hold at least two records");
        self.passes.push((key, window));
        self
    }

    /// Bulk-loads the flat record file at `input`, spilling under
    /// `work_dir`.
    ///
    /// # Errors
    ///
    /// I/O failures reading the input or managing spill files.
    ///
    /// # Panics
    ///
    /// Panics when no passes are configured.
    pub fn load(
        &self,
        input: &Path,
        work_dir: &Path,
        theory: &dyn EquationalTheory,
    ) -> io::Result<BulkOutcome> {
        self.load_observed(input, work_dir, theory, &NoopObserver)
    }

    /// Like [`BulkLoader::load`], reporting per-pass sort statistics (see
    /// [`ExternalSorter::sort_observed`]) plus the scan counters
    /// (`Comparisons`, `RuleInvocations`, `Matches`, `RecordsKeyed`) the
    /// durable ingest path reports, under a `bulk_load` span.
    pub fn load_observed(
        &self,
        input: &Path,
        work_dir: &Path,
        theory: &dyn EquationalTheory,
        observer: &dyn PipelineObserver,
    ) -> io::Result<BulkOutcome> {
        assert!(
            !self.passes.is_empty(),
            "configure passes before bulk loading"
        );
        let _load_span = span(observer, "bulk_load");
        let mut out = BulkOutcome {
            records: 0,
            passes: Vec::with_capacity(self.passes.len()),
            pairs: PairSet::new(),
            closure: UnionFind::new(0),
            comparisons: 0,
            stats: BulkLoadStats::default(),
        };

        for (key, window) in &self.passes {
            let _pass_span = span_labeled(observer, "bulk_pass", || {
                format!("{} w={window}", key.name())
            });
            // Sort: run formation + merge, bounded by memory_records.
            // Ingest does not condition (batches arrive pre-conditioned),
            // so neither does the bulk path.
            let sorter = ExternalSorter::new(key.clone(), self.config);
            let sorted = sorter.sort_observed(input, work_dir, false, observer)?;

            if out.passes.is_empty() {
                out.records = sorted.records;
                out.closure.grow(sorted.records);
            } else if sorted.records != out.records {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "input changed between passes: {} then {} records",
                        out.records, sorted.records
                    ),
                ));
            }

            let mut pass = BulkPass {
                key_name: key.name().to_string(),
                window: *window as u32,
                pairs_found: 0,
                pairs_first_found: 0,
                keys: vec![String::new(); sorted.records],
                order: Vec::with_capacity(sorted.records),
            };
            observer.add(Counter::RecordsKeyed, sorted.records as u64);

            // Streaming window scan over the sorted run: position i
            // compares against its up-to-w-1 predecessors farthest first —
            // the serial engine's exact comparison sequence.
            let t_scan = Instant::now();
            let _scan_span = span(observer, "window_scan");
            let mut reader = RunReader::open(&sorted.path)?;
            let mut prev: VecDeque<Record> = VecDeque::with_capacity(*window);
            let mut comparisons = 0u64;
            let mut io_read = 0u64;
            while let Some((run_key, record)) = reader.next_entry()? {
                io_read += 1;
                let id = record.id.0;
                pass.keys[id as usize] = run_key;
                pass.order.push(id);
                for p in &prev {
                    comparisons += 1;
                    if theory.matches(p, &record) {
                        pass.pairs_found += 1;
                        if out.pairs.insert(p.id.0, id) {
                            pass.pairs_first_found += 1;
                            out.closure.union(p.id.0, id);
                        }
                    }
                }
                if prev.len() == window - 1 {
                    prev.pop_front();
                }
                prev.push_back(record);
            }
            observer.phase_ns(Phase::WindowScan, t_scan.elapsed().as_nanos() as u64);
            observer.add(Counter::Comparisons, comparisons);
            // The streamed scan, like incremental ingest, invokes the
            // theory on every comparison (no closure pruning).
            observer.add(Counter::RuleInvocations, comparisons);
            observer.add(Counter::Matches, pass.pairs_found);

            out.comparisons += comparisons;
            out.stats.io.records_read += sorted.io.records_read + io_read;
            out.stats.io.records_written += sorted.io.records_written;
            out.stats.io.sweeps += sorted.io.data_passes() + 1; // + the scan sweep
            sorted.cleanup();
            out.passes.push(pass);
        }

        out.stats.records = out.records as u64;
        out.stats.comparisons = out.comparisons;
        out.stats.pairs = out.pairs.len() as u64;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merge_purge::IncrementalMergePurge;
    use mp_datagen::{DatabaseGenerator, GeneratorConfig};
    use mp_record::io as rio;
    use mp_rules::NativeEmployeeTheory;
    use std::path::PathBuf;

    fn work_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mp-bulk-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_db(n: usize, seed: u64, dir: &Path) -> (PathBuf, Vec<Record>) {
        let db = DatabaseGenerator::new(GeneratorConfig::new(n).duplicate_fraction(0.5).seed(seed))
            .generate();
        let path = dir.join("input.mp");
        rio::write_records(std::fs::File::create(&path).unwrap(), &db.records).unwrap();
        (path, db.records)
    }

    /// The equivalence the whole design hangs on: a spilled bulk load is
    /// fingerprint-identical to one in-memory `add_batch` of the same
    /// file, for every sort strategy and thread count.
    #[test]
    fn bulk_load_matches_add_batch_fingerprint() {
        let theory = NativeEmployeeTheory::new();
        let dir = work_dir("fp");
        let (input, records) = write_db(600, 7001, &dir);

        let mut engine = IncrementalMergePurge::new()
            .pass(KeySpec::last_name_key(), 10)
            .pass(KeySpec::first_name_key(), 8);
        engine.add_batch(records, &theory);
        let snap = engine.to_snapshot();

        for strategy in [
            merge_purge::SortStrategy::Comparison,
            merge_purge::SortStrategy::Radix,
        ] {
            for threads in [1usize, 3] {
                let outcome = BulkLoader::new(ExternalConfig {
                    memory_records: 97, // forces several spilled runs
                    fan_in: 3,
                    threads,
                    strategy,
                })
                .pass(KeySpec::last_name_key(), 10)
                .pass(KeySpec::first_name_key(), 8)
                .load(&input, &dir, &theory)
                .unwrap();

                let tag = format!("strategy={} threads={threads}", strategy.name());
                assert_eq!(outcome.records, snap.records.len(), "{tag}");
                assert_eq!(outcome.comparisons, engine.comparisons(), "{tag}");
                assert_eq!(outcome.pairs.sorted(), snap.pairs, "{tag}");
                assert_eq!(outcome.closure.clone().classes(), engine.classes(), "{tag}");
                for (b, s) in outcome.passes.iter().zip(&snap.passes) {
                    assert_eq!(b.key_name, s.key_name, "{tag}");
                    assert_eq!(b.window, s.window, "{tag}");
                    assert_eq!(b.pairs_found, s.pairs_found, "{tag}");
                    assert_eq!(b.pairs_first_found, s.pairs_first_found, "{tag}");
                    assert_eq!(b.keys, s.keys, "{tag}");
                    assert_eq!(b.order, s.order, "{tag}");
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_input_loads_empty_state() {
        let theory = NativeEmployeeTheory::new();
        let dir = work_dir("empty");
        let input = dir.join("empty.mp");
        std::fs::write(&input, "").unwrap();
        let outcome = BulkLoader::new(ExternalConfig::default())
            .pass(KeySpec::last_name_key(), 4)
            .load(&input, &dir, &theory)
            .unwrap();
        assert_eq!(outcome.records, 0);
        assert_eq!(outcome.comparisons, 0);
        assert!(outcome.pairs.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "configure passes")]
    fn load_without_passes_rejected() {
        let theory = NativeEmployeeTheory::new();
        let dir = work_dir("nopass");
        let input = dir.join("empty.mp");
        std::fs::write(&input, "").unwrap();
        let _ = BulkLoader::new(ExternalConfig::default()).load(&input, &dir, &theory);
    }
}
