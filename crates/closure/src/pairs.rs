//! Deduplicating accumulator for undirected match pairs.

use std::collections::HashSet;

/// A set of undirected record-id pairs.
///
/// Window scans emit the same pair repeatedly (once per window that contains
/// both records, and once per pass in the multi-pass approach); this
/// canonicalizes to `(min, max)` and deduplicates. The paper stores exactly
/// this — pair lists per independent run, unioned before the closure.
///
/// ```
/// use mp_closure::PairSet;
/// let mut ps = PairSet::new();
/// assert!(ps.insert(3, 1));
/// assert!(!ps.insert(1, 3)); // same undirected pair
/// assert!(!ps.insert(2, 2)); // self-pairs are ignored
/// assert_eq!(ps.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PairSet {
    set: HashSet<(u32, u32)>,
}

impl PairSet {
    /// An empty pair set.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty pair set with room for `cap` pairs.
    pub fn with_capacity(cap: usize) -> Self {
        PairSet {
            set: HashSet::with_capacity(cap),
        }
    }

    /// Inserts the undirected pair `{a, b}`. Returns `true` when it was new;
    /// self-pairs are ignored and return `false`.
    #[inline]
    pub fn insert(&mut self, a: u32, b: u32) -> bool {
        if a == b {
            return false;
        }
        self.set.insert((a.min(b), a.max(b)))
    }

    /// True when the undirected pair is present.
    pub fn contains(&self, a: u32, b: u32) -> bool {
        self.set.contains(&(a.min(b), a.max(b)))
    }

    /// Number of distinct pairs.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True when no pairs have been recorded.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Unions another pair set into this one (the multi-pass merge step).
    pub fn merge(&mut self, other: &PairSet) {
        self.set.extend(&other.set);
    }

    /// Iterates over pairs in unspecified order, each as `(low, high)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.set.iter().copied()
    }

    /// Pairs sorted ascending — deterministic output for reports and tests.
    pub fn sorted(&self) -> Vec<(u32, u32)> {
        let mut v: Vec<_> = self.set.iter().copied().collect();
        v.sort_unstable();
        v
    }
}

impl Extend<(u32, u32)> for PairSet {
    fn extend<T: IntoIterator<Item = (u32, u32)>>(&mut self, iter: T) {
        for (a, b) in iter {
            self.insert(a, b);
        }
    }
}

impl FromIterator<(u32, u32)> for PairSet {
    fn from_iter<T: IntoIterator<Item = (u32, u32)>>(iter: T) -> Self {
        let mut ps = PairSet::new();
        ps.extend(iter);
        ps
    }
}

impl<'a> IntoIterator for &'a PairSet {
    type Item = (u32, u32);
    type IntoIter = std::iter::Copied<std::collections::hash_set::Iter<'a, (u32, u32)>>;

    fn into_iter(self) -> Self::IntoIter {
        self.set.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_direction() {
        let mut ps = PairSet::new();
        assert!(ps.insert(7, 2));
        assert!(ps.contains(2, 7));
        assert!(ps.contains(7, 2));
        assert_eq!(ps.sorted(), vec![(2, 7)]);
    }

    #[test]
    fn merge_unions_without_duplicates() {
        let a: PairSet = [(1, 2), (3, 4)].into_iter().collect();
        let b: PairSet = [(2, 1), (5, 6)].into_iter().collect();
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.sorted(), vec![(1, 2), (3, 4), (5, 6)]);
    }

    #[test]
    fn self_pairs_rejected_via_all_paths() {
        let mut ps = PairSet::new();
        ps.extend([(4, 4), (1, 1)]);
        assert!(ps.is_empty());
        let from: PairSet = [(9, 9)].into_iter().collect();
        assert_eq!(from.len(), 0);
    }

    #[test]
    fn iteration_matches_len() {
        let ps: PairSet = [(1, 2), (2, 3), (3, 1)].into_iter().collect();
        assert_eq!(ps.iter().count(), 3);
        assert_eq!((&ps).into_iter().count(), ps.len());
    }
}
