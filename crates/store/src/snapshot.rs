//! Versioned binary snapshot of accumulated incremental merge/purge state.
//!
//! A snapshot is a self-contained checkpoint: the records seen so far, each
//! pass's sorted key index, the matched pair set with per-pass attribution,
//! the union-find closure forest, and the counters needed to resume cost
//! accounting. `state = snapshot + journal replayed` — see
//! [`crate::MatchStore`].
//!
//! # On-disk layout
//!
//! ```text
//! header   : magic   b"MPSTORE\0"     (8 bytes)
//!            version u32 = 2
//!            count   u32              (number of sections)
//! section* : tag     [u8; 4]          ("META" "RECS" "PASS" "PAIR" "CLOS" "PROV")
//!            len     u64              (payload byte length)
//!            crc     u32              (CRC-32 of payload)
//!            payload
//! ```
//!
//! Version 2 added the `PROV` section: the merge-provenance log
//! ([`mp_closure::ProvenanceLog`]) — spanning-forest edges, per-batch
//! trace ids, and per-rule firing counts — so the evidence behind every
//! merge survives checkpoints.
//!
//! Section CRCs are verified on load; any mismatch, unknown version, or
//! structural inconsistency (e.g. a pass index referencing a record that
//! does not exist) is a [`StoreError::Corrupt`] — a damaged snapshot is
//! *reported*, never silently loaded. Unknown section tags are skipped so
//! newer writers can add sections without breaking older readers.

use crate::codec::{self, Crc32, Reader};
use crate::StoreError;
use mp_closure::{ProvenanceLog, UnionFind};
use mp_record::Record;
use std::io::{self, Seek, SeekFrom, Write};

const SNAPSHOT_MAGIC: &[u8; 8] = b"MPSTORE\0";
/// Snapshot format version written into the header.
pub const SNAPSHOT_VERSION: u32 = 2;

/// One pass's persisted state: configuration (for validation on load),
/// attribution counters, and the sorted key index that lets the next batch
/// merge in O(N + B log B) instead of a full resort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassSnapshot {
    /// Display name of the pass's key (`KeySpec::name` in the core crate);
    /// checked against the runtime configuration on load.
    pub key_name: String,
    /// Window size of the pass.
    pub window: u32,
    /// Matching pairs this pass's scans emitted (cumulative, incl. pairs
    /// other passes also found).
    pub pairs_found: u64,
    /// Of those, pairs no earlier scan of any pass had already recorded.
    pub pairs_first_found: u64,
    /// Extracted sort key per record, indexed by record id.
    pub keys: Vec<String>,
    /// Record ids in sorted key order (stable: ties keep smaller id first).
    pub order: Vec<u32>,
}

/// A complete, loadable checkpoint of incremental merge/purge state.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// All records accumulated so far, ids positional.
    pub records: Vec<Record>,
    /// Per-pass sorted key indexes and attribution, in pass order.
    pub passes: Vec<PassSnapshot>,
    /// Distinct matched pairs, sorted ascending.
    pub pairs: Vec<(u32, u32)>,
    /// Union-find closure over `0..records.len()`.
    pub closure: UnionFind,
    /// Pair comparisons performed across all absorbed batches.
    pub comparisons: u64,
    /// Number of batches this snapshot has absorbed; journal frames with
    /// `seq <= batches_applied` are skipped on replay.
    pub batches_applied: u64,
    /// Merge provenance: spanning-forest edges, batch trace ids, and
    /// per-rule firing counts. Empty for states whose closure predates
    /// the log (e.g. cold bulk loads, which union pairs without per-merge
    /// evidence).
    pub provenance: ProvenanceLog,
}

impl Snapshot {
    /// Serializes the snapshot into its on-disk byte representation.
    pub fn encode(&self) -> Vec<u8> {
        let mut meta = Vec::new();
        codec::put_u64(&mut meta, self.comparisons);
        codec::put_u64(&mut meta, self.batches_applied);
        codec::put_u64(&mut meta, self.records.len() as u64);
        codec::put_u64(&mut meta, self.pairs.len() as u64);

        let mut recs = Vec::new();
        codec::put_records(&mut recs, &self.records);

        let mut pass = Vec::new();
        codec::put_u32(&mut pass, self.passes.len() as u32);
        for p in &self.passes {
            codec::put_str(&mut pass, &p.key_name);
            codec::put_u32(&mut pass, p.window);
            codec::put_u64(&mut pass, p.pairs_found);
            codec::put_u64(&mut pass, p.pairs_first_found);
            codec::put_u32(&mut pass, p.keys.len() as u32);
            for k in &p.keys {
                codec::put_str(&mut pass, k);
            }
            codec::put_u32(&mut pass, p.order.len() as u32);
            for &o in &p.order {
                codec::put_u32(&mut pass, o);
            }
        }

        let mut pair = Vec::new();
        codec::put_u64(&mut pair, self.pairs.len() as u64);
        for &(a, b) in &self.pairs {
            codec::put_u32(&mut pair, a);
            codec::put_u32(&mut pair, b);
        }

        let mut clos = Vec::new();
        self.closure.encode_into(&mut clos);

        let mut prov = Vec::new();
        self.provenance.encode_into(&mut prov);

        let sections: [(&[u8; 4], Vec<u8>); 6] = [
            (b"META", meta),
            (b"RECS", recs),
            (b"PASS", pass),
            (b"PAIR", pair),
            (b"CLOS", clos),
            (b"PROV", prov),
        ];
        let total: usize = sections.iter().map(|(_, p)| p.len() + 16).sum();
        let mut out = Vec::with_capacity(16 + total);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
        for (tag, payload) in sections {
            out.extend_from_slice(tag);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&codec::crc32(&payload).to_le_bytes());
            out.extend_from_slice(&payload);
        }
        out
    }

    /// Parses and validates a snapshot produced by [`Snapshot::encode`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on a bad magic/version, a section CRC
    /// mismatch, or any structural inconsistency.
    pub fn decode(data: &[u8]) -> Result<Snapshot, StoreError> {
        let corrupt = |msg: String| StoreError::Corrupt(format!("snapshot: {msg}"));
        if data.len() < 16 {
            return Err(corrupt(format!("file too short ({} bytes)", data.len())));
        }
        if &data[..8] != SNAPSHOT_MAGIC {
            return Err(corrupt("bad magic".into()));
        }
        let version = u32::from_le_bytes(data[8..12].try_into().unwrap());
        if version != SNAPSHOT_VERSION {
            return Err(corrupt(format!(
                "format version {version} (this build reads {SNAPSHOT_VERSION})"
            )));
        }
        let count = u32::from_le_bytes(data[12..16].try_into().unwrap()) as usize;

        let mut sections: Vec<([u8; 4], &[u8])> = Vec::with_capacity(count);
        let mut off = 16usize;
        for i in 0..count {
            if data.len() < off + 16 {
                return Err(corrupt(format!("section {i}: truncated header")));
            }
            let tag: [u8; 4] = data[off..off + 4].try_into().unwrap();
            let len = u64::from_le_bytes(data[off + 4..off + 12].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(data[off + 12..off + 16].try_into().unwrap());
            off += 16;
            if data.len() < off + len {
                return Err(corrupt(format!("section {i}: truncated payload")));
            }
            let payload = &data[off..off + len];
            if codec::crc32(payload) != crc {
                return Err(corrupt(format!(
                    "section {:?}: CRC mismatch",
                    String::from_utf8_lossy(&tag)
                )));
            }
            sections.push((tag, payload));
            off += len;
        }
        if off != data.len() {
            return Err(corrupt(format!("{} trailing bytes", data.len() - off)));
        }
        let find = |tag: &[u8; 4]| -> Result<&[u8], StoreError> {
            sections
                .iter()
                .find(|(t, _)| t == tag)
                .map(|(_, p)| *p)
                .ok_or_else(|| {
                    corrupt(format!(
                        "missing section {:?}",
                        String::from_utf8_lossy(tag)
                    ))
                })
        };

        let mut r = Reader::new(find(b"META")?);
        let (comparisons, batches_applied, n_records, n_pairs) = (|| {
            let c = r.u64()?;
            let b = r.u64()?;
            let nr = r.u64()?;
            let np = r.u64()?;
            r.finish()?;
            Ok::<_, String>((c, b, nr as usize, np as usize))
        })()
        .map_err(|e| corrupt(format!("META: {e}")))?;

        let mut r = Reader::new(find(b"RECS")?);
        let records = codec::take_records(&mut r)
            .and_then(|recs| r.finish().map(|()| recs))
            .map_err(|e| corrupt(format!("RECS: {e}")))?;
        if records.len() != n_records {
            return Err(corrupt(format!(
                "META says {n_records} records, RECS holds {}",
                records.len()
            )));
        }

        let mut r = Reader::new(find(b"PASS")?);
        let passes = (|| {
            let np = r.u32()? as usize;
            let mut passes = Vec::with_capacity(np.min(64));
            for _ in 0..np {
                let key_name = r.str()?;
                let window = r.u32()?;
                let pairs_found = r.u64()?;
                let pairs_first_found = r.u64()?;
                let nk = r.u32()? as usize;
                let mut keys = Vec::with_capacity(nk.min(r.remaining()));
                for _ in 0..nk {
                    keys.push(r.str()?);
                }
                let no = r.u32()? as usize;
                let mut order = Vec::with_capacity(no.min(r.remaining() / 4 + 1));
                for _ in 0..no {
                    order.push(r.u32()?);
                }
                passes.push(PassSnapshot {
                    key_name,
                    window,
                    pairs_found,
                    pairs_first_found,
                    keys,
                    order,
                });
            }
            r.finish()?;
            Ok::<_, String>(passes)
        })()
        .map_err(|e| corrupt(format!("PASS: {e}")))?;
        for (i, p) in passes.iter().enumerate() {
            if p.keys.len() != records.len() || p.order.len() != records.len() {
                return Err(corrupt(format!(
                    "pass {i}: index sizes ({} keys, {} order) disagree with {} records",
                    p.keys.len(),
                    p.order.len(),
                    records.len()
                )));
            }
            if p.order.iter().any(|&o| o as usize >= records.len()) {
                return Err(corrupt(format!("pass {i}: order entry out of range")));
            }
        }

        let mut r = Reader::new(find(b"PAIR")?);
        let pairs = (|| {
            let n = r.u64()? as usize;
            let mut pairs = Vec::with_capacity(n.min(r.remaining() / 8 + 1));
            for _ in 0..n {
                pairs.push((r.u32()?, r.u32()?));
            }
            r.finish()?;
            Ok::<_, String>(pairs)
        })()
        .map_err(|e| corrupt(format!("PAIR: {e}")))?;
        if pairs.len() != n_pairs {
            return Err(corrupt(format!(
                "META says {n_pairs} pairs, PAIR holds {}",
                pairs.len()
            )));
        }
        if pairs
            .iter()
            .any(|&(a, b)| a >= b || b as usize >= records.len())
        {
            return Err(corrupt("PAIR: pair out of range or not (low, high)".into()));
        }

        let closure =
            UnionFind::decode(find(b"CLOS")?).map_err(|e| corrupt(format!("CLOS: {e}")))?;
        if closure.len() != records.len() {
            return Err(corrupt(format!(
                "closure covers {} elements but there are {} records",
                closure.len(),
                records.len()
            )));
        }

        let provenance =
            ProvenanceLog::decode(find(b"PROV")?).map_err(|e| corrupt(format!("PROV: {e}")))?;
        for (i, e) in provenance.edges.iter().enumerate() {
            if e.a as usize >= records.len() || e.b as usize >= records.len() {
                return Err(corrupt(format!("PROV: edge {i} references missing record")));
            }
            if e.batch_seq == 0 || e.batch_seq > batches_applied {
                return Err(corrupt(format!(
                    "PROV: edge {i} from batch {} outside 1..={batches_applied}",
                    e.batch_seq
                )));
            }
        }

        Ok(Snapshot {
            records,
            passes,
            pairs,
            closure,
            comparisons,
            batches_applied,
            provenance,
        })
    }
}

/// Streaming writer producing byte-identical output to
/// [`Snapshot::encode`] without buffering whole sections.
///
/// [`Snapshot::encode`] builds every section in memory — fine for
/// checkpoints of a running daemon (the records are resident anyway), but
/// wrong for the bulk-load path, where the whole point is never holding
/// 10M records at once. The writer streams instead: each section's header
/// is written with a 12-byte length/CRC placeholder, the payload streams
/// through an incremental [`Crc32`], and on section close the writer seeks
/// back and patches the real length and digest in. Readers cannot tell the
/// difference (a test enforces bit-identity with `encode`).
///
/// Sections must be written in the same order `encode` emits them
/// (`META`, `RECS`, `PASS`, `PAIR`, `CLOS`, `PROV`) for the outputs to be
/// identical; the writer itself only enforces the declared section count.
pub struct SnapshotWriter<W: Write + Seek> {
    out: W,
    declared: u32,
    written: u32,
    current: Option<OpenSection>,
}

struct OpenSection {
    /// Stream offset of the 12-byte len+crc placeholder.
    patch_at: u64,
    len: u64,
    crc: Crc32,
}

impl<W: Write + Seek> SnapshotWriter<W> {
    /// Writes the snapshot header and prepares for `sections` sections.
    ///
    /// # Errors
    ///
    /// Underlying I/O failure.
    pub fn new(mut out: W, sections: u32) -> io::Result<Self> {
        out.write_all(SNAPSHOT_MAGIC)?;
        out.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
        out.write_all(&sections.to_le_bytes())?;
        Ok(SnapshotWriter {
            out,
            declared: sections,
            written: 0,
            current: None,
        })
    }

    /// Opens a section: writes the tag and reserves the length/CRC slots.
    ///
    /// # Errors
    ///
    /// Underlying I/O failure.
    ///
    /// # Panics
    ///
    /// Panics when a section is already open or all declared sections have
    /// been written.
    pub fn begin_section(&mut self, tag: &[u8; 4]) -> io::Result<()> {
        assert!(self.current.is_none(), "close the previous section first");
        assert!(
            self.written < self.declared,
            "all {} declared sections already written",
            self.declared
        );
        self.out.write_all(tag)?;
        let patch_at = self.out.stream_position()?;
        self.out.write_all(&[0u8; 12])?; // len u64 + crc u32, patched later
        self.current = Some(OpenSection {
            patch_at,
            len: 0,
            crc: Crc32::new(),
        });
        Ok(())
    }

    /// Appends payload bytes to the open section.
    ///
    /// # Errors
    ///
    /// Underlying I/O failure.
    ///
    /// # Panics
    ///
    /// Panics when no section is open.
    pub fn write(&mut self, bytes: &[u8]) -> io::Result<()> {
        let sec = self.current.as_mut().expect("no open section");
        sec.crc.update(bytes);
        sec.len += bytes.len() as u64;
        self.out.write_all(bytes)
    }

    /// Closes the open section, seeking back to patch its length and CRC.
    ///
    /// # Errors
    ///
    /// Underlying I/O failure.
    ///
    /// # Panics
    ///
    /// Panics when no section is open.
    pub fn end_section(&mut self) -> io::Result<()> {
        let sec = self.current.take().expect("no open section");
        let end = self.out.stream_position()?;
        self.out.seek(SeekFrom::Start(sec.patch_at))?;
        self.out.write_all(&sec.len.to_le_bytes())?;
        self.out.write_all(&sec.crc.finalize().to_le_bytes())?;
        self.out.seek(SeekFrom::Start(end))?;
        self.written += 1;
        Ok(())
    }

    /// Flushes and returns the underlying writer and total bytes written.
    ///
    /// # Errors
    ///
    /// Underlying I/O failure.
    ///
    /// # Panics
    ///
    /// Panics when a section is still open or fewer sections than declared
    /// were written.
    pub fn finish(mut self) -> io::Result<(W, u64)> {
        assert!(self.current.is_none(), "close the open section first");
        assert_eq!(
            self.written, self.declared,
            "declared {} sections but wrote {}",
            self.declared, self.written
        );
        self.out.flush()?;
        let total = self.out.stream_position()?;
        Ok((self.out, total))
    }
}

/// Borrowed view of everything a snapshot stores *except* the records,
/// which [`write_streamed`] pulls from an iterator so a bulk load never
/// materializes them.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotStream<'a> {
    /// Number of records the iterator will yield (ids `0..n_records`).
    pub n_records: u64,
    /// Per-pass state, in pass order.
    pub passes: &'a [PassSnapshot],
    /// Distinct matched pairs, sorted ascending.
    pub pairs: &'a [(u32, u32)],
    /// Union-find closure over `0..n_records`.
    pub closure: &'a UnionFind,
    /// Pair comparisons performed.
    pub comparisons: u64,
    /// Batches the snapshot absorbs (1 for a cold bulk load).
    pub batches_applied: u64,
    /// Merge provenance log (empty for bulk loads, whose closure is
    /// rebuilt from pairs without per-merge evidence).
    pub provenance: &'a ProvenanceLog,
}

/// Streams a complete snapshot to `out`, byte-identical to
/// [`Snapshot::encode`] on the equivalent in-memory state.
///
/// `records` must yield exactly [`SnapshotStream::n_records`] records with
/// positional ids; each is encoded and dropped, so peak memory is one
/// record regardless of database size.
///
/// # Errors
///
/// Underlying I/O failure, an error from the record iterator, or
/// [`StoreError::Corrupt`] when the iterator yields a different number of
/// records than declared (the snapshot would fail its own validation on
/// load, so it is never written silently).
pub fn write_streamed<W: Write + Seek>(
    out: W,
    state: &SnapshotStream<'_>,
    records: impl Iterator<Item = io::Result<Record>>,
) -> Result<u64, StoreError> {
    let mut w = SnapshotWriter::new(out, 6)?;
    let mut buf = Vec::new();

    w.begin_section(b"META")?;
    codec::put_u64(&mut buf, state.comparisons);
    codec::put_u64(&mut buf, state.batches_applied);
    codec::put_u64(&mut buf, state.n_records);
    codec::put_u64(&mut buf, state.pairs.len() as u64);
    w.write(&buf)?;
    w.end_section()?;

    w.begin_section(b"RECS")?;
    buf.clear();
    codec::put_u32(&mut buf, state.n_records as u32);
    w.write(&buf)?;
    let mut yielded = 0u64;
    for record in records {
        buf.clear();
        codec::put_record(&mut buf, &record?);
        w.write(&buf)?;
        yielded += 1;
    }
    if yielded != state.n_records {
        return Err(StoreError::Corrupt(format!(
            "streamed snapshot: declared {} records but the source yielded {yielded}",
            state.n_records
        )));
    }
    w.end_section()?;

    w.begin_section(b"PASS")?;
    buf.clear();
    codec::put_u32(&mut buf, state.passes.len() as u32);
    w.write(&buf)?;
    for p in state.passes {
        buf.clear();
        codec::put_str(&mut buf, &p.key_name);
        codec::put_u32(&mut buf, p.window);
        codec::put_u64(&mut buf, p.pairs_found);
        codec::put_u64(&mut buf, p.pairs_first_found);
        codec::put_u32(&mut buf, p.keys.len() as u32);
        w.write(&buf)?;
        for k in &p.keys {
            buf.clear();
            codec::put_str(&mut buf, k);
            w.write(&buf)?;
        }
        buf.clear();
        codec::put_u32(&mut buf, p.order.len() as u32);
        for &o in &p.order {
            codec::put_u32(&mut buf, o);
        }
        w.write(&buf)?;
    }
    w.end_section()?;

    w.begin_section(b"PAIR")?;
    buf.clear();
    codec::put_u64(&mut buf, state.pairs.len() as u64);
    for &(a, b) in state.pairs {
        codec::put_u32(&mut buf, a);
        codec::put_u32(&mut buf, b);
    }
    w.write(&buf)?;
    w.end_section()?;

    w.begin_section(b"CLOS")?;
    buf.clear();
    state.closure.encode_into(&mut buf);
    w.write(&buf)?;
    w.end_section()?;

    w.begin_section(b"PROV")?;
    buf.clear();
    state.provenance.encode_into(&mut buf);
    w.write(&buf)?;
    w.end_section()?;

    let (_, total) = w.finish()?;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_record::RecordId;

    fn sample() -> Snapshot {
        let records: Vec<Record> = (0..4)
            .map(|i| {
                let mut r = Record::empty(RecordId(i));
                r.last_name = format!("L{i}");
                r.first_name = format!("F{}", i % 2);
                r
            })
            .collect();
        let mut closure = UnionFind::new(4);
        closure.union(0, 2);
        let mut provenance = ProvenanceLog::new();
        provenance.record_edge(mp_closure::MergeEdge {
            a: 0,
            b: 2,
            pass: 0,
            rule_id: 1,
            batch_seq: 1,
        });
        provenance.note_batch_trace(1, "cafef00d-00000001");
        provenance.note_firing(1);
        Snapshot {
            passes: vec![PassSnapshot {
                key_name: "last-name".into(),
                window: 4,
                pairs_found: 1,
                pairs_first_found: 1,
                keys: records.iter().map(|r| r.last_name.clone()).collect(),
                order: vec![0, 1, 2, 3],
            }],
            records,
            pairs: vec![(0, 2)],
            closure,
            comparisons: 6,
            batches_applied: 2,
            provenance,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snap = sample();
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back.records, snap.records);
        assert_eq!(back.passes, snap.passes);
        assert_eq!(back.pairs, snap.pairs);
        assert_eq!(back.comparisons, 6);
        assert_eq!(back.batches_applied, 2);
        assert_eq!(back.closure.clone().classes(), vec![vec![0, 2]]);
        assert_eq!(back.provenance, snap.provenance);
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        // Flip each byte of the encoding in turn: decode must never
        // succeed with silently wrong content — either it errors (CRC or
        // structure) or, for bytes outside any checksummed payload
        // (header/section framing), it still errors because framing is
        // validated.
        let snap = sample();
        let bytes = snap.encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            if let Ok(decoded) = Snapshot::decode(&bad) {
                // The only way a flip can decode is if it flipped something
                // and flipped it back to equivalent content — impossible
                // with a single XOR, so reaching here is a real failure.
                assert_eq!(
                    (decoded.records, decoded.pairs),
                    (snap.records.clone(), snap.pairs.clone()),
                    "byte {i} flipped yet decode succeeded with different content"
                );
                panic!("byte flip at {i} went undetected");
            }
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample().encode();
        for cut in [0, 3, 15, 16, 40, bytes.len() - 1] {
            assert!(
                Snapshot::decode(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn streamed_write_is_byte_identical_to_encode() {
        let snap = sample();
        let want = snap.encode();
        let state = SnapshotStream {
            n_records: snap.records.len() as u64,
            passes: &snap.passes,
            pairs: &snap.pairs,
            closure: &snap.closure,
            comparisons: snap.comparisons,
            batches_applied: snap.batches_applied,
            provenance: &snap.provenance,
        };
        let mut cursor = io::Cursor::new(Vec::new());
        let total =
            write_streamed(&mut cursor, &state, snap.records.iter().cloned().map(Ok)).unwrap();
        let got = cursor.into_inner();
        assert_eq!(total as usize, got.len());
        assert_eq!(got, want, "streamed bytes diverge from encode()");
        // And it round-trips through the validating decoder.
        let back = Snapshot::decode(&got).unwrap();
        assert_eq!(back.records, snap.records);
        assert_eq!(back.passes, snap.passes);
    }

    #[test]
    fn streamed_write_rejects_record_count_mismatch() {
        let snap = sample();
        let state = SnapshotStream {
            n_records: snap.records.len() as u64 + 1, // lie
            passes: &snap.passes,
            pairs: &snap.pairs,
            closure: &snap.closure,
            comparisons: snap.comparisons,
            batches_applied: snap.batches_applied,
            provenance: &snap.provenance,
        };
        let mut cursor = io::Cursor::new(Vec::new());
        let err =
            write_streamed(&mut cursor, &state, snap.records.iter().cloned().map(Ok)).unwrap_err();
        assert!(err.to_string().contains("yielded"), "{err}");
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = sample().encode();
        bytes[8] = 99;
        let err = Snapshot::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }
}
