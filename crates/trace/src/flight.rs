//! In-memory flight recorder: a bounded ring of recent per-batch span
//! sets, retained inside a live process for after-the-fact latency
//! forensics.
//!
//! A one-shot CLI run drains its [`TraceCollector`](crate::TraceCollector)
//! once at exit; a long-running daemon cannot — by the time someone asks
//! "why was that batch slow?", the spans would be gone. The
//! [`FlightRecorder`] keeps them: after each unit of work (a batch), the
//! owner drains the collector (cheap — the per-thread track buffers are
//! reused across drains) and deposits the resulting [`TrackSpans`] here
//! under that batch's `trace_id`. The ring holds the last
//! [`capacity`](FlightRecorder::capacity) unpinned entries; entries
//! *pinned* at record time (e.g. batches over a slow-batch threshold)
//! survive ring eviction in a second bounded region, so an incident stays
//! inspectable even after traffic has churned the ring.
//!
//! [`FlightRecorder::chrome_json`] merges everything retained into one
//! Chrome trace-event document on a shared timeline (all entries come
//! from the same collector epoch), one lane per recording thread —
//! loadable in Perfetto exactly like a `--trace` file.

use crate::chrome::chrome_trace_json;
use crate::span::{SpanRecord, TrackSpans};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Default number of unpinned batch entries retained (and the bound on
/// pinned entries, counted separately).
pub const DEFAULT_CAPACITY: usize = 64;

/// One recorded unit of work: the spans every thread produced for it.
#[derive(Debug, Clone)]
pub struct FlightEntry {
    /// The process-unique trace id the coordinator minted for this batch.
    pub trace_id: String,
    /// The batch's journal sequence number (0 for non-batch entries such
    /// as startup replay).
    pub seq: u64,
    /// Whether the entry is pinned (exempt from ring eviction).
    pub pinned: bool,
    /// Per-thread spans, as drained from the collector.
    pub tracks: Vec<TrackSpans>,
}

/// Bounded ring of recent [`FlightEntry`]s plus a bounded pinned region.
///
/// Locking: one mutex around the whole ring, taken once per recorded
/// batch and once per dump. Recording happens on the single engine
/// worker thread; dumps come from scrape threads — contention is one
/// lock hand-off per batch, never on the span hot path (spans go through
/// the collector's per-thread buffers first).
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    /// Entries in record order; pinned ones are exempt from the unpinned
    /// ring bound but counted against the same capacity separately.
    entries: VecDeque<FlightEntry>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder retaining up to `capacity` unpinned entries (and up to
    /// `capacity` pinned ones on top).
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder needs room for one entry");
        FlightRecorder {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The unpinned-entry bound this recorder was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Deposits one batch's drained tracks. Entries with no spans are
    /// dropped silently (an idle drain records nothing). When the ring is
    /// full the oldest *unpinned* entry is evicted; when the pinned
    /// region is also full, the oldest pinned entry goes too, so memory
    /// stays bounded no matter how many batches trip the slow threshold.
    pub fn record(
        &self,
        trace_id: impl Into<String>,
        seq: u64,
        pinned: bool,
        tracks: Vec<TrackSpans>,
    ) {
        if tracks.iter().all(|t| t.spans.is_empty()) {
            return;
        }
        let mut inner = self.inner.lock().expect("flight recorder poisoned");
        inner.entries.push_back(FlightEntry {
            trace_id: trace_id.into(),
            seq,
            pinned,
            tracks,
        });
        let over_unpinned = inner
            .entries
            .iter()
            .filter(|e| !e.pinned)
            .count()
            .saturating_sub(self.capacity);
        for _ in 0..over_unpinned {
            if let Some(idx) = inner.entries.iter().position(|e| !e.pinned) {
                inner.entries.remove(idx);
            }
        }
        let over_pinned = inner
            .entries
            .iter()
            .filter(|e| e.pinned)
            .count()
            .saturating_sub(self.capacity);
        for _ in 0..over_pinned {
            if let Some(idx) = inner.entries.iter().position(|e| e.pinned) {
                inner.entries.remove(idx);
            }
        }
    }

    /// Entries currently retained (unpinned + pinned).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("flight recorder poisoned")
            .entries
            .len()
    }

    /// Whether nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pinned entries currently retained.
    pub fn pinned_len(&self) -> usize {
        self.inner
            .lock()
            .expect("flight recorder poisoned")
            .entries
            .iter()
            .filter(|e| e.pinned)
            .count()
    }

    /// Trace ids of every retained entry, oldest first.
    pub fn trace_ids(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("flight recorder poisoned")
            .entries
            .iter()
            .map(|e| e.trace_id.clone())
            .collect()
    }

    /// Clones every retained entry, oldest first (for reports/tests).
    pub fn entries(&self) -> Vec<FlightEntry> {
        self.inner
            .lock()
            .expect("flight recorder poisoned")
            .entries
            .iter()
            .cloned()
            .collect()
    }

    /// Merges every retained entry into one Chrome trace-event document.
    ///
    /// All entries were drained from the same collector, so their
    /// timestamps share one epoch and one timeline; spans are regrouped
    /// by *thread name* (one Perfetto lane per named worker — e.g. one
    /// per shard worker, even though each batch's scoped scan threads
    /// register fresh track ids) and sorted by start time within each
    /// lane.
    pub fn chrome_json(&self) -> String {
        let merged = self.merged_tracks();
        chrome_trace_json(&merged)
    }

    /// The retained spans regrouped into one [`TrackSpans`] per thread
    /// name; each lane keeps the smallest track id it has seen so lane
    /// order is registration order. Unnamed threads fall back to their
    /// track-unique `thread-<track>` names and so never merge.
    pub fn merged_tracks(&self) -> Vec<TrackSpans> {
        let inner = self.inner.lock().expect("flight recorder poisoned");
        // thread name -> (lane id, spans)
        let mut by_name: Vec<(u32, String, Vec<SpanRecord>)> = Vec::new();
        for entry in &inner.entries {
            for t in &entry.tracks {
                match by_name
                    .iter_mut()
                    .find(|(_, name, _)| *name == t.thread_name)
                {
                    Some((lane, _, spans)) => {
                        *lane = (*lane).min(t.track);
                        spans.extend(t.spans.iter().cloned());
                    }
                    None => by_name.push((t.track, t.thread_name.clone(), t.spans.clone())),
                }
            }
        }
        drop(inner);
        by_name.sort_by_key(|(track, _, _)| *track);
        by_name
            .into_iter()
            .map(|(track, thread_name, mut spans)| {
                spans.sort_by_key(|s| (s.start_ns, s.depth));
                TrackSpans {
                    track,
                    thread_name,
                    spans,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceCollector;

    fn tracks_with(tracer: &TraceCollector, name: &'static str, label: String) -> Vec<TrackSpans> {
        {
            let _s = tracer.span_labeled(name, label);
        }
        tracer.drain()
    }

    #[test]
    fn ring_retains_the_last_k_unpinned_entries() {
        let tracer = TraceCollector::new();
        let rec = FlightRecorder::new(3);
        for i in 0..5u64 {
            let tracks = tracks_with(&tracer, "batch", format!("seq={i}"));
            rec.record(format!("t{i}"), i, false, tracks);
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.trace_ids(), ["t2", "t3", "t4"]);
    }

    #[test]
    fn pinned_entries_survive_ring_eviction() {
        let tracer = TraceCollector::new();
        let rec = FlightRecorder::new(2);
        let tracks = tracks_with(&tracer, "batch", "slow".into());
        rec.record("slow", 1, true, tracks);
        for i in 2..8u64 {
            let tracks = tracks_with(&tracer, "batch", format!("seq={i}"));
            rec.record(format!("t{i}"), i, false, tracks);
        }
        assert_eq!(rec.pinned_len(), 1);
        assert!(rec.trace_ids().contains(&"slow".to_string()));
        assert_eq!(rec.len(), 3, "2 unpinned + 1 pinned");
    }

    #[test]
    fn pinned_region_is_bounded_too() {
        let tracer = TraceCollector::new();
        let rec = FlightRecorder::new(2);
        for i in 0..5u64 {
            let tracks = tracks_with(&tracer, "batch", format!("seq={i}"));
            rec.record(format!("p{i}"), i, true, tracks);
        }
        assert_eq!(rec.pinned_len(), 2, "oldest pinned entries evicted");
        assert_eq!(rec.trace_ids(), ["p3", "p4"]);
    }

    #[test]
    fn empty_drains_are_not_recorded() {
        let rec = FlightRecorder::new(4);
        rec.record("empty", 1, false, Vec::new());
        let tracer = TraceCollector::new();
        rec.record("no-spans", 2, false, tracer.drain());
        assert!(rec.is_empty());
    }

    #[test]
    fn chrome_dump_merges_entries_onto_one_lane_per_thread() {
        let tracer = TraceCollector::new();
        let rec = FlightRecorder::new(8);
        for i in 0..3u64 {
            {
                let _b = tracer.span_labeled("batch", format!("trace=t{i}"));
                std::thread::scope(|scope| {
                    for _ in 0..2 {
                        let tracer = &tracer;
                        scope.spawn(move || {
                            let _s = tracer.span("shard_ingest");
                        });
                    }
                });
            }
            rec.record(format!("t{i}"), i, false, tracer.drain());
        }
        let json = rec.chrome_json();
        // Scoped worker threads re-register per scope, so lane count is
        // at least main + 2; each lane gets exactly one metadata event.
        let lanes = json.matches("\"ph\":\"M\"").count();
        assert!(lanes >= 3, "expected >= 3 lanes, got {lanes}:\n{json}");
        assert_eq!(json.matches("\"name\":\"batch\"").count(), 3);
        assert_eq!(json.matches("\"name\":\"shard_ingest\"").count(), 6);
        for i in 0..3 {
            assert!(json.contains(&format!("trace=t{i}")));
        }
    }

    #[test]
    fn named_worker_threads_share_one_lane_across_entries() {
        let tracer = TraceCollector::new();
        let rec = FlightRecorder::new(8);
        for i in 0..3u64 {
            std::thread::scope(|scope| {
                std::thread::Builder::new()
                    .name("shard-0".into())
                    .spawn_scoped(scope, || {
                        let _s = tracer.span("shard_ingest");
                    })
                    .unwrap();
            });
            rec.record(format!("t{i}"), i, false, tracer.drain());
        }
        let merged = rec.merged_tracks();
        assert_eq!(merged.len(), 1, "same-named threads merge onto one lane");
        assert_eq!(merged[0].thread_name, "shard-0");
        assert_eq!(merged[0].spans.len(), 3);
    }

    #[test]
    fn merged_tracks_sort_spans_by_start_time() {
        let tracer = TraceCollector::new();
        let rec = FlightRecorder::new(8);
        for i in 0..2u64 {
            let tracks = tracks_with(&tracer, "batch", format!("seq={i}"));
            rec.record(format!("t{i}"), i, false, tracks);
        }
        let merged = rec.merged_tracks();
        assert_eq!(merged.len(), 1, "one lane for the single test thread");
        let starts: Vec<u64> = merged[0].spans.iter().map(|s| s.start_ns).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }
}
