//! NYSIIS (New York State Identification and Intelligence System) phonetic
//! coding — a finer-grained alternative to Soundex for surname matching.

/// Encodes a name with the original NYSIIS algorithm, truncated to the
/// conventional six characters.
///
/// ```
/// use mp_strsim::nysiis;
/// assert_eq!(nysiis("MACINTOSH"), "MCANT");
/// assert_eq!(nysiis("PHILLIPSON"), "FALAPS");
/// ```
pub fn nysiis(name: &str) -> String {
    let mut w: Vec<u8> = name
        .bytes()
        .filter(u8::is_ascii_alphabetic)
        .map(|b| b.to_ascii_uppercase())
        .collect();
    if w.is_empty() {
        return String::new();
    }

    // 1. Initial-prefix translations.
    replace_prefix(&mut w, b"MAC", b"MCC");
    replace_prefix(&mut w, b"KN", b"NN");
    replace_prefix(&mut w, b"K", b"C");
    replace_prefix(&mut w, b"PH", b"FF");
    replace_prefix(&mut w, b"PF", b"FF");
    replace_prefix(&mut w, b"SCH", b"SSS");

    // 2. Terminal-suffix translations.
    replace_suffix(&mut w, b"EE", b"Y");
    replace_suffix(&mut w, b"IE", b"Y");
    for s in [b"DT".as_slice(), b"RT", b"RD", b"NT", b"ND"] {
        if replace_suffix(&mut w, s, b"D") {
            break;
        }
    }

    // 3. First character of the code is the (translated) first letter.
    let mut code = Vec::with_capacity(w.len());
    code.push(w[0]);

    // 4. Scan the rest, applying contextual translations.
    let mut i = 1;
    while i < w.len() {
        let c = w[i];
        let translated: &[u8] = match c {
            b'E' if i + 1 < w.len() && w[i + 1] == b'V' => {
                i += 1; // consume the V as well
                b"AF"
            }
            b'A' | b'E' | b'I' | b'O' | b'U' => b"A",
            b'Q' => b"G",
            b'Z' => b"S",
            b'M' => b"N",
            b'K' => {
                if i + 1 < w.len() && w[i + 1] == b'N' {
                    i += 1;
                    b"NN"
                } else {
                    b"C"
                }
            }
            b'S' if w[i..].starts_with(b"SCH") => {
                i += 2;
                b"SSS"
            }
            b'P' if i + 1 < w.len() && w[i + 1] == b'H' => {
                i += 1;
                b"FF"
            }
            b'H' => {
                let prev_vowel = is_vowel(w[i - 1]);
                let next_vowel = i + 1 < w.len() && is_vowel(w[i + 1]);
                if !prev_vowel || !next_vowel {
                    // Silent H collapses into the previous code character.
                    i += 1;
                    continue;
                }
                b"H"
            }
            b'W' if is_vowel(w[i - 1]) => {
                // W after a vowel collapses into the previous code character.
                i += 1;
                continue;
            }
            other => {
                // Borrow trick: store single char via slice of w.
                debug_assert!(other.is_ascii_uppercase());
                &w[i..i + 1]
            }
        };
        // 5. Append only if it differs from the last code character.
        let translated = translated.to_vec();
        for t in translated {
            if code.last() != Some(&t) {
                code.push(t);
            }
        }
        i += 1;
    }

    // 6. Trim terminal S, translate terminal AY -> Y, trim terminal A.
    if code.len() > 1 && code.last() == Some(&b'S') {
        code.pop();
    }
    if code.ends_with(b"AY") {
        let n = code.len();
        code.remove(n - 2);
    }
    if code.len() > 1 && code.last() == Some(&b'A') {
        code.pop();
    }

    code.truncate(6);
    String::from_utf8(code).expect("ASCII by construction")
}

fn is_vowel(c: u8) -> bool {
    matches!(c, b'A' | b'E' | b'I' | b'O' | b'U')
}

fn replace_prefix(w: &mut Vec<u8>, from: &[u8], to: &[u8]) -> bool {
    if w.starts_with(from) {
        w.splice(0..from.len(), to.iter().copied());
        true
    } else {
        false
    }
}

fn replace_suffix(w: &mut Vec<u8>, from: &[u8], to: &[u8]) -> bool {
    if w.len() > from.len() && w.ends_with(from) {
        let start = w.len() - from.len();
        w.splice(start.., to.iter().copied());
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_codes() {
        assert_eq!(nysiis("MACINTOSH"), "MCANT");
        assert_eq!(nysiis("KNUTH"), "NAT");
        assert_eq!(nysiis("PHILLIPSON"), "FALAPS");
        assert_eq!(nysiis("SCHMIDT"), "SNAD");
    }

    #[test]
    fn sound_alike_surnames_collide() {
        assert_eq!(nysiis("JOHNSON"), nysiis("JOHNSEN"));
        assert_eq!(nysiis("PETERSON"), nysiis("PETERSEN"));
        assert_eq!(nysiis("BROWN"), nysiis("BRAUN"));
    }

    #[test]
    fn distinct_surnames_do_not_collide() {
        assert_ne!(nysiis("SMITH"), nysiis("GARCIA"));
        assert_ne!(nysiis("WASHINGTON"), nysiis("JEFFERSON"));
    }

    #[test]
    fn empty_and_non_alpha() {
        assert_eq!(nysiis(""), "");
        assert_eq!(nysiis("123"), "");
        assert_eq!(nysiis("  o'neil "), nysiis("ONEIL"));
    }

    #[test]
    fn code_is_at_most_six_chars_and_ascii() {
        for name in ["WOLFESCHLEGELSTEINHAUSEN", "A", "BB", "MCCARTHY-SMITH"] {
            let c = nysiis(name);
            assert!(c.len() <= 6);
            assert!(c.bytes().all(|b| b.is_ascii_uppercase()));
        }
    }
}
