//! Figure 3: clustering method vs sorted-neighborhood method, serial.
//!
//! Paper setup: 250,000 originals, 35% selected for ≤5 duplicates each →
//! 468,730 records on one Sparc 5; three independent runs per method (last
//! name / first name / address key), 32 clusters for the clustering method,
//! plus the multi-pass closure over the three runs.
//!
//! * Fig. 3(a): average single-pass time and multi-pass total time.
//! * Fig. 3(b): accuracy of each method's single passes and multi-pass.
//!
//! Defaults scale to 40,000 originals; `--records 250000` approaches paper
//! scale.
//!
//! Usage: `cargo run --release -p mp-bench --bin fig3 [--records N] [--seed S]`

use merge_purge::{
    ClusteringConfig, ClusteringMethod, Evaluation, KeySpec, MultiPass, SortedNeighborhood,
};
use mp_bench::{fig3_database, header, pct, row, sec_cell, secs, Args};
use mp_rules::NativeEmployeeTheory;

fn main() {
    let args = Args::from_env();
    let originals: usize = args.get("records", 40_000);
    let seed: u64 = args.get("seed", 3);

    let mut db = fig3_database(originals, seed);
    mp_record::normalize::condition_all(&mut db.records, &mp_record::NicknameTable::standard());
    println!(
        "# Figure 3 — {} originals → {} records, {} true pairs, 32 clusters",
        originals,
        db.records.len(),
        db.truth.true_pair_count()
    );

    let theory = NativeEmployeeTheory::new();
    let keys = KeySpec::standard_three();
    let windows = [2usize, 5, 10, 20];

    println!("\n## (a) Time: average single-pass and multi-pass total (seconds)");
    header(&[
        "window",
        "SNM avg single",
        "Cluster avg single",
        "SNM multi-pass",
        "Cluster multi-pass",
    ]);
    let mut acc_rows: Vec<Vec<String>> = Vec::new();
    for &w in &windows {
        let mut snm_passes = Vec::new();
        let mut cl_passes = Vec::new();
        for key in &keys {
            snm_passes.push(SortedNeighborhood::new(key.clone(), w).run(&db.records, &theory));
            cl_passes.push(
                ClusteringMethod::new(key.clone(), ClusteringConfig::paper_serial(w))
                    .run(&db.records, &theory),
            );
        }
        let avg = |passes: &[merge_purge::PassResult]| {
            passes.iter().map(|p| secs(p.stats.total())).sum::<f64>() / passes.len() as f64
        };
        let snm_avg = avg(&snm_passes);
        let cl_avg = avg(&cl_passes);

        let snm_single_acc: Vec<f64> = snm_passes
            .iter()
            .map(|p| {
                Evaluation::score(
                    &MultiPass::close(db.records.len(), vec![p.clone()]).closed_pairs,
                    &db.truth,
                )
                .percent_detected
            })
            .collect();
        let cl_single_acc: Vec<f64> = cl_passes
            .iter()
            .map(|p| {
                Evaluation::score(
                    &MultiPass::close(db.records.len(), vec![p.clone()]).closed_pairs,
                    &db.truth,
                )
                .percent_detected
            })
            .collect();

        let snm_multi = MultiPass::close(db.records.len(), snm_passes);
        let cl_multi = MultiPass::close(db.records.len(), cl_passes);
        let snm_multi_time: f64 = snm_multi
            .passes
            .iter()
            .map(|p| secs(p.stats.total()))
            .sum::<f64>()
            + secs(snm_multi.closure_time);
        let cl_multi_time: f64 = cl_multi
            .passes
            .iter()
            .map(|p| secs(p.stats.total()))
            .sum::<f64>()
            + secs(cl_multi.closure_time);
        row(&[
            w.to_string(),
            sec_cell(snm_avg),
            sec_cell(cl_avg),
            sec_cell(snm_multi_time),
            sec_cell(cl_multi_time),
        ]);

        let snm_multi_acc = Evaluation::score(&snm_multi.closed_pairs, &db.truth).percent_detected;
        let cl_multi_acc = Evaluation::score(&cl_multi.closed_pairs, &db.truth).percent_detected;
        acc_rows.push(vec![
            w.to_string(),
            pct(snm_single_acc.iter().sum::<f64>() / 3.0),
            pct(cl_single_acc.iter().sum::<f64>() / 3.0),
            pct(snm_multi_acc),
            pct(cl_multi_acc),
        ]);
    }

    println!("\n## (b) Accuracy: average single-pass and multi-pass (percent detected)");
    header(&[
        "window",
        "SNM avg single",
        "Cluster avg single",
        "SNM multi-pass",
        "Cluster multi-pass",
    ]);
    for cells in acc_rows {
        row(&cells);
    }

    println!(
        "\nPaper shape check: clustering single passes are faster than SNM single \
         passes; SNM accuracy edges higher than clustering (fixed-size cluster key); \
         multi-pass jumps over 90% for w > 4 at a time cost roughly 3x a single pass."
    );
}
