//! Minimal JSON value: enough for the serve protocol, no dependencies.
//!
//! The build environment has no serde backend (the serde shim under
//! `shims/` is interface-only), so the daemon's frames are parsed and
//! printed by hand. Supports the full JSON grammar except that numbers
//! are kept as `f64` (every value the protocol carries — record ids,
//! sequence numbers, counters — is exactly representable below 2^53).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (see module docs for the `f64` caveat).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `u64`, when this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0 => {
                Some(n as u64)
            }
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    let mut chunk_start = *pos;
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                out.push_str(utf8(&bytes[chunk_start..*pos])?);
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                out.push_str(utf8(&bytes[chunk_start..*pos])?);
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let code = parse_hex4(bytes, pos)?;
                        let c = if (0xD800..0xDC00).contains(&code) {
                            // Surrogate pair: expect \uDC00-\uDFFF next.
                            if bytes.get(*pos) != Some(&b'\\') || bytes.get(*pos + 1) != Some(&b'u')
                            {
                                return Err("lone high surrogate".into());
                            }
                            *pos += 2;
                            let low = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("invalid low surrogate".into());
                            }
                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            code
                        };
                        out.push(char::from_u32(c).ok_or("invalid \\u escape")?);
                    }
                    other => return Err(format!("bad escape \\{}", *other as char)),
                }
                chunk_start = *pos;
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let hex = bytes
        .get(*pos..*pos + 4)
        .and_then(|h| std::str::from_utf8(h).ok())
        .ok_or("truncated \\u escape")?;
    *pos += 4;
    u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".into())
}

fn utf8(bytes: &[u8]) -> Result<&str, String> {
    std::str::from_utf8(bytes).map_err(|e| format!("invalid utf-8 in string: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let req = Json::parse(r#"{"cmd":"ingest-batch","records":["1|A|B","|C|D"]}"#).unwrap();
        assert_eq!(req.get("cmd").and_then(Json::as_str), Some("ingest-batch"));
        assert_eq!(
            req.get("records").and_then(Json::as_array).unwrap().len(),
            2
        );
        let q = Json::parse(r#" {"cmd" : "query-matches", "id": 17} "#).unwrap();
        assert_eq!(q.get("id").and_then(Json::as_u64), Some(17));
    }

    #[test]
    fn round_trips_strings_with_escapes() {
        let original = Json::Obj(vec![
            ("s".into(), Json::Str("a\"b\\c\nd\te\u{0007}ü€".into())),
            ("n".into(), Json::Num(42.0)),
            ("x".into(), Json::Null),
            ("b".into(), Json::Bool(true)),
        ]);
        let text = original.to_string();
        assert_eq!(Json::parse(&text).unwrap(), original);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::Num(5225.0).to_string(), "5225");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            Json::parse("\"\\uD83D\\uDE00\"").unwrap(),
            Json::Str("😀".into())
        );
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(Json::parse(r#""\uD83D""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse(r#""\q""#).is_err());
        assert!(Json::parse("1e999").is_err(), "infinite numbers rejected");
    }

    #[test]
    fn as_u64_guards() {
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(0.0).as_u64(), Some(0));
    }
}
