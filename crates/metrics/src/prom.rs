//! Prometheus text-format (version 0.0.4) exposition rendering.
//!
//! The build environment has no Prometheus client crate, and the format
//! is deliberately simple: `# HELP` / `# TYPE` comment lines followed by
//! `name{labels} value` samples. [`PromWriter`] renders exactly that,
//! including the cumulative-bucket re-encoding a Prometheus `histogram`
//! requires from mp-trace's log2 nanosecond histograms.
//!
//! ```
//! use mp_metrics::prom::PromWriter;
//!
//! let mut w = PromWriter::new();
//! w.counter("mp_comparisons_total", "Pair comparisons.", 42);
//! w.gauge("mp_queue_depth", "Jobs queued.", 3.0);
//! let text = w.finish();
//! assert!(text.contains("# TYPE mp_comparisons_total counter"));
//! assert!(text.contains("mp_comparisons_total 42"));
//! ```

use crate::HistogramSnapshot;

/// Incremental builder for one exposition document.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` sample value. Prometheus accepts any Go-parseable
/// float; integral values print without a fraction for readability.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl PromWriter {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                self.out.push_str(&escape_label(v));
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(&fmt_value(value));
        self.out.push('\n');
    }

    /// Emits a monotonic counter (one unlabeled sample).
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.sample(name, &[], value as f64);
    }

    /// Emits a gauge (one unlabeled sample).
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        self.sample(name, &[], value);
    }

    /// Emits a gauge family: one sample per label set, one shared
    /// `HELP`/`TYPE` header.
    pub fn gauge_family(&mut self, name: &str, help: &str, samples: &[(Vec<(&str, &str)>, f64)]) {
        self.header(name, help, "gauge");
        for (labels, value) in samples {
            self.sample(name, labels, *value);
        }
    }

    /// Emits a counter family: one sample per label set (e.g. one per
    /// shard), one shared `HELP`/`TYPE` header.
    pub fn counter_family(&mut self, name: &str, help: &str, samples: &[(Vec<(&str, &str)>, u64)]) {
        self.header(name, help, "counter");
        for (labels, value) in samples {
            self.sample(name, labels, *value as f64);
        }
    }

    /// Emits a Prometheus `histogram` re-bucketed from a log2 nanosecond
    /// [`HistogramSnapshot`]: cumulative `_bucket{le="<seconds>"}` lines
    /// for every non-empty log2 bucket, the mandatory `le="+Inf"` bucket,
    /// and `_sum` (seconds) / `_count` samples.
    pub fn histogram_ns(&mut self, name: &str, help: &str, hist: &HistogramSnapshot) {
        self.header(name, help, "histogram");
        let mut cumulative = 0u64;
        for &(lower_ns, n) in &hist.buckets {
            cumulative += n;
            // Inclusive upper bound of the log2 bucket starting at
            // `lower_ns`: 1 for the zero bucket, 2·lower − 1 otherwise.
            let upper_ns = if lower_ns == 0 { 1 } else { 2 * lower_ns - 1 };
            let le = format!("{}", upper_ns as f64 / 1e9);
            self.sample(&format!("{name}_bucket"), &[("le", &le)], cumulative as f64);
        }
        self.sample(
            &format!("{name}_bucket"),
            &[("le", "+Inf")],
            hist.count as f64,
        );
        self.sample(&format!("{name}_sum"), &[], hist.sum_ns as f64 / 1e9);
        self.sample(&format!("{name}_count"), &[], hist.count as f64);
    }

    /// The rendered exposition document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LatencyHistogram;

    #[test]
    fn counters_and_gauges_render_headers_and_samples() {
        let mut w = PromWriter::new();
        w.counter("x_total", "Help text.", 7);
        w.gauge("y", "A gauge.", 1.5);
        let text = w.finish();
        assert!(text.contains("# HELP x_total Help text.\n# TYPE x_total counter\nx_total 7\n"));
        assert!(text.contains("# TYPE y gauge\ny 1.5\n"));
    }

    #[test]
    fn gauge_family_shares_one_header() {
        let mut w = PromWriter::new();
        w.gauge_family(
            "rate",
            "Rates.",
            &[
                (vec![("window", "1m")], 2.0),
                (vec![("window", "5m"), ("counter", "records")], 0.5),
            ],
        );
        let text = w.finish();
        assert_eq!(text.matches("# TYPE rate gauge").count(), 1);
        assert!(text.contains("rate{window=\"1m\"} 2\n"));
        assert!(text.contains("rate{window=\"5m\",counter=\"records\"} 0.5\n"));
    }

    #[test]
    fn counter_family_shares_one_header() {
        let mut w = PromWriter::new();
        w.counter_family(
            "shard_replays_total",
            "Per-shard replays.",
            &[(vec![("shard", "0")], 3), (vec![("shard", "1")], 0)],
        );
        let text = w.finish();
        assert_eq!(
            text.matches("# TYPE shard_replays_total counter").count(),
            1
        );
        assert!(text.contains("shard_replays_total{shard=\"0\"} 3\n"));
        assert!(text.contains("shard_replays_total{shard=\"1\"} 0\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut w = PromWriter::new();
        w.gauge_family("g", "h", &[(vec![("k", "a\"b\\c\nd")], 1.0)]);
        assert!(w.finish().contains("g{k=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let h = LatencyHistogram::new();
        for ns in [100u64, 200, 1_000, 1_000_000] {
            h.record(ns);
        }
        let mut w = PromWriter::new();
        w.histogram_ns("lat_seconds", "Latency.", &h.snapshot());
        let text = w.finish();
        assert!(text.contains("# TYPE lat_seconds histogram"));
        assert!(text.contains("lat_seconds_count 4\n"));
        // _sum is the nanosecond total in seconds.
        assert!(text.contains("lat_seconds_sum 0.0010013\n"), "{text}");
        // Bucket counts must be cumulative and monotone, ending at +Inf.
        let mut last = 0.0;
        let mut saw_inf = false;
        for line in text.lines().filter(|l| l.starts_with("lat_seconds_bucket")) {
            let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts must be monotone: {line}");
            last = v;
            if line.contains("le=\"+Inf\"") {
                saw_inf = true;
                assert_eq!(v, 4.0);
            }
        }
        assert!(saw_inf);
    }

    #[test]
    fn empty_histogram_renders_only_inf_sum_count() {
        let h = LatencyHistogram::new();
        let mut w = PromWriter::new();
        w.histogram_ns("e", "Empty.", &h.snapshot());
        let text = w.finish();
        assert!(text.contains("e_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("e_sum 0\n"));
        assert!(text.contains("e_count 0\n"));
    }
}
