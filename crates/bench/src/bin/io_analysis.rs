//! §3.5 I/O-bound analysis: number of data passes per method, measured.
//!
//! "In the first case, the sorted-neighborhood method, one pass is needed
//! to create keys, log N passes to globally sort the entire database, and
//! one final pass for the window scanning phase. ... In the second case,
//! the clustering method, one pass is needed to assign the records to
//! clusters followed by another pass where each individual cluster is
//! independently processed ... The clustering method, with approximately
//! only 2 passes, would dominate the global sorted-neighborhood method."
//!
//! This binary runs both *disk-resident* engines under a shrinking memory
//! budget and prints the measured pass counts, records moved, and wall
//! time — making the multi-pass I/O cost of §3.5's third case concrete as
//! well (r independent runs multiply everything by r).
//!
//! Usage: `cargo run --release -p mp-bench --bin io_analysis [--records N]`

use merge_purge::KeySpec;
use mp_bench::{header, row, sec_cell, secs, Args};
use mp_datagen::{DatabaseGenerator, GeneratorConfig};
use mp_extsort::{ExternalClustering, ExternalConfig, ExternalSnm};
use mp_rules::NativeEmployeeTheory;
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let originals: usize = args.get("records", 30_000);
    let seed: u64 = args.get("seed", 8);
    let w: usize = args.get("window", 10);

    let db = DatabaseGenerator::new(
        GeneratorConfig::new(originals)
            .duplicate_fraction(0.5)
            .max_duplicates_per_record(5)
            .seed(seed),
    )
    .generate();
    let n = db.records.len();

    let work = std::env::temp_dir().join(format!("mp-io-analysis-{}", std::process::id()));
    std::fs::create_dir_all(&work).expect("create work dir");
    let input = work.join("db.mp");
    mp_record::io::write_records(
        std::fs::File::create(&input).expect("create input"),
        &db.records,
    )
    .expect("write input");

    println!("# §3.5 I/O analysis — {n} records on disk, w = {w}, fan-in 16");
    println!(
        "\nSNM passes = 1 (runs) + ceil(log16(N/M)) (merge levels) + 1 (scan); \
         clustering = 2 always.\n"
    );

    let theory = NativeEmployeeTheory::new();
    header(&[
        "memory budget M",
        "method",
        "data passes",
        "records read",
        "records written",
        "pairs found",
        "wall time",
    ]);
    for m in [n + 1, n / 4, n / 16, n / 64] {
        let config = ExternalConfig {
            memory_records: m,
            fan_in: 16,
            ..ExternalConfig::default()
        };
        let t0 = Instant::now();
        let snm = ExternalSnm::new(KeySpec::last_name_key(), w, config)
            .run(&input, &work, &theory)
            .expect("external snm");
        let snm_time = secs(t0.elapsed());
        row(&[
            m.to_string(),
            "sorted-neighborhood".into(),
            snm.io.data_passes().to_string(),
            snm.io.records_read.to_string(),
            snm.io.records_written.to_string(),
            snm.pairs.len().to_string(),
            sec_cell(snm_time),
        ]);

        let clusters = (n / m.max(1) * 4).clamp(8, 512);
        let t1 = Instant::now();
        match ExternalClustering::new(KeySpec::last_name_key(), clusters, w, config)
            .run(&input, &work, &theory)
        {
            Ok(cl) => {
                let cl_time = secs(t1.elapsed());
                row(&[
                    m.to_string(),
                    format!("clustering ({clusters} clusters)"),
                    cl.io.data_passes().to_string(),
                    cl.io.records_read.to_string(),
                    cl.io.records_written.to_string(),
                    cl.pairs.len().to_string(),
                    sec_cell(cl_time),
                ]);
            }
            Err(e) => {
                // §2.2.1's skew caveat made concrete: a histogram bin is
                // indivisible, so the hottest key prefix bounds how small
                // the memory budget can go.
                row(&[
                    m.to_string(),
                    format!("clustering ({clusters} clusters)"),
                    "infeasible".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("hot cluster exceeds budget ({e})"),
                ]);
            }
        }
    }

    println!(
        "\nPaper shape check: as memory shrinks, SNM pays extra merge passes \
         (2 → 3 → 4 ...) while clustering stays at exactly 2; the multi-pass \
         approach multiplies either count by r = 3 runs."
    );
    let _ = std::fs::remove_dir_all(&work);
}
