//! The purge phase (§5): after the merge finds duplicate groups, collapse
//! each group into one consolidated "survivor" record using per-field
//! survivorship strategies declared in the rule program itself — the
//! paper's point that "the rule base comes in handy here as well".
//!
//! Run with: `cargo run --release --example purge_survivors`

use merge_purge::{KeySpec, MergePurge, Purger};
use mp_datagen::{DatabaseGenerator, GeneratorConfig};
use mp_rules::{RuleProgram, Survivorship};

/// Matching rules *and* the purge policy live in one declarative program.
const PROGRAM: &str = r#"
rule same_ssn {
    when not is_empty(r1.ssn) and r1.ssn == r2.ssn
    then match
}

rule same_name_and_address {
    when r1.last_name == r2.last_name
     and not is_empty(r1.last_name)
     and differ_slightly(r1.first_name, r2.first_name, 0.3)
     and r1.street_number == r2.street_number
     and edit_sim(r1.street_name, r2.street_name) >= 0.8
    then match
}

rule nickname_same_last_zip {
    when nickname_eq(r1.first_name, r2.first_name)
     and r1.last_name == r2.last_name
     and r1.zip == r2.zip
    then match
}

purge {
    first_name     <- longest         // prefer ROBERT over BOB
    middle_initial <- first_non_empty
    last_name      <- most_frequent
    street_name    <- longest         // prefer the unabbreviated form
    apartment      <- first_non_empty
    city           <- most_frequent
    state          <- most_frequent
    zip            <- most_frequent
}
"#;

fn main() {
    let program = RuleProgram::compile(PROGRAM).expect("program compiles");
    let mut db =
        DatabaseGenerator::new(GeneratorConfig::new(3_000).duplicate_fraction(0.5).seed(77))
            .generate();
    let before = db.records.len();

    let result = MergePurge::new(&program)
        .pass(KeySpec::last_name_key(), 10)
        .pass(KeySpec::first_name_key(), 10)
        .run(&mut db.records);
    println!(
        "merge: {} records -> {} duplicate groups",
        before,
        result.classes.len()
    );

    // Build the purger from the program's own purge block; unmentioned
    // fields fall back to `longest`.
    let purger = Purger::from_spec(
        program.purge_spec().expect("program declares purge"),
        Survivorship::Longest,
    );
    let purged = result.purge(&db.records, &purger);
    println!(
        "purge: {} records remain ({} duplicates removed)",
        purged.len(),
        before - purged.len()
    );

    // Show one consolidation: the group's raw members vs its survivor.
    if let Some(class) = result.classes.iter().find(|c| c.len() >= 3) {
        println!("\nraw group:");
        for &id in class {
            let r = &db.records[id as usize];
            println!(
                "  {} {} {} | {} | {}, {} {}",
                r.first_name,
                r.middle_initial,
                r.last_name,
                r.full_address(),
                r.city,
                r.state,
                r.zip
            );
        }
        let members: Vec<&mp_record::Record> =
            class.iter().map(|&i| &db.records[i as usize]).collect();
        let survivor = purger.consolidate(&members);
        println!(
            "survivor:\n  {} {} {} | {} | {}, {} {}",
            survivor.first_name,
            survivor.middle_initial,
            survivor.last_name,
            survivor.full_address(),
            survivor.city,
            survivor.state,
            survivor.zip
        );
    }
}
