//! Structured-tracing integration tests: the counter invariant across every
//! engine configuration, serial/parallel attribution agreement, span-tree
//! shape, Chrome-trace export, and the `--stats -` / `--trace` CLI paths.

use merge_purge::{
    ClusteringConfig, ClusteringMethod, KeySpec, MergeScanSnm, MultiPass, SortedNeighborhood,
};
use merge_purge_repro::metrics::MetricsRecorder;
use mp_datagen::{DatabaseGenerator, GeneratorConfig};
use mp_extsort::{ExternalConfig, ExternalSnm};
use mp_metrics::chrome_trace_json;
use mp_parallel::{parallel_multipass_observed, ParallelPass, ParallelSnm};
use mp_rules::NativeEmployeeTheory;
use std::path::PathBuf;
use std::process::Command;

fn db(n: usize, seed: u64) -> mp_datagen::GeneratedDatabase {
    DatabaseGenerator::new(GeneratorConfig::new(n).duplicate_fraction(0.4).seed(seed)).generate()
}

fn work_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mp-tracing-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ---------------------------------------------------------------------------
// Satellite (a): `comparisons == rule_invocations + pairs_pruned` holds at
// pipeline end for every configuration.
// ---------------------------------------------------------------------------

type EngineRun<'a> = Box<dyn Fn(&MetricsRecorder) + 'a>;

#[test]
fn counter_invariant_holds_for_every_engine_configuration() {
    let db = db(900, 41);
    let theory = NativeEmployeeTheory::new();

    let configs: Vec<(&str, EngineRun<'_>)> = vec![
        (
            "single-pass snm",
            Box::new(|r: &MetricsRecorder| {
                SortedNeighborhood::new(KeySpec::last_name_key(), 8).run_observed(
                    &db.records,
                    &theory,
                    r,
                );
            }),
        ),
        (
            "multi-pass unpruned",
            Box::new(|r| {
                MultiPass::standard_three(8).run_observed(&db.records, &theory, r);
            }),
        ),
        (
            "multi-pass pruned",
            Box::new(|r| {
                MultiPass::standard_three(8)
                    .with_pruning()
                    .run_observed(&db.records, &theory, r);
            }),
        ),
        (
            "clustering",
            Box::new(|r| {
                ClusteringMethod::new(KeySpec::last_name_key(), ClusteringConfig::paper_serial(8))
                    .run_observed(&db.records, &theory, r);
            }),
        ),
        (
            "pruned clustered multi-pass",
            Box::new(|r| {
                MultiPass::new()
                    .clustered(KeySpec::last_name_key(), ClusteringConfig::paper_serial(8))
                    .sorted(KeySpec::first_name_key(), 8)
                    .with_pruning()
                    .run_observed(&db.records, &theory, r);
            }),
        ),
        (
            "merge-fused snm",
            Box::new(|r| {
                MergeScanSnm::new(KeySpec::last_name_key(), 8).run_observed(
                    &db.records,
                    &theory,
                    r,
                );
            }),
        ),
        (
            "parallel multi-pass",
            Box::new(|r| {
                let passes: Vec<ParallelPass> = KeySpec::standard_three()
                    .into_iter()
                    .map(|k| ParallelPass::Snm(ParallelSnm::new(k, 8, 3)))
                    .collect();
                parallel_multipass_observed(&passes, &db.records, &theory, r);
            }),
        ),
    ];

    for (name, run) in configs {
        let recorder = MetricsRecorder::new();
        run(&recorder);
        recorder
            .check_invariants()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }

    // External SNM reads from disk, so it gets its own setup.
    let dir = work_dir("invariant");
    let input = dir.join("db.mp");
    mp_record::io::write_records(std::fs::File::create(&input).unwrap(), &db.records).unwrap();
    let recorder = MetricsRecorder::new();
    ExternalSnm::new(
        KeySpec::last_name_key(),
        8,
        ExternalConfig {
            memory_records: 100,
            fan_in: 4,
            ..ExternalConfig::default()
        },
    )
    .run_observed(&input, &dir, &theory, &recorder)
    .unwrap();
    recorder
        .check_invariants()
        .unwrap_or_else(|e| panic!("external snm: {e}"));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Satellite (c): serial and parallel runs produce identical attribution.
// ---------------------------------------------------------------------------

#[test]
fn serial_and_parallel_runs_produce_identical_attribution() {
    let db = db(1_000, 42);
    let theory = NativeEmployeeTheory::new();
    let w = 9;

    let serial_rec = MetricsRecorder::new();
    let serial = MultiPass::standard_three(w).run_observed(&db.records, &theory, &serial_rec);

    let passes: Vec<ParallelPass> = KeySpec::standard_three()
        .into_iter()
        .map(|k| ParallelPass::Snm(ParallelSnm::new(k, w, 4)))
        .collect();
    let parallel_rec = MetricsRecorder::new().with_tracing();
    let parallel = parallel_multipass_observed(&passes, &db.records, &theory, &parallel_rec);

    // Attribution is a pure function of the per-pass pair sets, which the
    // band-replicated fragments reproduce exactly — so provenance, not just
    // totals, must agree between the engines.
    assert_eq!(serial.attribution, parallel.attribution);
    let first_found: u64 = serial
        .attribution
        .passes
        .iter()
        .map(|p| p.pairs_first_found)
        .sum();
    assert_eq!(first_found, serial.attribution.distinct_matched_pairs);
    assert!(serial.attribution.distinct_matched_pairs > 0);
}

// ---------------------------------------------------------------------------
// Span trees: shape of the serial run, one track per thread in parallel
// runs, and a Perfetto-loadable Chrome export.
// ---------------------------------------------------------------------------

#[test]
fn serial_multipass_span_tree_has_expected_shape() {
    let db = db(600, 43);
    let theory = NativeEmployeeTheory::new();
    let recorder = MetricsRecorder::new().with_tracing();
    let _ = MultiPass::standard_three(6).run_observed(&db.records, &theory, &recorder);

    let tracks = recorder.drain_spans();
    assert_eq!(tracks.len(), 1, "serial run records exactly one track");
    let roots = tracks[0].tree();
    let pass_nodes: Vec<_> = roots.iter().filter(|n| n.name == "pass").collect();
    assert_eq!(pass_nodes.len(), 3);
    for pass in &pass_nodes {
        let children: Vec<&str> = pass.children.iter().map(|c| c.name).collect();
        assert_eq!(
            children,
            ["key_build", "sort", "window_scan"],
            "pass phases in order"
        );
        assert!(pass.label.as_deref().unwrap_or("").contains("w=6"));
        // Children nest inside the parent's time interval.
        for c in &pass.children {
            assert!(c.start_ns >= pass.start_ns);
            assert!(c.start_ns + c.dur_ns <= pass.start_ns + pass.dur_ns + 1_000);
        }
    }
    assert_eq!(
        roots.iter().filter(|n| n.name == "closure_merge").count(),
        1
    );

    // A second drain yields nothing: the collector is consumed.
    assert!(recorder.drain_spans().is_empty());
}

#[test]
fn parallel_run_records_one_track_per_thread_and_exports_chrome_trace() {
    let db = db(800, 44);
    let theory = NativeEmployeeTheory::new();
    let procs = 3;
    let passes: Vec<ParallelPass> = KeySpec::standard_three()
        .into_iter()
        .map(|k| ParallelPass::Snm(ParallelSnm::new(k, 7, procs)))
        .collect();

    let recorder = MetricsRecorder::new().with_tracing();
    let _ = parallel_multipass_observed(&passes, &db.records, &theory, &recorder);
    let tracks = recorder.drain_spans();

    // Main thread + 3 pass threads + 3x3 fragment worker threads.
    assert_eq!(tracks.len(), 1 + 3 + 3 * procs, "one track per thread");
    let all_names: Vec<&str> = tracks
        .iter()
        .flat_map(|t| t.spans.iter().map(|s| s.name))
        .collect();
    assert_eq!(
        all_names.iter().filter(|&&n| n == "fragment").count(),
        3 * procs
    );
    assert!(all_names.contains(&"band_overlap"));
    assert!(all_names.contains(&"coordinator_merge"));

    let json = chrome_trace_json(&tracks);
    // One thread_name metadata event per track, complete events for spans,
    // and distinct tids so Perfetto renders one horizontal track each.
    assert_eq!(
        json.matches("\"ph\":\"M\"").count(),
        tracks.len(),
        "thread metadata per track"
    );
    assert!(json.matches("\"ph\":\"X\"").count() >= all_names.len());
    for t in &tracks {
        assert!(json.contains(&format!("\"tid\":{}", t.track)));
    }
}

// ---------------------------------------------------------------------------
// CLI: `--stats -` writes the report to stdout; `--trace` writes a Chrome
// trace with complete events; attribution + rules render before phases_ns
// (inside the deterministic section).
// ---------------------------------------------------------------------------

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mergepurge"))
}

#[test]
fn cli_stats_dash_prints_report_to_stdout_and_trace_loads() {
    let dir = work_dir("cli");
    let db = dir.join("db.mp");
    let trace = dir.join("trace.json");
    let out = bin()
        .args(["generate", "--out", db.to_str().unwrap()])
        .args(["--records", "2000", "--duplicates", "0.3", "--seed", "11"])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args(["dedupe", "--input", db.to_str().unwrap()])
        .args([
            "--stats",
            "-",
            "--trace",
            trace.to_str().unwrap(),
            "--progress",
        ])
        .output()
        .expect("run dedupe");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // With `--stats -` stdout is pure JSON: human output goes to stderr.
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json = stdout.trim();
    assert!(json.starts_with('{') && json.ends_with('}'), "{stdout}");
    for section in [
        "\"schema\": 2",
        "\"counters\"",
        "\"attribution\"",
        "\"rules\"",
        "\"phases_ns\"",
        "\"latency\"",
        "\"span_tree\"",
    ] {
        assert!(json.contains(section), "missing {section} in:\n{json}");
    }
    // Deterministic sections precede wall-clock ones.
    let phases_at = json.find("\"phases_ns\"").unwrap();
    assert!(json.find("\"attribution\"").unwrap() < phases_at);
    assert!(json.find("\"rules\"").unwrap() < phases_at);
    assert!(json.find("\"latency\"").unwrap() > phases_at);
    // Quantiles made it into the latency section.
    for q in ["\"p50_ns\"", "\"p95_ns\"", "\"p99_ns\""] {
        assert!(json.contains(q), "missing {q}");
    }

    // The progress heartbeat went to stderr, not stdout.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("progress:"), "{stderr}");
    assert!(!stdout.contains("progress:"));

    // The Chrome trace is JSON with >0 complete events and named tracks.
    let trace_json = std::fs::read_to_string(&trace).unwrap();
    assert!(trace_json.contains("\"traceEvents\""));
    assert!(trace_json.matches("\"ph\":\"X\"").count() > 0);
    assert!(trace_json.contains("\"thread_name\""));

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Golden file: the deterministic section of the seeded 10k report is
// checked in; any counter, attribution, or rule-count drift fails here.
// ---------------------------------------------------------------------------

#[test]
fn seeded_10k_deterministic_section_matches_golden_file() {
    let dir = work_dir("golden");
    let db = dir.join("db10k.mp");
    let stats = dir.join("stats.json");
    let out = bin()
        .args(["generate", "--out", db.to_str().unwrap()])
        .args(["--records", "10000", "--duplicates", "0.3", "--seed", "7"])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = bin()
        .args(["dedupe", "--input", db.to_str().unwrap()])
        .args(["--stats", stats.to_str().unwrap()])
        .output()
        .expect("run dedupe");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let json = std::fs::read_to_string(&stats).unwrap();
    let deterministic = json.split("\"phases_ns\"").next().unwrap();
    let golden = include_str!("golden/stats_10k_counters.json");
    assert_eq!(
        deterministic, golden,
        "deterministic report section drifted from tests/golden/stats_10k_counters.json; \
         if the change is intentional, regenerate the golden file (see docs/TRACING.md)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
