//! Sort-key specification and extraction.
//!
//! §2.4: "A key is defined to be a sequence of a subset of attributes, or
//! substrings within the attributes, chosen from the record. ... Attributes
//! that appear first in the key have a higher priority than those appearing
//! after them." Key extraction is knowledge-intensive and error-prone by
//! design — keys inherit the corruption of the fields they are built from,
//! which is exactly why no single key suffices and the multi-pass approach
//! wins.

use mp_record::{Field, Record};

/// One component of a key, applied to a field in priority order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyPart {
    /// The entire field value.
    Full(Field),
    /// The first `n` characters of the field.
    Prefix(Field, usize),
    /// The first non-blank character of the field (the paper's example uses
    /// "the first non blank character of the first name sub-field"). Note
    /// that a character whose uppercase form expands (e.g. 'ᾼ' → "ΑΙ")
    /// contributes every expanded character.
    FirstNonBlank(Field),
    /// The first `n` decimal digits found in the field ("the first six
    /// digits of the social security field").
    Digits(Field, usize),
}

impl KeyPart {
    /// Appends this part's contribution for `record` to `out`, upper-cased,
    /// with non-alphanumerics dropped so punctuation noise cannot reorder
    /// the sort.
    pub fn append(&self, record: &Record, out: &mut String) {
        match *self {
            KeyPart::Full(f) => push_clean(record.field(f), usize::MAX, out),
            KeyPart::Prefix(f, n) => push_clean(record.field(f), n, out),
            KeyPart::FirstNonBlank(f) => {
                if let Some(c) = record.field(f).chars().find(|c| !c.is_whitespace()) {
                    for u in c.to_uppercase() {
                        out.push(u);
                    }
                }
            }
            KeyPart::Digits(f, n) => {
                out.extend(record.field(f).chars().filter(char::is_ascii_digit).take(n));
            }
        }
    }
}

fn push_clean(s: &str, limit: usize, out: &mut String) {
    // Conditioned records are pure ASCII, so the common case avoids the
    // unicode uppercase machinery and runs byte-at-a-time.
    if s.is_ascii() {
        out.extend(
            s.bytes()
                .filter(u8::is_ascii_alphanumeric)
                .map(|b| b.to_ascii_uppercase() as char)
                .take(limit),
        );
        return;
    }
    out.extend(
        s.chars()
            .filter(|c| c.is_alphanumeric())
            .flat_map(char::to_uppercase)
            .take(limit),
    );
}

/// An ordered sequence of [`KeyPart`]s, named for reports.
///
/// ```
/// use merge_purge::KeySpec;
/// use mp_record::{Record, RecordId};
/// let mut r = Record::empty(RecordId(0));
/// r.last_name = "O'BRIEN".into();
/// r.first_name = " MAURICIO".into();
/// r.ssn = "123-45-6789".into();
/// assert_eq!(KeySpec::last_name_key().extract(&r), "OBRIENM123456");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeySpec {
    name: String,
    parts: Vec<KeyPart>,
}

impl KeySpec {
    /// A key from explicit parts.
    pub fn new(name: impl Into<String>, parts: Vec<KeyPart>) -> Self {
        KeySpec {
            name: name.into(),
            parts,
        }
    }

    /// Display name of the key.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The component parts.
    pub fn parts(&self) -> &[KeyPart] {
        &self.parts
    }

    /// Extracts the key for one record into a fresh string.
    pub fn extract(&self, record: &Record) -> String {
        let mut out = String::with_capacity(24);
        self.extract_into(record, &mut out);
        out
    }

    /// Extracts the key, appending into a caller-provided buffer (cleared
    /// first). The create-keys phase runs this for every record; reusing the
    /// buffer keeps it allocation-free.
    pub fn extract_into(&self, record: &Record, out: &mut String) {
        out.clear();
        self.extract_into_append(record, out);
    }

    /// Extracts the key, appending to `out` *without* clearing it first —
    /// the building block [`KeyArena`] uses to pack every key of a pass
    /// into one buffer.
    pub fn extract_into_append(&self, record: &Record, out: &mut String) {
        for part in &self.parts {
            part.append(record, out);
        }
    }

    /// Paper run 1: last name principal, then first initial, then the first
    /// six SSN digits.
    pub fn last_name_key() -> Self {
        KeySpec::new(
            "last-name",
            vec![
                KeyPart::Full(Field::LastName),
                KeyPart::FirstNonBlank(Field::FirstName),
                KeyPart::Digits(Field::Ssn, 6),
            ],
        )
    }

    /// Paper run 2: first name principal.
    pub fn first_name_key() -> Self {
        KeySpec::new(
            "first-name",
            vec![
                KeyPart::Full(Field::FirstName),
                KeyPart::FirstNonBlank(Field::LastName),
                KeyPart::Digits(Field::Ssn, 6),
            ],
        )
    }

    /// Paper run 3: street address principal (street name, then number,
    /// then city prefix).
    pub fn address_key() -> Self {
        KeySpec::new(
            "address",
            vec![
                KeyPart::Full(Field::StreetName),
                KeyPart::Digits(Field::StreetNumber, 6),
                KeyPart::Prefix(Field::City, 4),
            ],
        )
    }

    /// An SSN-principal key (the §2.4 example of a *bad* principal field
    /// when digits transpose).
    pub fn ssn_key() -> Self {
        KeySpec::new(
            "ssn",
            vec![
                KeyPart::Digits(Field::Ssn, 9),
                KeyPart::Prefix(Field::LastName, 4),
            ],
        )
    }

    /// The three standard paper keys, in the order used for the figures.
    pub fn standard_three() -> Vec<KeySpec> {
        vec![
            KeySpec::last_name_key(),
            KeySpec::first_name_key(),
            KeySpec::address_key(),
        ]
    }
}

/// Arena of extracted sort keys: one shared byte buffer plus
/// `(offset, len)` spans, indexed by record position.
///
/// The create-keys phase used to build one heap `String` per record per
/// pass; for a three-pass run over a million records that is three million
/// allocations before any comparison happens. The arena stores every key
/// contiguously in a single buffer and hands out `&str` slices, so a pass
/// performs O(1) allocations (amortized growth of two vectors) regardless
/// of record count.
///
/// ```
/// use merge_purge::{KeyArena, KeySpec};
/// use mp_record::{Record, RecordId};
///
/// let mut r = Record::empty(RecordId(0));
/// r.last_name = "HERNANDEZ".into();
/// let arena = KeyArena::extract(&KeySpec::last_name_key(), std::slice::from_ref(&r));
/// assert_eq!(arena.len(), 1);
/// assert_eq!(arena.get(0), "HERNANDEZ");
/// ```
#[derive(Debug, Clone, Default)]
pub struct KeyArena {
    buf: String,
    spans: Vec<(u32, u32)>,
}

impl KeyArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty arena pre-sized for `records` keys of ~`avg_key_len` bytes.
    pub fn with_capacity(records: usize, avg_key_len: usize) -> Self {
        KeyArena {
            buf: String::with_capacity(records * avg_key_len),
            spans: Vec::with_capacity(records),
        }
    }

    /// Extracts `key` for every record into a fresh arena.
    ///
    /// # Panics
    ///
    /// Panics if the total key bytes exceed `u32::MAX` (≈4 GiB of key
    /// text; beyond that the external-sort path is the right tool).
    pub fn extract(key: &KeySpec, records: &[Record]) -> Self {
        let mut arena = KeyArena::with_capacity(records.len(), 20);
        for r in records {
            arena.push_with(|buf| key.extract_into_append(r, buf));
        }
        arena
    }

    /// Appends one key produced by `fill`, which appends bytes to the
    /// arena's buffer (and must not touch what is already there).
    pub fn push_with(&mut self, fill: impl FnOnce(&mut String)) {
        let start = self.buf.len();
        fill(&mut self.buf);
        let len = self.buf.len() - start;
        assert!(
            self.buf.len() <= u32::MAX as usize,
            "key arena exceeds 4 GiB"
        );
        self.spans.push((start as u32, len as u32));
    }

    /// Appends a ready-made key string.
    pub fn push_str(&mut self, key: &str) {
        self.push_with(|buf| buf.push_str(key));
    }

    /// Key of record `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &str {
        let (start, len) = self.spans[i];
        &self.buf[start as usize..(start + len) as usize]
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when the arena holds no keys.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Iterates over the keys in record order.
    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        self.spans
            .iter()
            .map(|&(start, len)| &self.buf[start as usize..(start + len) as usize])
    }

    /// Appends every key of `other`, renumbering them after this arena's
    /// keys (the parallel engines build one arena per worker chunk and
    /// concatenate — a straight memcpy, not a per-key reallocation).
    pub fn append(&mut self, other: &KeyArena) {
        let base = self.buf.len();
        assert!(
            base + other.buf.len() <= u32::MAX as usize,
            "key arena exceeds 4 GiB"
        );
        self.buf.push_str(&other.buf);
        self.spans.extend(
            other
                .spans
                .iter()
                .map(|&(start, len)| (start + base as u32, len)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_record::RecordId;

    fn sample() -> Record {
        let mut r = Record::empty(RecordId(0));
        r.ssn = "123456789".into();
        r.first_name = "MAURICIO".into();
        r.last_name = "HERNANDEZ".into();
        r.street_number = "500".into();
        r.street_name = "WEST 120TH STREET".into();
        r.city = "NEW YORK".into();
        r
    }

    #[test]
    fn paper_key_shapes() {
        let r = sample();
        assert_eq!(KeySpec::last_name_key().extract(&r), "HERNANDEZM123456");
        assert_eq!(KeySpec::first_name_key().extract(&r), "MAURICIOH123456");
        assert_eq!(KeySpec::address_key().extract(&r), "WEST120THSTREET500NEWY");
        assert_eq!(KeySpec::ssn_key().extract(&r), "123456789HERN");
    }

    #[test]
    fn punctuation_and_case_insensitive() {
        let mut a = sample();
        a.last_name = "o'brien-SMITH".into();
        let mut b = sample();
        b.last_name = "OBRIENSMITH".into();
        let k = KeySpec::new("t", vec![KeyPart::Full(Field::LastName)]);
        assert_eq!(k.extract(&a), k.extract(&b));
    }

    #[test]
    fn prefix_and_digit_truncation() {
        let r = sample();
        let k = KeySpec::new(
            "t",
            vec![
                KeyPart::Prefix(Field::City, 3),
                KeyPart::Digits(Field::Ssn, 2),
            ],
        );
        // "NEW YORK" -> alphanumerics "NEWYORK" -> prefix 3 "NEW".
        assert_eq!(k.extract(&r), "NEW12");
    }

    #[test]
    fn first_non_blank_of_empty_contributes_nothing() {
        let mut r = sample();
        r.first_name = "   ".into();
        let k = KeySpec::new("t", vec![KeyPart::FirstNonBlank(Field::FirstName)]);
        assert_eq!(k.extract(&r), "");
        r.first_name = "  joe".into();
        assert_eq!(k.extract(&r), "J");
    }

    #[test]
    fn extract_into_reuses_buffer() {
        let r = sample();
        let k = KeySpec::last_name_key();
        let mut buf = String::from("STALE");
        k.extract_into(&r, &mut buf);
        assert_eq!(buf, "HERNANDEZM123456");
    }

    #[test]
    fn corrupted_principal_field_corrupts_key_head() {
        // §2.4: errors in the principal field move records far apart.
        let a = sample();
        let mut b = sample();
        b.last_name = "GERNANDEZ".into(); // typo in first character
        let k = KeySpec::last_name_key();
        assert_ne!(k.extract(&a).as_bytes()[0], k.extract(&b).as_bytes()[0]);
        // But the head of the first-name key (the full first name) is
        // unaffected; only the trailing last-initial component changes.
        let k2 = KeySpec::first_name_key();
        assert_eq!(k2.extract(&a)[..8], k2.extract(&b)[..8]);
    }

    #[test]
    fn arena_matches_per_record_extraction() {
        let records: Vec<Record> = (0..5u32)
            .map(|i| {
                let mut r = sample();
                r.id = RecordId(i);
                r.last_name = format!("NAME{i}");
                r
            })
            .collect();
        let key = KeySpec::last_name_key();
        let arena = KeyArena::extract(&key, &records);
        assert_eq!(arena.len(), 5);
        assert!(!arena.is_empty());
        for (i, r) in records.iter().enumerate() {
            assert_eq!(arena.get(i), key.extract(r));
        }
        let collected: Vec<&str> = arena.iter().collect();
        assert_eq!(collected.len(), 5);
        assert_eq!(collected[3], arena.get(3));
    }

    #[test]
    fn arena_append_renumbers_spans() {
        let mut a = KeyArena::new();
        a.push_str("ALPHA");
        a.push_str("");
        let mut b = KeyArena::new();
        b.push_str("BETA");
        a.append(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(0), "ALPHA");
        assert_eq!(a.get(1), "");
        assert_eq!(a.get(2), "BETA");
    }

    #[test]
    fn arena_empty_input() {
        let arena = KeyArena::extract(&KeySpec::last_name_key(), &[]);
        assert!(arena.is_empty());
        assert_eq!(arena.len(), 0);
    }

    #[test]
    fn standard_three_distinct_names() {
        let keys = KeySpec::standard_three();
        assert_eq!(keys.len(), 3);
        let names: std::collections::HashSet<&str> = keys.iter().map(KeySpec::name).collect();
        assert_eq!(names.len(), 3);
    }
}
