//! The paper's "typewriter" distance: a weighted edit distance in which
//! substituting physically adjacent QWERTY keys is cheaper than substituting
//! distant ones, modeling fat-finger typing errors.

/// Row-major QWERTY layout used to derive key coordinates.
const ROWS: [&[u8]; 4] = [b"1234567890", b"QWERTYUIOP", b"ASDFGHJKL", b"ZXCVBNM"];

/// Horizontal offset of each row on a physical keyboard, in key-widths.
const ROW_OFFSET: [f64; 4] = [0.0, 0.5, 0.75, 1.25];

fn key_pos(c: char) -> Option<(f64, f64)> {
    let c = c.to_ascii_uppercase();
    for (r, row) in ROWS.iter().enumerate() {
        if let Some(col) = row.iter().position(|&k| k as char == c) {
            return Some((r as f64, ROW_OFFSET[r] + col as f64));
        }
    }
    None
}

/// Substitution cost between two characters based on QWERTY key geometry.
///
/// Returns `0.0` for identical characters, `0.5` for keys within Euclidean
/// distance ~1.5 (immediate neighbours, including diagonals), and `1.0`
/// otherwise (or when either character is not a QWERTY key).
///
/// ```
/// use mp_strsim::keyboard_substitution_cost;
/// assert_eq!(keyboard_substitution_cost('A', 'A'), 0.0);
/// assert_eq!(keyboard_substitution_cost('A', 'S'), 0.5); // adjacent
/// assert_eq!(keyboard_substitution_cost('A', 'P'), 1.0); // distant
/// ```
pub fn keyboard_substitution_cost(a: char, b: char) -> f64 {
    if a.eq_ignore_ascii_case(&b) {
        return 0.0;
    }
    match (key_pos(a), key_pos(b)) {
        (Some((r1, c1)), Some((r2, c2))) => {
            let d2 = (r1 - r2).powi(2) + (c1 - c2).powi(2);
            if d2 <= 2.25 {
                0.5
            } else {
                1.0
            }
        }
        _ => 1.0,
    }
}

/// Weighted edit distance using [`keyboard_substitution_cost`] for
/// substitutions and unit cost for insertions and deletions.
///
/// A string mistyped with adjacent-key slips scores roughly half the plain
/// edit distance, so a threshold tuned for edit distance becomes more
/// permissive for plausible typing errors and stays strict for arbitrary
/// character changes.
///
/// ```
/// use mp_strsim::keyboard_distance;
/// // 'N' for 'M' is an adjacent-key slip:
/// assert_eq!(keyboard_distance("SMITH", "SNITH"), 0.5);
/// // 'X' for 'M' is not:
/// assert_eq!(keyboard_distance("SMITH", "SXITH"), 1.0);
/// ```
pub fn keyboard_distance(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len() as f64;
    }
    if b.is_empty() {
        return a.len() as f64;
    }
    let w = b.len() + 1;
    let mut prev: Vec<f64> = (0..w).map(|j| j as f64).collect();
    let mut cur = vec![0.0f64; w];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = (i + 1) as f64;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + keyboard_substitution_cost(ca, cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1.0).min(cur[j] + 1.0);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein;

    #[test]
    fn identical_strings_cost_zero() {
        assert_eq!(keyboard_distance("QWERTY", "QWERTY"), 0.0);
    }

    #[test]
    fn adjacency_examples() {
        assert_eq!(keyboard_substitution_cost('Q', 'W'), 0.5);
        assert_eq!(keyboard_substitution_cost('G', 'H'), 0.5);
        assert_eq!(keyboard_substitution_cost('G', 'T'), 0.5); // diagonal up
        assert_eq!(keyboard_substitution_cost('G', 'B'), 0.5); // diagonal down
        assert_eq!(keyboard_substitution_cost('Q', 'P'), 1.0);
        assert_eq!(keyboard_substitution_cost('Z', '1'), 1.0);
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(keyboard_substitution_cost('a', 'S'), 0.5);
        assert_eq!(keyboard_distance("smith", "SMITH"), 0.0);
    }

    #[test]
    fn never_exceeds_plain_edit_distance() {
        for (a, b) in [("KITTEN", "SITTING"), ("SMITH", "SNITH"), ("", "AB")] {
            assert!(keyboard_distance(a, b) <= levenshtein(a, b) as f64 + 1e-9);
        }
    }

    #[test]
    fn non_keyboard_chars_cost_full() {
        assert_eq!(keyboard_substitution_cost('A', 'é'), 1.0);
        assert_eq!(keyboard_substitution_cost('-', '_'), 1.0);
    }

    #[test]
    fn insertion_deletion_unit_cost() {
        assert_eq!(keyboard_distance("AB", "ABC"), 1.0);
        assert_eq!(keyboard_distance("ABC", "AB"), 1.0);
        assert_eq!(keyboard_distance("", "XYZ"), 3.0);
    }
}
