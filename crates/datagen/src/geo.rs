//! Geographic corpora: cities, states, zip ranges, and street names.
//!
//! The paper uses publicly available U.S. lists (18,670 city names for the
//! spell-correction corpus). We embed a seed of real cities with their
//! states and representative zip prefixes, expand synthetically to the
//! paper's corpus size for the spell corrector, and compose street names
//! from common patterns. City, state, and zip are generated *consistently*
//! (a record's zip matches its city's range), which the equational theory's
//! address rules rely on.

use rand::Rng;

/// (city, state, zip prefix) seed — real U.S. cities.
const CITY_SEEDS: [(&str, &str, &str); 80] = [
    ("NEW YORK", "NY", "100"),
    ("LOS ANGELES", "CA", "900"),
    ("CHICAGO", "IL", "606"),
    ("HOUSTON", "TX", "770"),
    ("PHOENIX", "AZ", "850"),
    ("PHILADELPHIA", "PA", "191"),
    ("SAN ANTONIO", "TX", "782"),
    ("SAN DIEGO", "CA", "921"),
    ("DALLAS", "TX", "752"),
    ("SAN JOSE", "CA", "951"),
    ("AUSTIN", "TX", "787"),
    ("JACKSONVILLE", "FL", "322"),
    ("FORT WORTH", "TX", "761"),
    ("COLUMBUS", "OH", "432"),
    ("CHARLOTTE", "NC", "282"),
    ("INDIANAPOLIS", "IN", "462"),
    ("SAN FRANCISCO", "CA", "941"),
    ("SEATTLE", "WA", "981"),
    ("DENVER", "CO", "802"),
    ("WASHINGTON", "DC", "200"),
    ("BOSTON", "MA", "021"),
    ("EL PASO", "TX", "799"),
    ("NASHVILLE", "TN", "372"),
    ("DETROIT", "MI", "482"),
    ("OKLAHOMA CITY", "OK", "731"),
    ("PORTLAND", "OR", "972"),
    ("LAS VEGAS", "NV", "891"),
    ("MEMPHIS", "TN", "381"),
    ("LOUISVILLE", "KY", "402"),
    ("BALTIMORE", "MD", "212"),
    ("MILWAUKEE", "WI", "532"),
    ("ALBUQUERQUE", "NM", "871"),
    ("TUCSON", "AZ", "857"),
    ("FRESNO", "CA", "937"),
    ("SACRAMENTO", "CA", "958"),
    ("MESA", "AZ", "852"),
    ("KANSAS CITY", "MO", "641"),
    ("ATLANTA", "GA", "303"),
    ("OMAHA", "NE", "681"),
    ("COLORADO SPRINGS", "CO", "809"),
    ("RALEIGH", "NC", "276"),
    ("MIAMI", "FL", "331"),
    ("LONG BEACH", "CA", "908"),
    ("VIRGINIA BEACH", "VA", "234"),
    ("OAKLAND", "CA", "946"),
    ("MINNEAPOLIS", "MN", "554"),
    ("TULSA", "OK", "741"),
    ("ARLINGTON", "TX", "760"),
    ("TAMPA", "FL", "336"),
    ("NEW ORLEANS", "LA", "701"),
    ("WICHITA", "KS", "672"),
    ("CLEVELAND", "OH", "441"),
    ("BAKERSFIELD", "CA", "933"),
    ("AURORA", "CO", "800"),
    ("ANAHEIM", "CA", "928"),
    ("HONOLULU", "HI", "968"),
    ("SANTA ANA", "CA", "927"),
    ("RIVERSIDE", "CA", "925"),
    ("CORPUS CHRISTI", "TX", "784"),
    ("LEXINGTON", "KY", "405"),
    ("STOCKTON", "CA", "952"),
    ("HENDERSON", "NV", "890"),
    ("SAINT PAUL", "MN", "551"),
    ("ST LOUIS", "MO", "631"),
    ("CINCINNATI", "OH", "452"),
    ("PITTSBURGH", "PA", "152"),
    ("GREENSBORO", "NC", "274"),
    ("ANCHORAGE", "AK", "995"),
    ("PLANO", "TX", "750"),
    ("LINCOLN", "NE", "685"),
    ("ORLANDO", "FL", "328"),
    ("IRVINE", "CA", "926"),
    ("NEWARK", "NJ", "071"),
    ("TOLEDO", "OH", "436"),
    ("DURHAM", "NC", "277"),
    ("CHULA VISTA", "CA", "919"),
    ("FORT WAYNE", "IN", "468"),
    ("JERSEY CITY", "NJ", "073"),
    ("ST PETERSBURG", "FL", "337"),
    ("LAREDO", "TX", "780"),
];

/// Name stems for synthetic small towns (corpus expansion).
const TOWN_STEMS: [&str; 40] = [
    "SPRING", "OAK", "MAPLE", "CEDAR", "PINE", "ELM", "RIVER", "LAKE", "HILL", "GREEN", "FAIR",
    "CLEAR", "MILL", "STONE", "BROOK", "GLEN", "WEST", "EAST", "NORTH", "SOUTH", "GRAND", "UNION",
    "LIBERTY", "FRANKLIN", "MADISON", "CLINTON", "SALEM", "GEORGE", "MARION", "CHESTER", "BRISTOL",
    "DOVER", "CAMDEN", "ASH", "BIRCH", "WALNUT", "HAZEL", "SUNSET", "HARBOR", "MEADOW",
];

/// Suffixes for synthetic small towns.
const TOWN_SUFFIXES: [&str; 18] = [
    "FIELD",
    "VILLE",
    "TOWN",
    "BURG",
    "PORT",
    "FORD",
    "HAVEN",
    " CITY",
    " FALLS",
    " SPRINGS",
    " HEIGHTS",
    " JUNCTION",
    " GROVE",
    " PARK",
    " RIDGE",
    " VALLEY",
    "WOOD",
    "DALE",
];

/// Street base names for address generation.
const STREET_NAMES: [&str; 40] = [
    "MAIN",
    "OAK",
    "PARK",
    "ELM",
    "MAPLE",
    "WASHINGTON",
    "LAKE",
    "HILL",
    "WALNUT",
    "SPRING",
    "CHURCH",
    "BROADWAY",
    "CENTER",
    "HIGHLAND",
    "MILL",
    "RIVER",
    "FRANKLIN",
    "JEFFERSON",
    "MADISON",
    "JACKSON",
    "LINCOLN",
    "CHESTNUT",
    "PLEASANT",
    "CEDAR",
    "PROSPECT",
    "COLLEGE",
    "FOREST",
    "GARDEN",
    "SUNSET",
    "MEADOW",
    "VALLEY",
    "UNION",
    "SECOND",
    "THIRD",
    "FOURTH",
    "FIFTH",
    "AMSTERDAM",
    "COLUMBUS",
    "RIVERSIDE",
    "GRANT",
];

/// Street types paired with the expansions used by record conditioning.
const STREET_TYPES: [&str; 8] = [
    "STREET",
    "AVENUE",
    "ROAD",
    "DRIVE",
    "LANE",
    "BOULEVARD",
    "COURT",
    "PLACE",
];

/// One city with its state and zip prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct City {
    /// City name.
    pub name: &'static str,
    /// Two-letter state code.
    pub state: &'static str,
    /// Three-digit zip prefix; full zips append two random digits.
    pub zip_prefix: &'static str,
}

/// Uniformly samples a real seed city.
pub fn random_city<R: Rng>(rng: &mut R) -> City {
    let (name, state, zip_prefix) = CITY_SEEDS[rng.gen_range(0..CITY_SEEDS.len())];
    City {
        name,
        state,
        zip_prefix,
    }
}

/// A full, consistent zip code for `city`.
pub fn random_zip<R: Rng>(city: City, rng: &mut R) -> String {
    format!("{}{:02}", city.zip_prefix, rng.gen_range(0..100))
}

/// A random street address as `(number, street name)`.
pub fn random_street<R: Rng>(rng: &mut R) -> (String, String) {
    let number = rng.gen_range(1..10_000).to_string();
    // Street names are skewed like personal names: every town has a MAIN
    // STREET, few have a RIVERSIDE BOULEVARD.
    let name = STREET_NAMES[crate::names::zipf_index(STREET_NAMES.len(), 2.0, rng)];
    let ty = STREET_TYPES[rng.gen_range(0..STREET_TYPES.len())];
    (number, format!("{name} {ty}"))
}

/// A random apartment designator, empty ~60% of the time.
pub fn random_apartment<R: Rng>(rng: &mut R) -> String {
    if rng.gen_bool(0.6) {
        String::new()
    } else {
        format!(
            "APT {}{}",
            rng.gen_range(1..30),
            (b'A' + rng.gen_range(0..6)) as char
        )
    }
}

/// The spell-correction corpus: every seed city plus synthetic towns up to
/// `size` distinct names (the paper's corpus held 18,670).
pub fn city_corpus(size: usize) -> Vec<String> {
    let mut corpus: Vec<String> = CITY_SEEDS
        .iter()
        .take(size)
        .map(|(n, _, _)| (*n).to_string())
        .collect();
    let mut n = 0usize;
    while corpus.len() < size {
        let stem = TOWN_STEMS[n % TOWN_STEMS.len()];
        let suffix = TOWN_SUFFIXES[(n / TOWN_STEMS.len()) % TOWN_SUFFIXES.len()];
        let round = n / (TOWN_STEMS.len() * TOWN_SUFFIXES.len());
        n += 1;
        let name = if round == 0 {
            format!("{stem}{suffix}")
        } else {
            // Disambiguate further rounds with a directional prefix cycle.
            let dir = [
                "NEW ", "OLD ", "UPPER ", "LOWER ", "PORT ", "FORT ", "MOUNT ", "LAKE ",
            ][round % 8];
            if round < 8 {
                format!("{dir}{stem}{suffix}")
            } else {
                format!("{dir}{stem}{suffix} {}", round / 8)
            }
        };
        if !corpus.contains(&name) {
            corpus.push(name);
        }
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn corpus_reaches_paper_size_distinct() {
        let corpus = city_corpus(18_670);
        assert_eq!(corpus.len(), 18_670);
        let set: HashSet<&String> = corpus.iter().collect();
        assert_eq!(set.len(), corpus.len());
    }

    #[test]
    fn corpus_small_sizes() {
        assert_eq!(city_corpus(0).len(), 0);
        assert_eq!(city_corpus(1), vec!["NEW YORK".to_string()]);
        assert_eq!(city_corpus(80).len(), 80);
    }

    #[test]
    fn zip_matches_city_prefix() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let city = random_city(&mut rng);
            let zip = random_zip(city, &mut rng);
            assert_eq!(zip.len(), 5);
            assert!(zip.starts_with(city.zip_prefix));
            assert!(zip.bytes().all(|b| b.is_ascii_digit()));
        }
    }

    #[test]
    fn streets_have_number_and_typed_name() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let (num, name) = random_street(&mut rng);
            assert!(num.parse::<u32>().is_ok());
            assert!(STREET_TYPES.iter().any(|t| name.ends_with(t)), "{name}");
        }
    }

    #[test]
    fn apartments_sometimes_empty_sometimes_not() {
        let mut rng = StdRng::seed_from_u64(5);
        let apts: Vec<String> = (0..200).map(|_| random_apartment(&mut rng)).collect();
        assert!(apts.iter().any(String::is_empty));
        assert!(apts.iter().any(|a| a.starts_with("APT ")));
    }
}
