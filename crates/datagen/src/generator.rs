//! The database generator proper.

use crate::config::GeneratorConfig;
use crate::corrupt::corrupt;
use crate::geo;
use crate::names::{FirstNamePool, SurnamePool};
use crate::truth::GroundTruth;
use crate::typo::TypoModel;
use mp_record::{EntityId, Record, RecordId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Size of the surname pool — the paper's "list of 63000 real names".
const SURNAME_POOL_SIZE: usize = 63_000;

/// Size of the given-name pool (a realistic population of distinct given
/// names; the canonical nickname-covered names come first).
const FIRST_NAME_POOL_SIZE: usize = 1_200;

/// A generated database together with its ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedDatabase {
    /// The concatenated record list (originals and duplicates interleaved
    /// when shuffling is enabled), ids positional from zero.
    pub records: Vec<Record>,
    /// Exact duplicate classes for evaluation.
    pub truth: GroundTruth,
    /// How many records are corrupted duplicates (the rest are originals).
    pub duplicate_count: usize,
}

/// Generates employee-style databases with controlled duplication and error.
///
/// ```
/// use mp_datagen::{DatabaseGenerator, GeneratorConfig};
/// let db = DatabaseGenerator::new(GeneratorConfig::new(200).seed(1)).generate();
/// let dup = DatabaseGenerator::new(GeneratorConfig::new(200).seed(1)).generate();
/// assert_eq!(db.records, dup.records); // fully deterministic
/// ```
#[derive(Debug)]
pub struct DatabaseGenerator {
    config: GeneratorConfig,
    surnames: SurnamePool,
    first_names: FirstNamePool,
    typos: TypoModel,
}

impl DatabaseGenerator {
    /// A generator for the given configuration. Building the 63,000-name
    /// pool costs a few milliseconds and is reused across `generate` calls.
    pub fn new(config: GeneratorConfig) -> Self {
        DatabaseGenerator {
            config,
            surnames: SurnamePool::new(SURNAME_POOL_SIZE),
            first_names: FirstNamePool::new(FIRST_NAME_POOL_SIZE),
            typos: TypoModel::default(),
        }
    }

    /// The configuration this generator runs with.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates the database: originals, then duplicates of a random
    /// selection, then (by default) a global shuffle and positional id
    /// assignment.
    pub fn generate(&self) -> GeneratedDatabase {
        let n = self.config.originals;
        let mut records: Vec<Record> = Vec::with_capacity(n + n / 2);

        // Originals come from the population seed so several configs can
        // share one entity space; duplication noise uses the main seed.
        let mut pop_rng =
            StdRng::seed_from_u64(self.config.population_seed.unwrap_or(self.config.seed));
        for i in 0..n {
            records.push(self.fresh_record(i as u32, &mut pop_rng));
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // Select originals for duplication.
        let selected: Vec<usize> = (0..n)
            .filter(|_| rng.gen_bool(self.config.duplicate_fraction))
            .collect();
        let mut duplicate_count = 0usize;
        for &orig_idx in &selected {
            let copies = duplicate_copies(self.config.max_duplicates, &mut rng);
            for _ in 0..copies {
                let mut dup = records[orig_idx].clone();
                corrupt(
                    &mut dup,
                    &self.config.errors,
                    &self.typos,
                    &self.surnames,
                    &mut rng,
                );
                records.push(dup);
                duplicate_count += 1;
            }
        }

        if self.config.shuffle {
            records.shuffle(&mut rng);
        }
        for (i, r) in records.iter_mut().enumerate() {
            r.id = RecordId(i as u32);
        }
        let truth = GroundTruth::from_records(&records);
        GeneratedDatabase {
            records,
            truth,
            duplicate_count,
        }
    }

    fn fresh_record(&self, entity: u32, rng: &mut StdRng) -> Record {
        let mut r = Record::empty(RecordId(0)); // positional id assigned later
        r.entity = Some(EntityId(entity));
        r.ssn = format!("{:09}", rng.gen_range(0..1_000_000_000u64));
        r.first_name = self.first_names.sample_skewed(rng).to_string();
        r.middle_initial = if rng.gen_bool(0.7) {
            ((b'A' + rng.gen_range(0..26)) as char).to_string()
        } else {
            String::new()
        };
        r.last_name = self.surnames.sample_skewed(rng).to_string();
        let (num, street) = geo::random_street(rng);
        r.street_number = num;
        r.street_name = street;
        r.apartment = geo::random_apartment(rng);
        let city = geo::random_city(rng);
        r.city = city.name.to_string();
        r.state = city.state.to_string();
        r.zip = geo::random_zip(city, rng);
        r
    }
}

/// Number of duplicates for one selected record: geometric with halving
/// probability, truncated at `max`. Most selected records duplicate once;
/// the mean for max = 5 is ~1.84, which reproduces the paper's record
/// counts (7,500 originals at 50% -> 13,751 records, i.e. ~1.67 duplicates
/// per selected record).
fn duplicate_copies<R: Rng>(max: usize, rng: &mut R) -> usize {
    let mut copies = 1;
    while copies < max && rng.gen_bool(0.5) {
        copies += 1;
    }
    copies
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ErrorProfile;
    use std::collections::HashMap;

    #[test]
    fn record_counts_and_truth_agree() {
        let db = DatabaseGenerator::new(
            GeneratorConfig::new(500)
                .duplicate_fraction(0.4)
                .max_duplicates_per_record(3)
                .seed(21),
        )
        .generate();
        assert_eq!(db.records.len(), 500 + db.duplicate_count);
        assert_eq!(db.truth.total_records(), db.records.len());
        // Expected duplicates: 500 * 0.4 * E[1..=3] = 500 * 0.4 * 2 = 400.
        assert!(
            db.duplicate_count > 250 && db.duplicate_count < 560,
            "duplicate count {} outside plausible range",
            db.duplicate_count
        );
    }

    #[test]
    fn ids_positional_after_shuffle() {
        let db = DatabaseGenerator::new(GeneratorConfig::new(100).seed(22)).generate();
        for (i, r) in db.records.iter().enumerate() {
            assert_eq!(r.id, RecordId(i as u32));
        }
    }

    #[test]
    fn entity_class_sizes_within_bounds() {
        let cfg = GeneratorConfig::new(300)
            .duplicate_fraction(0.5)
            .max_duplicates_per_record(5)
            .seed(23);
        let db = DatabaseGenerator::new(cfg).generate();
        let mut sizes: HashMap<u32, usize> = HashMap::new();
        for r in &db.records {
            *sizes.entry(r.entity.unwrap().0).or_default() += 1;
        }
        for (&e, &k) in &sizes {
            assert!((1..=6).contains(&k), "entity {e} has {k} records");
        }
        assert_eq!(sizes.len(), 300);
    }

    #[test]
    fn zero_duplication_yields_no_pairs() {
        let db = DatabaseGenerator::new(GeneratorConfig::new(100).duplicate_fraction(0.0).seed(24))
            .generate();
        assert_eq!(db.duplicate_count, 0);
        assert_eq!(db.truth.true_pair_count(), 0);
        assert_eq!(db.records.len(), 100);
    }

    #[test]
    fn deterministic_per_seed_distinct_across_seeds() {
        let a = DatabaseGenerator::new(GeneratorConfig::new(50).seed(1)).generate();
        let b = DatabaseGenerator::new(GeneratorConfig::new(50).seed(1)).generate();
        let c = DatabaseGenerator::new(GeneratorConfig::new(50).seed(2)).generate();
        assert_eq!(a.records, b.records);
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn duplicates_usually_differ_from_original_under_default_profile() {
        let db = DatabaseGenerator::new(
            GeneratorConfig::new(200)
                .duplicate_fraction(1.0)
                .max_duplicates_per_record(1)
                .errors(ErrorProfile::default())
                .no_shuffle()
                .seed(25),
        )
        .generate();
        // Without shuffling, originals are 0..200, duplicates 200...
        let mut identical = 0;
        for dup in &db.records[200..] {
            let orig = db.records[..200]
                .iter()
                .find(|o| o.entity == dup.entity)
                .unwrap();
            let mut o = orig.clone();
            let mut d = dup.clone();
            o.id = RecordId(0);
            d.id = RecordId(0);
            if o == d {
                identical += 1;
            }
        }
        let frac = identical as f64 / db.duplicate_count as f64;
        assert!(
            frac < 0.3,
            "{identical} of {} duplicates unchanged",
            db.duplicate_count
        );
    }

    #[test]
    fn shared_population_seed_gives_same_entities_different_noise() {
        let a = DatabaseGenerator::new(
            GeneratorConfig::new(100)
                .population_seed(9)
                .duplicate_fraction(0.0)
                .seed(1),
        )
        .generate();
        let b = DatabaseGenerator::new(
            GeneratorConfig::new(100)
                .population_seed(9)
                .duplicate_fraction(0.5)
                .seed(2),
        )
        .generate();
        // Original entities coincide across the two sources...
        let originals_b: Vec<&Record> = b
            .records
            .iter()
            .filter(|r| {
                // an original keeps its clean fields: find the matching a-record
                a.records
                    .iter()
                    .any(|o| o.entity == r.entity && o.ssn == r.ssn && o.last_name == r.last_name)
            })
            .collect();
        assert!(
            originals_b.len() >= 100,
            "only {} of b's records match a's originals",
            originals_b.len()
        );
        // ...while the noisy copies differ between sources.
        assert_ne!(a.records.len(), b.records.len());
    }

    #[test]
    fn ssn_and_zip_shapes() {
        let db = DatabaseGenerator::new(GeneratorConfig::new(100).seed(26)).generate();
        for r in &db.records {
            assert_eq!(r.ssn.len(), 9, "ssn {:?}", r.ssn);
            assert_eq!(r.zip.len(), 5, "zip {:?}", r.zip);
        }
    }
}
