//! Tracing overhead benchmark: the multi-pass hot path with structured
//! tracing enabled (timed spans + sampled rule-latency histogram) must stay
//! within a few percent of the untraced run. Spans wrap whole phases, never
//! the inner comparison loop, and latency sampling times only every
//! `LATENCY_SAMPLE_MASK + 1`-th rule evaluation, so the per-pair cost is a
//! mask test plus, rarely, two `Instant::now` calls.
//!
//! `cargo run --release -p mp-bench --bin tracing` runs the same workload
//! longer, asserts the <3% bound, and writes `BENCH_tracing.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use merge_purge::MultiPass;
use mp_datagen::{DatabaseGenerator, GeneratorConfig};
use mp_metrics::{MetricsRecorder, NoopObserver};
use mp_rules::NativeEmployeeTheory;

fn bench_trace_overhead(c: &mut Criterion) {
    let mut db = DatabaseGenerator::new(
        GeneratorConfig::new(10_000)
            .duplicate_fraction(0.5)
            .max_duplicates_per_record(5)
            .seed(7),
    )
    .generate();
    mp_record::normalize::condition_all(&mut db.records, &mp_record::NicknameTable::standard());
    let theory = NativeEmployeeTheory::new();
    let passes = MultiPass::standard_three(6);

    let mut g = c.benchmark_group("trace_overhead");

    g.bench_function("noop_observer", |b| {
        b.iter(|| {
            black_box(
                passes
                    .run_observed(&db.records, &theory, &NoopObserver)
                    .closed_pairs
                    .len(),
            )
        });
    });

    let counters = MetricsRecorder::new();
    g.bench_function("counters_only", |b| {
        b.iter(|| {
            black_box(
                passes
                    .run_observed(&db.records, &theory, &counters)
                    .closed_pairs
                    .len(),
            )
        });
    });

    g.bench_function("counters_spans_latency", |b| {
        b.iter(|| {
            let traced = MetricsRecorder::new().with_tracing();
            let n = passes
                .run_observed(&db.records, &theory, &traced)
                .closed_pairs
                .len();
            black_box(traced.drain_spans().len());
            black_box(n)
        });
    });

    g.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
