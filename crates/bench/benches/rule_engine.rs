//! The OPS5-vs-C ablation (§2.3 footnote 2): interpreted rule-DSL program
//! vs the bytecode VM (with and without a plan) vs the hand-recoded native
//! theory, on the same record-pair stream. The paper recoded its rules in C
//! because the interpreter was "simply too slow"; this bench quantifies our
//! equivalent gap and how much of it the compiler closes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mp_datagen::{DatabaseGenerator, GeneratorConfig};
use mp_rules::{
    employee_program, CompiledTheory, EquationalTheory, NativeEmployeeTheory, EMPLOYEE_RULES_SRC,
};

fn bench_theories(c: &mut Criterion) {
    let db = DatabaseGenerator::new(GeneratorConfig::new(500).duplicate_fraction(0.5).seed(1234))
        .generate();
    // Window-shaped pair stream: each record against its 9 predecessors.
    let mut pairs = Vec::new();
    for i in 1..db.records.len() {
        for j in i.saturating_sub(9)..i {
            pairs.push((j, i));
        }
    }

    let dsl = employee_program();
    let compiled = CompiledTheory::compile_unplanned(EMPLOYEE_RULES_SRC).unwrap();
    let planned = CompiledTheory::compile(EMPLOYEE_RULES_SRC).unwrap();
    let native = NativeEmployeeTheory::new();

    let mut g = c.benchmark_group("rule_engine");
    g.bench_function("dsl_interpreter", |b| {
        b.iter(|| {
            let mut matched = 0usize;
            for &(i, j) in &pairs {
                if dsl.matches(black_box(&db.records[i]), black_box(&db.records[j])) {
                    matched += 1;
                }
            }
            black_box(matched)
        });
    });
    g.bench_function("dsl_compiled_vm", |b| {
        b.iter(|| {
            let mut matched = 0usize;
            for &(i, j) in &pairs {
                if compiled.matches(black_box(&db.records[i]), black_box(&db.records[j])) {
                    matched += 1;
                }
            }
            black_box(matched)
        });
    });
    g.bench_function("dsl_compiled_planned", |b| {
        b.iter(|| {
            let mut matched = 0usize;
            for &(i, j) in &pairs {
                if planned.matches(black_box(&db.records[i]), black_box(&db.records[j])) {
                    matched += 1;
                }
            }
            black_box(matched)
        });
    });
    g.bench_function("native_recoded", |b| {
        b.iter(|| {
            let mut matched = 0usize;
            for &(i, j) in &pairs {
                if native.matches(black_box(&db.records[i]), black_box(&db.records[j])) {
                    matched += 1;
                }
            }
            black_box(matched)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_theories);
criterion_main!(benches);
