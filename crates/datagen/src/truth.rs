//! Ground-truth bookkeeping for generated databases.

use mp_record::{EntityId, Record, RecordId};
use std::collections::HashMap;

/// The hidden mapping from entities to the records that describe them.
///
/// Accuracy in the paper is measured over *pairs*: the percentage of
/// "duplicated pairs" correctly found (Fig. 2). A class of `k` records for
/// one entity contributes `k·(k−1)/2` true pairs, which is exactly what a
/// perfect merge followed by transitive closure would produce.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// entity → record ids (in insertion order).
    classes: HashMap<EntityId, Vec<RecordId>>,
    total_records: usize,
}

impl GroundTruth {
    /// Builds ground truth from a record list (records lacking an entity id
    /// are treated as unique singleton entities and contribute no pairs).
    pub fn from_records(records: &[Record]) -> Self {
        let mut classes: HashMap<EntityId, Vec<RecordId>> = HashMap::new();
        for r in records {
            if let Some(e) = r.entity {
                classes.entry(e).or_default().push(r.id);
            }
        }
        GroundTruth {
            classes,
            total_records: records.len(),
        }
    }

    /// Number of records the truth covers (including singletons).
    pub fn total_records(&self) -> usize {
        self.total_records
    }

    /// Number of distinct entities that have at least one record with an
    /// entity id.
    pub fn entity_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of true duplicate pairs: Σ k·(k−1)/2 over entity classes.
    pub fn true_pair_count(&self) -> u64 {
        self.classes
            .values()
            .map(|c| {
                let k = c.len() as u64;
                k * (k - 1) / 2
            })
            .sum()
    }

    /// Iterates over every true duplicate pair as `(low, high)` record ids.
    pub fn true_pairs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.classes.values().flat_map(|class| {
            class.iter().enumerate().flat_map(move |(i, &a)| {
                class[i + 1..].iter().map(move |&b| {
                    let (x, y) = (a.0.min(b.0), a.0.max(b.0));
                    (x, y)
                })
            })
        })
    }

    /// True when records `a` and `b` describe the same entity.
    pub fn same_entity(&self, a: &Record, b: &Record) -> bool {
        match (a.entity, b.entity) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// The duplicate classes (entities with ≥ 2 records), each sorted by
    /// record id, classes sorted by smallest member — the same canonical
    /// shape `UnionFind::classes` produces, enabling direct comparison.
    pub fn duplicate_classes(&self) -> Vec<Vec<u32>> {
        let mut out: Vec<Vec<u32>> = self
            .classes
            .values()
            .filter(|c| c.len() > 1)
            .map(|c| {
                let mut v: Vec<u32> = c.iter().map(|r| r.0).collect();
                v.sort_unstable();
                v
            })
            .collect();
        out.sort_by_key(|c| c[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u32, entity: Option<u32>) -> Record {
        let mut r = Record::empty(RecordId(id));
        r.entity = entity.map(EntityId);
        r
    }

    #[test]
    fn pair_counting() {
        let records = vec![
            record(0, Some(1)),
            record(1, Some(1)),
            record(2, Some(1)),
            record(3, Some(2)),
            record(4, Some(3)),
            record(5, Some(3)),
            record(6, None),
        ];
        let t = GroundTruth::from_records(&records);
        assert_eq!(t.total_records(), 7);
        assert_eq!(t.entity_count(), 3);
        assert_eq!(t.true_pair_count(), 3 + 1);
        let mut pairs: Vec<_> = t.true_pairs().collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2), (4, 5)]);
    }

    #[test]
    fn same_entity_requires_both_ids() {
        let a = record(0, Some(5));
        let b = record(1, Some(5));
        let c = record(2, Some(6));
        let d = record(3, None);
        let t = GroundTruth::from_records(&[a.clone(), b.clone(), c.clone(), d.clone()]);
        assert!(t.same_entity(&a, &b));
        assert!(!t.same_entity(&a, &c));
        assert!(!t.same_entity(&a, &d));
        assert!(!t.same_entity(&d, &d));
    }

    #[test]
    fn duplicate_classes_canonical_shape() {
        let records = vec![
            record(0, Some(9)),
            record(1, Some(8)),
            record(2, Some(9)),
            record(3, Some(8)),
            record(4, Some(7)),
        ];
        let t = GroundTruth::from_records(&records);
        assert_eq!(t.duplicate_classes(), vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn empty_truth() {
        let t = GroundTruth::from_records(&[]);
        assert_eq!(t.true_pair_count(), 0);
        assert_eq!(t.entity_count(), 0);
        assert!(t.duplicate_classes().is_empty());
    }
}
