//! Sharded backend for the serving daemon: the durable store is
//! partitioned by key band into N shard workers, each owning its own
//! journal + snapshot under `store/shard-k/`, with a coordinator that
//! scatters every batch across all shards and folds the banded window
//! scans back into one provably-serial-equivalent engine.
//!
//! # Roles
//!
//! * [`ShardRouter`] — record → shard, via the first pass's key and a
//!   uniform first-letter band partition ([`RangePartition::uniform`]).
//!   Routing is a pure function of the record, so the same store always
//!   scatters the same way.
//! * [`run_worker`] — one per shard, owns that shard's [`Journal`] and
//!   executes `Append`/`Snapshot`/`Reset` messages from a bounded queue
//!   (per-shard backpressure). Traced as `shard_ingest`/`shard_snapshot`
//!   spans labeled `shard=k`.
//! * [`ShardedDurable`] — the coordinator the engine worker drives. Every
//!   ingested batch is journaled as one frame per shard, *all with the
//!   same sequence number* (empty frames keep sequences aligned); the
//!   batch is acknowledged only after every shard has fsync'd its frame.
//!   Recovery treats a sequence as replayable only when present on every
//!   shard, so a crash mid-scatter loses nothing that was acknowledged.
//!
//! The in-memory engine itself is *not* partitioned: the banded scan in
//! [`IncrementalMergePurge::add_batch_sharded`] fans comparison work out
//! across shard-count bands and reconciles band-boundary matches in band
//! order (`closure_reconcile`), which makes the merged match set
//! bit-identical to the single-worker engine on the same input — the
//! property the shard-equivalence tests pin down.

use merge_purge::incremental::{apply_observed_sharded, IncrementalMergePurge};
use merge_purge::KeySpec;
use mp_cluster::RangePartition;
use mp_metrics::{span, span_labeled, Counter, MetricsRecorder, PipelineObserver};
use mp_record::{Record, RecordId};
use mp_rules::EquationalTheory;
use mp_store::{split_snapshot, write_shard_snapshot, Journal, ShardedStore};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{self, Receiver, SyncSender};

use super::obs::ObsState;

/// Routes records to shards: the first pass's key, banded by first
/// letter into `shards` uniform ranges. Pure and deterministic, so
/// scatter, snapshot split, and recovery all agree on ownership.
#[derive(Debug)]
pub struct ShardRouter {
    key: KeySpec,
    partition: RangePartition,
}

impl ShardRouter {
    /// A router over `shards` uniform key bands.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is 0 or exceeds the 27-bin key alphabet.
    pub fn new(key: KeySpec, shards: usize) -> Self {
        ShardRouter {
            key,
            partition: RangePartition::uniform(shards),
        }
    }

    /// The shard that owns `record`.
    pub fn shard_of(&self, record: &Record) -> usize {
        self.partition.cluster_of(&self.key.extract(record))
    }
}

/// One unit of work for a shard worker. Replies are sent on the `done`
/// channel only after the effect is durable.
pub enum ShardMsg {
    /// Journal this shard's slice of batch `seq` (possibly empty — empty
    /// frames keep shard sequences aligned).
    Append {
        /// Global batch sequence number; must match the journal's next.
        seq: u64,
        /// The batch's trace id, carried into the worker's span label so
        /// the flight-recorder dump ties every shard lane to its batch.
        trace_id: String,
        /// The records routed to this shard (global ids already assigned).
        records: Vec<Record>,
        /// Acknowledged after the frame is fsync'd.
        done: mpsc::Sender<Result<(), String>>,
    },
    /// Durably write this shard's snapshot slice for `epoch` (checkpoint
    /// phase one; the manifest flip happens on the coordinator).
    Snapshot {
        /// The checkpoint epoch being prepared.
        epoch: u64,
        /// The encoded [`mp_store::ShardSnapshot`] bytes.
        bytes: Vec<u8>,
        /// Acknowledged with the byte count written.
        done: mpsc::Sender<Result<u64, String>>,
    },
    /// Reset the journal after a committed checkpoint.
    Reset {
        /// Sequence number the next appended frame must use.
        next_seq: u64,
        /// Acknowledged after the journal is rewritten.
        done: mpsc::Sender<Result<(), String>>,
    },
}

/// Body of one shard worker thread: owns the shard's journal and
/// processes messages until the coordinator hangs up. Every message is
/// acknowledged, even on failure — the coordinator decides what a
/// failure means (a partial append poisons the daemon).
pub fn run_worker(
    k: usize,
    mut journal: Journal,
    shard_dir: PathBuf,
    rx: Receiver<ShardMsg>,
    obs: &ObsState,
    recorder: &MetricsRecorder,
) {
    while let Ok(msg) = rx.recv() {
        obs.shard_job_dequeued(k);
        match msg {
            ShardMsg::Append {
                seq,
                trace_id,
                records,
                done,
            } => {
                // The span guard must drop before the ack is sent: the
                // coordinator drains the collector right after the last
                // ack, and a still-open span would miss that drain.
                let res = {
                    let _span = span_labeled(recorder, "shard_ingest", || {
                        format!("shard={k} seq={seq} trace={trace_id}")
                    });
                    // The frame carries the trace id so a replay after
                    // kill -9 reconstructs the same explain chains.
                    match journal.append(&records, Some(&trace_id)) {
                        Ok(got) if got == seq => Ok(()),
                        Ok(got) => Err(format!(
                            "journal assigned seq {got}, coordinator expected {seq}"
                        )),
                        Err(e) => Err(e.to_string()),
                    }
                };
                let _ = done.send(res);
            }
            ShardMsg::Snapshot { epoch, bytes, done } => {
                let res = {
                    let _span = span_labeled(recorder, "shard_snapshot", || {
                        format!("shard={k} epoch={epoch}")
                    });
                    write_shard_snapshot(&shard_dir, epoch, &bytes).map_err(|e| e.to_string())
                };
                let _ = done.send(res);
            }
            ShardMsg::Reset { next_seq, done } => {
                let _ = done.send(journal.reset(next_seq).map_err(|e| e.to_string()));
            }
        }
    }
}

/// Everything [`open_sharded`] recovered, before the shard workers
/// exist: the caller spawns one worker per journal, then assembles a
/// [`ShardedDurable`] from the rest.
#[derive(Debug)]
pub struct ShardedPrep {
    /// Coordinator handle (manifest, epoch, layout).
    pub store: ShardedStore,
    /// One journal per shard, to hand to the workers.
    pub journals: Vec<Journal>,
    /// The recovered engine (snapshot restored + journals replayed).
    pub engine: IncrementalMergePurge,
    /// Per-shard count of non-empty frames replayed.
    pub shard_replays: Vec<u64>,
    /// Batches replayed from the journals (fully-scattered ones only).
    pub batches_replayed: u64,
    /// Whether a committed checkpoint was restored.
    pub snapshot_loaded: bool,
    /// Bytes dropped across all shards (torn tails + orphan frames).
    pub truncated_bytes: u64,
    /// One reason per shard that lost bytes.
    pub truncation_reasons: Vec<String>,
    /// Sequence number for the next ingested batch.
    pub next_seq: u64,
}

/// Opens (creating if needed) the sharded store at `dir`, restores the
/// last committed checkpoint, and replays every fully-scattered batch —
/// the sharded twin of `DurableIncremental::open`, with the same
/// observer wiring (`load` span, `Counter::JournalReplays`,
/// `Counter::CorruptTailTruncations`, stderr truncation reports).
///
/// # Errors
///
/// I/O failures, corrupt manifest/snapshot/journals, a shard-count
/// mismatch, or a pass-configuration mismatch against the snapshot.
pub fn open_sharded(
    dir: &Path,
    shards: usize,
    configure: impl FnOnce(IncrementalMergePurge) -> IncrementalMergePurge,
    theory: &dyn EquationalTheory,
    observer: &dyn PipelineObserver,
) -> Result<ShardedPrep, String> {
    let _load = span(observer, "load");
    let (store, loaded) =
        ShardedStore::open(dir, shards).map_err(|e| format!("open sharded store: {e}"))?;

    if !loaded.truncation_reasons.is_empty() {
        observer.add(
            Counter::CorruptTailTruncations,
            loaded.truncation_reasons.len() as u64,
        );
        for reason in &loaded.truncation_reasons {
            eprintln!(
                "mp-store: truncated corrupt journal bytes at {}: {reason}",
                dir.display()
            );
        }
    }

    let mut engine = configure(IncrementalMergePurge::new());
    let snapshot_loaded = loaded.snapshot.is_some();
    if let Some(snap) = loaded.snapshot {
        engine = engine.restore(snap).map_err(|e| format!("restore: {e}"))?;
    }
    let batches_replayed = loaded.replayable.len() as u64;
    for b in loaded.replayable {
        apply_observed_sharded(&mut engine, b.records, theory, observer, shards);
        if let Some(t) = &b.trace {
            engine.note_batch_trace(t);
        }
    }
    observer.add(Counter::JournalReplays, batches_replayed);

    Ok(ShardedPrep {
        store,
        journals: loaded.journals,
        engine,
        shard_replays: loaded.shard_replays,
        batches_replayed,
        snapshot_loaded,
        truncated_bytes: loaded.truncated_bytes,
        truncation_reasons: loaded.truncation_reasons,
        next_seq: loaded.next_seq,
    })
}

/// The coordinator the engine worker drives when `--shards N` (N >= 2):
/// owns the recovered engine and the per-shard worker queues. The
/// durable twin of `DurableIncremental`, scattered across shards.
pub struct ShardedDurable {
    engine: IncrementalMergePurge,
    store: ShardedStore,
    router: ShardRouter,
    senders: Vec<SyncSender<ShardMsg>>,
    next_seq: u64,
    batches_since_checkpoint: u64,
    shard_records: Vec<u64>,
    last_scatter: Vec<u64>,
    poisoned: bool,
}

impl ShardedDurable {
    /// Assembles the coordinator after the workers are spawned.
    /// `senders` must hold one queue per shard, in shard order.
    pub fn new(prep: ShardedPrep, router: ShardRouter, senders: Vec<SyncSender<ShardMsg>>) -> Self {
        assert_eq!(senders.len(), prep.store.shards(), "one queue per shard");
        let mut shard_records = vec![0u64; senders.len()];
        for r in prep.engine.records() {
            shard_records[router.shard_of(r)] += 1;
        }
        ShardedDurable {
            engine: prep.engine,
            store: prep.store,
            router,
            senders,
            next_seq: prep.next_seq,
            batches_since_checkpoint: prep.batches_replayed,
            shard_records,
            last_scatter: Vec::new(),
            poisoned: false,
        }
    }

    /// The in-memory engine (records, pairs, closure, counters).
    pub fn engine(&self) -> &IncrementalMergePurge {
        &self.engine
    }

    /// Sequence number the next ingested batch will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Batches applied since the last committed checkpoint.
    pub fn batches_since_checkpoint(&self) -> u64 {
        self.batches_since_checkpoint
    }

    /// Records owned by each shard (router attribution).
    pub fn shard_records(&self) -> &[u64] {
        &self.shard_records
    }

    /// Per-shard record counts of the most recently ingested batch.
    pub fn last_scatter(&self) -> &[u64] {
        &self.last_scatter
    }

    /// Snapshot size/mtime across the committed epoch's shard files.
    pub fn snapshot_meta(&self) -> Option<(u64, std::time::SystemTime)> {
        self.store.snapshot_meta()
    }

    /// Whether an earlier partial append left disk and memory possibly
    /// diverged; all further ingests are refused until restart (recovery
    /// discards the incomplete scatter).
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Ingests one batch durably: scatter one frame per shard (same
    /// sequence number everywhere), await every shard's fsync ack, then
    /// fold the batch into the engine with banded scans. Counter wiring
    /// matches `DurableIncremental::ingest`.
    ///
    /// # Errors
    ///
    /// A failed or unreachable shard. If *some* shards journaled the
    /// frame and others did not, the daemon is poisoned: the batch was
    /// never acknowledged (recovery will discard the partial scatter),
    /// but this process can no longer trust its sequence alignment.
    pub fn ingest(
        &mut self,
        mut batch: Vec<Record>,
        trace_id: &str,
        theory: &dyn EquationalTheory,
        recorder: &MetricsRecorder,
        obs: &ObsState,
    ) -> Result<u64, String> {
        if self.poisoned {
            return Err(
                "store poisoned by an earlier partial shard append; restart to recover".into(),
            );
        }
        let _ingest = span_labeled(recorder, "ingest", || format!("trace={trace_id}"));
        let shards = self.senders.len();
        let old_len = self.engine.records().len() as u32;
        for (i, r) in batch.iter_mut().enumerate() {
            r.id = RecordId(old_len + i as u32);
        }
        let mut frames: Vec<Vec<Record>> = vec![Vec::new(); shards];
        for r in &batch {
            frames[self.router.shard_of(r)].push(r.clone());
        }
        let counts: Vec<u64> = frames.iter().map(|f| f.len() as u64).collect();

        let seq = self.next_seq;
        let mut acks = Vec::with_capacity(shards);
        for (k, (tx, records)) in self.senders.iter().zip(frames).enumerate() {
            let (done, ack) = mpsc::channel();
            obs.shard_job_enqueued(k);
            let msg = ShardMsg::Append {
                seq,
                trace_id: trace_id.to_string(),
                records,
                done,
            };
            if tx.send(msg).is_err() {
                self.poisoned = true;
                return Err(format!("shard {k} worker is gone"));
            }
            acks.push(ack);
        }
        let mut errors = Vec::new();
        for (k, ack) in acks.into_iter().enumerate() {
            match ack.recv() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => errors.push(format!("shard {k}: {e}")),
                Err(_) => errors.push(format!("shard {k}: worker died mid-append")),
            }
        }
        if !errors.is_empty() {
            self.poisoned = true;
            return Err(format!(
                "partial shard append at seq {seq}: {}",
                errors.join("; ")
            ));
        }

        self.next_seq += 1;
        apply_observed_sharded(&mut self.engine, batch, theory, recorder, shards);
        self.engine.note_batch_trace(trace_id);
        recorder.add(Counter::BatchesIngested, 1);
        self.batches_since_checkpoint += 1;
        for (k, &c) in counts.iter().enumerate() {
            self.shard_records[k] += c;
        }
        self.last_scatter = counts;
        Ok(seq)
    }

    /// Installs a bulk-loaded state (see `mp-extsort`'s `BulkLoader`) as
    /// this store's first batch: restores the engine from `snap`, aligns
    /// the sequence watermark to `batches_applied + 1`, and runs a full
    /// checkpoint so every shard durably owns its slice before the call
    /// returns. Only legal on a cold store — the engine must be empty
    /// and no batch may have been acknowledged. Returns total snapshot
    /// bytes.
    ///
    /// # Errors
    ///
    /// A non-empty engine or journal, a pass-configuration mismatch, or
    /// any shard failing its snapshot write (the store then still looks
    /// empty — the manifest never flipped).
    pub fn bulk_restore(
        &mut self,
        snap: mp_store::Snapshot,
        recorder: &MetricsRecorder,
        obs: &ObsState,
    ) -> Result<u64, String> {
        if self.engine.batches_applied() != 0 || !self.engine.records().is_empty() {
            return Err(format!(
                "bulk restore requires an empty engine (found {} records, {} batches)",
                self.engine.records().len(),
                self.engine.batches_applied()
            ));
        }
        if self.next_seq != 1 || self.store.epoch() != 0 {
            return Err(format!(
                "bulk restore requires an empty store (next seq {}, epoch {})",
                self.next_seq,
                self.store.epoch()
            ));
        }
        let batches_applied = snap.batches_applied;
        let configured = std::mem::replace(&mut self.engine, IncrementalMergePurge::new());
        self.engine = configured.restore(snap)?;
        // The next incremental batch journals above the snapshot's
        // watermark, exactly as after a normal checkpoint.
        self.next_seq = batches_applied + 1;
        for r in self.engine.records() {
            self.shard_records[self.router.shard_of(r)] += 1;
        }
        // If the checkpoint fails, memory holds state disk never saw;
        // refuse further ingests (a restart recovers the empty store).
        self.checkpoint(recorder, obs).inspect_err(|_| {
            self.poisoned = true;
        })
    }

    /// Checkpoints via two-phase commit: every shard durably writes its
    /// snapshot slice for the next epoch (phase one, in parallel), the
    /// coordinator flips the manifest ([`ShardedStore::commit_epoch`] —
    /// the commit point), then the shard journals reset. Returns total
    /// snapshot bytes (added to `Counter::SnapshotBytes`).
    ///
    /// # Errors
    ///
    /// Phase-one failures leave the previous epoch committed (stale
    /// files are cleaned on the next open). A post-commit reset failure
    /// is reported but harmless: stale frames sit at or below the
    /// snapshot watermark and are filtered on replay.
    pub fn checkpoint(
        &mut self,
        recorder: &MetricsRecorder,
        obs: &ObsState,
    ) -> Result<u64, String> {
        let _snap = span(recorder, "snapshot");
        let shards = self.senders.len();
        let snap = self.engine.to_snapshot();
        let router = &self.router;
        let parts = split_snapshot(&snap, shards, |r| router.shard_of(r));
        let epoch = self.store.epoch() + 1;

        let mut acks = Vec::with_capacity(shards);
        for (k, (tx, part)) in self.senders.iter().zip(&parts).enumerate() {
            let (done, ack) = mpsc::channel();
            obs.shard_job_enqueued(k);
            let msg = ShardMsg::Snapshot {
                epoch,
                bytes: part.encode(),
                done,
            };
            if tx.send(msg).is_err() {
                return Err(format!("shard {k} worker is gone"));
            }
            acks.push(ack);
        }
        let mut total = 0u64;
        for (k, ack) in acks.into_iter().enumerate() {
            match ack.recv() {
                Ok(Ok(bytes)) => total += bytes,
                Ok(Err(e)) => return Err(format!("shard {k} snapshot: {e}")),
                Err(_) => return Err(format!("shard {k}: worker died mid-snapshot")),
            }
        }

        self.store
            .commit_epoch(epoch)
            .map_err(|e| format!("commit epoch {epoch}: {e}"))?;

        let mut acks = Vec::with_capacity(shards);
        for (k, tx) in self.senders.iter().enumerate() {
            let (done, ack) = mpsc::channel();
            obs.shard_job_enqueued(k);
            let msg = ShardMsg::Reset {
                next_seq: self.next_seq,
                done,
            };
            if tx.send(msg).is_err() {
                return Err(format!("shard {k} worker is gone"));
            }
            acks.push(ack);
        }
        for (k, ack) in acks.into_iter().enumerate() {
            match ack.recv() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => return Err(format!("shard {k} journal reset: {e}")),
                Err(_) => return Err(format!("shard {k}: worker died mid-reset")),
            }
        }

        recorder.add(Counter::SnapshotBytes, total);
        self.batches_since_checkpoint = 0;
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_is_deterministic_and_covers_all_shards() {
        let router = ShardRouter::new(KeySpec::last_name_key(), 4);
        let mut seen = [false; 4];
        for (i, last) in ["ADAMS", "HERNANDEZ", "MILLER", "STOLFO", "ZWEIG"]
            .iter()
            .enumerate()
        {
            let mut r = Record::empty(RecordId(i as u32));
            r.last_name = (*last).into();
            r.first_name = "A".into();
            let k = router.shard_of(&r);
            assert!(k < 4);
            assert_eq!(k, router.shard_of(&r), "routing is deterministic");
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "A..Z spread covers every band");
    }
}
