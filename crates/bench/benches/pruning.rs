//! Multi-pass hot path: allocating baseline vs scratch buffers vs pruning.
//!
//! `baseline_alloc_w6` runs the frozen pre-optimization theory whose
//! kernels allocate per call (the pre-scratch hot path); `unpruned_w6`
//! reuses per-thread buffers; `pruned_w6` adds
//! closure-aware pruning, skipping rule evaluation for window pairs already
//! connected in the shared union-find. Closed pairs are identical in all
//! three. See also the `pruning` binary, which measures the same
//! configurations at 10k records and records the speedup in
//! `BENCH_pruning.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use merge_purge::MultiPass;
use mp_datagen::{DatabaseGenerator, GeneratorConfig};
use mp_rules::{AllocatingEmployeeTheory, NativeEmployeeTheory};

fn bench_pruning(c: &mut Criterion) {
    let mut db = DatabaseGenerator::new(
        GeneratorConfig::new(3_000)
            .duplicate_fraction(0.5)
            .max_duplicates_per_record(5)
            .seed(7),
    )
    .generate();
    mp_record::normalize::condition_all(&mut db.records, &mp_record::NicknameTable::standard());
    let theory = NativeEmployeeTheory::new();
    let alloc_theory = AllocatingEmployeeTheory::new();

    let mut g = c.benchmark_group("multipass_pruning");
    g.bench_function("baseline_alloc_w6", |b| {
        b.iter(|| {
            let r = MultiPass::standard_three(6).run(black_box(&db.records), &alloc_theory);
            black_box(r.closed_pairs.len())
        });
    });
    g.bench_function("unpruned_w6", |b| {
        b.iter(|| {
            let r = MultiPass::standard_three(6).run(black_box(&db.records), &theory);
            black_box(r.closed_pairs.len())
        });
    });
    g.bench_function("pruned_w6", |b| {
        b.iter(|| {
            let r = MultiPass::standard_three(6)
                .with_pruning()
                .run(black_box(&db.records), &theory);
            black_box(r.closed_pairs.len())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
