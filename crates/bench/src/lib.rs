//! Shared workload construction, flag parsing, and table printing for the
//! figure-regeneration binaries.
//!
//! Each binary regenerates one figure of the paper (see DESIGN.md §4 for
//! the experiment index). Default workload sizes are scaled down from the
//! paper's so every figure reproduces on a laptop in minutes; pass
//! `--scale 1.0` (or a specific `--records N`) to approach paper sizes.

use mp_datagen::{DatabaseGenerator, GeneratedDatabase, GeneratorConfig};
use std::time::Duration;

/// Tiny `--flag value` / `--flag` parser for the figure binaries.
#[derive(Debug, Clone)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Parses from the process arguments.
    pub fn from_env() -> Self {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Builds from an explicit list (tests).
    pub fn from_vec(raw: Vec<String>) -> Self {
        Args { raw }
    }

    /// The value following `--name`, parsed, or `default`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message when the value fails to parse.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let flag = format!("--{name}");
        match self.raw.iter().position(|a| a == &flag) {
            Some(i) => match self.raw.get(i + 1) {
                Some(v) => v
                    .parse()
                    .unwrap_or_else(|_| panic!("invalid value {v:?} for {flag}")),
                None => panic!("{flag} requires a value"),
            },
            None => default,
        }
    }

    /// True when the bare flag `--name` is present.
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.raw.iter().any(|a| a == &flag)
    }
}

/// Generates the figure-2 style database: `originals` records with ~50%
/// selected for duplication and up to 5 duplicates each, mirroring the
/// 1,000,000 + 1,423,644 ratio of the paper at reduced scale.
pub fn fig2_database(originals: usize, seed: u64) -> GeneratedDatabase {
    DatabaseGenerator::new(
        GeneratorConfig::new(originals)
            .duplicate_fraction(0.5)
            .max_duplicates_per_record(5)
            .seed(seed),
    )
    .generate()
}

/// Generates the figure-3 style database: 35% of records selected, up to 5
/// duplicates (paper: 250,000 originals → 468,730 records).
pub fn fig3_database(originals: usize, seed: u64) -> GeneratedDatabase {
    DatabaseGenerator::new(
        GeneratorConfig::new(originals)
            .duplicate_fraction(0.35)
            .max_duplicates_per_record(5)
            .seed(seed),
    )
    .generate()
}

/// Generates the §3.5 memory-resident database: 7,500 originals, 50%
/// duplication, ≤ 5 duplicates — the paper's run produced 13,751 records.
pub fn fig4_database(seed: u64) -> GeneratedDatabase {
    DatabaseGenerator::new(
        GeneratorConfig::new(7_500)
            .duplicate_fraction(0.5)
            .max_duplicates_per_record(5)
            .seed(seed),
    )
    .generate()
}

/// Seconds with millisecond resolution, for table cells.
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Prints a Markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a Markdown-style header and separator.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Formats a percentage cell.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

/// Formats a small percentage cell (false-positive rates are well under
/// 1%, so three decimals are needed to see the Fig. 2(b) trend).
pub fn pct3(x: f64) -> String {
    format!("{x:.3}%")
}

/// Formats a seconds cell.
pub fn sec_cell(x: f64) -> String {
    format!("{x:.3}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parsing() {
        let a = Args::from_vec(vec![
            "--records".into(),
            "123".into(),
            "--spell-correct".into(),
        ]);
        assert_eq!(a.get("records", 7usize), 123);
        assert_eq!(a.get("window", 10usize), 10);
        assert!(a.has("spell-correct"));
        assert!(!a.has("full"));
    }

    #[test]
    #[should_panic(expected = "invalid value")]
    fn bad_value_panics() {
        Args::from_vec(vec!["--n".into(), "xyz".into()]).get("n", 1usize);
    }

    #[test]
    fn databases_have_expected_shape() {
        let db = fig4_database(1);
        // Paper: 13,751 records from 7,500 originals at 50% x <=5.
        assert!(
            db.records.len() > 12_000 && db.records.len() < 23_000,
            "got {}",
            db.records.len()
        );
    }
}
