//! Structured, leveled JSONL event log for the serving daemon.
//!
//! `mergepurge serve --log FILE` appends one JSON object per line:
//!
//! ```json
//! {"seq":7,"ts_ms":1723036800123,"level":"info","event":"batch_ingested","batch_seq":3,"records":3334,"total_records":10000,"duration_ms":412}
//! ```
//!
//! * `seq` is a per-process monotonic sequence number (gap-free, so a
//!   log shipper can detect drops);
//! * `ts_ms` is wall-clock Unix milliseconds;
//! * `level` is one of `error` / `warn` / `info` / `debug`, filtered at
//!   emit time by the configured minimum level;
//! * `event` names the event; remaining keys are event-specific fields.
//!
//! Rotation is size-based with `keep` retained generations (default 1):
//! when a write would push the file past the configured limit, the
//! existing generations shift (`FILE.keep-1` → `FILE.keep`, …, `FILE.1`
//! → `FILE.2`), the file is renamed to `FILE.1`, and a fresh `FILE` is
//! started — the generation past `keep` falls off. Sequence numbers
//! continue across rotations. `mergepurge serve --log-keep N` raises the
//! retention so slow-batch forensics are not rotated away under traffic.

use super::json::Json;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Mutex;

/// Event severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// A failure the operator must look at (ingest/checkpoint errors).
    Error,
    /// Degraded but self-healing conditions (backpressure, truncated
    /// journal tails).
    Warn,
    /// Lifecycle and per-batch summaries (the default level).
    Info,
    /// Per-request detail (queries, stats calls).
    Debug,
}

impl Level {
    /// Stable lowercase name used in log lines and `--log-level`.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a `--log-level` value.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// Default rotation threshold: 1 MiB.
pub const DEFAULT_MAX_BYTES: u64 = 1024 * 1024;

/// Default number of rotated generations kept (`FILE.1` only).
pub const DEFAULT_KEEP: usize = 1;

struct Inner {
    file: File,
    bytes: u64,
    seq: u64,
}

/// A thread-safe JSONL event sink with size-based rotation. See the
/// [module docs](self) for the line format.
pub struct EventLog {
    path: PathBuf,
    max_bytes: u64,
    keep: usize,
    min_level: Level,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("path", &self.path)
            .field("max_bytes", &self.max_bytes)
            .field("keep", &self.keep)
            .field("min_level", &self.min_level.name())
            .finish()
    }
}

impl EventLog {
    /// Opens (appending to) the event log at `path`. Events below
    /// `min_level` are dropped at emit time; the file rotates through
    /// `path.1` … `path.keep` when it would exceed `max_bytes` (`keep`
    /// is clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Propagates the open/stat failure, stringified for the daemon's
    /// startup error path.
    pub fn open(
        path: impl Into<PathBuf>,
        min_level: Level,
        max_bytes: u64,
        keep: usize,
    ) -> Result<Self, String> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("open log {}: {e}", path.display()))?;
        let bytes = file
            .metadata()
            .map_err(|e| format!("stat log {}: {e}", path.display()))?
            .len();
        Ok(EventLog {
            path,
            max_bytes: max_bytes.max(1),
            keep: keep.max(1),
            min_level,
            inner: Mutex::new(Inner {
                file,
                bytes,
                seq: 0,
            }),
        })
    }

    /// The path of rotated generation `n` (`FILE.n`).
    pub fn generation_path(&self, n: usize) -> PathBuf {
        let mut name = self.path.as_os_str().to_os_string();
        name.push(format!(".{n}"));
        PathBuf::from(name)
    }

    /// The newest rotated generation's path (`FILE.1`).
    pub fn rotated_path(&self) -> PathBuf {
        self.generation_path(1)
    }

    /// Whether `level` passes the configured filter.
    pub fn enabled(&self, level: Level) -> bool {
        level <= self.min_level
    }

    /// Emits one event line with `fields` appended after the standard
    /// `seq`/`ts_ms`/`level`/`event` keys. Write failures are swallowed
    /// (the log is telemetry; the serving path must not die for it).
    pub fn event(&self, level: Level, event: &str, fields: Vec<(String, Json)>) {
        if !self.enabled(level) {
            return;
        }
        let ts_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner.seq += 1;
        let mut obj = vec![
            ("seq".to_string(), Json::Num(inner.seq as f64)),
            ("ts_ms".to_string(), Json::Num(ts_ms as f64)),
            ("level".to_string(), Json::Str(level.name().to_string())),
            ("event".to_string(), Json::Str(event.to_string())),
        ];
        obj.extend(fields);
        let mut line = Json::Obj(obj).to_string();
        line.push('\n');

        if inner.bytes + line.len() as u64 > self.max_bytes && inner.bytes > 0 {
            if let Err(e) = self.rotate(&mut inner) {
                eprintln!("mergepurge serve: log rotation failed: {e}");
            }
        }
        if inner.file.write_all(line.as_bytes()).is_ok() {
            inner.bytes += line.len() as u64;
            let _ = inner.file.flush();
        }
    }

    fn rotate(&self, inner: &mut Inner) -> std::io::Result<()> {
        inner.file.flush()?;
        // Shift the retained generations up (the one past `keep` falls
        // off via the rename onto it), oldest first.
        for n in (1..self.keep).rev() {
            let from = self.generation_path(n);
            if from.exists() {
                std::fs::rename(&from, self.generation_path(n + 1))?;
            }
        }
        std::fs::rename(&self.path, self.rotated_path())?;
        inner.file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        inner.bytes = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn tmp_log(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("mp-evlog-{}-{name}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        for n in 1..=4 {
            let _ = std::fs::remove_file(format!("{}.{n}", p.display()));
        }
        p
    }

    fn lines(path: &Path) -> Vec<Json> {
        std::fs::read_to_string(path)
            .unwrap_or_default()
            .lines()
            .map(|l| Json::parse(l).expect("log lines are valid JSON"))
            .collect()
    }

    #[test]
    fn events_are_sequenced_and_leveled() {
        let path = tmp_log("seq");
        let log = EventLog::open(&path, Level::Info, DEFAULT_MAX_BYTES, DEFAULT_KEEP).unwrap();
        log.event(Level::Info, "a", vec![]);
        log.event(Level::Debug, "dropped", vec![]); // below min level
        log.event(Level::Warn, "b", vec![("records".into(), Json::Num(7.0))]);
        let got = lines(&path);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].get("event").and_then(Json::as_str), Some("a"));
        assert_eq!(got[0].get("seq").and_then(Json::as_u64), Some(1));
        assert_eq!(
            got[1].get("seq").and_then(Json::as_u64),
            Some(2),
            "filtered events do not burn sequence numbers"
        );
        assert_eq!(got[1].get("level").and_then(Json::as_str), Some("warn"));
        assert_eq!(got[1].get("records").and_then(Json::as_u64), Some(7));
        assert!(got[0].get("ts_ms").and_then(Json::as_u64).unwrap() > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rotation_keeps_one_generation_and_sequence_continues() {
        let path = tmp_log("rotate");
        let log = EventLog::open(&path, Level::Debug, 300, DEFAULT_KEEP).unwrap();
        for i in 0..20 {
            log.event(Level::Info, "fill", vec![("i".into(), Json::Num(i as f64))]);
        }
        let rotated = log.rotated_path();
        assert!(rotated.exists(), "log rotated at the size threshold");
        let head = lines(&rotated);
        let tail = lines(&path);
        assert!(!head.is_empty() && !tail.is_empty());
        // Sequence numbers are gap-free across the rotation boundary
        // (earlier generations are deleted — only `.1` is kept — so the
        // surviving run is contiguous and ends at the last event).
        let all: Vec<u64> = head
            .iter()
            .chain(tail.iter())
            .map(|l| l.get("seq").and_then(Json::as_u64).unwrap())
            .collect();
        let want: Vec<u64> = (all[0]..all[0] + all.len() as u64).collect();
        assert_eq!(all, want);
        assert_eq!(*all.last().unwrap(), 20, "last event survives in place");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);
    }

    #[test]
    fn keep_three_retains_three_generations_in_order() {
        let path = tmp_log("keep3");
        // ~95-byte lines against a 150-byte cap: every second event
        // rotates, so 10 events produce well over 4 generations' worth.
        let log = EventLog::open(&path, Level::Debug, 150, 3).unwrap();
        for i in 0..10 {
            log.event(Level::Info, "fill", vec![("i".into(), Json::Num(i as f64))]);
        }
        for n in 1..=3 {
            assert!(
                log.generation_path(n).exists(),
                "generation .{n} is retained"
            );
        }
        assert!(
            !log.generation_path(4).exists(),
            "generation past --log-keep falls off"
        );
        // Oldest-to-newest read order is .3, .2, .1, FILE; sequence
        // numbers must be contiguous across every surviving boundary.
        let all: Vec<u64> = [3usize, 2, 1]
            .iter()
            .map(|&n| log.generation_path(n))
            .chain(std::iter::once(path.clone()))
            .flat_map(|p| lines(&p))
            .map(|l| l.get("seq").and_then(Json::as_u64).unwrap())
            .collect();
        let want: Vec<u64> = (all[0]..all[0] + all.len() as u64).collect();
        assert_eq!(all, want, "gap-free across 3 retained generations");
        assert_eq!(*all.last().unwrap(), 10);
        let _ = std::fs::remove_file(&path);
        for n in 1..=3 {
            let _ = std::fs::remove_file(log.generation_path(n));
        }
    }

    #[test]
    fn level_parse_and_order() {
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Error < Level::Debug);
        let path = tmp_log("levels");
        let log = EventLog::open(&path, Level::Error, DEFAULT_MAX_BYTES, DEFAULT_KEEP).unwrap();
        assert!(log.enabled(Level::Error));
        assert!(!log.enabled(Level::Warn));
        let _ = std::fs::remove_file(&path);
    }
}
