//! Chrome trace-event JSON export (loadable in Perfetto / `chrome://tracing`).

use crate::span::TrackSpans;
use std::fmt::Write;

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders drained spans as Chrome trace-event JSON.
///
/// Each track becomes one `tid` with a `thread_name` metadata event, so a
/// parallel run shows one horizontal track per worker fragment; every span
/// becomes a complete (`"ph":"X"`) event with microsecond `ts`/`dur`.
/// Open the file at <https://ui.perfetto.dev> or `chrome://tracing`.
///
/// ```
/// use mp_trace::{chrome_trace_json, TraceCollector};
///
/// let tracer = TraceCollector::new();
/// {
///     let _run = tracer.span("run");
/// }
/// let json = chrome_trace_json(&tracer.drain());
/// assert!(json.contains("\"ph\":\"X\""));
/// assert!(json.contains("\"name\":\"run\""));
/// ```
pub fn chrome_trace_json(tracks: &[TrackSpans]) -> String {
    let mut out =
        String::with_capacity(256 + tracks.iter().map(|t| t.spans.len() * 96).sum::<usize>());
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let push_sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str("\n  ");
    };
    for t in tracks {
        push_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"",
            t.track
        );
        escape_json(&t.thread_name, &mut out);
        out.push_str("\"}}");
    }
    for t in tracks {
        for s in &t.spans {
            push_sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"mergepurge\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":1,\"tid\":{}",
                s.name,
                s.start_ns / 1_000,
                s.start_ns % 1_000,
                s.dur_ns() / 1_000,
                s.dur_ns() % 1_000,
                t.track
            );
            if let Some(label) = &s.label {
                out.push_str(",\"args\":{\"label\":\"");
                escape_json(label, &mut out);
                out.push_str("\"}");
            }
            out.push('}');
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceCollector;

    #[test]
    fn export_contains_metadata_and_complete_events() {
        let tracer = TraceCollector::new();
        {
            let _run = tracer.span("run");
            std::thread::scope(|scope| {
                for j in 0..2 {
                    let tracer = &tracer;
                    scope.spawn(move || {
                        let _f = tracer.span_labeled("fragment", format!("j={j}"));
                    });
                }
            });
        }
        let json = chrome_trace_json(&tracer.drain());
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        // One thread_name metadata event per track (main + 2 workers).
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
        assert!(json.contains("\"name\":\"run\""));
        assert!(json.contains("\"label\":\"j=0\""));
        assert!(json.contains("\"label\":\"j=1\""));
    }

    #[test]
    fn labels_are_escaped() {
        let tracer = TraceCollector::new();
        {
            let _s = tracer.span_labeled("pass", "quote\" back\\slash\ttab".into());
        }
        let json = chrome_trace_json(&tracer.drain());
        assert!(json.contains("quote\\\" back\\\\slash\\ttab"));
    }

    #[test]
    fn timestamps_are_microseconds_with_ns_fraction() {
        let tracer = TraceCollector::new();
        {
            let _s = tracer.span("tick");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let tracks = tracer.drain();
        let json = chrome_trace_json(&tracks);
        let dur_ns = tracks[0].spans[0].dur_ns();
        let expect = format!("\"dur\":{}.{:03}", dur_ns / 1_000, dur_ns % 1_000);
        assert!(json.contains(&expect), "{json}");
    }
}
