//! The §3.5 analytical cost model.
//!
//! Serial, memory-resident complexity of the two approaches:
//!
//! ```text
//! T_mp = c·r·N·log2(N) + α·c·r·w·N + T_cl_mp        (multi-pass, r passes)
//! T_sp = c·N·log2(N)   + α·c·W·N   + T_cl_sp        (single pass)
//! ```
//!
//! where `c` is the per-comparison sorting cost and `α·c` the (much larger)
//! per-comparison window-scan cost — the paper measures α ≈ 6 and
//! c ≈ 1.2×10⁻⁵ s. Solving `T_sp > T_mp` for the single-pass window:
//!
//! ```text
//! W > (r−1)/α · log2(N) + r·w + (T_cl_mp − T_cl_sp) / (α·c·N)
//! ```
//!
//! For the paper's N = 13,751, r = 3, w = 10 this gives W > 41: a single
//! pass needs a window of 41+ records to merely match multi-pass *time*,
//! while its accuracy at that window is far below multi-pass accuracy.

/// Fitted constants of the cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-comparison cost of the sort phase, in seconds.
    pub c: f64,
    /// Window-scan cost multiplier (`c_wscan = α·c`).
    pub alpha: f64,
    /// Closure time for the multi-pass run, seconds.
    pub t_cl_mp: f64,
    /// Closure time for the single-pass run, seconds.
    pub t_cl_sp: f64,
}

impl CostModel {
    /// The constants measured in the paper's §3.5 experiment.
    pub fn paper() -> Self {
        CostModel {
            c: 1.2e-5,
            alpha: 6.0,
            t_cl_mp: 7.0,
            t_cl_sp: 1.2,
        }
    }

    /// Fits `c` from a measured sort time (`t_sort ≈ c·N·log2 N`) and `α`
    /// from a measured window-scan time (`t_scan ≈ α·c·w·N`).
    ///
    /// # Panics
    ///
    /// Panics when `n < 2` or `w == 0` or non-positive timings are given.
    pub fn fit(n: usize, w: usize, t_sort: f64, t_scan: f64, t_cl_sp: f64, t_cl_mp: f64) -> Self {
        assert!(n >= 2 && w >= 1, "need n >= 2 and w >= 1");
        assert!(t_sort > 0.0 && t_scan > 0.0, "timings must be positive");
        let nf = n as f64;
        let c = t_sort / (nf * nf.log2());
        let alpha = t_scan / (c * w as f64 * nf);
        CostModel {
            c,
            alpha,
            t_cl_mp,
            t_cl_sp,
        }
    }

    /// Predicted single-pass time with window `w_single` over `n` records.
    pub fn single_pass_time(&self, n: usize, w_single: usize) -> f64 {
        let nf = n as f64;
        self.c * nf * nf.log2() + self.alpha * self.c * w_single as f64 * nf + self.t_cl_sp
    }

    /// Predicted multi-pass time with `r` passes of window `w` over `n`
    /// records.
    pub fn multi_pass_time(&self, n: usize, r: usize, w: usize) -> f64 {
        let nf = n as f64;
        let r = r as f64;
        self.c * r * nf * nf.log2() + self.alpha * self.c * r * w as f64 * nf + self.t_cl_mp
    }

    /// The crossover bound: the single-pass window `W` above which a single
    /// pass is slower than `r` passes of window `w`
    /// (`W > (r−1)/α·log2 N + r·w + (T_cl_mp − T_cl_sp)/(α·c·N)`).
    pub fn crossover_window(&self, n: usize, r: usize, w: usize) -> f64 {
        let nf = n as f64;
        (r as f64 - 1.0) / self.alpha * nf.log2()
            + (r * w) as f64
            + (self.t_cl_mp - self.t_cl_sp) / (self.alpha * self.c * nf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_crossover_reproduced() {
        // §3.5: "the multi-pass approach dominates the single sort approach
        // for these datasets when W > 41" (N = 13751, r = 3, w = 10).
        let m = CostModel::paper();
        let w = m.crossover_window(13_751, 3, 10);
        assert!(
            (w - 41.0).abs() < 2.0,
            "crossover {w:.1} not near the paper's 41"
        );
    }

    #[test]
    fn crossover_is_consistent_with_time_curves() {
        let m = CostModel::paper();
        let n = 13_751;
        let cross = m.crossover_window(n, 3, 10);
        let below = m.single_pass_time(n, cross as usize - 2);
        let above = m.single_pass_time(n, cross as usize + 2);
        let multi = m.multi_pass_time(n, 3, 10);
        assert!(
            below < multi,
            "below crossover single-pass should be faster"
        );
        assert!(
            above > multi,
            "above crossover single-pass should be slower"
        );
    }

    #[test]
    fn fit_roundtrips_constants() {
        let truth = CostModel {
            c: 2.0e-5,
            alpha: 5.0,
            t_cl_mp: 3.0,
            t_cl_sp: 0.5,
        };
        let n = 50_000;
        let w = 12;
        let nf = n as f64;
        let t_sort = truth.c * nf * nf.log2();
        let t_scan = truth.alpha * truth.c * w as f64 * nf;
        let fitted = CostModel::fit(n, w, t_sort, t_scan, truth.t_cl_sp, truth.t_cl_mp);
        assert!((fitted.c - truth.c).abs() / truth.c < 1e-9);
        assert!((fitted.alpha - truth.alpha).abs() / truth.alpha < 1e-9);
    }

    #[test]
    fn multi_pass_time_scales_linearly_in_r() {
        let m = CostModel::paper();
        let t1 = m.multi_pass_time(10_000, 1, 10) - m.t_cl_mp;
        let t3 = m.multi_pass_time(10_000, 3, 10) - m.t_cl_mp;
        assert!((t3 / t1 - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "timings must be positive")]
    fn fit_rejects_zero_timing() {
        CostModel::fit(100, 5, 0.0, 1.0, 0.0, 0.0);
    }
}
