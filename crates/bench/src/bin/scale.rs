//! Scale benchmark: records/second for the full multi-pass merge/purge
//! at 100k / 1M / 10M records, across execution engines and sort
//! strategies.
//!
//! Legs per size:
//!
//! * `serial/comparison`   — in-memory [`MultiPass`], stable comparison sort
//! * `serial/radix`        — same, LSD radix sort over key prefixes
//! * `parallel/comparison` — banded [`mp_parallel`] passes (all cores)
//! * `extsort/comparison`  — disk-spilling [`BulkLoader`] under a memory
//!   budget (the `mergepurge load` pipeline)
//! * `extsort/radix`       — same, radix run formation
//!
//! Every leg must close the *identical* pair set at every size it runs —
//! the benchmark asserts this, so a run doubles as an equivalence check
//! (the property docs/SCALING.md leans on when it says strategy choice
//! is a pure performance knob).
//!
//! Usage:
//!   cargo run --release -p mp-bench --bin scale -- \
//!     [--sizes 100000,1000000,10000000] [--window 10] [--seed 11] \
//!     [--memory-budget 1000000] [--out BENCH_scale.json] [--append] \
//!     [--truth]
//!
//! `--sizes` takes *total* record counts (originals + duplicates are
//! derived to land near each total). `--append` merges new entries into
//! an existing report instead of overwriting — the CI scale-smoke job
//! uses it to keep the 100k leg fresh without discarding the big runs.
//! `--truth` scores the closed pairs against the generator's ground
//! truth (the paper's Fig. 2 metrics) and adds the accuracy fields to
//! every entry, so a scale run reports accuracy alongside throughput.

use merge_purge::{Evaluation, KeySpec, MultiPass, SortStrategy};
use mp_bench::Args;
use mp_closure::PairSet;
use mp_datagen::{DatabaseGenerator, GeneratorConfig};
use mp_extsort::{BulkLoader, ExternalConfig};
use mp_parallel::{parallel_multipass, ParallelPass, ParallelSnm};
use mp_rules::NativeEmployeeTheory;
use std::path::Path;
use std::time::Instant;

fn keys() -> Vec<KeySpec> {
    vec![KeySpec::last_name_key(), KeySpec::first_name_key()]
}

struct Leg {
    engine: &'static str,
    strategy: SortStrategy,
}

struct Outcome {
    wall_secs: f64,
    pairs: Vec<(u32, u32)>,
    comparisons: u64,
    data_passes: u32,
}

fn run_leg(
    leg: &Leg,
    records: &[mp_record::Record],
    input: &Path,
    work: &Path,
    window: usize,
    budget: usize,
    theory: &NativeEmployeeTheory,
) -> Outcome {
    let t0 = Instant::now();
    match leg.engine {
        "serial" => {
            let mut mp = MultiPass::new().with_strategy(leg.strategy);
            for key in keys() {
                mp = mp.sorted(key, window);
            }
            let r = mp.run(records, theory);
            Outcome {
                wall_secs: t0.elapsed().as_secs_f64(),
                pairs: r.closed_pairs.sorted(),
                comparisons: r.passes.iter().map(|p| p.stats.comparisons).sum(),
                data_passes: 0,
            }
        }
        "parallel" => {
            let procs = std::thread::available_parallelism().map_or(1, |p| p.get());
            let passes: Vec<ParallelPass> = keys()
                .into_iter()
                .map(|k| ParallelPass::Snm(ParallelSnm::new(k, window, procs)))
                .collect();
            let r = parallel_multipass(&passes, records, theory);
            Outcome {
                wall_secs: t0.elapsed().as_secs_f64(),
                pairs: r.closed_pairs.sorted(),
                comparisons: r.passes.iter().map(|p| p.stats.comparisons).sum(),
                data_passes: 0,
            }
        }
        "extsort" => {
            let config = ExternalConfig {
                memory_records: budget,
                strategy: leg.strategy,
                ..ExternalConfig::default()
            };
            let mut loader = BulkLoader::new(config);
            for key in keys() {
                loader = loader.pass(key, window);
            }
            let mut r = loader.load(input, work, theory).expect("extsort leg");
            // BulkOutcome carries the *matched* pairs; expand the closure
            // into closed pairs so the identity check compares like with
            // like (MultiPassResult::closed_pairs is post-closure).
            let mut pairs = Vec::new();
            for class in r.closure.classes() {
                for i in 0..class.len() {
                    for j in i + 1..class.len() {
                        pairs.push((class[i], class[j]));
                    }
                }
            }
            pairs.sort_unstable();
            Outcome {
                wall_secs: t0.elapsed().as_secs_f64(),
                pairs,
                comparisons: r.comparisons,
                data_passes: r.stats.io.data_passes(),
            }
        }
        other => panic!("unknown engine {other}"),
    }
}

/// One report entry, rendered as a single JSON object line. With
/// `--truth` the entry also carries the Fig. 2 accuracy metrics (shared
/// by all legs of a size: the pairs are asserted identical).
fn entry_json(
    total: usize,
    leg: &Leg,
    o: &Outcome,
    window: usize,
    budget: usize,
    eval: Option<&Evaluation>,
) -> String {
    let accuracy = eval.map_or(String::new(), |e| {
        format!(
            ", \"percent_detected\": {:.2}, \"percent_false_positive\": {:.3}, \
             \"percent_precision\": {:.2}",
            e.percent_detected,
            e.percent_false_positive,
            e.percent_precision(),
        )
    });
    format!(
        "  {{\"records\": {total}, \"engine\": \"{}\", \"strategy\": \"{}\", \
         \"window\": {window}, \"memory_budget\": {budget}, \
         \"wall_secs\": {:.3}, \"records_per_sec\": {:.0}, \
         \"closed_pairs\": {}, \"comparisons\": {}, \"data_passes\": {}{accuracy}}}",
        leg.engine,
        leg.strategy.name(),
        o.wall_secs,
        total as f64 / o.wall_secs.max(1e-9),
        o.pairs.len(),
        o.comparisons,
        o.data_passes,
    )
}

/// Writes `entries` as a JSON array; with `append`, merges before the
/// closing bracket of an existing array file.
fn write_report(out: &str, entries: &[String], append: bool) {
    let body = entries.join(",\n");
    let existing = append.then(|| std::fs::read_to_string(out).ok()).flatten();
    let doc = match existing {
        Some(text) => {
            let trimmed = text.trim_end();
            let head = trimmed
                .strip_suffix(']')
                .expect("existing report must be a JSON array")
                .trim_end()
                .trim_end_matches(',');
            if head.trim() == "[" {
                format!("[\n{body}\n]\n")
            } else {
                format!("{head},\n{body}\n]\n")
            }
        }
        None => format!("[\n{body}\n]\n"),
    };
    std::fs::write(out, doc).expect("write bench report");
    println!("wrote {out}");
}

fn main() {
    let args = Args::from_env();
    let sizes_raw: String = args.get("sizes", "100000,1000000,10000000".to_string());
    let sizes: Vec<usize> = sizes_raw
        .split(',')
        .map(|s| s.trim().parse().expect("--sizes takes record counts"))
        .collect();
    let window: usize = args.get("window", 10);
    let seed: u64 = args.get("seed", 11);
    let budget: usize = args.get("memory-budget", 1_000_000);
    let out: String = args.get("out", "BENCH_scale.json".to_string());
    let append = args.has("append");
    let score_truth = args.has("truth");

    let legs = [
        Leg {
            engine: "serial",
            strategy: SortStrategy::Comparison,
        },
        Leg {
            engine: "serial",
            strategy: SortStrategy::Radix,
        },
        Leg {
            engine: "parallel",
            strategy: SortStrategy::Comparison,
        },
        Leg {
            engine: "extsort",
            strategy: SortStrategy::Comparison,
        },
        Leg {
            engine: "extsort",
            strategy: SortStrategy::Radix,
        },
    ];
    let theory = NativeEmployeeTheory::new();
    let work_root = std::env::temp_dir().join(format!("mp-scale-{}", std::process::id()));
    std::fs::create_dir_all(&work_root).expect("create work root");
    let mut entries = Vec::new();

    for &total in &sizes {
        // duplicate_fraction 0.4 with max 5 per original lands the
        // generated total ~1.36x the originals; solve for the originals.
        let originals = (total as f64 / 1.36) as usize;
        let t0 = Instant::now();
        let db = DatabaseGenerator::new(
            GeneratorConfig::new(originals)
                .duplicate_fraction(0.4)
                .seed(seed),
        )
        .generate();
        let n = db.records.len();
        let input = work_root.join(format!("db-{total}.mp"));
        mp_record::io::write_records(
            std::fs::File::create(&input).expect("create input"),
            &db.records,
        )
        .expect("write input");
        println!(
            "\n# scale {n} records (asked {total}), generated + written in {:.1}s",
            t0.elapsed().as_secs_f64()
        );
        println!(
            "{:<22} {:>12} {:>14} {:>14} {:>12}",
            "leg", "wall", "records/s", "comparisons", "data passes"
        );

        let mut reference: Option<Vec<(u32, u32)>> = None;
        let mut eval: Option<Evaluation> = None;
        for leg in &legs {
            let work = work_root.join(format!(
                "work-{total}-{}-{}",
                leg.engine,
                leg.strategy.name()
            ));
            std::fs::create_dir_all(&work).expect("create leg work dir");
            let o = run_leg(leg, &db.records, &input, &work, window, budget, &theory);
            let _ = std::fs::remove_dir_all(&work);
            println!(
                "{:<22} {:>11.2}s {:>14.0} {:>14} {:>12}",
                format!("{}/{}", leg.engine, leg.strategy.name()),
                o.wall_secs,
                n as f64 / o.wall_secs.max(1e-9),
                o.comparisons,
                o.data_passes,
            );
            match &reference {
                None => {
                    // Score once per size: every later leg is asserted to
                    // close the identical pair set, so the accuracy is a
                    // property of the size, not the leg.
                    if score_truth {
                        let found: PairSet = o.pairs.iter().copied().collect();
                        eval = Some(Evaluation::score(&found, &db.truth));
                    }
                    reference = Some(o.pairs.clone());
                }
                Some(want) => assert_eq!(
                    want,
                    &o.pairs,
                    "{}/{} closed different pairs at {n} records",
                    leg.engine,
                    leg.strategy.name()
                ),
            }
            entries.push(entry_json(n, leg, &o, window, budget, eval.as_ref()));
        }
        println!("closed pairs identical across all {} legs", legs.len());
        if let Some(e) = &eval {
            println!(
                "accuracy: detected {:.1}%   false-positive {:.3}%   precision {:.1}%   \
                 ({} true pairs)",
                e.percent_detected,
                e.percent_false_positive,
                e.percent_precision(),
                e.true_pairs,
            );
        }
        let _ = std::fs::remove_file(&input);
    }

    let _ = std::fs::remove_dir_all(&work_root);
    write_report(&out, &entries, append);
}
