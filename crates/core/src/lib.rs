#![warn(missing_docs)]

//! The merge/purge library: sorted-neighborhood, clustering, and multi-pass
//! duplicate detection over large record lists.
//!
//! This is a reproduction of Hernández & Stolfo, *The Merge/Purge Problem
//! for Large Databases* (SIGMOD 1995). The three solution methods:
//!
//! * [`SortedNeighborhood`] (§2.2) — create a key per record, sort on the
//!   key, slide a `w`-record window applying an equational theory to every
//!   pair inside it;
//! * [`ClusteringMethod`] (§2.2.1) — histogram-partition the key space into
//!   `C` balanced clusters, then run the sorted-neighborhood method inside
//!   each cluster independently;
//! * [`MultiPass`] (§2.4) — several independent passes with *different keys*
//!   and *small windows*, unioned by transitive closure. The paper's
//!   headline result: this dominates any single pass with a large window.
//!
//! [`Evaluation`] scores results against generated ground truth the way the
//! paper's figures do, and [`costmodel`] implements the §3.5 analytical
//! model including the single-pass/multi-pass crossover window.
//!
//! # Quick start
//!
//! ```
//! use merge_purge::{KeySpec, MergePurge};
//! use mp_datagen::{DatabaseGenerator, GeneratorConfig};
//! use mp_rules::NativeEmployeeTheory;
//!
//! let mut db = DatabaseGenerator::new(GeneratorConfig::new(500).seed(7)).generate();
//! let theory = NativeEmployeeTheory::new();
//! let result = MergePurge::new(&theory)
//!     .pass(KeySpec::last_name_key(), 10)
//!     .pass(KeySpec::first_name_key(), 10)
//!     .pass(KeySpec::address_key(), 10)
//!     .run(&mut db.records);
//! let eval = merge_purge::Evaluation::score(&result.closed_pairs, &db.truth);
//! assert!(eval.percent_detected > 50.0);
//! ```

pub mod clustering;
pub mod costmodel;
pub mod eval;
pub mod incremental;
pub mod key;
pub mod mergescan;
pub mod multipass;
pub mod pipeline;
pub mod purge;
pub mod radix;
pub mod snm;
pub mod window;

pub use clustering::{ClusteringConfig, ClusteringMethod};
pub use costmodel::CostModel;
pub use eval::Evaluation;
pub use incremental::{band_ranges, IncrementalMergePurge};
pub use key::{KeyArena, KeyPart, KeySpec};
pub use mergescan::MergeScanSnm;
pub use multipass::{MultiPass, MultiPassResult, PassConfig};
pub use pipeline::{MergePurge, MergePurgeResult};
pub use purge::Purger;
pub use radix::{chunked_str_cmp, radix_order_by, sorted_order_radix, SortStrategy};
pub use snm::{PassResult, PassStats, SortedNeighborhood};
pub use window::window_scan;
