#![warn(missing_docs)]

//! External-memory (disk-resident) merge/purge with I/O pass accounting.
//!
//! §2.2 and §3.5 analyze the case where "the dominant cost will be disk
//! I/O, i.e., the number of passes over the data set":
//!
//! * the **sorted-neighborhood method** needs "at least three passes: one
//!   pass for conditioning the data and preparing keys, at least a second
//!   pass, likely more, for a high speed sort ..., and a final pass for
//!   window processing" — with an F-way external merge sort that is
//!   `2 + ceil(log_F(N/M))` data passes;
//! * the **clustering method** needs "approximately only 2 passes": one to
//!   assign records to clusters, and one where each cluster is processed
//!   in memory.
//!
//! This crate implements both over flat record files (the `mp-record` line
//! format), with a hard in-memory budget of `M` records and exact
//! [`IoStats`] so the pass-count analysis can be *measured* rather than
//! asserted. Results are bit-identical to the in-memory engines (tested):
//! the same pairs come out whether the data fits in RAM or not.
//!
//! ```no_run
//! use mp_extsort::{ExternalConfig, ExternalSnm};
//! use merge_purge::KeySpec;
//! use mp_rules::NativeEmployeeTheory;
//! use std::path::Path;
//!
//! let config = ExternalConfig { memory_records: 10_000, fan_in: 16 };
//! let snm = ExternalSnm::new(KeySpec::last_name_key(), 10, config);
//! let theory = NativeEmployeeTheory::new();
//! let outcome = snm.run(Path::new("db.mp"), Path::new("/tmp/work"), &theory).unwrap();
//! println!("{} pairs in {} passes", outcome.pairs.len(), outcome.io.data_passes());
//! ```

pub mod clustering;
pub mod runfile;
pub mod snm;
pub mod sorter;

pub use clustering::ExternalClustering;
pub use snm::ExternalSnm;
pub use sorter::ExternalSorter;

use mp_closure::PairSet;

/// Resource limits for external processing.
#[derive(Debug, Clone, Copy)]
pub struct ExternalConfig {
    /// Maximum records held in memory at once (`M`). Run formation sorts
    /// chunks of this size; the clustering method requires every cluster to
    /// fit within it.
    pub memory_records: usize,
    /// Merge fan-in `F` (the paper's experiments "used merge sort ... which
    /// used a 16-way merge algorithm").
    pub fan_in: usize,
}

impl Default for ExternalConfig {
    fn default() -> Self {
        ExternalConfig {
            memory_records: 100_000,
            fan_in: 16,
        }
    }
}

/// Exact I/O accounting for one external run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Records read from disk (input + intermediate runs).
    pub records_read: u64,
    /// Records written to disk (runs + merge levels + cluster files).
    pub records_written: u64,
    /// Number of full sweeps over the data set (the §3.5 unit of cost):
    /// each sweep reads every live record once.
    pub sweeps: u32,
}

impl IoStats {
    /// Total data passes, the quantity §3.5 compares across methods.
    pub fn data_passes(&self) -> u32 {
        self.sweeps
    }

    fn add_sweep(&mut self) {
        self.sweeps += 1;
    }
}

/// Result of an external merge/purge pass.
#[derive(Debug)]
pub struct ExternalOutcome {
    /// Deduplicated matching pairs (same semantics as the in-memory
    /// engines).
    pub pairs: PairSet,
    /// Measured I/O accounting.
    pub io: IoStats,
    /// Number of records processed.
    pub records: usize,
}
