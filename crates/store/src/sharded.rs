//! Sharded durable store: N per-shard journals + snapshots under one
//! directory, recombining to exactly the single-store state.
//!
//! The serving daemon's sharded mode partitions records by key band and
//! gives each shard worker its own journal and snapshot files, so ingest
//! `fsync`s run concurrently. This module owns the disk layout and the
//! recovery/merge logic; it knows nothing about routing (the caller
//! supplies a `shard_of` function when splitting a snapshot).
//!
//! # On-disk layout
//!
//! ```text
//! store/
//!   manifest.mpm          shard count + committed snapshot epoch
//!   shard-0/
//!     journal.mpj         standard journal (see `journal`)
//!     snapshot-<E>.mps    this shard's slice of checkpoint epoch E
//!   shard-1/
//!     ...
//! ```
//!
//! # Scatter protocol
//!
//! Every ingested batch is scattered as **one frame per shard journal,
//! all carrying the same sequence number** — shards without records for
//! the batch get an empty frame, keeping every journal's sequence stream
//! identical. Records are journaled with their *global* ids already
//! assigned, so a replayed batch is reassembled by concatenating the
//! shard frames and sorting by id.
//!
//! A batch is acknowledged only after **all** shard appends have
//! `fsync`ed. Recovery therefore treats a sequence number as replayable
//! iff it is present in *every* shard journal; trailing frames of an
//! incomplete scatter (present in some shards only — the batch was never
//! acknowledged) are physically truncated via [`Journal::truncate_to`]
//! so their sequence numbers can be reused.
//!
//! # Checkpoint protocol (two-phase)
//!
//! 1. The coordinator splits the engine snapshot with [`split_snapshot`]
//!    and every shard writes its `snapshot-<E>.mps` for the *new* epoch E
//!    (write-temp + fsync + rename, via [`write_shard_snapshot`]).
//! 2. The coordinator atomically rewrites the manifest pointing at E
//!    ([`ShardedStore::commit_epoch`]) — the commit point — then every
//!    shard resets its journal.
//!
//! A crash before the manifest flip leaves stale epoch-E files (removed
//! on the next open); a crash after the flip but before some journal
//! resets leaves frames at-or-below the new watermark (filtered out on
//! replay, exactly as in the single store).

use crate::codec::{self, Reader};
use crate::journal::{Journal, JournalBatch, JournalRecovery};
use crate::snapshot::{PassSnapshot, Snapshot};
use crate::{fsync_dir, StoreError, JOURNAL_FILE};
use mp_closure::{MergeEdge, ProvenanceLog, UnionFind};
use mp_record::Record;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// File name of the manifest inside a sharded store directory.
pub const MANIFEST_FILE: &str = "manifest.mpm";
/// Manifest format version.
pub const MANIFEST_VERSION: u32 = 1;
/// Shard-snapshot format version. Version 2 added the provenance slice:
/// ordinal-tagged merge edges (owned like pairs, by the shard of the
/// larger id) plus the duplicated batch-trace and rule-firing tables.
pub const SHARD_SNAPSHOT_VERSION: u32 = 2;

const MANIFEST_MAGIC: &[u8; 4] = b"MPMF";
const SHARD_SNAPSHOT_MAGIC: &[u8; 8] = b"MPSSHARD";
const JOURNAL_HEADER_LEN: u64 = 8;

/// Everything [`ShardedStore::open`] recovered from disk.
#[derive(Debug)]
pub struct ShardedLoaded {
    /// The last committed checkpoint, merged back into a global snapshot.
    pub snapshot: Option<Snapshot>,
    /// Fully-scattered batches the snapshot has not absorbed, in sequence
    /// order, each reassembled (id-sorted) across shards, carrying the
    /// ingest trace id its scatter frames journaled (if any).
    pub replayable: Vec<JournalBatch>,
    /// One open journal per shard, in shard order, positioned to append
    /// at the next sequence number. The caller hands each to its worker.
    pub journals: Vec<Journal>,
    /// Per-shard count of *non-empty* frames among the replayable batches
    /// (empty scatter frames are sequence padding, not replay work).
    pub shard_replays: Vec<u64>,
    /// Total bytes dropped across all shards (torn tails + orphan frames).
    pub truncated_bytes: u64,
    /// One reason per shard that lost bytes, prefixed with the shard index.
    pub truncation_reasons: Vec<String>,
    /// Sequence number the next ingested batch must use.
    pub next_seq: u64,
}

/// Coordinator handle over a sharded store directory: layout, manifest,
/// and checkpoint commit. Journals are owned by the caller's shard
/// workers (returned from [`ShardedStore::open`] via [`ShardedLoaded`]).
#[derive(Debug)]
pub struct ShardedStore {
    dir: PathBuf,
    shards: usize,
    epoch: u64,
}

#[derive(Debug, PartialEq, Eq)]
struct Manifest {
    shards: u32,
    epoch: u64,
}

fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut payload = Vec::new();
    codec::put_u32(&mut payload, m.shards);
    codec::put_u64(&mut payload, m.epoch);
    let mut out = Vec::with_capacity(12 + payload.len() + 4);
    out.extend_from_slice(MANIFEST_MAGIC);
    out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    out.extend_from_slice(&codec::crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn decode_manifest(data: &[u8]) -> Result<Manifest, StoreError> {
    let corrupt = |msg: &str| StoreError::Corrupt(format!("manifest: {msg}"));
    if data.len() < 12 {
        return Err(corrupt("file too short"));
    }
    if &data[..4] != MANIFEST_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
    if version != MANIFEST_VERSION {
        return Err(corrupt(&format!("unknown version {version}")));
    }
    let crc = u32::from_le_bytes(data[8..12].try_into().unwrap());
    let payload = &data[12..];
    if codec::crc32(payload) != crc {
        return Err(corrupt("CRC mismatch"));
    }
    let mut r = Reader::new(payload);
    let m = (|| {
        let shards = r.u32()?;
        let epoch = r.u64()?;
        r.finish()?;
        Ok::<_, String>(Manifest { shards, epoch })
    })()
    .map_err(|e| corrupt(&e))?;
    if m.shards == 0 {
        return Err(corrupt("zero shards"));
    }
    Ok(m)
}

fn snapshot_file_name(epoch: u64) -> String {
    format!("snapshot-{epoch}.mps")
}

/// Parses the epoch out of a `snapshot-<E>.mps` file name.
fn parse_snapshot_epoch(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot-")?
        .strip_suffix(".mps")?
        .parse()
        .ok()
}

impl ShardedStore {
    /// Opens (creating if needed) the sharded store at `dir` with the
    /// given shard count, recovering the committed snapshot epoch and the
    /// fully-scattered journal suffix. Stale temp files and
    /// uncommitted-epoch snapshot files are removed; orphan frames from an
    /// incomplete scatter are truncated (reported, never silent).
    ///
    /// # Errors
    ///
    /// I/O failures, a corrupt manifest or shard snapshot, a shard-count
    /// mismatch against the manifest, or a sequence gap below the
    /// complete-scatter watermark (real corruption, not a torn tail).
    ///
    /// # Panics
    ///
    /// Panics when `shards` is 0.
    pub fn open(
        dir: impl AsRef<Path>,
        shards: usize,
    ) -> Result<(ShardedStore, ShardedLoaded), StoreError> {
        assert!(shards >= 1, "need at least one shard");
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let _ = std::fs::remove_file(dir.join(format!("{MANIFEST_FILE}.tmp")));

        let manifest_path = dir.join(MANIFEST_FILE);
        let epoch = match std::fs::read(&manifest_path) {
            Ok(data) => {
                let m = decode_manifest(&data)?;
                if m.shards != shards as u32 {
                    return Err(StoreError::Corrupt(format!(
                        "store at {} has {} shards but {} were configured \
                         (shard count is fixed at store creation)",
                        dir.display(),
                        m.shards,
                        shards
                    )));
                }
                m.epoch
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let store = ShardedStore {
                    dir: dir.clone(),
                    shards,
                    epoch: 0,
                };
                store.write_manifest(0)?;
                0
            }
            Err(e) => return Err(e.into()),
        };

        let mut journals = Vec::with_capacity(shards);
        let mut recoveries: Vec<JournalRecovery> = Vec::with_capacity(shards);
        let mut truncated_bytes = 0u64;
        let mut truncation_reasons = Vec::new();
        for k in 0..shards {
            let sd = dir.join(format!("shard-{k}"));
            std::fs::create_dir_all(&sd)?;
            for entry in std::fs::read_dir(&sd)? {
                let entry = entry?;
                let name = entry.file_name().to_string_lossy().into_owned();
                let stale_tmp = name.ends_with(".tmp");
                let stale_snap = matches!(parse_snapshot_epoch(&name), Some(e) if e != epoch);
                if stale_tmp || stale_snap {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
            let (j, rec) = Journal::open(&sd.join(JOURNAL_FILE))?;
            truncated_bytes += rec.truncated_bytes;
            if let Some(r) = &rec.truncation_reason {
                truncation_reasons.push(format!("shard {k}: {r}"));
            }
            journals.push(j);
            recoveries.push(rec);
        }

        let snapshot = if epoch > 0 {
            let mut parts = Vec::with_capacity(shards);
            for (k, _) in journals.iter().enumerate() {
                let path = dir
                    .join(format!("shard-{k}"))
                    .join(snapshot_file_name(epoch));
                let data = std::fs::read(&path).map_err(|e| {
                    StoreError::Corrupt(format!(
                        "committed epoch {epoch} is missing shard {k}'s snapshot ({e})"
                    ))
                })?;
                parts.push(ShardSnapshot::decode(&data)?);
            }
            Some(merge_shard_snapshots(&parts)?)
        } else {
            None
        };
        let watermark = snapshot.as_ref().map_or(0, |s| s.batches_applied);

        for rec in &mut recoveries {
            Journal::filter_replayable(rec, watermark)?;
        }
        // A batch is replayable iff every shard holds its frame: the last
        // complete sequence is the minimum of the per-shard tails.
        let last_complete = recoveries
            .iter()
            .map(|r| r.batches.last().map_or(watermark, |b| b.seq))
            .min()
            .unwrap_or(watermark);

        let mut shard_replays = vec![0u64; shards];
        let mut replayable: Vec<JournalBatch> = (watermark + 1..=last_complete)
            .map(|s| JournalBatch {
                seq: s,
                records: Vec::new(),
                trace: None,
            })
            .collect();
        for (k, rec) in recoveries.iter_mut().enumerate() {
            let orphans = rec.batches.iter().filter(|b| b.seq > last_complete).count();
            if orphans > 0 {
                let end = rec
                    .frame_ends
                    .iter()
                    .filter(|(s, _)| *s <= last_complete)
                    .map(|(_, e)| *e)
                    .max()
                    .unwrap_or(JOURNAL_HEADER_LEN);
                let file_len = rec
                    .frame_ends
                    .last()
                    .map_or(JOURNAL_HEADER_LEN, |(_, e)| *e);
                journals[k].truncate_to(end, last_complete + 1)?;
                truncated_bytes += file_len - end;
                truncation_reasons.push(format!(
                    "shard {k}: dropped {orphans} orphan frame(s) of an incomplete scatter \
                     (batch never acknowledged)"
                ));
                rec.batches.retain(|b| b.seq <= last_complete);
            }
            journals[k].bump_next_seq(last_complete + 1);
            for b in std::mem::take(&mut rec.batches) {
                if !b.records.is_empty() {
                    shard_replays[k] += 1;
                }
                let slot = &mut replayable[(b.seq - watermark - 1) as usize];
                slot.records.extend(b.records);
                // Every scatter frame of a batch journals the same trace;
                // the first one seen stands for all.
                if slot.trace.is_none() {
                    slot.trace = b.trace;
                }
            }
        }
        // Scattered frames carry global ids; id order is the arrival order.
        for b in &mut replayable {
            b.records.sort_by_key(|r| r.id.0);
        }

        Ok((
            ShardedStore { dir, shards, epoch },
            ShardedLoaded {
                snapshot,
                replayable,
                journals,
                shard_replays,
                truncated_bytes,
                truncation_reasons,
                next_seq: last_complete + 1,
            },
        ))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of shards (fixed at store creation).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The committed checkpoint epoch (0 = no checkpoint yet).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Directory of shard `k` (`store/shard-k/`).
    pub fn shard_dir(&self, k: usize) -> PathBuf {
        self.dir.join(format!("shard-{k}"))
    }

    fn write_manifest(&self, epoch: u64) -> Result<(), StoreError> {
        let bytes = encode_manifest(&Manifest {
            shards: self.shards as u32,
            epoch,
        });
        let path = self.dir.join(MANIFEST_FILE);
        let tmp = self.dir.join(format!("{MANIFEST_FILE}.tmp"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        fsync_dir(&self.dir)?;
        Ok(())
    }

    /// Commits checkpoint epoch `epoch`: atomically rewrites the manifest
    /// (the 2PC commit point — every shard's `snapshot-<epoch>.mps` must
    /// already be durable) and removes the previous epoch's snapshot
    /// files. After this the caller resets the shard journals.
    ///
    /// # Errors
    ///
    /// I/O failure writing the manifest; the old epoch then remains
    /// committed and the new files are cleaned up on the next open.
    pub fn commit_epoch(&mut self, epoch: u64) -> Result<(), StoreError> {
        let old = self.epoch;
        self.write_manifest(epoch)?;
        self.epoch = epoch;
        if old > 0 {
            for k in 0..self.shards {
                let _ = std::fs::remove_file(self.shard_dir(k).join(snapshot_file_name(old)));
            }
        }
        Ok(())
    }

    /// Total size and newest modification time across the committed
    /// epoch's shard snapshot files, or `None` before the first
    /// checkpoint (mirrors `MatchStore::snapshot_meta`).
    pub fn snapshot_meta(&self) -> Option<(u64, std::time::SystemTime)> {
        if self.epoch == 0 {
            return None;
        }
        let mut bytes = 0u64;
        let mut mtime: Option<std::time::SystemTime> = None;
        for k in 0..self.shards {
            let md =
                std::fs::metadata(self.shard_dir(k).join(snapshot_file_name(self.epoch))).ok()?;
            bytes += md.len();
            let m = md.modified().ok()?;
            mtime = Some(mtime.map_or(m, |t| t.max(m)));
        }
        Some((bytes, mtime?))
    }
}

/// Durably writes one shard's snapshot slice for `epoch` into
/// `shard_dir` (write-temp + fsync + rename + dir fsync). Phase one of
/// the checkpoint 2PC; the file is invisible to recovery until
/// [`ShardedStore::commit_epoch`] flips the manifest. Returns the byte
/// count written.
///
/// # Errors
///
/// I/O failure; the store still recovers from the committed epoch.
pub fn write_shard_snapshot(shard_dir: &Path, epoch: u64, bytes: &[u8]) -> Result<u64, StoreError> {
    let path = shard_dir.join(snapshot_file_name(epoch));
    let tmp = shard_dir.join(format!("{}.tmp", snapshot_file_name(epoch)));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    fsync_dir(shard_dir)?;
    Ok(bytes.len() as u64)
}

/// One pass's slice of a shard snapshot: the global attribution meta
/// (duplicated into every shard for cross-validation) plus the keys of
/// this shard's owned records, aligned with [`ShardSnapshot::records`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPassSlice {
    /// The pass's key name (global, duplicated).
    pub key_name: String,
    /// The pass's window size (global, duplicated).
    pub window: u32,
    /// Global `pairs_found` for this pass (duplicated).
    pub pairs_found: u64,
    /// Global `pairs_first_found` for this pass (duplicated).
    pub pairs_first_found: u64,
    /// Extracted key of each owned record, in [`ShardSnapshot::records`]
    /// order.
    pub keys: Vec<String>,
}

/// One shard's slice of a checkpoint: its owned records (global ids),
/// per-pass keys for those records, its owned pairs, and the global
/// scalars duplicated for cross-shard consistency checks. Pass *order*
/// indexes are not stored — they are recomputed on merge, because the
/// incremental engine's order is always the stable `(key, id)` sort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// This slice's shard index.
    pub shard: u32,
    /// Total shard count (duplicated).
    pub shards: u32,
    /// Global comparison count (duplicated).
    pub comparisons: u64,
    /// Global batches-applied watermark (duplicated).
    pub batches_applied: u64,
    /// Global record count (duplicated; reassembly must reach it).
    pub total_records: u64,
    /// Per-pass meta + this shard's key slices, in pass order.
    pub passes: Vec<ShardPassSlice>,
    /// Records owned by this shard, ascending global id.
    pub records: Vec<Record>,
    /// Matched pairs owned by this shard (the shard owning the pair's
    /// larger id), sorted ascending.
    pub pairs: Vec<(u32, u32)>,
    /// Provenance edges owned by this shard (same ownership rule as
    /// pairs: the shard of the edge's larger id), each tagged with its
    /// global ordinal in the log so the merge restores the exact original
    /// order — explain chains stay byte-identical across split/merge.
    pub edges: Vec<(u64, MergeEdge)>,
    /// Global batch-trace table (duplicated into every shard).
    pub batch_traces: Vec<(u64, String)>,
    /// Global per-rule firing counts (duplicated into every shard).
    pub rule_firings: Vec<u64>,
}

impl ShardSnapshot {
    /// Serializes the slice: magic + version + CRC-protected payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        codec::put_u32(&mut p, self.shard);
        codec::put_u32(&mut p, self.shards);
        codec::put_u64(&mut p, self.comparisons);
        codec::put_u64(&mut p, self.batches_applied);
        codec::put_u64(&mut p, self.total_records);
        codec::put_u32(&mut p, self.passes.len() as u32);
        for pass in &self.passes {
            codec::put_str(&mut p, &pass.key_name);
            codec::put_u32(&mut p, pass.window);
            codec::put_u64(&mut p, pass.pairs_found);
            codec::put_u64(&mut p, pass.pairs_first_found);
            codec::put_u32(&mut p, pass.keys.len() as u32);
            for k in &pass.keys {
                codec::put_str(&mut p, k);
            }
        }
        codec::put_records(&mut p, &self.records);
        codec::put_u64(&mut p, self.pairs.len() as u64);
        for &(a, b) in &self.pairs {
            codec::put_u32(&mut p, a);
            codec::put_u32(&mut p, b);
        }
        codec::put_u64(&mut p, self.edges.len() as u64);
        for &(ord, e) in &self.edges {
            codec::put_u64(&mut p, ord);
            codec::put_u32(&mut p, e.a);
            codec::put_u32(&mut p, e.b);
            codec::put_u32(&mut p, e.pass);
            codec::put_u32(&mut p, e.rule_id);
            codec::put_u64(&mut p, e.batch_seq);
        }
        codec::put_u32(&mut p, self.batch_traces.len() as u32);
        for (seq, trace) in &self.batch_traces {
            codec::put_u64(&mut p, *seq);
            codec::put_str(&mut p, trace);
        }
        codec::put_u32(&mut p, self.rule_firings.len() as u32);
        for &f in &self.rule_firings {
            codec::put_u64(&mut p, f);
        }

        let mut out = Vec::with_capacity(24 + p.len());
        out.extend_from_slice(SHARD_SNAPSHOT_MAGIC);
        out.extend_from_slice(&SHARD_SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(p.len() as u64).to_le_bytes());
        out.extend_from_slice(&codec::crc32(&p).to_le_bytes());
        out.extend_from_slice(&p);
        out
    }

    /// Parses and validates a slice written by [`ShardSnapshot::encode`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on bad magic/version, CRC mismatch, or a
    /// structural inconsistency (key slices misaligned with records,
    /// pairs out of range).
    pub fn decode(data: &[u8]) -> Result<ShardSnapshot, StoreError> {
        let corrupt = |msg: String| StoreError::Corrupt(format!("shard snapshot: {msg}"));
        if data.len() < 24 {
            return Err(corrupt(format!("file too short ({} bytes)", data.len())));
        }
        if &data[..8] != SHARD_SNAPSHOT_MAGIC {
            return Err(corrupt("bad magic".into()));
        }
        let version = u32::from_le_bytes(data[8..12].try_into().unwrap());
        if version != SHARD_SNAPSHOT_VERSION {
            return Err(corrupt(format!("unknown version {version}")));
        }
        let len = u64::from_le_bytes(data[12..20].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(data[20..24].try_into().unwrap());
        if data.len() != 24 + len {
            return Err(corrupt(format!(
                "payload length {len} disagrees with file size {}",
                data.len()
            )));
        }
        let payload = &data[24..];
        if codec::crc32(payload) != crc {
            return Err(corrupt("CRC mismatch".into()));
        }

        let mut r = Reader::new(payload);
        let snap = (|| {
            let shard = r.u32()?;
            let shards = r.u32()?;
            let comparisons = r.u64()?;
            let batches_applied = r.u64()?;
            let total_records = r.u64()?;
            let np = r.u32()? as usize;
            let mut passes = Vec::with_capacity(np.min(64));
            for _ in 0..np {
                let key_name = r.str()?;
                let window = r.u32()?;
                let pairs_found = r.u64()?;
                let pairs_first_found = r.u64()?;
                let nk = r.u32()? as usize;
                let mut keys = Vec::with_capacity(nk.min(r.remaining()));
                for _ in 0..nk {
                    keys.push(r.str()?);
                }
                passes.push(ShardPassSlice {
                    key_name,
                    window,
                    pairs_found,
                    pairs_first_found,
                    keys,
                });
            }
            let records = codec::take_records(&mut r)?;
            let n = r.u64()? as usize;
            let mut pairs = Vec::with_capacity(n.min(r.remaining() / 8 + 1));
            for _ in 0..n {
                pairs.push((r.u32()?, r.u32()?));
            }
            let ne = r.u64()? as usize;
            let mut edges = Vec::with_capacity(ne.min(r.remaining() / 32 + 1));
            for _ in 0..ne {
                let ord = r.u64()?;
                edges.push((
                    ord,
                    MergeEdge {
                        a: r.u32()?,
                        b: r.u32()?,
                        pass: r.u32()?,
                        rule_id: r.u32()?,
                        batch_seq: r.u64()?,
                    },
                ));
            }
            let nt = r.u32()? as usize;
            let mut batch_traces = Vec::with_capacity(nt.min(r.remaining() / 12 + 1));
            for _ in 0..nt {
                let seq = r.u64()?;
                batch_traces.push((seq, r.str()?));
            }
            let nf = r.u32()? as usize;
            let mut rule_firings = Vec::with_capacity(nf.min(r.remaining() / 8 + 1));
            for _ in 0..nf {
                rule_firings.push(r.u64()?);
            }
            r.finish()?;
            Ok::<_, String>(ShardSnapshot {
                shard,
                shards,
                comparisons,
                batches_applied,
                total_records,
                passes,
                records,
                pairs,
                edges,
                batch_traces,
                rule_firings,
            })
        })()
        .map_err(corrupt)?;

        if snap.shard >= snap.shards {
            return Err(corrupt(format!(
                "shard index {} out of range for {} shards",
                snap.shard, snap.shards
            )));
        }
        for (i, pass) in snap.passes.iter().enumerate() {
            if pass.keys.len() != snap.records.len() {
                return Err(corrupt(format!(
                    "pass {i}: {} keys for {} owned records",
                    pass.keys.len(),
                    snap.records.len()
                )));
            }
        }
        if snap
            .pairs
            .iter()
            .any(|&(a, b)| a >= b || b as u64 >= snap.total_records)
        {
            return Err(corrupt("pair out of range or not (low, high)".into()));
        }
        if snap
            .records
            .iter()
            .any(|rec| rec.id.0 as u64 >= snap.total_records)
        {
            return Err(corrupt("record id out of range".into()));
        }
        if snap.edges.iter().any(|&(_, e)| {
            e.a as u64 >= snap.total_records
                || e.b as u64 >= snap.total_records
                || e.batch_seq == 0
                || e.batch_seq > snap.batches_applied
        }) {
            return Err(corrupt("provenance edge out of range".into()));
        }
        Ok(snap)
    }
}

/// Splits a global [`Snapshot`] into per-shard slices by `shard_of`
/// (which must return a value `< shards` for every record). A pair is
/// owned by the shard of its larger-id record. The inverse of
/// [`merge_shard_snapshots`].
///
/// # Panics
///
/// Panics when `shards` is 0 or `shard_of` returns an out-of-range
/// shard.
pub fn split_snapshot(
    snap: &Snapshot,
    shards: usize,
    shard_of: impl Fn(&Record) -> usize,
) -> Vec<ShardSnapshot> {
    assert!(shards >= 1, "need at least one shard");
    let owner: Vec<usize> = snap
        .records
        .iter()
        .map(|r| {
            let k = shard_of(r);
            assert!(k < shards, "shard_of returned {k} for {shards} shards");
            k
        })
        .collect();

    let mut out: Vec<ShardSnapshot> = (0..shards)
        .map(|k| ShardSnapshot {
            shard: k as u32,
            shards: shards as u32,
            comparisons: snap.comparisons,
            batches_applied: snap.batches_applied,
            total_records: snap.records.len() as u64,
            passes: snap
                .passes
                .iter()
                .map(|p| ShardPassSlice {
                    key_name: p.key_name.clone(),
                    window: p.window,
                    pairs_found: p.pairs_found,
                    pairs_first_found: p.pairs_first_found,
                    keys: Vec::new(),
                })
                .collect(),
            records: Vec::new(),
            pairs: Vec::new(),
            edges: Vec::new(),
            batch_traces: snap.provenance.batch_traces.clone(),
            rule_firings: snap.provenance.rule_firings.clone(),
        })
        .collect();

    for (i, rec) in snap.records.iter().enumerate() {
        let k = owner[i];
        out[k].records.push(rec.clone());
        for (p, pass) in snap.passes.iter().enumerate() {
            out[k].passes[p].keys.push(pass.keys[i].clone());
        }
    }
    for &(a, b) in &snap.pairs {
        out[owner[b as usize]].pairs.push((a, b));
    }
    for (i, e) in snap.provenance.edges.iter().enumerate() {
        out[owner[e.a.max(e.b) as usize]].edges.push((i as u64, *e));
    }
    out
}

/// Recombines per-shard slices into the global [`Snapshot`], validating
/// cross-shard consistency (every duplicated scalar must agree) and
/// structural completeness (record ids must reassemble to a contiguous
/// range). Pass orders are recomputed as the stable `(key, id)` sort —
/// exactly the order the incremental engine maintains — and the closure
/// is rebuilt from the merged pair set (union-find classes are a
/// function of the pair partition, not of union order).
///
/// # Errors
///
/// [`StoreError::Corrupt`] naming the first inconsistency.
pub fn merge_shard_snapshots(parts: &[ShardSnapshot]) -> Result<Snapshot, StoreError> {
    let corrupt = |msg: String| StoreError::Corrupt(format!("shard snapshot merge: {msg}"));
    let first = parts
        .first()
        .ok_or_else(|| corrupt("no shard slices".into()))?;
    if parts.len() != first.shards as usize {
        return Err(corrupt(format!(
            "{} slices for a {}-shard store",
            parts.len(),
            first.shards
        )));
    }
    for (k, p) in parts.iter().enumerate() {
        if p.shard as usize != k {
            return Err(corrupt(format!(
                "slice {k} labels itself shard {}",
                p.shard
            )));
        }
        let same = p.shards == first.shards
            && p.comparisons == first.comparisons
            && p.batches_applied == first.batches_applied
            && p.total_records == first.total_records
            && p.batch_traces == first.batch_traces
            && p.rule_firings == first.rule_firings
            && p.passes.len() == first.passes.len()
            && p.passes.iter().zip(first.passes.iter()).all(|(a, b)| {
                a.key_name == b.key_name
                    && a.window == b.window
                    && a.pairs_found == b.pairs_found
                    && a.pairs_first_found == b.pairs_first_found
            });
        if !same {
            return Err(corrupt(format!(
                "shard {k} disagrees with shard 0 on the duplicated global state"
            )));
        }
    }

    let total = first.total_records as usize;
    let mut records: Vec<Option<Record>> = vec![None; total];
    let mut keys: Vec<Vec<String>> = vec![vec![String::new(); total]; first.passes.len()];
    for part in parts {
        for (i, rec) in part.records.iter().enumerate() {
            let id = rec.id.0 as usize;
            if records[id].is_some() {
                return Err(corrupt(format!("record {id} owned by two shards")));
            }
            records[id] = Some(rec.clone());
            for (p, pass) in part.passes.iter().enumerate() {
                keys[p][id] = pass.keys[i].clone();
            }
        }
    }
    let records: Vec<Record> = records
        .into_iter()
        .enumerate()
        .map(|(id, r)| r.ok_or_else(|| corrupt(format!("record {id} owned by no shard"))))
        .collect::<Result<_, _>>()?;

    let mut pairs: Vec<(u32, u32)> = parts.iter().flat_map(|p| p.pairs.iter().copied()).collect();
    pairs.sort_unstable();
    if pairs.windows(2).any(|w| w[0] == w[1]) {
        return Err(corrupt("duplicate pair across shards".into()));
    }
    let mut closure = UnionFind::new(total);
    for &(a, b) in &pairs {
        closure.union(a, b);
    }

    // Reassemble the edge log in its exact original order: every edge
    // carries its global ordinal, and together the shards must hold the
    // contiguous range 0..n with no duplicates.
    let mut tagged: Vec<(u64, MergeEdge)> =
        parts.iter().flat_map(|p| p.edges.iter().copied()).collect();
    tagged.sort_unstable_by_key(|&(ord, _)| ord);
    for (i, &(ord, _)) in tagged.iter().enumerate() {
        if ord != i as u64 {
            return Err(corrupt(format!(
                "provenance edge ordinals are not contiguous (expected {i}, found {ord})"
            )));
        }
    }
    let provenance = ProvenanceLog {
        edges: tagged.into_iter().map(|(_, e)| e).collect(),
        batch_traces: first.batch_traces.clone(),
        rule_firings: first.rule_firings.clone(),
    };

    let passes = first
        .passes
        .iter()
        .zip(keys)
        .map(|(meta, keys)| {
            // The engine's order invariant: ids stably sorted by key
            // (batch sorts are stable, merges keep old-before-new on
            // ties, and old ids are always smaller).
            let mut order: Vec<u32> = (0..total as u32).collect();
            order.sort_by(|&a, &b| keys[a as usize].cmp(&keys[b as usize]));
            PassSnapshot {
                key_name: meta.key_name.clone(),
                window: meta.window,
                pairs_found: meta.pairs_found,
                pairs_first_found: meta.pairs_first_found,
                keys,
                order,
            }
        })
        .collect();

    Ok(Snapshot {
        records,
        passes,
        pairs,
        closure,
        provenance,
        comparisons: first.comparisons,
        batches_applied: first.batches_applied,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_record::RecordId;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mp-sharded-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn rec(id: u32, last: &str) -> Record {
        let mut r = Record::empty(RecordId(id));
        r.last_name = last.into();
        r
    }

    /// A structurally consistent global snapshot whose order really is
    /// the stable (key, id) sort, as the engine maintains.
    fn sample_snapshot() -> Snapshot {
        let names = ["ADAMS", "ZHU", "BAKER", "ADAMS", "MILLER", "BAKER"];
        let records: Vec<Record> = names
            .iter()
            .enumerate()
            .map(|(i, n)| rec(i as u32, n))
            .collect();
        let keys: Vec<String> = names.iter().map(|n| n.to_string()).collect();
        let mut order: Vec<u32> = (0..records.len() as u32).collect();
        order.sort_by(|&a, &b| keys[a as usize].cmp(&keys[b as usize]));
        let pairs = vec![(0, 3), (2, 5)];
        let mut closure = UnionFind::new(records.len());
        for &(a, b) in &pairs {
            closure.union(a, b);
        }
        let mut provenance = ProvenanceLog::new();
        provenance.record_edge(MergeEdge {
            a: 0,
            b: 3,
            pass: 0,
            rule_id: 1,
            batch_seq: 1,
        });
        provenance.record_edge(MergeEdge {
            a: 2,
            b: 5,
            pass: 0,
            rule_id: 0,
            batch_seq: 2,
        });
        provenance.note_batch_trace(1, "cafef00d-00000001");
        provenance.note_firing(1);
        provenance.note_firing(0);
        Snapshot {
            records,
            passes: vec![PassSnapshot {
                key_name: "last-name".into(),
                window: 4,
                pairs_found: 3,
                pairs_first_found: 2,
                keys,
                order,
            }],
            pairs,
            closure,
            provenance,
            comparisons: 17,
            batches_applied: 2,
        }
    }

    #[test]
    fn split_merge_round_trip_restores_the_global_snapshot() {
        let snap = sample_snapshot();
        for shards in 1..=4usize {
            let parts = split_snapshot(&snap, shards, |r| {
                (r.last_name.as_bytes().first().copied().unwrap_or(b'A') as usize) % shards
            });
            assert_eq!(parts.len(), shards);
            // Encode/decode every slice on the way through.
            let decoded: Vec<ShardSnapshot> = parts
                .iter()
                .map(|p| ShardSnapshot::decode(&p.encode()).unwrap())
                .collect();
            assert_eq!(decoded, parts);
            let merged = merge_shard_snapshots(&decoded).unwrap();
            assert_eq!(merged.records, snap.records);
            assert_eq!(merged.passes, snap.passes);
            assert_eq!(merged.pairs, snap.pairs);
            assert_eq!(
                merged.provenance, snap.provenance,
                "edge log must reassemble in its exact original order"
            );
            assert_eq!(merged.comparisons, snap.comparisons);
            assert_eq!(merged.batches_applied, snap.batches_applied);
            assert_eq!(
                merged.closure.clone().classes(),
                snap.closure.clone().classes()
            );
        }
    }

    #[test]
    fn merge_rejects_inconsistent_slices() {
        let snap = sample_snapshot();
        let parts = split_snapshot(&snap, 2, |r| usize::from(r.id.0 % 2 == 1));
        // Disagreeing duplicated scalar.
        let mut bad = parts.clone();
        bad[1].comparisons += 1;
        assert!(merge_shard_snapshots(&bad).is_err());
        // Missing record.
        let mut bad = parts.clone();
        bad[1].records.pop();
        bad[1].passes[0].keys.pop();
        assert!(merge_shard_snapshots(&bad).is_err());
        // Duplicate pair.
        let mut bad = parts.clone();
        let p = bad[0].pairs.first().or(bad[1].pairs.first()).copied();
        if let Some(p) = p {
            bad[0].pairs.push(p);
            bad[1].pairs.push(p);
            bad[0].pairs.sort_unstable();
            bad[1].pairs.sort_unstable();
            assert!(merge_shard_snapshots(&bad).is_err());
        }
        // Wrong slice count.
        assert!(merge_shard_snapshots(&parts[..1]).is_err());
    }

    #[test]
    fn shard_snapshot_byte_flips_are_detected() {
        let snap = sample_snapshot();
        let part = split_snapshot(&snap, 2, |r| (r.id.0 % 2) as usize).remove(0);
        let bytes = part.encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                ShardSnapshot::decode(&bad).is_err(),
                "byte flip at {i} went undetected"
            );
        }
    }

    // ---- store-level recovery -------------------------------------------

    fn scatter(journals: &mut [Journal], frames: &[Vec<Record>]) -> u64 {
        let mut seq = 0;
        for (j, frame) in journals.iter_mut().zip(frames) {
            seq = j.append(frame, None).unwrap();
        }
        seq
    }

    #[test]
    fn complete_scatters_replay_and_reassemble_by_id() {
        let dir = tmp_dir("replay");
        let (_store, mut loaded) = ShardedStore::open(&dir, 2).unwrap();
        assert!(loaded.snapshot.is_none() && loaded.replayable.is_empty());
        // Batch 1: records 0,1,2 — 0 and 2 to shard 0, 1 to shard 1.
        scatter(
            &mut loaded.journals,
            &[vec![rec(0, "A"), rec(2, "C")], vec![rec(1, "B")]],
        );
        // Batch 2: record 3 to shard 1 only; shard 0 gets the empty frame.
        scatter(&mut loaded.journals, &[vec![], vec![rec(3, "D")]]);
        drop(loaded);

        let (_store, loaded) = ShardedStore::open(&dir, 2).unwrap();
        assert_eq!(loaded.replayable.len(), 2);
        assert_eq!(loaded.replayable[0].seq, 1);
        assert_eq!(
            loaded.replayable[0].records,
            vec![rec(0, "A"), rec(1, "B"), rec(2, "C")],
            "reassembled in global id order"
        );
        assert_eq!(loaded.replayable[1].records, vec![rec(3, "D")]);
        // Non-empty frames only: shard 0 replayed 1, shard 1 replayed 2.
        assert_eq!(loaded.shard_replays, vec![1, 2]);
        assert_eq!(loaded.next_seq, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incomplete_scatter_is_truncated_and_its_seq_reused() {
        let dir = tmp_dir("orphan");
        let (_store, mut loaded) = ShardedStore::open(&dir, 3).unwrap();
        scatter(
            &mut loaded.journals,
            &[vec![rec(0, "A")], vec![rec(1, "B")], vec![]],
        );
        // Crash mid-scatter of batch 2: only shard 0's frame landed.
        loaded.journals[0].append(&[rec(2, "C")], None).unwrap();
        drop(loaded);

        let (_store, loaded) = ShardedStore::open(&dir, 3).unwrap();
        assert_eq!(loaded.replayable.len(), 1, "orphan batch must not replay");
        assert!(loaded.truncated_bytes > 0);
        assert!(
            loaded
                .truncation_reasons
                .iter()
                .any(|r| r.contains("orphan")),
            "{:?}",
            loaded.truncation_reasons
        );
        // Every journal now appends at seq 2 — the orphan's seq is reused.
        for j in &loaded.journals {
            assert_eq!(j.next_seq(), 2);
        }
        drop(loaded);
        // And the store reopens clean.
        let (_store, loaded) = ShardedStore::open(&dir, 3).unwrap();
        assert_eq!(loaded.truncated_bytes, 0);
        assert_eq!(loaded.replayable.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_commit_and_crash_windows() {
        let dir = tmp_dir("epoch");
        let (mut store, mut loaded) = ShardedStore::open(&dir, 2).unwrap();
        scatter(
            &mut loaded.journals,
            &[vec![rec(0, "ADAMS")], vec![rec(1, "ZHU")]],
        );

        // Phase 1: write both slices for epoch 1...
        let snap = Snapshot {
            records: vec![rec(0, "ADAMS"), rec(1, "ZHU")],
            passes: vec![],
            pairs: vec![],
            closure: UnionFind::new(2),
            provenance: ProvenanceLog::new(),
            comparisons: 1,
            batches_applied: 1,
        };
        let parts = split_snapshot(&snap, 2, |r| (r.id.0 % 2) as usize);
        for (k, part) in parts.iter().enumerate() {
            write_shard_snapshot(&store.shard_dir(k), 1, &part.encode()).unwrap();
        }

        // Crash before commit: epoch-1 files are stale and removed.
        drop(loaded);
        let (_s2, loaded) = ShardedStore::open(&dir, 2).unwrap();
        assert!(loaded.snapshot.is_none(), "uncommitted epoch must not load");
        assert!(!store.shard_dir(0).join("snapshot-1.mps").exists());
        assert_eq!(loaded.replayable.len(), 1, "journal still replays");
        drop(loaded);

        // Redo phase 1, then commit; crash before the journal resets.
        for (k, part) in parts.iter().enumerate() {
            write_shard_snapshot(&store.shard_dir(k), 1, &part.encode()).unwrap();
        }
        store.commit_epoch(1).unwrap();
        assert_eq!(store.epoch(), 1);
        let (s3, loaded) = ShardedStore::open(&dir, 2).unwrap();
        assert_eq!(s3.epoch(), 1);
        let merged = loaded.snapshot.as_ref().unwrap();
        assert_eq!(merged.batches_applied, 1);
        assert_eq!(merged.records.len(), 2);
        assert!(
            loaded.replayable.is_empty(),
            "frames at or below the watermark are filtered"
        );
        assert_eq!(loaded.next_seq, 2);
        assert!(s3.snapshot_meta().is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_count_is_fixed_at_creation() {
        let dir = tmp_dir("fixed");
        let (_store, _loaded) = ShardedStore::open(&dir, 3).unwrap();
        match ShardedStore::open(&dir, 4) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("3 shards"), "{msg}"),
            other => panic!("shard-count mismatch must be rejected: {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
