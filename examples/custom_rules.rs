//! Writing a custom equational theory in the rule DSL.
//!
//! The paper (§2.3) argues for a declarative rule language so that domain
//! experts can experiment with matching criteria without recompiling. This
//! example builds a small theory for a products-catalog flavored domain
//! (reusing the employee schema's fields as generic text columns), shows
//! compile-time error reporting, and uses `matching_rule` to explain *why*
//! two records merged.
//!
//! Run with: `cargo run --release --example custom_rules`

use merge_purge::{KeySpec, MergePurge};
use mp_datagen::{DatabaseGenerator, GeneratorConfig};
use mp_rules::RuleProgram;

const MY_RULES: &str = r#"
// Strict: same SSN and phonetically identical surname.
rule ssn_and_phonetic_last {
    when not is_empty(r1.ssn)
     and r1.ssn == r2.ssn
     and soundex_eq(r1.last_name, r2.last_name)
    then match
}

// Tolerant name matching anchored on the address.
rule fuzzy_name_same_address {
    when jaro_winkler(r1.last_name, r2.last_name) >= 0.9
     and (nickname_eq(r1.first_name, r2.first_name)
          or differ_slightly(r1.first_name, r2.first_name, 0.3))
     and r1.street_number == r2.street_number
     and trigram_sim(r1.street_name, r2.street_name) >= 0.7
    then match
}

// Catch swapped digits in the SSN when everything else looks close.
rule transposed_ssn {
    when digits_transposed(r1.ssn, r2.ssn)
     and edit_sim(r1.last_name, r2.last_name) >= 0.75
    then match
}
"#;

fn main() {
    // Compile-time diagnostics: a typo in a field or function name is
    // reported with its source position, not discovered at run time.
    let broken = "rule oops { when r1.salery == r2.salery then match }";
    match RuleProgram::compile(broken) {
        Err(e) => println!("as expected, bad program rejected: {e}"),
        Ok(_) => unreachable!(),
    }

    let program = RuleProgram::compile(MY_RULES).expect("rules compile");
    println!(
        "compiled custom theory with {} rules\n",
        program.rule_count()
    );

    // Run the pipeline with the custom theory.
    let mut db =
        DatabaseGenerator::new(GeneratorConfig::new(2_000).duplicate_fraction(0.5).seed(7))
            .generate();
    let result = MergePurge::new(&program)
        .pass(KeySpec::last_name_key(), 10)
        .pass(KeySpec::address_key(), 10)
        .run(&mut db.records);
    println!(
        "custom theory found {} duplicate groups ({} closed pairs)",
        result.classes.len(),
        result.closed_pairs.len()
    );

    // Explain a few matches: which rule fired first for the pair?
    println!("\nwhy did these records merge?");
    let mut shown = 0;
    for (a, b) in result.closed_pairs.sorted() {
        let (ra, rb) = (&db.records[a as usize], &db.records[b as usize]);
        if let Some(rule) = program.matching_rule(ra, rb) {
            println!(
                "  {} {} / {} {}  <-  rule `{rule}`",
                ra.first_name, ra.last_name, rb.first_name, rb.last_name
            );
            shown += 1;
            if shown == 5 {
                break;
            }
        }
    }
    println!(
        "\n(pairs without a firing rule were inferred by transitive closure \
         across passes — the multi-pass effect of §2.4)"
    );
}
