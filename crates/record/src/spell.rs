//! Corpus-based spelling correction for the city field (§3.2).
//!
//! The paper uses Bickel's fourth-generation-language approach (CACM 1987)
//! over a corpus of 18,670 U.S. city names, chosen "for its simplicity and
//! speed", reporting a 1.5–2.0% accuracy improvement. We implement the same
//! idea: a similarity-keyed index into a corpus of correctly spelled words,
//! with a bounded edit-distance confirmation so corrections are conservative
//! (a wrong "correction" is worse than none).

use mp_strsim::levenshtein_bounded;
use std::collections::{HashMap, HashSet};

/// Dictionary-backed spelling corrector.
///
/// Candidates are retrieved through two cheap similarity keys — the first
/// letter and the length bucket — then confirmed with an edit distance bound
/// of [`SpellCorrector::max_distance`]. Inputs found verbatim in the corpus
/// are returned unchanged.
///
/// ```
/// use mp_record::SpellCorrector;
/// let sc = SpellCorrector::new(["CHICAGO", "HOUSTON", "PHOENIX"], 2);
/// assert_eq!(sc.correct("CHICGO"), Some("CHICAGO"));
/// assert_eq!(sc.correct("HOUSTON"), Some("HOUSTON"));
/// assert_eq!(sc.correct("XYZZY"), None);
/// ```
#[derive(Debug, Clone)]
pub struct SpellCorrector {
    /// Exact-membership set.
    corpus: HashSet<String>,
    /// (first letter, length) → words, the similarity-key index.
    index: HashMap<(u8, usize), Vec<String>>,
    /// Maximum accepted edit distance for a correction.
    max_distance: usize,
}

impl SpellCorrector {
    /// Builds a corrector over a corpus of correctly spelled (upper-case)
    /// words. `max_distance` bounds how aggressive corrections may be; the
    /// paper's conservative setting corresponds to `2`.
    pub fn new<I, S>(corpus: I, max_distance: usize) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut set = HashSet::new();
        let mut index: HashMap<(u8, usize), Vec<String>> = HashMap::new();
        for word in corpus {
            let word: String = word.into();
            if word.is_empty() || !set.insert(word.clone()) {
                continue;
            }
            index.entry(sim_key(&word)).or_default().push(word);
        }
        SpellCorrector {
            corpus: set,
            index,
            max_distance,
        }
    }

    /// Maximum accepted edit distance for a correction.
    pub fn max_distance(&self) -> usize {
        self.max_distance
    }

    /// Number of distinct corpus words.
    pub fn corpus_len(&self) -> usize {
        self.corpus.len()
    }

    /// Attempts to correct `word`.
    ///
    /// Returns `Some(corpus word)` when the input is already correct or a
    /// unique-best candidate lies within the distance bound; `None` when
    /// nothing in the corpus is close enough. Ambiguous ties at the same
    /// distance resolve to the lexicographically first candidate so the
    /// correction is deterministic.
    pub fn correct(&self, word: &str) -> Option<&str> {
        if word.is_empty() {
            return None;
        }
        if let Some(exact) = self.corpus.get(word) {
            return Some(exact);
        }
        let (first, len) = sim_key(word);
        let mut best: Option<(&str, usize)> = None;
        // Probe neighbouring length buckets under the same first letter, and
        // — because the first letter itself may be mistyped — all first
        // letters at the exact length as a fallback.
        let lo = len.saturating_sub(self.max_distance);
        let hi = len + self.max_distance;
        for l in lo..=hi {
            self.scan_bucket((first, l), word, &mut best);
        }
        if best.is_none() {
            for b in b'A'..=b'Z' {
                if b != first {
                    self.scan_bucket((b, len), word, &mut best);
                }
            }
        }
        best.map(|(w, _)| w)
    }

    /// Corrects `word` in place when a correction is found; reports whether
    /// a change was made.
    pub fn correct_in_place(&self, word: &mut String) -> bool {
        match self.correct(word) {
            Some(fixed) if fixed != word => {
                *word = fixed.to_string();
                true
            }
            _ => false,
        }
    }

    fn scan_bucket<'a>(
        &'a self,
        key: (u8, usize),
        word: &str,
        best: &mut Option<(&'a str, usize)>,
    ) {
        let Some(bucket) = self.index.get(&key) else {
            return;
        };
        for cand in bucket {
            let bound = best.map_or(self.max_distance, |(_, d)| d.min(self.max_distance));
            if let Some(d) = levenshtein_bounded(word, cand, bound) {
                let better = match best {
                    Some((bw, bd)) => d < *bd || (d == *bd && cand.as_str() < *bw),
                    None => true,
                };
                if better {
                    *best = Some((cand, d));
                }
            }
        }
    }
}

fn sim_key(word: &str) -> (u8, usize) {
    let first = word
        .bytes()
        .next()
        .map(|b| b.to_ascii_uppercase())
        .unwrap_or(0);
    (first, word.chars().count())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cities() -> SpellCorrector {
        SpellCorrector::new(
            [
                "NEW YORK", "CHICAGO", "HOUSTON", "PHOENIX", "DALLAS", "AUSTIN", "BOSTON",
                "DENVER", "SEATTLE", "PORTLAND",
            ],
            2,
        )
    }

    #[test]
    fn exact_match_returned_unchanged() {
        let sc = cities();
        assert_eq!(sc.correct("CHICAGO"), Some("CHICAGO"));
        assert_eq!(sc.corpus_len(), 10);
    }

    #[test]
    fn single_typo_classes_corrected() {
        let sc = cities();
        assert_eq!(sc.correct("CHICAG"), Some("CHICAGO")); // deletion
        assert_eq!(sc.correct("CHHICAGO"), Some("CHICAGO")); // insertion
        assert_eq!(sc.correct("CHICAGP"), Some("CHICAGO")); // substitution
        assert_eq!(sc.correct("CIHCAGO"), Some("CHICAGO")); // transposition (2 edits)
    }

    #[test]
    fn mistyped_first_letter_still_found() {
        let sc = cities();
        assert_eq!(sc.correct("XHICAGO"), Some("CHICAGO"));
    }

    #[test]
    fn distance_bound_respected() {
        let sc = cities();
        assert_eq!(sc.correct("CHICXXX"), None); // 3 edits away
        assert_eq!(sc.correct("Q"), None);
        assert_eq!(sc.correct(""), None);
    }

    #[test]
    fn ambiguity_resolves_deterministically() {
        // AUSTIN and BOSTON are both distance 2 from "AOSTON".
        let sc = SpellCorrector::new(["AUSTIN", "BOSTON"], 2);
        let fix = sc.correct("AOSTON").unwrap();
        assert_eq!(fix, "AOSTON".to_string().pipe_fix(&sc));
        // Deterministic: repeated calls agree.
        assert_eq!(sc.correct("AOSTON").unwrap(), fix);
    }

    trait PipeFix {
        fn pipe_fix(self, sc: &SpellCorrector) -> String;
    }
    impl PipeFix for String {
        fn pipe_fix(mut self, sc: &SpellCorrector) -> String {
            sc.correct_in_place(&mut self);
            self
        }
    }

    #[test]
    fn correct_in_place_reports_change() {
        let sc = cities();
        let mut w = String::from("DENVR");
        assert!(sc.correct_in_place(&mut w));
        assert_eq!(w, "DENVER");
        let mut same = String::from("DENVER");
        assert!(!sc.correct_in_place(&mut same));
        let mut unknown = String::from("GOTHAM CITY");
        assert!(!sc.correct_in_place(&mut unknown));
        assert_eq!(unknown, "GOTHAM CITY");
    }

    #[test]
    fn duplicate_corpus_entries_deduplicated() {
        let sc = SpellCorrector::new(["A", "A", "A"], 1);
        assert_eq!(sc.corpus_len(), 1);
    }
}
