//! Disk-resident sorted-neighborhood method.

use crate::runfile::RunReader;
use crate::sorter::ExternalSorter;
use crate::{ExternalConfig, ExternalOutcome};
use merge_purge::KeySpec;
use mp_closure::PairSet;
use mp_metrics::{span, span_labeled, Counter, NoopObserver, Phase, PipelineObserver};
use mp_record::Record;
use mp_rules::EquationalTheory;
use std::collections::VecDeque;
use std::io;
use std::path::Path;
use std::time::Instant;

/// External sorted-neighborhood pass: external merge sort (key creation and
/// conditioning fused into run formation), then a streaming window scan
/// holding only `w` records in memory.
///
/// Total data passes: `1 (runs) + ceil(log_F(N/M)) (merges) + 1 (scan)` —
/// the paper's "2 + log N passes" (§3.5) with the log taken base-F over
/// runs.
#[derive(Debug, Clone)]
pub struct ExternalSnm {
    sorter: ExternalSorter,
    window: usize,
}

impl ExternalSnm {
    /// An external SNM pass.
    ///
    /// # Panics
    ///
    /// Panics when `window < 2` or the config is degenerate.
    pub fn new(key: KeySpec, window: usize, config: ExternalConfig) -> Self {
        assert!(window >= 2, "window must hold at least two records");
        ExternalSnm {
            sorter: ExternalSorter::new(key, config),
            window,
        }
    }

    /// Runs over the flat record file at `input`, with temporaries under
    /// `work_dir`. Conditioning is applied during run formation.
    pub fn run(
        &self,
        input: &Path,
        work_dir: &Path,
        theory: &dyn EquationalTheory,
    ) -> io::Result<ExternalOutcome> {
        self.run_observed(input, work_dir, theory, &NoopObserver)
    }

    /// Like [`ExternalSnm::run`], reporting external-sort statistics (run
    /// counts, bytes spilled, merge fan-in) and window-scan counters to
    /// `observer`.
    pub fn run_observed(
        &self,
        input: &Path,
        work_dir: &Path,
        theory: &dyn EquationalTheory,
        observer: &dyn PipelineObserver,
    ) -> io::Result<ExternalOutcome> {
        let _run_span = span_labeled(observer, "run", || {
            format!("extsort {} w={}", self.sorter.key().name(), self.window)
        });
        let sorted = self.sorter.sort_observed(input, work_dir, true, observer)?;
        let mut io_stats = sorted.io;
        observer.add(Counter::RecordsKeyed, sorted.records as u64);

        // Final pass: streaming window scan over the sorted run.
        io_stats.sweeps += 1;
        let t_scan = Instant::now();
        let _scan_span = span(observer, "window_scan");
        let mut reader = RunReader::open(&sorted.path)?;
        let mut window: VecDeque<Record> = VecDeque::with_capacity(self.window);
        let mut pairs = PairSet::new();
        let mut comparisons = 0u64;
        while let Some((_, new)) = reader.next_entry()? {
            io_stats.records_read += 1;
            for old in &window {
                comparisons += 1;
                if theory.matches(old, &new) {
                    pairs.insert(old.id.0, new.id.0);
                }
            }
            if let Some(pm) = observer.progress() {
                pm.tick(window.len() as u64);
            }
            if window.len() == self.window - 1 {
                window.pop_front();
            }
            window.push_back(new);
        }
        drop(_scan_span);
        observer.phase_ns(Phase::WindowScan, t_scan.elapsed().as_nanos() as u64);
        observer.add(Counter::Comparisons, comparisons);
        observer.add(Counter::RuleInvocations, comparisons);
        observer.add(Counter::Matches, pairs.len() as u64);
        observer.run_complete();

        let records = sorted.records;
        sorted.cleanup();
        Ok(ExternalOutcome {
            pairs,
            io: io_stats,
            records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merge_purge::SortedNeighborhood;
    use mp_datagen::{DatabaseGenerator, GeneratorConfig};
    use mp_record::io as rio;
    use mp_rules::NativeEmployeeTheory;
    use std::path::PathBuf;

    fn work_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mp-xsnm-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn external_snm_matches_in_memory_snm() {
        let dir = work_dir("match");
        let mut db =
            DatabaseGenerator::new(GeneratorConfig::new(400).duplicate_fraction(0.5).seed(6001))
                .generate();
        let input = dir.join("db.mp");
        rio::write_records(std::fs::File::create(&input).unwrap(), &db.records).unwrap();

        // In-memory reference over *conditioned* records (external path
        // conditions during run formation).
        mp_record::normalize::condition_all(&mut db.records, &mp_record::NicknameTable::standard());
        let theory = NativeEmployeeTheory::new();
        let reference =
            SortedNeighborhood::new(KeySpec::last_name_key(), 9).run(&db.records, &theory);

        for memory in [50usize, 128, 10_000] {
            let xsnm = ExternalSnm::new(
                KeySpec::last_name_key(),
                9,
                ExternalConfig {
                    memory_records: memory,
                    fan_in: 3,
                    ..ExternalConfig::default()
                },
            );
            let outcome = xsnm.run(&input, &dir, &theory).unwrap();
            assert_eq!(
                outcome.pairs.sorted(),
                reference.pairs.sorted(),
                "memory = {memory}"
            );
            assert_eq!(outcome.records, db.records.len());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pass_count_is_two_plus_merge_levels() {
        let dir = work_dir("passes");
        let db = DatabaseGenerator::new(GeneratorConfig::new(300).seed(6002)).generate();
        let input = dir.join("db.mp");
        rio::write_records(std::fs::File::create(&input).unwrap(), &db.records).unwrap();
        let n = db.records.len();
        let theory = NativeEmployeeTheory::new();

        // Everything fits: 1 run, no merges: 2 passes total.
        let fits = ExternalSnm::new(
            KeySpec::last_name_key(),
            5,
            ExternalConfig {
                memory_records: n + 1,
                fan_in: 16,
                ..ExternalConfig::default()
            },
        );
        assert_eq!(fits.run(&input, &dir, &theory).unwrap().io.data_passes(), 2);

        // Tiny memory, fan-in 2: 2 + ceil(log2(runs)) passes.
        let m = 20;
        let runs = n.div_ceil(m);
        let tiny = ExternalSnm::new(
            KeySpec::last_name_key(),
            5,
            ExternalConfig {
                memory_records: m,
                fan_in: 2,
                ..ExternalConfig::default()
            },
        );
        let expect = 2 + (runs as f64).log2().ceil() as u32;
        assert_eq!(
            tiny.run(&input, &dir, &theory).unwrap().io.data_passes(),
            expect
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
