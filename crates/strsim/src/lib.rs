#![warn(missing_docs)]

//! String similarity and phonetic-coding primitives for the merge/purge
//! equational theory.
//!
//! The paper (§2.3) evaluates several distance functions for detecting
//! typographical errors — "distances based upon edit distance, phonetic
//! distance and 'typewriter' distance" — and settles on edit distance for the
//! reported results. This crate implements all of them from scratch:
//!
//! * [`levenshtein`] / [`levenshtein_bounded`] / [`normalized_levenshtein`] —
//!   classic edit distance, a bounded variant with early exit, and a
//!   length-normalized similarity in `[0, 1]`.
//! * [`damerau_levenshtein`] — optimal-string-alignment variant counting
//!   adjacent transpositions (the most common typing error class).
//! * [`jaro`] / [`jaro_winkler`] — token-free similarity favouring common
//!   prefixes, useful for name matching.
//! * [`soundex`] / [`nysiis`] — phonetic codes; two names "sound alike" when
//!   their codes are equal.
//! * [`keyboard_distance`] — the paper's "typewriter" distance: a weighted
//!   edit distance where substituting adjacent QWERTY keys is cheaper.
//! * [`ngram_similarity`] — q-gram overlap (Dice coefficient over bigrams by
//!   default), robust to block transpositions.
//! * [`lcs_length`] / [`lcs_similarity`] — longest common subsequence.
//!
//! The free functions above decode and allocate per call, which is fine for
//! one-off use. Hot loops — a window scan evaluates the equational theory on
//! millions of pairs — should hold a [`ScratchBuffers`] (one per worker
//! thread) whose methods compute the same results allocation-free, or an
//! [`EditBuffer`] when only edit distance is needed.
//!
//! All functions operate on `&str` and are Unicode-correct at the `char`
//! level; the merge/purge pipeline upper-cases ASCII data before matching, so
//! the hot paths are effectively ASCII.
//!
//! # Example
//!
//! ```
//! use mp_strsim::{levenshtein, normalized_levenshtein, soundex};
//!
//! assert_eq!(levenshtein("SMITH", "SMYTH"), 1);
//! assert!(normalized_levenshtein("MICHAEL", "MICHELE") > 0.7);
//! assert_eq!(soundex("ROBERT"), soundex("RUPERT"));
//! ```

mod damerau;
mod jaro;
mod keyboard;
mod lcs;
mod levenshtein;
mod ngram;
mod nysiis;
mod scratch;
mod soundex;
pub mod timing;

pub use damerau::damerau_levenshtein;
pub use jaro::{jaro, jaro_winkler};
pub use keyboard::{keyboard_distance, keyboard_substitution_cost};
pub use lcs::{lcs_length, lcs_similarity};
pub use levenshtein::{levenshtein, levenshtein_bounded, normalized_levenshtein, EditBuffer};
pub use ngram::{ngram_similarity, trigram_similarity};
pub use nysiis::nysiis;
pub use scratch::ScratchBuffers;
pub use soundex::{soundex, soundex_eq};

/// Returns `true` when two strings are within the given normalized edit
/// similarity threshold — the "differ slightly" predicate from the paper's
/// example rule.
///
/// `threshold` is the maximum allowed *dissimilarity*: `0.0` demands
/// equality, `0.3` tolerates roughly one error per three characters.
///
/// ```
/// use mp_strsim::differ_slightly;
/// assert!(differ_slightly("MICHAEL", "MICHAEL", 0.0));
/// assert!(differ_slightly("JOHNSON", "JOHNSTON", 0.25));
/// assert!(!differ_slightly("SMITH", "GARCIA", 0.25));
/// ```
pub fn differ_slightly(a: &str, b: &str, threshold: f64) -> bool {
    normalized_levenshtein(a, b) >= 1.0 - threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differ_slightly_exact_match_zero_threshold() {
        assert!(differ_slightly("ABC", "ABC", 0.0));
        assert!(!differ_slightly("ABC", "ABD", 0.0));
    }

    #[test]
    fn differ_slightly_tolerates_single_typo() {
        assert!(differ_slightly("HERNANDEZ", "HERNANDES", 0.15));
    }
}
