//! The merge-phase-fused variant of the sorted-neighborhood method.
//!
//! §2.2: "In \[9\], we describe the sorted-neighborhood method as a
//! generalization of band joins and provide an alternative algorithm ...
//! based on the *duplicate elimination* algorithm described in [Bitton &
//! DeWitt 83]. This duplicate elimination algorithm takes advantage of the
//! fact that 'matching' records will come together during different phases
//! of the Sort phase."
//!
//! [`MergeScanSnm`] implements that idea: a bottom-up merge sort where
//! *every* merge level window-scans its output as it is produced. The last
//! level's output is the fully sorted list, so its scan alone reproduces
//! the classic sorted-neighborhood result exactly; the scans of earlier
//! levels see intermediate orders in which some matching records are
//! *closer* than in the final order (they may later drift apart beyond the
//! window), so the union strictly dominates the classic method's recall at
//! equal window size — at the cost of extra comparisons per level.

use crate::key::{KeyArena, KeySpec};
use crate::snm::{PassResult, PassStats};
use mp_closure::PairSet;
use mp_metrics::{span, span_labeled, Counter, NoopObserver, Phase, PipelineObserver, ScanHooks};
use mp_record::Record;
use mp_rules::EquationalTheory;
use std::time::Instant;

/// Sorted-neighborhood with window scanning fused into every merge level.
///
/// ```
/// use merge_purge::{mergescan::MergeScanSnm, KeySpec, SortedNeighborhood};
/// use mp_datagen::{DatabaseGenerator, GeneratorConfig};
/// use mp_rules::NativeEmployeeTheory;
///
/// let db = DatabaseGenerator::new(GeneratorConfig::new(400).seed(3)).generate();
/// let theory = NativeEmployeeTheory::new();
/// let classic = SortedNeighborhood::new(KeySpec::last_name_key(), 8).run(&db.records, &theory);
/// let fused = MergeScanSnm::new(KeySpec::last_name_key(), 8).run(&db.records, &theory);
/// // Everything the classic pass finds, the fused pass finds too.
/// assert!(classic.pairs.iter().all(|(a, b)| fused.pairs.contains(a, b)));
/// ```
#[derive(Debug, Clone)]
pub struct MergeScanSnm {
    key: KeySpec,
    window: usize,
    /// Initial run length for the bottom-up sort (runs are sorted in
    /// memory, then merged pairwise level by level).
    run_length: usize,
}

impl MergeScanSnm {
    /// A fused pass with the given key and window (initial run length
    /// defaults to `64`, a few windows' worth).
    ///
    /// # Panics
    ///
    /// Panics when `window < 2`.
    pub fn new(key: KeySpec, window: usize) -> Self {
        assert!(window >= 2, "window must hold at least two records");
        MergeScanSnm {
            key,
            window,
            run_length: 64,
        }
    }

    /// Overrides the initial run length (must be ≥ 2).
    #[must_use]
    pub fn run_length(mut self, run_length: usize) -> Self {
        assert!(run_length >= 2, "run length must be at least 2");
        self.run_length = run_length;
        self
    }

    /// Runs the fused sort+scan over `records`.
    pub fn run(&self, records: &[Record], theory: &dyn EquationalTheory) -> PassResult {
        self.run_observed(records, theory, &NoopObserver)
    }

    /// Like [`MergeScanSnm::run`], reporting counters and phase timings to
    /// `observer`. The fused sort+scan reports as [`Phase::WindowScan`]
    /// (its sorting work is inseparable from its scanning).
    pub fn run_observed(
        &self,
        records: &[Record],
        theory: &dyn EquationalTheory,
        observer: &dyn PipelineObserver,
    ) -> PassResult {
        let mut stats = PassStats::default();
        let _pass_span = span_labeled(observer, "pass", || {
            format!("{} w={} merge-fused", self.key.name(), self.window)
        });
        let hooks = ScanHooks::from_observer(observer);

        // Phase 1: keys.
        let t0 = Instant::now();
        let keys = {
            let _s = span(observer, "key_build");
            KeyArena::extract(&self.key, records)
        };
        stats.create_keys = t0.elapsed();
        observer.add(Counter::RecordsKeyed, records.len() as u64);
        observer.phase_ns(Phase::CreateKeys, stats.create_keys.as_nanos() as u64);

        // Phase 2+3 fused: bottom-up merge sort; every merge level scans
        // its output with the window.
        let t1 = Instant::now();
        let _scan_span = span(observer, "window_scan");
        let mut pairs = PairSet::new();
        let n = records.len();
        let mut runs: Vec<Vec<u32>> = (0..n)
            .step_by(self.run_length)
            .map(|start| {
                let end = (start + self.run_length).min(n);
                let mut run: Vec<u32> = (start as u32..end as u32).collect();
                run.sort_by(|&a, &b| keys.get(a as usize).cmp(keys.get(b as usize)));
                // Scan the initial run too (it is the first "merge output").
                stats.comparisons += scan(records, &run, self.window, theory, &mut pairs, &hooks);
                run
            })
            .collect();

        while runs.len() > 1 {
            let mut next = Vec::with_capacity(runs.len().div_ceil(2));
            let mut iter = runs.into_iter();
            while let Some(a) = iter.next() {
                match iter.next() {
                    Some(b) => {
                        let merged = merge(&keys, &a, &b);
                        stats.comparisons +=
                            scan(records, &merged, self.window, theory, &mut pairs, &hooks);
                        next.push(merged);
                    }
                    None => next.push(a),
                }
            }
            runs = next;
        }
        drop(_scan_span);
        stats.window_scan = t1.elapsed();
        stats.rule_evaluations = stats.comparisons;
        stats.matches = pairs.len();
        observer.phase_ns(Phase::WindowScan, stats.window_scan.as_nanos() as u64);
        observer.add(Counter::Comparisons, stats.comparisons);
        observer.add(Counter::RuleInvocations, stats.rule_evaluations);
        observer.add(Counter::Matches, stats.matches as u64);

        PassResult {
            key_name: self.key.name().to_string(),
            window: self.window,
            pairs,
            stats,
            worker_comparisons: vec![stats.comparisons],
        }
    }
}

fn merge(keys: &KeyArena, a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        // Stable: runs are formed left-to-right, so `a`'s ids precede
        // `b`'s; ties prefer `a`.
        if keys.get(a[i] as usize) <= keys.get(b[j] as usize) {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn scan(
    records: &[Record],
    order: &[u32],
    window: usize,
    theory: &dyn EquationalTheory,
    pairs: &mut PairSet,
    hooks: &ScanHooks<'_>,
) -> u64 {
    crate::window::window_scan_hooked(records, order, window, theory, pairs, hooks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snm::SortedNeighborhood;
    use mp_datagen::{DatabaseGenerator, GeneratorConfig};
    use mp_rules::NativeEmployeeTheory;

    fn db(n: usize, seed: u64) -> mp_datagen::GeneratedDatabase {
        DatabaseGenerator::new(GeneratorConfig::new(n).duplicate_fraction(0.5).seed(seed))
            .generate()
    }

    #[test]
    fn superset_of_classic_snm() {
        let db = db(600, 8801);
        let theory = NativeEmployeeTheory::new();
        for w in [4usize, 10] {
            let classic =
                SortedNeighborhood::new(KeySpec::last_name_key(), w).run(&db.records, &theory);
            let fused = MergeScanSnm::new(KeySpec::last_name_key(), w).run(&db.records, &theory);
            for (a, b) in classic.pairs.iter() {
                assert!(fused.pairs.contains(a, b), "missing classic pair w={w}");
            }
            assert!(fused.pairs.len() >= classic.pairs.len());
        }
    }

    #[test]
    fn finds_strictly_more_with_enough_duplication() {
        // With heavy duplication and a small window, intermediate orders
        // catch pairs the final order separates.
        let db = db(1_500, 8802);
        let theory = NativeEmployeeTheory::new();
        let w = 3;
        let classic =
            SortedNeighborhood::new(KeySpec::last_name_key(), w).run(&db.records, &theory);
        let fused = MergeScanSnm::new(KeySpec::last_name_key(), w)
            .run_length(16)
            .run(&db.records, &theory);
        assert!(
            fused.pairs.len() > classic.pairs.len(),
            "fused {} vs classic {}",
            fused.pairs.len(),
            classic.pairs.len()
        );
    }

    #[test]
    fn costs_more_comparisons_per_level() {
        let db = db(500, 8803);
        let theory = NativeEmployeeTheory::new();
        let w = 6;
        let classic =
            SortedNeighborhood::new(KeySpec::last_name_key(), w).run(&db.records, &theory);
        let fused = MergeScanSnm::new(KeySpec::last_name_key(), w).run(&db.records, &theory);
        assert!(fused.stats.comparisons > classic.stats.comparisons);
        // Bounded by levels: ~log2(N/run_length)+1 full scans.
        let levels = ((db.records.len() as f64 / 64.0).log2().ceil() + 1.0) as u64;
        assert!(fused.stats.comparisons <= classic.stats.comparisons * (levels + 1));
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let theory = NativeEmployeeTheory::new();
        let fused = MergeScanSnm::new(KeySpec::last_name_key(), 4).run(&[], &theory);
        assert!(fused.pairs.is_empty());
        // Exactly one record (no duplication) must produce zero comparisons.
        let one =
            DatabaseGenerator::new(GeneratorConfig::new(1).duplicate_fraction(0.0).seed(8804))
                .generate();
        assert_eq!(one.records.len(), 1);
        let fused = MergeScanSnm::new(KeySpec::last_name_key(), 4).run(&one.records, &theory);
        assert_eq!(fused.stats.comparisons, 0);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_run_length_rejected() {
        let _ = MergeScanSnm::new(KeySpec::last_name_key(), 4).run_length(1);
    }
}
