//! The builtin predicate/function library available to rule programs.
//!
//! Every distance function the paper evaluated for its equational theory is
//! exposed — edit distance, phonetic distance (Soundex/NYSIIS), and
//! "typewriter" (QWERTY) distance — plus the string utilities the 26-rule
//! employee theory needs.

use crate::value::{Type, Value};
use mp_record::NicknameTable;
use mp_strsim as ss;

/// Evaluation context shared by all builtin calls for one program.
#[derive(Debug, Default)]
pub struct Ctx {
    /// Nickname equivalence used by `nickname_eq`.
    pub nicknames: NicknameTable,
}

/// Relative evaluation cost of a builtin — the static input to the rule
/// planner's cost model (see `crate::plan`) and the "cost" column of
/// `docs/RULE_LANGUAGE.md`. Ordered cheapest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CostClass {
    /// O(1)-ish: emptiness/length checks, prefix/suffix slicing.
    Trivial,
    /// One linear scan over the inputs: `initials_match`, `contains`, …
    Cheap,
    /// Phonetic codes and table lookups that hash or encode the inputs:
    /// `soundex_eq`, `nysiis_eq`, `nickname_eq`.
    Moderate,
    /// Quadratic dynamic programs and q-gram multiset kernels: the edit/
    /// Jaro/keyboard/n-gram distance family.
    Expensive,
}

impl CostClass {
    /// Stable lowercase name used in docs and disassembly.
    pub fn name(self) -> &'static str {
        match self {
            CostClass::Trivial => "trivial",
            CostClass::Cheap => "cheap",
            CostClass::Moderate => "moderate",
            CostClass::Expensive => "expensive",
        }
    }

    /// Abstract cost units the planner assigns to one evaluation. The exact
    /// numbers only matter relative to each other.
    pub fn weight(self) -> f64 {
        match self {
            CostClass::Trivial => 1.0,
            CostClass::Cheap => 4.0,
            CostClass::Moderate => 16.0,
            CostClass::Expensive => 64.0,
        }
    }
}

/// Signature and implementation of one builtin.
pub struct Builtin {
    /// Function name as written in rule source.
    pub name: &'static str,
    /// Parameter types (fixed arity).
    pub params: &'static [Type],
    /// Return type.
    pub ret: Type,
    /// Cost class for the planner and documentation.
    pub cost: CostClass,
    /// Implementation. Arguments are guaranteed (by the type checker) to
    /// match `params`.
    pub eval: for<'a> fn(&[Value<'a>], &Ctx) -> Value<'a>,
}

/// Returns `true` when both strings are non-empty and either is the
/// single-character initial of the other, or they are equal.
fn initials_match(a: &str, b: &str) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    if a == b {
        return true;
    }
    let a_first = a.chars().next().expect("non-empty");
    let b_first = b.chars().next().expect("non-empty");
    (a.chars().count() == 1 || b.chars().count() == 1) && a_first == b_first
}

/// Returns `true` when the two strings are permutations of each other at
/// Damerau distance exactly 1 — i.e. a single adjacent transposition, the
/// §2.4 SSN error.
///
/// Equivalently: the strings differ in exactly one pair of adjacent
/// positions, and that pair is swapped. This runs on every window pair (it
/// anchors the SSN-transposition rule), so it is written as a single
/// allocation-free scan rather than the sort-and-damerau definition.
fn digits_transposed(a: &str, b: &str) -> bool {
    if a == b || a.len() != b.len() {
        return false;
    }
    let mut pairs = a.chars().zip(b.chars());
    while let Some((x, y)) = pairs.next() {
        if x != y {
            return match pairs.next() {
                Some((x2, y2)) => x2 == y && y2 == x && pairs.all(|(p, q)| p == q),
                None => false,
            };
        }
    }
    false
}

fn char_prefix(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

fn char_suffix(s: &str, n: usize) -> &str {
    let len = s.chars().count();
    if n >= len {
        return s;
    }
    match s.char_indices().nth(len - n) {
        Some((i, _)) => &s[i..],
        None => s,
    }
}

/// The builtin table. Order is insignificant; lookup is by name.
pub const BUILTINS: &[Builtin] = &[
    Builtin {
        name: "edit_distance",
        params: &[Type::Str, Type::Str],
        ret: Type::Num,
        cost: CostClass::Expensive,
        eval: |a, _| Value::Num(ss::levenshtein(a[0].as_str(), a[1].as_str()) as f64),
    },
    Builtin {
        name: "edit_sim",
        params: &[Type::Str, Type::Str],
        ret: Type::Num,
        cost: CostClass::Expensive,
        eval: |a, _| Value::Num(ss::normalized_levenshtein(a[0].as_str(), a[1].as_str())),
    },
    Builtin {
        name: "damerau",
        params: &[Type::Str, Type::Str],
        ret: Type::Num,
        cost: CostClass::Expensive,
        eval: |a, _| Value::Num(ss::damerau_levenshtein(a[0].as_str(), a[1].as_str()) as f64),
    },
    Builtin {
        name: "jaro",
        params: &[Type::Str, Type::Str],
        ret: Type::Num,
        cost: CostClass::Expensive,
        eval: |a, _| Value::Num(ss::jaro(a[0].as_str(), a[1].as_str())),
    },
    Builtin {
        name: "jaro_winkler",
        params: &[Type::Str, Type::Str],
        ret: Type::Num,
        cost: CostClass::Expensive,
        eval: |a, _| Value::Num(ss::jaro_winkler(a[0].as_str(), a[1].as_str())),
    },
    Builtin {
        name: "keyboard_dist",
        params: &[Type::Str, Type::Str],
        ret: Type::Num,
        cost: CostClass::Expensive,
        eval: |a, _| Value::Num(ss::keyboard_distance(a[0].as_str(), a[1].as_str())),
    },
    Builtin {
        name: "ngram_sim",
        params: &[Type::Str, Type::Str, Type::Num],
        ret: Type::Num,
        cost: CostClass::Expensive,
        eval: |a, _| {
            let n = (a[2].as_num().max(1.0)) as usize;
            Value::Num(ss::ngram_similarity(a[0].as_str(), a[1].as_str(), n))
        },
    },
    Builtin {
        name: "trigram_sim",
        params: &[Type::Str, Type::Str],
        ret: Type::Num,
        cost: CostClass::Expensive,
        eval: |a, _| Value::Num(ss::trigram_similarity(a[0].as_str(), a[1].as_str())),
    },
    Builtin {
        name: "lcs_sim",
        params: &[Type::Str, Type::Str],
        ret: Type::Num,
        cost: CostClass::Expensive,
        eval: |a, _| Value::Num(ss::lcs_similarity(a[0].as_str(), a[1].as_str())),
    },
    Builtin {
        name: "soundex_eq",
        params: &[Type::Str, Type::Str],
        ret: Type::Bool,
        cost: CostClass::Moderate,
        eval: |a, _| Value::Bool(ss::soundex_eq(a[0].as_str(), a[1].as_str())),
    },
    Builtin {
        name: "nysiis_eq",
        params: &[Type::Str, Type::Str],
        ret: Type::Bool,
        cost: CostClass::Moderate,
        eval: |a, _| {
            let (x, y) = (a[0].as_str(), a[1].as_str());
            let cx = ss::nysiis(x);
            Value::Bool(!cx.is_empty() && cx == ss::nysiis(y))
        },
    },
    Builtin {
        name: "differ_slightly",
        params: &[Type::Str, Type::Str, Type::Num],
        ret: Type::Bool,
        cost: CostClass::Expensive,
        eval: |a, _| {
            Value::Bool(ss::differ_slightly(
                a[0].as_str(),
                a[1].as_str(),
                a[2].as_num(),
            ))
        },
    },
    Builtin {
        name: "nickname_eq",
        params: &[Type::Str, Type::Str],
        ret: Type::Bool,
        cost: CostClass::Moderate,
        eval: |a, ctx| Value::Bool(ctx.nicknames.equivalent(a[0].as_str(), a[1].as_str())),
    },
    Builtin {
        name: "initials_match",
        params: &[Type::Str, Type::Str],
        ret: Type::Bool,
        cost: CostClass::Cheap,
        eval: |a, _| Value::Bool(initials_match(a[0].as_str(), a[1].as_str())),
    },
    Builtin {
        name: "digits_transposed",
        params: &[Type::Str, Type::Str],
        ret: Type::Bool,
        cost: CostClass::Cheap,
        eval: |a, _| Value::Bool(digits_transposed(a[0].as_str(), a[1].as_str())),
    },
    Builtin {
        name: "prefix",
        params: &[Type::Str, Type::Num],
        ret: Type::Str,
        cost: CostClass::Trivial,
        eval: |a, _| {
            let n = a[1].as_num().max(0.0) as usize;
            Value::owned_str(char_prefix(a[0].as_str(), n).to_string())
        },
    },
    Builtin {
        name: "suffix",
        params: &[Type::Str, Type::Num],
        ret: Type::Str,
        cost: CostClass::Trivial,
        eval: |a, _| {
            let n = a[1].as_num().max(0.0) as usize;
            Value::owned_str(char_suffix(a[0].as_str(), n).to_string())
        },
    },
    Builtin {
        name: "len",
        params: &[Type::Str],
        ret: Type::Num,
        cost: CostClass::Trivial,
        eval: |a, _| Value::Num(a[0].as_str().chars().count() as f64),
    },
    Builtin {
        name: "is_empty",
        params: &[Type::Str],
        ret: Type::Bool,
        cost: CostClass::Trivial,
        eval: |a, _| Value::Bool(a[0].as_str().is_empty()),
    },
    Builtin {
        name: "contains",
        params: &[Type::Str, Type::Str],
        ret: Type::Bool,
        cost: CostClass::Cheap,
        eval: |a, _| Value::Bool(a[0].as_str().contains(a[1].as_str())),
    },
    Builtin {
        name: "starts_with",
        params: &[Type::Str, Type::Str],
        ret: Type::Bool,
        cost: CostClass::Cheap,
        eval: |a, _| Value::Bool(a[0].as_str().starts_with(a[1].as_str())),
    },
];

/// Looks up a builtin by name.
pub fn lookup(name: &str) -> Option<&'static Builtin> {
    BUILTINS.iter().find(|b| b.name == name)
}

/// Shared predicate implementations reused verbatim by the native theory so
/// interpreted and compiled semantics cannot drift.
pub mod shared {
    /// Mirrors the `initials_match` builtin.
    pub fn initials_match(a: &str, b: &str) -> bool {
        super::initials_match(a, b)
    }

    /// Mirrors the `digits_transposed` builtin.
    pub fn digits_transposed(a: &str, b: &str) -> bool {
        super::digits_transposed(a, b)
    }

    /// Character-count prefix, mirroring the `prefix` builtin.
    pub fn char_prefix(s: &str, n: usize) -> &str {
        super::char_prefix(s, n)
    }

    /// Character-count suffix, mirroring the `suffix` builtin.
    pub fn char_suffix(s: &str, n: usize) -> &str {
        super::char_suffix(s, n)
    }

    /// NYSIIS equality mirroring the `nysiis_eq` builtin (empty codes never
    /// match).
    pub fn nysiis_eq(a: &str, b: &str) -> bool {
        let ca = mp_strsim::nysiis(a);
        !ca.is_empty() && ca == mp_strsim::nysiis(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call<'a>(name: &str, args: &[Value<'a>]) -> Value<'a> {
        let ctx = Ctx {
            nicknames: NicknameTable::standard(),
        };
        (lookup(name).unwrap().eval)(args, &ctx)
    }

    #[test]
    fn all_builtins_named_uniquely() {
        let mut names: Vec<_> = BUILTINS.iter().map(|b| b.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn distance_builtins() {
        assert_eq!(
            call("edit_distance", &[Value::str("AB"), Value::str("AC")]).as_num(),
            1.0
        );
        assert_eq!(
            call("damerau", &[Value::str("AB"), Value::str("BA")]).as_num(),
            1.0
        );
        assert!(call("edit_sim", &[Value::str("AAAA"), Value::str("AAAB")]).as_num() > 0.7);
        assert!(call("jaro", &[Value::str("MARTHA"), Value::str("MARHTA")]).as_num() > 0.9);
        assert!(
            call(
                "jaro_winkler",
                &[Value::str("MARTHA"), Value::str("MARHTA")]
            )
            .as_num()
                > 0.95
        );
        assert_eq!(
            call("keyboard_dist", &[Value::str("A"), Value::str("S")]).as_num(),
            0.5
        );
        assert_eq!(
            call("lcs_sim", &[Value::str("ABC"), Value::str("ABC")]).as_num(),
            1.0
        );
        assert_eq!(
            call("trigram_sim", &[Value::str("X"), Value::str("X")]).as_num(),
            1.0
        );
        assert_eq!(
            call(
                "ngram_sim",
                &[Value::str("X"), Value::str("X"), Value::Num(2.0)]
            )
            .as_num(),
            1.0
        );
    }

    #[test]
    fn phonetic_builtins() {
        assert!(call("soundex_eq", &[Value::str("SMITH"), Value::str("SMYTH")]).as_bool());
        assert!(call("nysiis_eq", &[Value::str("JOHNSON"), Value::str("JOHNSEN")]).as_bool());
        assert!(!call("nysiis_eq", &[Value::str(""), Value::str("")]).as_bool());
    }

    #[test]
    fn nickname_builtin_uses_table() {
        assert!(call("nickname_eq", &[Value::str("BOB"), Value::str("ROBERT")]).as_bool());
        assert!(!call("nickname_eq", &[Value::str("BOB"), Value::str("WILLIAM")]).as_bool());
    }

    #[test]
    fn initials_match_semantics() {
        assert!(initials_match("J", "JOSEPH"));
        assert!(initials_match("JOSEPH", "J"));
        assert!(initials_match("SAME", "SAME"));
        assert!(!initials_match("JO", "JOSEPH")); // neither is an initial
        assert!(!initials_match("", "J"));
        assert!(!initials_match("K", "JOSEPH"));
    }

    #[test]
    fn digits_transposed_semantics() {
        assert!(digits_transposed("193456782", "913456782"));
        assert!(!digits_transposed("123", "123"));
        assert!(!digits_transposed("123", "321")); // two transpositions
        assert!(!digits_transposed("12", "13")); // substitution, not permutation
        assert!(!digits_transposed("12", "123"));
    }

    #[test]
    fn string_utilities() {
        assert_eq!(
            call("prefix", &[Value::str("HERNANDEZ"), Value::Num(3.0)]).as_str(),
            "HER"
        );
        assert_eq!(
            call("prefix", &[Value::str("AB"), Value::Num(9.0)]).as_str(),
            "AB"
        );
        assert_eq!(
            call("suffix", &[Value::str("HERNANDEZ"), Value::Num(3.0)]).as_str(),
            "DEZ"
        );
        assert_eq!(call("len", &[Value::str("ABCD")]).as_num(), 4.0);
        assert!(call("is_empty", &[Value::str("")]).as_bool());
        assert!(call("contains", &[Value::str("MAIN STREET"), Value::str("MAIN")]).as_bool());
        assert!(call("starts_with", &[Value::str("MAIN"), Value::str("MA")]).as_bool());
    }

    #[test]
    fn lookup_unknown_is_none() {
        assert!(lookup("no_such_fn").is_none());
    }
}
