//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Key choice** (§2.2/§2.4: "the effectiveness of this approach is
//!    based on the quality of the chosen keys"): accuracy per principal
//!    field, including the deliberately bad SSN-principal key.
//! 2. **Cluster key length** (§3.4's explanation of Fig. 3b): accuracy of
//!    the clustering method as the fixed cluster key grows.
//! 3. **Merge-fused scanning** (§2.2's duplicate-elimination variant):
//!    recall and cost vs the classic separate-phases method.
//! 4. **LPT vs round-robin load balancing** (§4.2): makespan of cluster
//!    assignments under key skew.
//!
//! Usage: `cargo run --release -p mp-bench --bin ablations [--records N]`

use merge_purge::{
    ClusteringConfig, ClusteringMethod, Evaluation, KeySpec, MergeScanSnm, MultiPass,
    SortedNeighborhood,
};
use mp_bench::{fig2_database, header, pct, row, Args};
use mp_cluster::lpt_assign;
use mp_rules::NativeEmployeeTheory;

fn main() {
    let args = Args::from_env();
    let originals: usize = args.get("records", 8_000);
    let seed: u64 = args.get("seed", 11);
    let w: usize = args.get("window", 10);

    let mut db = fig2_database(originals, seed);
    mp_record::normalize::condition_all(&mut db.records, &mp_record::NicknameTable::standard());
    let n = db.records.len();
    let theory = NativeEmployeeTheory::new();
    println!("# Ablations — {n} records, w = {w}");

    // ---- 1. Key choice -----------------------------------------------------
    println!("\n## 1. Key choice (single pass, w = {w})");
    header(&["principal key", "% detected", "% false positive"]);
    let keys = [
        KeySpec::last_name_key(),
        KeySpec::first_name_key(),
        KeySpec::address_key(),
        KeySpec::ssn_key(),
    ];
    for key in &keys {
        let pass = SortedNeighborhood::new(key.clone(), w).run(&db.records, &theory);
        let eval = Evaluation::score(&MultiPass::close(n, vec![pass]).closed_pairs, &db.truth);
        row(&[
            key.name().to_string(),
            pct(eval.percent_detected),
            format!("{:.3}%", eval.percent_false_positive),
        ]);
    }
    println!(
        "(the ssn key is the §2.4 cautionary tale: transposed digits scatter \
         duplicates across the sort — but exact-SSN duplicates sort perfectly, \
         so its accuracy reflects how many duplicates kept a clean SSN)"
    );

    // ---- 2. Cluster key length ----------------------------------------------
    println!("\n## 2. Fixed cluster-key length (clustering method, 32 clusters)");
    header(&["cluster key chars", "% detected", "gap vs full-key SNM"]);
    let snm_acc = {
        let pass = SortedNeighborhood::new(KeySpec::last_name_key(), w).run(&db.records, &theory);
        Evaluation::score(&MultiPass::close(n, vec![pass]).closed_pairs, &db.truth).percent_detected
    };
    for len in [4usize, 6, 9, 12, 16, 24] {
        let cm = ClusteringMethod::new(
            KeySpec::last_name_key(),
            ClusteringConfig {
                clusters: 32,
                histogram_prefix: 3,
                cluster_key_len: len,
                window: w,
            },
        )
        .run(&db.records, &theory);
        let acc = Evaluation::score(&MultiPass::close(n, vec![cm]).closed_pairs, &db.truth)
            .percent_detected;
        row(&[
            len.to_string(),
            pct(acc),
            format!("{:+.1}pp", acc - snm_acc),
        ]);
    }
    println!("(SNM with the full variable-length key: {snm_acc:.1}%)");

    // ---- 3. Merge-fused scanning ---------------------------------------------
    println!("\n## 3. Classic SNM vs merge-fused scanning (duplicate-elimination variant)");
    header(&["method", "% detected", "comparisons"]);
    for small_w in [3usize, w] {
        let classic =
            SortedNeighborhood::new(KeySpec::last_name_key(), small_w).run(&db.records, &theory);
        let fused = MergeScanSnm::new(KeySpec::last_name_key(), small_w)
            .run_length(32)
            .run(&db.records, &theory);
        for (name, pass) in [("classic", classic), ("merge-fused", fused)] {
            let eval = Evaluation::score(
                &MultiPass::close(n, vec![pass.clone()]).closed_pairs,
                &db.truth,
            );
            row(&[
                format!("{name} (w = {small_w})"),
                pct(eval.percent_detected),
                pass.stats.comparisons.to_string(),
            ]);
        }
    }

    // ---- 4. LPT vs round-robin -------------------------------------------------
    println!("\n## 4. LPT vs round-robin cluster assignment (8 processors)");
    // Cluster sizes from an actual partition of this database.
    let keys_v: Vec<String> = db
        .records
        .iter()
        .map(|r| KeySpec::last_name_key().extract(r))
        .collect();
    let hist = mp_cluster::KeyHistogram::from_keys(keys_v.iter().map(String::as_str), 3);
    let part = mp_cluster::RangePartition::build(&hist, 100);
    let mut sizes = vec![0u64; part.clusters()];
    for k in &keys_v {
        sizes[part.cluster_of(k)] += 1;
    }
    let procs = 8;
    let lpt = lpt_assign(&sizes, procs);
    // Round-robin: cluster i -> processor i mod P.
    let mut rr_loads = vec![0u64; procs];
    for (i, &s) in sizes.iter().enumerate() {
        rr_loads[i % procs] += s;
    }
    let rr_makespan = rr_loads.iter().copied().max().unwrap_or(0);
    let ideal = sizes.iter().sum::<u64>() as f64 / procs as f64;
    header(&["strategy", "makespan (records)", "vs ideal"]);
    row(&[
        "LPT".into(),
        lpt.makespan().to_string(),
        format!("{:+.1}%", 100.0 * (lpt.makespan() as f64 / ideal - 1.0)),
    ]);
    row(&[
        "round-robin".into(),
        rr_makespan.to_string(),
        format!("{:+.1}%", 100.0 * (rr_makespan as f64 / ideal - 1.0)),
    ]);
}
