//! Property test for the sharded scan's serial-equivalence guarantee:
//! for any shard count, any seeded database, and any batch split, the
//! band-replicated sharded scan plus the band-order reconciliation fold
//! must reproduce the single-engine run bit for bit — same closed pairs,
//! same per-pass `pairs_found` attribution, same comparison count.

use merge_purge::{incremental::IncrementalMergePurge, KeySpec};
use mp_datagen::{DatabaseGenerator, GeneratorConfig};
use mp_metrics::NoopObserver;
use mp_rules::NativeEmployeeTheory;
use proptest::prelude::*;

/// A fresh two-pass engine matching the serving daemon's defaults.
fn engine(window: usize) -> IncrementalMergePurge {
    IncrementalMergePurge::new()
        .pass(KeySpec::last_name_key(), window)
        .pass(KeySpec::first_name_key(), window)
}

/// Splits a seeded database into `parts` contiguous batches.
fn seeded_batches(seed: u64, originals: usize, parts: usize) -> Vec<Vec<mp_record::Record>> {
    let db = DatabaseGenerator::new(
        GeneratorConfig::new(originals)
            .duplicate_fraction(0.4)
            .seed(seed),
    )
    .generate();
    let chunk = db.records.len().div_ceil(parts);
    db.records.chunks(chunk).map(<[_]>::to_vec).collect()
}

proptest! {
    /// Sharded closure == single-engine closure for shard counts 1..=8.
    #[test]
    fn sharded_closure_equals_single_engine(
        seed in 0u64..500,
        originals in 20usize..120,
        parts in 1usize..5,
        shards in 1usize..=8,
        window in 3usize..10,
    ) {
        let theory = NativeEmployeeTheory::new();
        let batches = seeded_batches(seed, originals, parts);

        let mut serial = engine(window);
        let mut sharded = engine(window);
        for batch in &batches {
            serial.add_batch(batch.clone(), &theory);
            sharded.add_batch_sharded(batch.clone(), &theory, shards, &NoopObserver);
        }

        // Same closed pairs (transitive closure over the same match set).
        prop_assert_eq!(serial.classes(), sharded.classes());
        prop_assert_eq!(serial.pairs().sorted(), sharded.pairs().sorted());
        // Same per-pass attribution: the reconciliation fold replays the
        // serial discovery order, so first-found credit is identical too.
        prop_assert_eq!(serial.pass_counters(), sharded.pass_counters());
        // Same work performed, not just the same answer.
        prop_assert_eq!(serial.comparisons(), sharded.comparisons());
        prop_assert_eq!(serial.records().len(), sharded.records().len());
    }

    /// Shard count never changes the answer: any two shard counts agree
    /// with each other on the same stream.
    #[test]
    fn any_two_shard_counts_agree(
        seed in 0u64..200,
        a in 2usize..=8,
        b in 2usize..=8,
    ) {
        let theory = NativeEmployeeTheory::new();
        let batches = seeded_batches(seed, 60, 3);
        let mut ea = engine(6);
        let mut eb = engine(6);
        for batch in &batches {
            ea.add_batch_sharded(batch.clone(), &theory, a, &NoopObserver);
            eb.add_batch_sharded(batch.clone(), &theory, b, &NoopObserver);
        }
        prop_assert_eq!(ea.classes(), eb.classes());
        prop_assert_eq!(ea.comparisons(), eb.comparisons());
        prop_assert_eq!(ea.pass_counters(), eb.pass_counters());
    }
}
