//! Figure 6: parallel time vs number of processors (w = 10).
//!
//! Paper setup: the 1,000,000-record-class database of Fig. 2 on an 8-node
//! HP9000 cluster over FDDI; three independent runs per method and the
//! estimated concurrent multi-pass time (max of the runs + closure).
//!
//! * Fig. 6(a): parallel sorted-neighborhood method, 1–8 processors.
//! * Fig. 6(b): parallel clustering method (100 clusters/processor).
//!
//! Our "processors" are worker threads. On a multi-core host the measured
//! wall-clock shows the paper's sublinear speedup directly; on fewer cores
//! than P the threads time-share, so the binary additionally reports a
//! *simulated shared-nothing makespan* computed from measured serial phase
//! times and the per-worker work split the engines actually produced
//! (replicated bands / LPT loads) — the quantity the paper's cluster
//! measured, minus network costs. See DESIGN.md §5.
//!
//! Usage: `cargo run --release -p mp-bench --bin fig6 [--records N] [--max-procs P]`

use merge_purge::{ClusteringConfig, KeySpec, MultiPass, PassResult};
use mp_bench::{fig2_database, header, row, sec_cell, secs, Args};
use mp_parallel::{ParallelClustering, ParallelSnm};
use mp_rules::NativeEmployeeTheory;
use std::time::Instant;

/// Serial phase times of one pass, in seconds.
#[derive(Clone, Copy)]
struct SerialPhases {
    keys: f64,
    sort: f64,
    scan: f64,
}

fn phases(r: &PassResult) -> SerialPhases {
    SerialPhases {
        keys: secs(r.stats.create_keys),
        sort: secs(r.stats.sort),
        scan: secs(r.stats.window_scan),
    }
}

/// Worst-worker share of the window-scan work.
fn scan_skew(r: &PassResult) -> f64 {
    let total: u64 = r.worker_comparisons.iter().sum();
    let max = r.worker_comparisons.iter().copied().max().unwrap_or(0);
    if total == 0 {
        0.0
    } else {
        max as f64 / total as f64
    }
}

/// Simulated SNM makespan (§4.1): parallel key extraction, parallel local
/// sorts plus the coordinator's serial P-way merge, a serial coordinator
/// pass to read and broadcast the merged blocks to the scan sites (the
/// paper's explanation for sublinear speedup: "The obvious overhead is paid
/// in the process of reading and broadcasting of data to all processors"),
/// then the band-parallel scan at the observed worker skew.
fn snm_sim(serial: SerialPhases, n: usize, p: usize, skew: f64) -> f64 {
    if p == 1 {
        return serial.keys + serial.sort + serial.scan;
    }
    let nf = n as f64;
    let pf = p as f64;
    let log_n = nf.log2().max(1.0);
    let local_sort = serial.sort * (1.0 / pf) * ((nf / pf).log2().max(1.0) / log_n);
    let merge = serial.sort * (pf.log2() / log_n);
    let distribute = serial.keys; // one serial O(N) coordinator pass
    serial.keys / pf + local_sort + merge + distribute + serial.scan * skew
}

/// Simulated clustering makespan (§4.2): parallel key extraction, a serial
/// coordinator pass distributing records to cluster sites, then fully
/// parallel per-cluster sorts and scans at the observed LPT skew.
fn cluster_sim(serial: SerialPhases, p: usize, skew: f64) -> f64 {
    if p == 1 {
        return serial.keys + serial.sort + serial.scan;
    }
    let distribute = serial.keys; // coordinator reads and routes every record
    serial.keys / p as f64 + distribute + (serial.sort + serial.scan) * skew
}

fn main() {
    let args = Args::from_env();
    let originals: usize = args.get("records", 50_000);
    let seed: u64 = args.get("seed", 6);
    let w: usize = args.get("window", 10);
    let hw = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let max_procs: usize = args.get("max-procs", 8);

    let mut db = fig2_database(originals, seed);
    mp_record::normalize::condition_all(&mut db.records, &mp_record::NicknameTable::standard());
    let n = db.records.len();
    println!("# Figure 6 — {n} records, w = {w}, processors 1..{max_procs} (host cores: {hw})");

    let theory = NativeEmployeeTheory::new();
    let keys = KeySpec::standard_three();

    for (label, clustered) in [
        ("(a) sorted-neighborhood", false),
        ("(b) clustering, 100 clusters/proc", true),
    ] {
        println!("\n## {label}: simulated shared-nothing makespan (seconds)");
        // Serial reference run per key (P = 1) for phase times.
        let serial_runs: Vec<PassResult> = keys
            .iter()
            .map(|key| {
                if clustered {
                    ParallelClustering::new(
                        key.clone(),
                        ClusteringConfig {
                            clusters: 100,
                            histogram_prefix: 3,
                            cluster_key_len: 6,
                            window: w,
                        },
                        1,
                    )
                    .run(&db.records, &theory)
                } else {
                    ParallelSnm::new(key.clone(), w, 1).run(&db.records, &theory)
                }
            })
            .collect();
        let closure = MultiPass::close(n, serial_runs.clone());
        let t_closure = secs(closure.closure_time);

        header(&[
            "processors",
            "last-name run",
            "first-name run",
            "address run",
            "multi-pass (max run + closure)",
            "measured wall (this host)",
        ]);
        for p in 1..=max_procs {
            let mut cells = vec![p.to_string()];
            let mut sims = Vec::new();
            let mut wall = 0.0f64;
            for (key, serial) in keys.iter().zip(&serial_runs) {
                let t0 = Instant::now();
                let run = if clustered {
                    ParallelClustering::new(
                        key.clone(),
                        ClusteringConfig {
                            clusters: 100,
                            histogram_prefix: 3,
                            cluster_key_len: 6,
                            window: w,
                        },
                        p,
                    )
                    .run(&db.records, &theory)
                } else {
                    ParallelSnm::new(key.clone(), w, p).run(&db.records, &theory)
                };
                wall += secs(t0.elapsed());
                let skew = scan_skew(&run);
                let sim = if clustered {
                    cluster_sim(phases(serial), p, skew)
                } else {
                    snm_sim(phases(serial), n, p, skew)
                };
                sims.push(sim);
                cells.push(sec_cell(sim));
            }
            let multi_sim = sims.iter().cloned().fold(0.0f64, f64::max) + t_closure;
            cells.push(sec_cell(multi_sim));
            cells.push(sec_cell(wall / 3.0));
            row(&cells);
        }
    }

    println!(
        "\nPaper shape check: simulated times fall with sublinear speedup as \
         processors increase (the coordinator's merge/distribution phases do \
         not parallelize); the clustering method stays faster than the \
         sorted-neighborhood method; multi-pass ≈ slowest single run + closure. \
         The measured-wall column only shows speedup when the host has ≥ P cores."
    );
}
