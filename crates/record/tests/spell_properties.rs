//! Property tests for the spelling corrector: corrections are always
//! corpus members within the distance bound, exact members are fixed
//! points, and correction is deterministic.

use mp_record::SpellCorrector;
use mp_strsim::levenshtein;
use proptest::prelude::*;

fn corpus() -> Vec<String> {
    mp_datagen::geo::city_corpus(400)
}

proptest! {
    /// Any correction returned is a corpus word within max_distance.
    #[test]
    fn corrections_are_close_corpus_members(
        word in "[A-Z ]{1,16}",
        max in 1usize..4,
    ) {
        let corpus = corpus();
        let sc = SpellCorrector::new(corpus.clone(), max);
        if let Some(fixed) = sc.correct(&word) {
            prop_assert!(corpus.iter().any(|c| c == fixed), "{fixed} not in corpus");
            prop_assert!(
                levenshtein(&word, fixed) <= max,
                "{word} -> {fixed} exceeds bound {max}"
            );
        }
    }

    /// Corpus members are fixed points at any bound.
    #[test]
    fn corpus_members_are_fixed_points(idx in 0usize..400, max in 0usize..4) {
        let corpus = corpus();
        let word = corpus[idx % corpus.len()].clone();
        let sc = SpellCorrector::new(corpus, max.max(1));
        prop_assert_eq!(sc.correct(&word), Some(word.as_str()));
    }

    /// Correction is deterministic and idempotent.
    #[test]
    fn correction_deterministic_and_idempotent(word in "[A-Z]{1,12}") {
        let sc = SpellCorrector::new(corpus(), 2);
        let once = sc.correct(&word).map(str::to_string);
        let twice = sc.correct(&word).map(str::to_string);
        prop_assert_eq!(&once, &twice);
        if let Some(fixed) = once {
            // Correcting a correction changes nothing.
            prop_assert_eq!(sc.correct(&fixed), Some(fixed.as_str()));
        }
    }

    /// A single random typo over a corpus word is always repaired back to
    /// *some* corpus word at distance <= 2 (usually the original).
    #[test]
    fn single_typos_always_repairable(
        idx in 0usize..400,
        pos in 0usize..32,
        sub in b'A'..=b'Z',
    ) {
        let corpus = corpus();
        let word = &corpus[idx % corpus.len()];
        let mut chars: Vec<char> = word.chars().collect();
        let p = pos % chars.len();
        if chars[p] != sub as char {
            chars[p] = sub as char;
            let typo: String = chars.into_iter().collect();
            let sc = SpellCorrector::new(corpus.clone(), 2);
            let fixed = sc.correct(&typo);
            prop_assert!(fixed.is_some(), "typo {typo} of {word} not repaired");
        }
    }
}
