//! Observer overhead smoke benchmark: a sorted-neighborhood pass driven
//! through the [`NoopObserver`] must cost the same as the plain `run` path
//! (observers report in bulk per phase, never inside the scan loop), and a
//! live [`MetricsRecorder`] must add only a handful of atomic adds per pass.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use merge_purge::{KeySpec, SortedNeighborhood};
use mp_datagen::{DatabaseGenerator, GeneratorConfig};
use mp_metrics::{MetricsRecorder, NoopObserver};
use mp_rules::NativeEmployeeTheory;

fn bench_observer_overhead(c: &mut Criterion) {
    let db = DatabaseGenerator::new(GeneratorConfig::new(3_000).duplicate_fraction(0.5).seed(78))
        .generate();
    let theory = NativeEmployeeTheory::new();
    let snm = SortedNeighborhood::new(KeySpec::last_name_key(), 10);

    let mut g = c.benchmark_group("metrics_overhead");

    g.bench_function("unobserved", |b| {
        b.iter(|| black_box(snm.run(&db.records, &theory).pairs.len()));
    });

    g.bench_function("noop_observer", |b| {
        b.iter(|| {
            black_box(
                snm.run_observed(&db.records, &theory, &NoopObserver)
                    .pairs
                    .len(),
            )
        });
    });

    let recorder = MetricsRecorder::new();
    g.bench_function("metrics_recorder", |b| {
        b.iter(|| {
            black_box(
                snm.run_observed(&db.records, &theory, &recorder)
                    .pairs
                    .len(),
            )
        });
    });

    g.finish();
}

criterion_group!(benches, bench_observer_overhead);
criterion_main!(benches);
