//! The clustering method (§2.2.1): histogram-partition the key space, then
//! run the sorted-neighborhood method inside each cluster.

use crate::key::{KeyArena, KeySpec};
use crate::snm::{PassResult, PassStats};
use crate::window::{window_scan_hooked, window_scan_pruned_hooked};
use mp_closure::{PairSet, UnionFind};
use mp_cluster::{KeyHistogram, RangePartition};
use mp_metrics::{span, span_labeled, Counter, NoopObserver, Phase, PipelineObserver, ScanHooks};
use mp_record::Record;
use mp_rules::EquationalTheory;
use std::time::Instant;

/// Configuration of the clustering method.
#[derive(Debug, Clone)]
pub struct ClusteringConfig {
    /// Number of clusters `C` (the paper uses 32 serially — the merge-sort
    /// fan-out — and 100 per processor in parallel).
    pub clusters: usize,
    /// Characters of the key prefix used for the histogram bins (the paper
    /// maps the first three letters into a 27³ space).
    pub histogram_prefix: usize,
    /// Length of the *fixed-size* cluster key used to sort within clusters.
    ///
    /// This is the deliberate accuracy handicap of the clustering method:
    /// "the clustering method uses the fixed-sized key extracted during its
    /// clustering phase to later sort each cluster ... the sorted-
    /// neighborhood method used the complete length of the strings in the
    /// key field" (§3.4). Records equal on the truncated key keep input
    /// order, so matches that a full-key sort would bring adjacent may stay
    /// separated.
    pub cluster_key_len: usize,
    /// Window size for the per-cluster scans.
    pub window: usize,
}

impl ClusteringConfig {
    /// The paper's serial setup: 32 clusters, 3-letter histogram, and a
    /// fixed key truncated to 12 characters (the full variable-length keys
    /// average 16-22, so the truncation reproduces the paper's modest
    /// accuracy edge for SNM without crippling the clustering method).
    pub fn paper_serial(window: usize) -> Self {
        ClusteringConfig {
            clusters: 32,
            histogram_prefix: 3,
            cluster_key_len: 12,
            window,
        }
    }
}

/// The clustering method for one key.
///
/// ```
/// use merge_purge::{ClusteringConfig, ClusteringMethod, KeySpec};
/// use mp_datagen::{DatabaseGenerator, GeneratorConfig};
/// use mp_rules::NativeEmployeeTheory;
///
/// let db = DatabaseGenerator::new(GeneratorConfig::new(300).seed(5)).generate();
/// let cm = ClusteringMethod::new(KeySpec::last_name_key(), ClusteringConfig::paper_serial(10));
/// let result = cm.run(&db.records, &NativeEmployeeTheory::new());
/// assert!(result.pairs.len() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct ClusteringMethod {
    key: KeySpec,
    config: ClusteringConfig,
}

impl ClusteringMethod {
    /// A clustering pass over `key` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics when the window is below 2 or the cluster count is 0.
    pub fn new(key: KeySpec, config: ClusteringConfig) -> Self {
        assert!(config.window >= 2, "window must hold at least two records");
        assert!(config.clusters >= 1, "need at least one cluster");
        ClusteringMethod { key, config }
    }

    /// The key specification.
    pub fn key(&self) -> &KeySpec {
        &self.key
    }

    /// The configuration.
    pub fn config(&self) -> &ClusteringConfig {
        &self.config
    }

    /// Runs cluster-data + per-cluster sorted-neighborhood serially.
    ///
    /// The `create_keys` stat covers key extraction and histogram/partition
    /// construction; `sort` covers the per-cluster sorts; `window_scan` the
    /// per-cluster scans.
    pub fn run(&self, records: &[Record], theory: &dyn EquationalTheory) -> PassResult {
        self.run_observed(records, theory, &NoopObserver)
    }

    /// Like [`ClusteringMethod::run`], reporting counters and phase timings
    /// to `observer` (in bulk, once per phase).
    pub fn run_observed(
        &self,
        records: &[Record],
        theory: &dyn EquationalTheory,
        observer: &dyn PipelineObserver,
    ) -> PassResult {
        self.run_inner(records, theory, None, observer)
    }

    /// Like [`ClusteringMethod::run_observed`], with closure-aware pruning:
    /// per-cluster window pairs already connected in `uf` skip rule
    /// evaluation, and every match found is unioned into `uf`.
    pub fn run_pruned_observed(
        &self,
        records: &[Record],
        theory: &dyn EquationalTheory,
        uf: &mut UnionFind,
        observer: &dyn PipelineObserver,
    ) -> PassResult {
        self.run_inner(records, theory, Some(uf), observer)
    }

    fn run_inner(
        &self,
        records: &[Record],
        theory: &dyn EquationalTheory,
        mut uf: Option<&mut UnionFind>,
        observer: &dyn PipelineObserver,
    ) -> PassResult {
        let mut stats = PassStats::default();
        let _pass_span = span_labeled(observer, "pass", || {
            format!("{} w={} clustered", self.key.name(), self.config.window)
        });
        let hooks = ScanHooks::from_observer(observer);

        // Phase 1: extract keys, build histogram, partition, assign.
        let t0 = Instant::now();
        let _key_span = span(observer, "key_build");
        let keys = KeyArena::extract(&self.key, records);
        let truncated: Vec<&str> = keys
            .iter()
            .map(|k| truncate(k, self.config.cluster_key_len))
            .collect();
        let histogram =
            KeyHistogram::from_keys(truncated.iter().copied(), self.config.histogram_prefix);
        let partition = RangePartition::build(&histogram, self.config.clusters);
        let mut clusters: Vec<Vec<u32>> = vec![Vec::new(); self.config.clusters];
        for (i, t) in truncated.iter().enumerate() {
            clusters[partition.cluster_of(t)].push(i as u32);
        }
        drop(_key_span);
        stats.create_keys = t0.elapsed();
        observer.add(Counter::RecordsKeyed, records.len() as u64);
        observer.phase_ns(Phase::CreateKeys, stats.create_keys.as_nanos() as u64);

        // Phase 2: per-cluster sort on the fixed-size key. The sorts are
        // independent of the scans, so they run together under one span.
        let t1 = Instant::now();
        {
            let _s = span(observer, "sort");
            for cluster in &mut clusters {
                cluster.sort_by(|&a, &b| truncated[a as usize].cmp(truncated[b as usize]));
            }
        }
        stats.sort = t1.elapsed();

        // Phase 3: per-cluster window scans (in cluster order, so pruning
        // sees matches from earlier clusters).
        let mut pairs = PairSet::new();
        let t2 = Instant::now();
        let _scan_span = span(observer, "window_scan");
        for cluster in &clusters {
            match uf.as_deref_mut() {
                Some(uf) => {
                    let counts = window_scan_pruned_hooked(
                        records,
                        cluster,
                        self.config.window,
                        theory,
                        uf,
                        &mut pairs,
                        &hooks,
                    );
                    stats.comparisons += counts.comparisons;
                    stats.rule_evaluations += counts.rule_evaluations;
                    stats.pairs_pruned += counts.pairs_pruned;
                }
                None => {
                    let c = window_scan_hooked(
                        records,
                        cluster,
                        self.config.window,
                        theory,
                        &mut pairs,
                        &hooks,
                    );
                    stats.comparisons += c;
                    stats.rule_evaluations += c;
                }
            }
        }
        drop(_scan_span);
        stats.window_scan = t2.elapsed();
        stats.matches = pairs.len();
        observer.phase_ns(Phase::Sort, stats.sort.as_nanos() as u64);
        observer.phase_ns(Phase::WindowScan, stats.window_scan.as_nanos() as u64);
        observer.add(Counter::Comparisons, stats.comparisons);
        observer.add(Counter::RuleInvocations, stats.rule_evaluations);
        observer.add(Counter::PairsPruned, stats.pairs_pruned);
        observer.add(Counter::Matches, stats.matches as u64);

        PassResult {
            key_name: self.key.name().to_string(),
            window: self.config.window,
            pairs,
            stats,
            worker_comparisons: vec![stats.comparisons],
        }
    }
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snm::SortedNeighborhood;
    use mp_datagen::{DatabaseGenerator, GeneratorConfig};
    use mp_rules::NativeEmployeeTheory;

    fn db(n: usize, seed: u64) -> mp_datagen::GeneratedDatabase {
        DatabaseGenerator::new(GeneratorConfig::new(n).duplicate_fraction(0.4).seed(seed))
            .generate()
    }

    #[test]
    fn finds_duplicates() {
        let db = db(400, 41);
        let cm =
            ClusteringMethod::new(KeySpec::last_name_key(), ClusteringConfig::paper_serial(10));
        let r = cm.run(&db.records, &NativeEmployeeTheory::new());
        assert!(!r.pairs.is_empty());
        assert!(r.stats.comparisons > 0);
    }

    #[test]
    fn accuracy_at_most_snm_with_same_key_window() {
        // §3.4: "In all cases the accuracy of the sorted-neighborhood edged
        // higher than the accuracy of the clustering method" — because of
        // the fixed-size cluster key. Verify the mechanism: clustering finds
        // no pair that full-key SNM with the same window plus cluster
        // boundaries would fundamentally rule out, and typically finds
        // fewer.
        let db = db(600, 42);
        let theory = NativeEmployeeTheory::new();
        let w = 10;
        let snm = SortedNeighborhood::new(KeySpec::last_name_key(), w).run(&db.records, &theory);
        let cm = ClusteringMethod::new(KeySpec::last_name_key(), ClusteringConfig::paper_serial(w))
            .run(&db.records, &theory);
        let snm_true = count_true(&snm.pairs, &db);
        let cm_true = count_true(&cm.pairs, &db);
        assert!(
            cm_true <= snm_true,
            "clustering ({cm_true}) beat SNM ({snm_true})?"
        );
        assert!(cm_true > 0);
    }

    fn count_true(pairs: &PairSet, db: &mp_datagen::GeneratedDatabase) -> usize {
        pairs
            .iter()
            .filter(|&(a, b)| {
                db.truth
                    .same_entity(&db.records[a as usize], &db.records[b as usize])
            })
            .count()
    }

    #[test]
    fn comparisons_never_exceed_global_snm() {
        // Clustering only removes candidate comparisons (across cluster
        // boundaries), never adds them.
        let db = db(300, 43);
        let theory = NativeEmployeeTheory::new();
        let w = 8;
        let snm = SortedNeighborhood::new(KeySpec::last_name_key(), w).run(&db.records, &theory);
        let cm = ClusteringMethod::new(KeySpec::last_name_key(), ClusteringConfig::paper_serial(w))
            .run(&db.records, &theory);
        assert!(cm.stats.comparisons <= snm.stats.comparisons);
    }

    #[test]
    fn single_cluster_equals_snm_on_truncated_key() {
        // With C = 1 the clustering method degenerates to SNM sorted on the
        // truncated key.
        let db = db(200, 44);
        let theory = NativeEmployeeTheory::new();
        let config = ClusteringConfig {
            clusters: 1,
            histogram_prefix: 3,
            cluster_key_len: usize::MAX, // no truncation
            window: 6,
        };
        let cm = ClusteringMethod::new(KeySpec::last_name_key(), config).run(&db.records, &theory);
        let snm = SortedNeighborhood::new(KeySpec::last_name_key(), 6).run(&db.records, &theory);
        assert_eq!(cm.pairs.sorted(), snm.pairs.sorted());
    }

    #[test]
    fn deterministic() {
        let db = db(150, 45);
        let theory = NativeEmployeeTheory::new();
        let cm = ClusteringMethod::new(KeySpec::address_key(), ClusteringConfig::paper_serial(5));
        assert_eq!(
            cm.run(&db.records, &theory).pairs.sorted(),
            cm.run(&db.records, &theory).pairs.sorted()
        );
    }

    #[test]
    fn empty_input() {
        let cm = ClusteringMethod::new(KeySpec::last_name_key(), ClusteringConfig::paper_serial(4));
        let r = cm.run(&[], &NativeEmployeeTheory::new());
        assert!(r.pairs.is_empty());
    }
}
