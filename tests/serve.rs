//! End-to-end serve-protocol tests against the real `mergepurge` binary:
//! ingest batches over the Unix socket, query, shut down gracefully,
//! restart, and check the daemon answers — and its deterministic `store`
//! stats section — are identical. A second scenario kills the daemon with
//! SIGKILL mid-stream and verifies journal replay restores the state.

#![cfg(unix)]

use merge_purge_repro::serve::{ingest_request, json::Json, request};
use mp_datagen::{DatabaseGenerator, GeneratorConfig};
use mp_record::Record;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mp-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn batches(seed: u64, n: usize, parts: usize) -> Vec<Vec<Record>> {
    let db = DatabaseGenerator::new(GeneratorConfig::new(n).duplicate_fraction(0.4).seed(seed))
        .generate();
    let chunk = db.records.len().div_ceil(parts);
    db.records.chunks(chunk).map(<[Record]>::to_vec).collect()
}

fn spawn_daemon(socket: &Path, store: &Path) -> Child {
    let child = Command::new(env!("CARGO_BIN_EXE_mergepurge"))
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--window",
            "8",
            "--keys",
            "last_name,first_name",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn mergepurge serve");
    // The socket appearing is the readiness signal.
    let deadline = Instant::now() + Duration::from_secs(20);
    while !socket.exists() {
        assert!(Instant::now() < deadline, "daemon never bound {socket:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    child
}

fn ask(socket: &Path, payload: &str) -> Json {
    // The daemon may momentarily lag between binding and accepting.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match request(socket, payload) {
            Ok(response) => return Json::parse(&response).expect("daemon speaks json"),
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("request failed: {e}"),
        }
    }
}

fn expect_ok(v: &Json) {
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
}

/// The deterministic part of `stats`: the whole `store` object.
fn store_section(socket: &Path) -> Json {
    let stats = ask(socket, r#"{"cmd":"stats"}"#);
    expect_ok(&stats);
    stats
        .get("store")
        .expect("stats has a store section")
        .clone()
}

fn shutdown_and_wait(socket: &Path, child: &mut Child) {
    let bye = ask(socket, r#"{"cmd":"shutdown"}"#);
    expect_ok(&bye);
    let status = child.wait().expect("daemon exit status");
    assert!(status.success(), "graceful shutdown exits 0: {status:?}");
    assert!(!socket.exists(), "socket unlinked on graceful shutdown");
}

#[test]
fn ingest_query_shutdown_restart_gives_identical_answers() {
    let dir = tmp_dir("basic");
    let socket = dir.join("mp.sock");
    let store = dir.join("store");
    let parts = batches(4242, 400, 2);

    let mut child = spawn_daemon(&socket, &store);
    for (i, part) in parts.iter().enumerate() {
        let reply = ask(&socket, &ingest_request(part));
        expect_ok(&reply);
        assert_eq!(
            reply.get("seq").and_then(Json::as_u64),
            Some(i as u64 + 1),
            "journal sequence numbers are contiguous"
        );
    }
    let total: usize = parts.iter().map(Vec::len).sum();

    // Query every record once; remember each answer.
    let stats_before = store_section(&socket);
    assert_eq!(
        stats_before.get("records").and_then(Json::as_u64),
        Some(total as u64)
    );
    let probe: Vec<u64> = (0..total as u64).step_by(17).collect();
    let answers_before: Vec<Json> = probe
        .iter()
        .map(|id| ask(&socket, &format!(r#"{{"cmd":"query-matches","id":{id}}}"#)))
        .collect();
    for a in &answers_before {
        expect_ok(a);
    }
    shutdown_and_wait(&socket, &mut child);

    // Restart on the same store: same stats, same classes.
    let mut child = spawn_daemon(&socket, &store);
    assert_eq!(
        store_section(&socket),
        stats_before,
        "store stats survive restart"
    );
    let answers_after: Vec<Json> = probe
        .iter()
        .map(|id| ask(&socket, &format!(r#"{{"cmd":"query-matches","id":{id}}}"#)))
        .collect();
    assert_eq!(
        answers_after, answers_before,
        "query answers survive restart"
    );
    shutdown_and_wait(&socket, &mut child);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sigkill_mid_run_replays_the_journal_to_the_same_stats() {
    let dir = tmp_dir("kill9");
    let socket = dir.join("mp.sock");
    let store = dir.join("store");
    let parts = batches(5151, 450, 3);

    // Golden run: all three batches in one uninterrupted daemon.
    let golden_store = dir.join("store-golden");
    let mut child = spawn_daemon(&socket, &golden_store);
    for part in &parts {
        expect_ok(&ask(&socket, &ingest_request(part)));
    }
    let want = store_section(&socket);
    shutdown_and_wait(&socket, &mut child);

    // Crash run: two batches acknowledged, then SIGKILL — no graceful
    // drain, no snapshot (the store only has the journal).
    let mut child = spawn_daemon(&socket, &store);
    expect_ok(&ask(&socket, &ingest_request(&parts[0])));
    expect_ok(&ask(&socket, &ingest_request(&parts[1])));
    child.kill().expect("SIGKILL the daemon");
    child.wait().unwrap();
    let _ = std::fs::remove_file(&socket);

    // Restart: the journal replays both batches; finish the third.
    let mut child = spawn_daemon(&socket, &store);
    let stats = ask(&socket, r#"{"cmd":"stats"}"#);
    expect_ok(&stats);
    assert_eq!(
        stats
            .get("process")
            .and_then(|p| p.get("journal_replays"))
            .and_then(Json::as_u64),
        Some(2),
        "both acknowledged batches replay: {stats}"
    );
    expect_ok(&ask(&socket, &ingest_request(&parts[2])));
    assert_eq!(
        store_section(&socket),
        want,
        "kill/restart reaches the exact single-process stats"
    );
    shutdown_and_wait(&socket, &mut child);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let dir = tmp_dir("errors");
    let socket = dir.join("mp.sock");
    let mut child = spawn_daemon(&socket, &dir.join("store"));

    let bad = ask(&socket, "{not json");
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    let unknown = ask(&socket, r#"{"cmd":"frobnicate"}"#);
    assert_eq!(unknown.get("ok").and_then(Json::as_bool), Some(false));
    let out_of_range = ask(&socket, r#"{"cmd":"query-matches","id":999999}"#);
    assert_eq!(out_of_range.get("ok").and_then(Json::as_bool), Some(false));
    let empty = ask(&socket, r#"{"cmd":"ingest-batch","records":[]}"#);
    assert_eq!(empty.get("ok").and_then(Json::as_bool), Some(false));

    // The daemon is still healthy after every error.
    let stats = ask(&socket, r#"{"cmd":"stats"}"#);
    expect_ok(&stats);
    shutdown_and_wait(&socket, &mut child);
    std::fs::remove_dir_all(&dir).unwrap();
}
