//! Parallel merge sort of the key list.
//!
//! §4.1: "a coordinator processor (CP) fragments the input database in a
//! round-robin fashion among all P sites. Each site then sorts its local
//! fragment in parallel. Then the CP does a P-way join (merge), reading a
//! block at a time from each of the P sites." Fragmentation here is by
//! contiguous chunks rather than round-robin — equivalent work, better
//! locality on shared memory.

use merge_purge::KeyArena;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Returns record indices sorted by key, sorting `procs` fragments in
/// parallel and merging them with a P-way heap merge. Stable: equal keys
/// keep ascending index order.
///
/// # Panics
///
/// Panics when `procs` is zero.
pub fn parallel_sorted_order(keys: &KeyArena, procs: usize) -> Vec<u32> {
    assert!(procs >= 1, "need at least one processor");
    let n = keys.len();
    if n == 0 {
        return Vec::new();
    }
    let chunk = n.div_ceil(procs);

    // Local sorts, one fragment per worker.
    let mut runs: Vec<Vec<u32>> = Vec::with_capacity(procs);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .step_by(chunk)
            .map(|start| {
                let end = (start + chunk).min(n);
                s.spawn(move || {
                    let mut run: Vec<u32> = (start as u32..end as u32).collect();
                    // Stable within the run; cross-run stability comes from
                    // the merge preferring the lower fragment on ties.
                    run.sort_by(|&a, &b| keys.get(a as usize).cmp(keys.get(b as usize)));
                    run
                })
            })
            .collect();
        for h in handles {
            runs.push(h.join().expect("sort worker panicked"));
        }
    });

    merge_runs(keys, runs)
}

struct HeapEntry<'a> {
    key: &'a str,
    index: u32,
    run: usize,
    pos: usize,
}

impl PartialEq for HeapEntry<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry<'_> {}
impl PartialOrd for HeapEntry<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for ascending order. Ties break
        // toward the smaller index for stability.
        other
            .key
            .cmp(self.key)
            .then_with(|| other.index.cmp(&self.index))
    }
}

/// The coordinator's P-way merge ("16-way merge algorithm" in the paper's
/// footnote; the fan-in here is exactly the number of runs).
fn merge_runs(keys: &KeyArena, runs: Vec<Vec<u32>>) -> Vec<u32> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(runs.len());
    for (r, run) in runs.iter().enumerate() {
        if let Some(&idx) = run.first() {
            heap.push(HeapEntry {
                key: keys.get(idx as usize),
                index: idx,
                run: r,
                pos: 0,
            });
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(top) = heap.pop() {
        out.push(top.index);
        let next_pos = top.pos + 1;
        if let Some(&idx) = runs[top.run].get(next_pos) {
            heap.push(HeapEntry {
                key: keys.get(idx as usize),
                index: idx,
                run: top.run,
                pos: next_pos,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arena(keys: &[&str]) -> KeyArena {
        let mut a = KeyArena::new();
        for k in keys {
            a.push_str(k);
        }
        a
    }

    fn serial_order(keys: &KeyArena) -> Vec<u32> {
        let mut order: Vec<u32> = (0..keys.len() as u32).collect();
        order.sort_by(|&a, &b| keys.get(a as usize).cmp(keys.get(b as usize)));
        order
    }

    #[test]
    fn matches_serial_sort() {
        let keys = arena(&["PEAR", "APPLE", "MANGO", "APPLE", "FIG", "DATE"]);
        for procs in [1, 2, 3, 4, 6, 9] {
            assert_eq!(parallel_sorted_order(&keys, procs), serial_order(&keys));
        }
    }

    #[test]
    fn stability_on_equal_keys() {
        let keys = arena(&["X"; 50]);
        let order = parallel_sorted_order(&keys, 4);
        assert_eq!(order, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn empty_and_singleton() {
        assert!(parallel_sorted_order(&KeyArena::new(), 4).is_empty());
        assert_eq!(parallel_sorted_order(&arena(&["A"]), 4), vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_procs_rejected() {
        parallel_sorted_order(&KeyArena::new(), 0);
    }

    proptest! {
        #[test]
        fn agrees_with_serial_for_random_inputs(
            keys in proptest::collection::vec("[A-D]{0,4}", 0..200),
            procs in 1usize..8,
        ) {
            let keys = arena(&keys.iter().map(String::as_str).collect::<Vec<_>>());
            prop_assert_eq!(
                parallel_sorted_order(&keys, procs),
                serial_order(&keys)
            );
        }
    }
}
