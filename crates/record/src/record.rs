//! The core [`Record`] type and its identifiers.

use crate::field::Field;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Position of a record in the concatenated input list — the "tuple id" the
/// paper feeds to the transitive closure ("pairs of tuple id's, each at most
/// 30 bits", §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RecordId(pub u32);

impl RecordId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Hidden ground-truth identity of the real-world entity a record describes.
///
/// Assigned by the database generator; two records are *true* duplicates iff
/// their entity ids are equal. Production data has no such column — it exists
/// so accuracy can be measured exactly, as in the paper's controlled studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntityId(pub u32);

/// One employee-style record.
///
/// All fields are free-text strings because that is precisely the problem:
/// "the data supplied by various sources typically include identifiers or
/// string data, that are either different among different datasets or simply
/// erroneous" (§1). Any field may be empty.
///
/// ```
/// use mp_record::{Record, EntityId, RecordId};
/// let r = Record {
///     id: RecordId(0),
///     entity: Some(EntityId(7)),
///     ssn: "123456789".into(),
///     first_name: "MAURICIO".into(),
///     middle_initial: "A".into(),
///     last_name: "HERNANDEZ".into(),
///     street_number: "500".into(),
///     street_name: "WEST 120TH ST".into(),
///     apartment: "450".into(),
///     city: "NEW YORK".into(),
///     state: "NY".into(),
///     zip: "10027".into(),
/// };
/// assert_eq!(r.field(mp_record::Field::LastName), "HERNANDEZ");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// Tuple id: position in the concatenated list.
    pub id: RecordId,
    /// Ground-truth entity, if known (generated data only).
    pub entity: Option<EntityId>,
    /// Social security number, nine digits when clean.
    pub ssn: String,
    /// First (given) name.
    pub first_name: String,
    /// Middle initial, usually a single letter or empty.
    pub middle_initial: String,
    /// Last (family) name.
    pub last_name: String,
    /// House/building number of the street address.
    pub street_number: String,
    /// Street name portion of the address.
    pub street_name: String,
    /// Apartment/unit, often empty.
    pub apartment: String,
    /// City name.
    pub city: String,
    /// Two-letter state code when clean.
    pub state: String,
    /// Zip code, five digits when clean.
    pub zip: String,
}

impl Record {
    /// A record with the given id and every field empty.
    pub fn empty(id: RecordId) -> Self {
        Record {
            id,
            entity: None,
            ssn: String::new(),
            first_name: String::new(),
            middle_initial: String::new(),
            last_name: String::new(),
            street_number: String::new(),
            street_name: String::new(),
            apartment: String::new(),
            city: String::new(),
            state: String::new(),
            zip: String::new(),
        }
    }

    /// Read-only access to a field by tag; the rule engine and key extractor
    /// address fields this way.
    #[inline]
    pub fn field(&self, f: Field) -> &str {
        match f {
            Field::Ssn => &self.ssn,
            Field::FirstName => &self.first_name,
            Field::MiddleInitial => &self.middle_initial,
            Field::LastName => &self.last_name,
            Field::StreetNumber => &self.street_number,
            Field::StreetName => &self.street_name,
            Field::Apartment => &self.apartment,
            Field::City => &self.city,
            Field::State => &self.state,
            Field::Zip => &self.zip,
        }
    }

    /// Mutable access to a field by tag (used by the generator's corruptors
    /// and the conditioning passes).
    #[inline]
    pub fn field_mut(&mut self, f: Field) -> &mut String {
        match f {
            Field::Ssn => &mut self.ssn,
            Field::FirstName => &mut self.first_name,
            Field::MiddleInitial => &mut self.middle_initial,
            Field::LastName => &mut self.last_name,
            Field::StreetNumber => &mut self.street_number,
            Field::StreetName => &mut self.street_name,
            Field::Apartment => &mut self.apartment,
            Field::City => &mut self.city,
            Field::State => &mut self.state,
            Field::Zip => &mut self.zip,
        }
    }

    /// Full street address ("number name apt") for display and address keys.
    pub fn full_address(&self) -> String {
        let mut s = String::with_capacity(
            self.street_number.len() + self.street_name.len() + self.apartment.len() + 2,
        );
        s.push_str(&self.street_number);
        if !self.street_name.is_empty() {
            if !s.is_empty() {
                s.push(' ');
            }
            s.push_str(&self.street_name);
        }
        if !self.apartment.is_empty() {
            if !s.is_empty() {
                s.push(' ');
            }
            s.push_str(&self.apartment);
        }
        s
    }

    /// True when every data field is empty (the id does not count).
    pub fn is_blank(&self) -> bool {
        Field::ALL.iter().all(|&f| self.field(f).is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Record {
        let mut r = Record::empty(RecordId(3));
        r.first_name = "SAL".into();
        r.last_name = "STOLFO".into();
        r.street_number = "1214".into();
        r.street_name = "AMSTERDAM AVE".into();
        r.apartment = "MC 0401".into();
        r
    }

    #[test]
    fn field_roundtrip_for_all_fields() {
        let mut r = Record::empty(RecordId(0));
        for (i, &f) in Field::ALL.iter().enumerate() {
            *r.field_mut(f) = format!("V{i}");
        }
        for (i, &f) in Field::ALL.iter().enumerate() {
            assert_eq!(r.field(f), format!("V{i}"));
        }
    }

    #[test]
    fn full_address_joins_present_parts() {
        let r = sample();
        assert_eq!(r.full_address(), "1214 AMSTERDAM AVE MC 0401");
        let mut no_num = r.clone();
        no_num.street_number.clear();
        assert_eq!(no_num.full_address(), "AMSTERDAM AVE MC 0401");
        let empty = Record::empty(RecordId(1));
        assert_eq!(empty.full_address(), "");
    }

    #[test]
    fn blank_detection() {
        assert!(Record::empty(RecordId(9)).is_blank());
        assert!(!sample().is_blank());
    }

    #[test]
    fn record_id_display_and_index() {
        assert_eq!(RecordId(42).to_string(), "#42");
        assert_eq!(RecordId(42).index(), 42);
    }
}
