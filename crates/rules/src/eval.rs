//! Compiled (interpreted) rule programs.

use crate::ast::{CmpOp, Expr, Program, RecordRef};
use crate::builtins::{lookup, Builtin, Ctx};
use crate::semantic::check;
use crate::value::Value;
use crate::{CompileError, EquationalTheory};
use mp_record::{NicknameTable, Record};

/// A parsed, type-checked, executable rule program.
///
/// Calls are pre-resolved to builtin function pointers at compile time, so
/// evaluation is a direct tree walk with no name lookups. This is still the
/// "OPS5" path of the paper — flexible but slower than the hand-coded
/// native theory; the `rule_engine` bench quantifies the gap.
pub struct RuleProgram {
    program: Program,
    resolved: Vec<CompiledRule>,
    ctx: Ctx,
    name: String,
}

struct CompiledRule {
    name: String,
    cond: CExpr,
}

/// Expression with calls resolved to `&'static Builtin`.
pub(crate) enum CExpr {
    Or(Vec<CExpr>),
    And(Vec<CExpr>),
    Not(Box<CExpr>),
    Cmp(CmpOp, Box<CExpr>, Box<CExpr>),
    Call(&'static Builtin, Vec<CExpr>),
    FieldRef(RecordRef, mp_record::Field),
    Num(f64),
    Str(String),
    Bool(bool),
}

impl RuleProgram {
    /// Parses, type-checks, and resolves a rule program with the standard
    /// nickname table.
    pub fn compile(src: &str) -> Result<Self, CompileError> {
        Self::compile_with(src, NicknameTable::standard())
    }

    /// [`RuleProgram::compile`] with a custom nickname table.
    pub fn compile_with(src: &str, nicknames: NicknameTable) -> Result<Self, CompileError> {
        let program = crate::parser::parse(src)?;
        check(&program)?;
        let resolved = program
            .rules
            .iter()
            .map(|r| CompiledRule {
                name: r.name.clone(),
                cond: resolve(&r.condition),
            })
            .collect();
        Ok(RuleProgram {
            program,
            resolved,
            ctx: Ctx { nicknames },
            name: "rule-dsl".to_string(),
        })
    }

    /// The parsed AST (for tooling and tests).
    pub fn ast(&self) -> &Program {
        &self.program
    }

    /// The program's `purge { ... }` survivorship spec, if it declared one.
    pub fn purge_spec(&self) -> Option<&crate::ast::PurgeSpec> {
        self.program.purge.as_ref()
    }

    /// Number of rules.
    pub fn rule_count(&self) -> usize {
        self.resolved.len()
    }

    /// The evaluation context (nickname table) this program runs with.
    pub(crate) fn ctx(&self) -> &Ctx {
        &self.ctx
    }

    /// The name of the first rule that fires for this pair, if any —
    /// the "explain" entry point.
    pub fn matching_rule(&self, a: &Record, b: &Record) -> Option<&str> {
        self.resolved
            .iter()
            .find(|r| eval(&r.cond, a, b, &self.ctx).as_bool())
            .map(|r| r.name.as_str())
    }
}

impl EquationalTheory for RuleProgram {
    fn matches(&self, a: &Record, b: &Record) -> bool {
        self.resolved
            .iter()
            .any(|r| eval(&r.cond, a, b, &self.ctx).as_bool())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn matching_rule_id(&self, a: &Record, b: &Record) -> Option<usize> {
        self.resolved
            .iter()
            .position(|r| eval(&r.cond, a, b, &self.ctx).as_bool())
    }

    fn rule_names(&self) -> Vec<String> {
        self.resolved.iter().map(|r| r.name.clone()).collect()
    }
}

pub(crate) fn resolve(e: &Expr) -> CExpr {
    match e {
        Expr::Or(parts, _) => CExpr::Or(parts.iter().map(resolve).collect()),
        Expr::And(parts, _) => CExpr::And(parts.iter().map(resolve).collect()),
        Expr::Not(inner, _) => CExpr::Not(Box::new(resolve(inner))),
        Expr::Cmp(op, l, r, _) => CExpr::Cmp(*op, Box::new(resolve(l)), Box::new(resolve(r))),
        Expr::Call(name, args, _) => CExpr::Call(
            lookup(name).expect("checked by semantic pass"),
            args.iter().map(resolve).collect(),
        ),
        Expr::FieldRef(rec, field, _) => CExpr::FieldRef(*rec, *field),
        Expr::Num(n, _) => CExpr::Num(*n),
        Expr::Str(s, _) => CExpr::Str(s.clone()),
        Expr::Bool(b, _) => CExpr::Bool(*b),
    }
}

pub(crate) fn eval<'a>(e: &'a CExpr, r1: &'a Record, r2: &'a Record, ctx: &Ctx) -> Value<'a> {
    match e {
        CExpr::Bool(b) => Value::Bool(*b),
        CExpr::Num(n) => Value::Num(*n),
        CExpr::Str(s) => Value::str(s),
        CExpr::FieldRef(RecordRef::R1, f) => Value::str(r1.field(*f)),
        CExpr::FieldRef(RecordRef::R2, f) => Value::str(r2.field(*f)),
        CExpr::Not(inner) => Value::Bool(!eval(inner, r1, r2, ctx).as_bool()),
        CExpr::And(parts) => Value::Bool(parts.iter().all(|p| eval(p, r1, r2, ctx).as_bool())),
        CExpr::Or(parts) => Value::Bool(parts.iter().any(|p| eval(p, r1, r2, ctx).as_bool())),
        CExpr::Cmp(op, l, r) => {
            let lv = eval(l, r1, r2, ctx);
            let rv = eval(r, r1, r2, ctx);
            let res = match (op, &lv, &rv) {
                (CmpOp::Eq, _, _) => lv == rv,
                (CmpOp::Ne, _, _) => lv != rv,
                (CmpOp::Gt, Value::Num(a), Value::Num(b)) => a > b,
                (CmpOp::Ge, Value::Num(a), Value::Num(b)) => a >= b,
                (CmpOp::Lt, Value::Num(a), Value::Num(b)) => a < b,
                (CmpOp::Le, Value::Num(a), Value::Num(b)) => a <= b,
                _ => unreachable!("ordering on non-numbers rejected by type checker"),
            };
            Value::Bool(res)
        }
        CExpr::Call(builtin, args) => {
            let vals: Vec<Value<'a>> = args.iter().map(|a| eval(a, r1, r2, ctx)).collect();
            (builtin.eval)(&vals, ctx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_record::RecordId;

    fn rec(first: &str, last: &str, ssn: &str) -> Record {
        let mut r = Record::empty(RecordId(0));
        r.first_name = first.into();
        r.last_name = last.into();
        r.ssn = ssn.into();
        r
    }

    #[test]
    fn paper_example_rule_fires() {
        // The §2.3 example rule, in this DSL.
        let p = RuleProgram::compile(
            r#"
            rule paper_example {
                when r1.last_name == r2.last_name
                 and differ_slightly(r1.first_name, r2.first_name, 0.3)
                 and r1.street_number == r2.street_number
                 and r1.street_name == r2.street_name
                then match
            }
            "#,
        )
        .unwrap();
        let mut a = rec("MICHAEL", "SMITH", "1");
        a.street_number = "42".into();
        a.street_name = "MAIN STREET".into();
        let mut b = rec("MICHAEL", "SMITH", "2");
        b.street_number = "42".into();
        b.street_name = "MAIN STREET".into();
        b.first_name = "MICHAL".into(); // one deletion
        assert!(p.matches(&a, &b));
        assert_eq!(p.matching_rule(&a, &b), Some("paper_example"));
        b.last_name = "JONES".into();
        assert!(!p.matches(&a, &b));
        assert_eq!(p.matching_rule(&a, &b), None);
    }

    #[test]
    fn disjunction_of_rules_any_fires() {
        let p = RuleProgram::compile(
            r#"
            rule by_ssn { when r1.ssn == r2.ssn and not is_empty(r1.ssn) then match }
            rule by_name { when r1.last_name == r2.last_name and nickname_eq(r1.first_name, r2.first_name) then match }
            "#,
        )
        .unwrap();
        assert_eq!(p.rule_count(), 2);
        let a = rec("BOB", "JOHNSON", "111");
        let b = rec("ROBERT", "JOHNSON", "222");
        assert!(p.matches(&a, &b));
        assert_eq!(p.matching_rule(&a, &b), Some("by_name"));
        let c = rec("ALICE", "KLEIN", "111");
        let d = rec("ZOE", "MARSH", "111");
        assert_eq!(p.matching_rule(&c, &d), Some("by_ssn"));
    }

    #[test]
    fn literals_and_not() {
        let p = RuleProgram::compile(
            r#"rule r { when not is_empty(r1.city) and r1.city == "AUSTIN" then match }"#,
        )
        .unwrap();
        let mut a = rec("A", "B", "1");
        let b = a.clone();
        assert!(!p.matches(&a, &b));
        a.city = "AUSTIN".into();
        assert!(p.matches(&a, &b));
    }

    #[test]
    fn numeric_comparisons_all_operators() {
        let p = RuleProgram::compile(
            r#"
            rule r {
                when len(r1.last_name) >= 3
                 and len(r1.last_name) <= 10
                 and len(r1.first_name) > 0
                 and len(r2.first_name) < 100
                 and edit_distance(r1.ssn, r2.ssn) != 9
                 and len(r1.ssn) == len(r2.ssn)
                then match
            }
            "#,
        )
        .unwrap();
        let a = rec("JO", "ABCD", "123");
        let b = rec("JO", "ABCD", "124");
        assert!(p.matches(&a, &b));
    }

    #[test]
    fn compile_errors_propagate() {
        assert!(matches!(
            RuleProgram::compile("rule r { when @@ then match }"),
            Err(CompileError::Parse(_))
        ));
        assert!(matches!(
            RuleProgram::compile("rule r { when len(r1.city) then match }"),
            Err(CompileError::Type(_))
        ));
    }

    #[test]
    fn symmetric_rule_is_symmetric_in_practice() {
        let p = RuleProgram::compile(
            "rule r { when soundex_eq(r1.last_name, r2.last_name) then match }",
        )
        .unwrap();
        let a = rec("X", "SMITH", "1");
        let b = rec("Y", "SMYTH", "2");
        assert_eq!(p.matches(&a, &b), p.matches(&b, &a));
    }
}
