//! Property test of the §3.5 cost model: a sorted-neighborhood pass over N
//! records with window w performs exactly (w−1)(N − w/2) comparisons when
//! N ≥ w — the paper's "in the worst case ... wN comparisons" refined to
//! the exact triangular form Σ_{i=1}^{N−1} min(i, w−1).

use merge_purge::{KeySpec, SortedNeighborhood};
use mp_metrics::{Counter, MetricsRecorder};
use mp_record::{Record, RecordId};
use mp_rules::EquationalTheory;
use proptest::prelude::*;

/// A theory that never matches: comparison counts depend only on N and w.
struct NeverMatches;
impl EquationalTheory for NeverMatches {
    fn matches(&self, _: &Record, _: &Record) -> bool {
        false
    }
    fn name(&self) -> &str {
        "never"
    }
}

fn records(n: usize) -> Vec<Record> {
    (0..n)
        .map(|i| {
            let mut r = Record::empty(RecordId(i as u32));
            // Distinct keys so the sort is forced to do real work; the scan
            // cost is key-independent.
            r.last_name = format!("K{i:06}");
            r
        })
        .collect()
}

/// Σ_{i=1}^{N−1} min(i, w−1): the exact comparison count for any N and w.
fn triangular(n: u64, w: u64) -> u64 {
    (1..n).map(|i| i.min(w - 1)).sum()
}

proptest! {
    #[test]
    fn snm_comparisons_match_closed_form(
        n in 0usize..400,
        w in 2usize..=20,
    ) {
        let recs = records(n);
        let recorder = MetricsRecorder::new();
        let result = SortedNeighborhood::new(KeySpec::last_name_key(), w)
            .run_observed(&recs, &NeverMatches, &recorder);

        let measured = recorder.get(Counter::Comparisons);
        prop_assert_eq!(measured, result.stats.comparisons);
        prop_assert_eq!(measured, triangular(n as u64, w as u64));
        if n >= w {
            // §3.5: (w−1)(N − w/2). Doubled to stay in integers: the
            // closed form 2(w−1)N − (w−1)w is exact for N ≥ w.
            let (n, w) = (n as u64, w as u64);
            prop_assert_eq!(2 * measured, 2 * (w - 1) * n - (w - 1) * w);
        }
        prop_assert_eq!(recorder.get(Counter::Matches), 0);
        prop_assert_eq!(recorder.get(Counter::RecordsKeyed), n as u64);
    }
}
