//! Single-character typographical error model.
//!
//! §3.1: "When setting the parameters for the kind of typographical errors,
//! we used known frequencies from studies in spelling correction
//! algorithms [Kukich 92]." Kukich's survey reports four dominant error
//! classes — substitution, deletion, insertion, and adjacent transposition —
//! with most misspelled words containing exactly one error. Substituted and
//! inserted characters are biased toward QWERTY-adjacent keys, the dominant
//! mechanical cause.

use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;

/// The four Kukich error classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypoKind {
    /// One character replaced by another.
    Substitution,
    /// One character removed.
    Deletion,
    /// One character added.
    Insertion,
    /// Two adjacent characters swapped.
    Transposition,
}

/// Relative frequencies of the error classes. Damerau's classic analysis
/// (as summarized by Kukich) puts single-error misspellings at roughly
/// 19% insertion, 34% deletion, 27% substitution, 20% transposition for
/// typed text; we use those as defaults.
#[derive(Debug, Clone)]
pub struct TypoModel {
    weights: [f64; 4],
}

impl Default for TypoModel {
    fn default() -> Self {
        TypoModel {
            // [substitution, deletion, insertion, transposition]
            weights: [0.27, 0.34, 0.19, 0.20],
        }
    }
}

/// QWERTY neighbour table for biased substitutions/insertions.
const QWERTY_NEIGHBOURS: [(&str, char); 26] = [
    ("QWSZ", 'A'),
    ("VGHN", 'B'),
    ("XDFV", 'C'),
    ("SERFCX", 'D'),
    ("WSDR", 'E'),
    ("DRTGVC", 'F'),
    ("FTYHBV", 'G'),
    ("GYUJNB", 'H'),
    ("UJKO", 'I'),
    ("HUIKMN", 'J'),
    ("JIOLM", 'K'),
    ("KOP", 'L'),
    ("NJK", 'M'),
    ("BHJM", 'N'),
    ("IKLP", 'O'),
    ("OL", 'P'),
    ("WA", 'Q'),
    ("EDFT", 'R'),
    ("AWEDXZ", 'S'),
    ("RFGY", 'T'),
    ("YHJI", 'U'),
    ("CFGB", 'V'),
    ("QASE", 'W'),
    ("ZSDC", 'X'),
    ("TGHU", 'Y'),
    ("ASX", 'Z'),
];

fn neighbours_of(c: char) -> &'static str {
    let u = c.to_ascii_uppercase();
    QWERTY_NEIGHBOURS
        .iter()
        .find(|(_, k)| *k == u)
        .map_or("", |(n, _)| n)
}

impl TypoModel {
    /// A model with custom class weights
    /// `[substitution, deletion, insertion, transposition]`.
    ///
    /// # Panics
    ///
    /// Panics when all weights are zero or any is negative.
    pub fn with_weights(weights: [f64; 4]) -> Self {
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative"
        );
        assert!(
            weights.iter().sum::<f64>() > 0.0,
            "weights must not all be zero"
        );
        TypoModel { weights }
    }

    /// Draws an error class according to the model's weights.
    pub fn sample_kind<R: Rng>(&self, rng: &mut R) -> TypoKind {
        let dist = WeightedIndex::new(self.weights).expect("validated in constructor");
        match dist.sample(rng) {
            0 => TypoKind::Substitution,
            1 => TypoKind::Deletion,
            2 => TypoKind::Insertion,
            _ => TypoKind::Transposition,
        }
    }

    /// Applies one random typo to `s`, returning `true` when the string
    /// changed. Empty strings only accept insertions; single-character
    /// strings cannot be transposed (another class is retried).
    pub fn apply_one<R: Rng>(&self, s: &mut String, rng: &mut R) -> bool {
        let chars: Vec<char> = s.chars().collect();
        // Retry a few times in case the drawn class is inapplicable.
        for _ in 0..8 {
            let kind = self.sample_kind(rng);
            match kind {
                TypoKind::Substitution if !chars.is_empty() => {
                    let i = rng.gen_range(0..chars.len());
                    let new = random_replacement(chars[i], rng);
                    if new != chars[i] {
                        let mut out = chars.clone();
                        out[i] = new;
                        *s = out.into_iter().collect();
                        return true;
                    }
                }
                TypoKind::Deletion if !chars.is_empty() => {
                    let i = rng.gen_range(0..chars.len());
                    let mut out = chars.clone();
                    out.remove(i);
                    *s = out.into_iter().collect();
                    return true;
                }
                TypoKind::Insertion => {
                    let i = rng.gen_range(0..=chars.len());
                    // Inserted char: neighbour of an adjacent char when
                    // possible (fat finger), else random letter.
                    let basis = chars
                        .get(i.saturating_sub(1))
                        .or_else(|| chars.get(i))
                        .copied();
                    let c = match basis {
                        Some(b) => random_insertion(b, rng),
                        None => random_letter(rng),
                    };
                    let mut out = chars.clone();
                    out.insert(i, c);
                    *s = out.into_iter().collect();
                    return true;
                }
                TypoKind::Transposition if chars.len() >= 2 => {
                    let i = rng.gen_range(0..chars.len() - 1);
                    if chars[i] != chars[i + 1] {
                        let mut out = chars.clone();
                        out.swap(i, i + 1);
                        *s = out.into_iter().collect();
                        return true;
                    }
                }
                _ => {}
            }
        }
        false
    }

    /// Applies a geometric number of typos with mean `expected` (at least
    /// one when `expected > 0` and the field is corruptible). Returns the
    /// number of typos applied.
    pub fn apply_noise<R: Rng>(&self, s: &mut String, expected: f64, rng: &mut R) -> usize {
        if expected <= 0.0 {
            return 0;
        }
        let mut applied = 0;
        // First error always attempted; each further error with probability
        // p chosen so the mean count is `expected` (geometric on 1..).
        let p_more = 1.0 - 1.0 / expected.max(1.0);
        loop {
            if !self.apply_one(s, rng) {
                break;
            }
            applied += 1;
            if !rng.gen_bool(p_more) {
                break;
            }
        }
        applied
    }
}

fn random_letter<R: Rng>(rng: &mut R) -> char {
    (b'A' + rng.gen_range(0..26)) as char
}

/// Replacement biased 70/30 toward QWERTY neighbours of the original.
fn random_replacement<R: Rng>(original: char, rng: &mut R) -> char {
    let n = neighbours_of(original);
    if !n.is_empty() && rng.gen_bool(0.7) {
        let bytes = n.as_bytes();
        bytes[rng.gen_range(0..bytes.len())] as char
    } else if original.is_ascii_digit() {
        (b'0' + rng.gen_range(0..10)) as char
    } else {
        random_letter(rng)
    }
}

/// Inserted character biased toward neighbours of the adjacent key.
fn random_insertion<R: Rng>(adjacent: char, rng: &mut R) -> char {
    if adjacent.is_ascii_digit() {
        return (b'0' + rng.gen_range(0..10)) as char;
    }
    random_replacement(adjacent, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn apply_one_changes_string() {
        let mut r = rng();
        let model = TypoModel::default();
        for _ in 0..200 {
            let mut s = String::from("HERNANDEZ");
            assert!(model.apply_one(&mut s, &mut r));
            assert_ne!(s, "HERNANDEZ");
        }
    }

    #[test]
    fn empty_string_only_insertions() {
        let mut r = rng();
        let model = TypoModel::default();
        for _ in 0..50 {
            let mut s = String::new();
            if model.apply_one(&mut s, &mut r) {
                assert_eq!(s.chars().count(), 1);
            }
        }
    }

    #[test]
    fn single_typo_stays_within_damerau_distance_one() {
        use std::collections::HashSet;
        let mut r = rng();
        let model = TypoModel::default();
        let original = "EXAMPLE";
        let mut lens = HashSet::new();
        for _ in 0..200 {
            let mut s = String::from(original);
            model.apply_one(&mut s, &mut r);
            lens.insert(s.len());
            // one typo => length differs by at most one
            assert!((s.len() as i64 - original.len() as i64).abs() <= 1);
        }
        // All three length outcomes (del/ins/same) should appear.
        assert_eq!(lens.len(), 3);
    }

    #[test]
    fn class_frequencies_roughly_match_weights() {
        let mut r = rng();
        let model = TypoModel::default();
        let mut counts = [0usize; 4];
        for _ in 0..20_000 {
            match model.sample_kind(&mut r) {
                TypoKind::Substitution => counts[0] += 1,
                TypoKind::Deletion => counts[1] += 1,
                TypoKind::Insertion => counts[2] += 1,
                TypoKind::Transposition => counts[3] += 1,
            }
        }
        let expected = [0.27, 0.34, 0.19, 0.20];
        for (c, e) in counts.iter().zip(expected) {
            let freq = *c as f64 / 20_000.0;
            assert!((freq - e).abs() < 0.02, "freq {freq} vs expected {e}");
        }
    }

    #[test]
    fn noise_mean_tracks_expected() {
        let mut r = rng();
        let model = TypoModel::default();
        let mut total = 0usize;
        let runs = 2_000;
        for _ in 0..runs {
            let mut s = String::from("REPRESENTATIVE");
            total += model.apply_noise(&mut s, 2.0, &mut r);
        }
        let mean = total as f64 / runs as f64;
        assert!((mean - 2.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn zero_expected_noise_is_noop() {
        let mut r = rng();
        let model = TypoModel::default();
        let mut s = String::from("UNCHANGED");
        assert_eq!(model.apply_noise(&mut s, 0.0, &mut r), 0);
        assert_eq!(s, "UNCHANGED");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        TypoModel::with_weights([-1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn all_zero_weights_panic() {
        TypoModel::with_weights([0.0; 4]);
    }
}
