//! Hand-coded native implementation of the employee theory.
//!
//! The paper recoded its OPS5 rules "directly in C to obtain speed-up over
//! the OPS5 implementation" (§2.3, footnote 2). This module is that step:
//! the same 26 rules as [`crate::employee::EMPLOYEE_RULES_SRC`], written as
//! straight-line Rust with cheap equality tests first and expensive distance
//! functions last. A test in this module asserts pair-for-pair agreement
//! with the interpreted DSL program on generated noisy data, so the two can
//! never drift apart silently.

use crate::builtins::shared::{digits_transposed, initials_match, nysiis_eq};
use crate::EquationalTheory;
use mp_record::{NicknameTable, Record};
use mp_strsim::{keyboard_distance, soundex_eq, trigram_similarity, ScratchBuffers};
use std::cell::RefCell;

thread_local! {
    /// Per-thread distance-kernel scratch. [`EquationalTheory::matches`]
    /// takes `&self`, so the buffers cannot live in the theory; a
    /// thread-local gives every worker of the parallel engine (one OS
    /// thread per pass) its own buffers with no locking and no per-call
    /// allocation.
    static SCRATCH: RefCell<ScratchBuffers> = RefCell::new(ScratchBuffers::new());
}

/// The natively compiled employee theory.
///
/// ```
/// use mp_rules::{EquationalTheory, NativeEmployeeTheory};
/// use mp_record::{Record, RecordId};
/// let theory = NativeEmployeeTheory::new();
/// let mut a = Record::empty(RecordId(0));
/// a.ssn = "123456789".into();
/// a.last_name = "SMITH".into();
/// let mut b = a.clone();
/// b.last_name = "SMYTH".into();
/// assert!(theory.matches(&a, &b)); // exact_ssn_close_last
/// ```
#[derive(Debug, Default)]
pub struct NativeEmployeeTheory {
    nicknames: NicknameTable,
}

impl NativeEmployeeTheory {
    /// Theory with the standard nickname table.
    pub fn new() -> Self {
        NativeEmployeeTheory {
            nicknames: NicknameTable::standard(),
        }
    }

    /// Theory with a custom nickname table (must mirror the table compiled
    /// into the DSL program for the two to agree).
    pub fn with_nicknames(nicknames: NicknameTable) -> Self {
        NativeEmployeeTheory { nicknames }
    }
}

/// `edit_sim(a, b) >= threshold` exactly as the DSL computes it.
#[inline]
fn edit_sim_ge(s: &mut ScratchBuffers, a: &str, b: &str, threshold: f64) -> bool {
    s.normalized_levenshtein(a, b) >= threshold
}

#[inline]
fn eq_nonempty(a: &str, b: &str) -> bool {
    !a.is_empty() && a == b
}

/// The 26 rule names, in evaluation order — identical names and order to
/// the DSL program in [`crate::employee::EMPLOYEE_RULES_SRC`] (a test
/// enforces this), so rule indices mean the same thing for both theories.
pub const RULE_NAMES: [&str; 26] = [
    "exact_ssn_close_last",
    "exact_ssn_close_first",
    "exact_ssn_same_zip",
    "ssn_transposed_close_names",
    "ssn_one_digit_off_same_address",
    "same_last_close_first_same_address",
    "close_last_same_first_same_address",
    "close_names_same_address_and_zip",
    "nickname_same_last_same_zip",
    "nickname_same_last_same_address",
    "initials_same_last_same_address",
    "soundex_last_same_first_same_address",
    "nysiis_last_initials_same_zip_street",
    "soundex_both_names_same_city_street",
    "keyboard_last_same_first_same_city",
    "jaro_names_same_address",
    "trigram_street_same_names",
    "moved_same_name_similar_ssn",
    "moved_same_full_name_with_middle",
    "city_typo_same_rest",
    "zip_error_same_rest",
    "same_full_name_same_city",
    "empty_first_same_ssn_last",
    "empty_street_same_ssn_city",
    "apartment_anchor_close_names",
    "swapped_first_and_middle",
];

impl EquationalTheory for NativeEmployeeTheory {
    fn matches(&self, r1: &Record, r2: &Record) -> bool {
        SCRATCH.with(|s| {
            self.matching_rule_with(r1, r2, &mut s.borrow_mut())
                .is_some()
        })
    }

    fn name(&self) -> &str {
        "native-employee"
    }

    fn matching_rule_id(&self, r1: &Record, r2: &Record) -> Option<usize> {
        SCRATCH.with(|s| self.matching_rule_with(r1, r2, &mut s.borrow_mut()))
    }

    fn rule_names(&self) -> Vec<String> {
        RULE_NAMES.iter().map(|s| s.to_string()).collect()
    }
}

impl NativeEmployeeTheory {
    #[allow(clippy::too_many_lines)] // one block per rule, mirroring the DSL
    fn matching_rule_with(
        &self,
        r1: &Record,
        r2: &Record,
        s: &mut ScratchBuffers,
    ) -> Option<usize> {
        // Precompute the cheap equalities most rules consult.
        let same_ssn = eq_nonempty(&r1.ssn, &r2.ssn);
        let same_last = eq_nonempty(&r1.last_name, &r2.last_name);
        let same_first = r1.first_name == r2.first_name;
        let same_street_no = r1.street_number == r2.street_number;
        let same_zip = eq_nonempty(&r1.zip, &r2.zip);

        // -- Group A: SSN-anchored ------------------------------------------
        // exact_ssn_close_last
        if same_ssn && s.differ_slightly(&r1.last_name, &r2.last_name, 0.4) {
            return Some(0);
        }
        // exact_ssn_close_first
        if same_ssn && s.differ_slightly(&r1.first_name, &r2.first_name, 0.4) {
            return Some(1);
        }
        // exact_ssn_same_zip
        if same_ssn && same_zip {
            return Some(2);
        }
        // ssn_transposed_close_names
        if digits_transposed(&r1.ssn, &r2.ssn)
            && s.differ_slightly(&r1.last_name, &r2.last_name, 0.3)
            && (s.differ_slightly(&r1.first_name, &r2.first_name, 0.3)
                || initials_match(&r1.first_name, &r2.first_name)
                || self.nicknames.equivalent(&r1.first_name, &r2.first_name))
        {
            return Some(3);
        }
        // ssn_one_digit_off_same_address
        if same_street_no
            && !r1.street_number.is_empty()
            && s.levenshtein(&r1.ssn, &r2.ssn) <= 1
            && edit_sim_ge(s, &r1.street_name, &r2.street_name, 0.8)
        {
            return Some(4);
        }

        // -- Group B: name + address ----------------------------------------
        // same_last_close_first_same_address (the paper's worked example)
        if same_last
            && same_street_no
            && s.differ_slightly(&r1.first_name, &r2.first_name, 0.3)
            && edit_sim_ge(s, &r1.street_name, &r2.street_name, 0.8)
        {
            return Some(5);
        }
        // close_last_same_first_same_address
        if same_first
            && !r1.first_name.is_empty()
            && same_street_no
            && s.differ_slightly(&r1.last_name, &r2.last_name, 0.25)
            && edit_sim_ge(s, &r1.street_name, &r2.street_name, 0.8)
        {
            return Some(6);
        }
        // close_names_same_address_and_zip
        if !r1.last_name.is_empty()
            && !r1.zip.is_empty()
            && same_street_no
            && r1.zip == r2.zip
            && s.differ_slightly(&r1.last_name, &r2.last_name, 0.25)
            && s.differ_slightly(&r1.first_name, &r2.first_name, 0.25)
            && edit_sim_ge(s, &r1.street_name, &r2.street_name, 0.7)
        {
            return Some(7);
        }
        // nickname_same_last_same_zip
        if same_last && same_zip && self.nicknames.equivalent(&r1.first_name, &r2.first_name) {
            return Some(8);
        }
        // nickname_same_last_same_address
        if same_last
            && same_street_no
            && self.nicknames.equivalent(&r1.first_name, &r2.first_name)
            && edit_sim_ge(s, &r1.street_name, &r2.street_name, 0.8)
        {
            return Some(9);
        }
        // initials_same_last_same_address
        if same_last
            && same_street_no
            && initials_match(&r1.first_name, &r2.first_name)
            && edit_sim_ge(s, &r1.street_name, &r2.street_name, 0.85)
        {
            return Some(10);
        }

        // -- Group C: phonetic ----------------------------------------------
        // soundex_last_same_first_same_address
        if same_first
            && !r1.first_name.is_empty()
            && same_street_no
            && soundex_eq(&r1.last_name, &r2.last_name)
            && edit_sim_ge(s, &r1.street_name, &r2.street_name, 0.8)
        {
            return Some(11);
        }
        // nysiis_last_initials_same_zip_street
        if same_zip
            && same_street_no
            && initials_match(&r1.first_name, &r2.first_name)
            && nysiis_eq(&r1.last_name, &r2.last_name)
        {
            return Some(12);
        }
        // soundex_both_names_same_city_street
        if eq_nonempty(&r1.city, &r2.city)
            && same_street_no
            && soundex_eq(&r1.last_name, &r2.last_name)
            && soundex_eq(&r1.first_name, &r2.first_name)
            && edit_sim_ge(s, &r1.street_name, &r2.street_name, 0.75)
        {
            return Some(13);
        }

        // -- Group D: typewriter / jaro / q-gram -----------------------------
        // keyboard_last_same_first_same_city
        if same_first
            && !r1.first_name.is_empty()
            && r1.city == r2.city
            && same_street_no
            && keyboard_distance(&r1.last_name, &r2.last_name) <= 1.0
        {
            return Some(14);
        }
        // jaro_names_same_address
        if same_street_no
            && !r1.street_number.is_empty()
            && s.jaro_winkler(&r1.last_name, &r2.last_name) >= 0.92
            && s.jaro_winkler(&r1.first_name, &r2.first_name) >= 0.9
            && edit_sim_ge(s, &r1.street_name, &r2.street_name, 0.7)
        {
            return Some(15);
        }
        // trigram_street_same_names
        if same_last
            && same_street_no
            && (same_first || initials_match(&r1.first_name, &r2.first_name))
            && trigram_similarity(&r1.street_name, &r2.street_name) >= 0.75
        {
            return Some(16);
        }

        // -- Group E: moved person -------------------------------------------
        // moved_same_name_similar_ssn
        if same_last
            && same_first
            && !r1.first_name.is_empty()
            && s.levenshtein(&r1.ssn, &r2.ssn) <= 2
        {
            return Some(17);
        }
        // moved_same_full_name_with_middle
        if same_last
            && same_first
            && !r1.first_name.is_empty()
            && eq_nonempty(&r1.middle_initial, &r2.middle_initial)
            && s.levenshtein(&r1.ssn, &r2.ssn) <= 3
        {
            return Some(18);
        }

        // -- Group F: city / zip / state errors --------------------------------
        // city_typo_same_rest
        if same_last
            && same_first
            && same_street_no
            && edit_sim_ge(s, &r1.street_name, &r2.street_name, 0.8)
            && s.differ_slightly(&r1.city, &r2.city, 0.35)
        {
            return Some(19);
        }
        // zip_error_same_rest
        if same_last
            && same_first
            && same_street_no
            && s.levenshtein(&r1.zip, &r2.zip) <= 2
            && edit_sim_ge(s, &r1.street_name, &r2.street_name, 0.8)
        {
            return Some(20);
        }
        // same_full_name_same_city (the loosest rule; FP source, see DSL)
        if same_last
            && same_first
            && !r1.first_name.is_empty()
            && (r1.middle_initial == r2.middle_initial
                || r1.middle_initial.is_empty()
                || r2.middle_initial.is_empty())
            && eq_nonempty(&r1.city, &r2.city)
        {
            return Some(21);
        }

        // -- Group G: missing fields / swapped names ---------------------------
        // empty_first_same_ssn_last
        if (r1.first_name.is_empty() || r2.first_name.is_empty()) && same_last && same_ssn {
            return Some(22);
        }
        // empty_street_same_ssn_city
        if (r1.street_name.is_empty() || r2.street_name.is_empty())
            && same_ssn
            && eq_nonempty(&r1.city, &r2.city)
        {
            return Some(23);
        }
        // apartment_anchor_close_names
        if eq_nonempty(&r1.apartment, &r2.apartment)
            && same_street_no
            && s.differ_slightly(&r1.last_name, &r2.last_name, 0.3)
            && (initials_match(&r1.first_name, &r2.first_name)
                || s.differ_slightly(&r1.first_name, &r2.first_name, 0.3))
        {
            return Some(24);
        }
        // swapped_first_and_middle
        if r1.first_name == r2.middle_initial
            && r1.middle_initial == r2.first_name
            && !r1.first_name.is_empty()
            && !r1.middle_initial.is_empty()
            && r1.last_name == r2.last_name
            && (r1.ssn == r2.ssn || r1.zip == r2.zip)
        {
            return Some(25);
        }

        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::employee::employee_program;
    use mp_datagen::{DatabaseGenerator, ErrorProfile, GeneratorConfig};
    use mp_record::RecordId;

    /// The load-bearing test: interpreted DSL and native Rust must agree on
    /// every pair of a noisy generated database.
    #[test]
    fn native_agrees_with_dsl_on_generated_pairs() {
        let dsl = employee_program();
        let native = NativeEmployeeTheory::new();
        for (seed, profile) in [
            (101, ErrorProfile::light()),
            (102, ErrorProfile::default()),
            (103, ErrorProfile::heavy()),
        ] {
            let db = DatabaseGenerator::new(
                GeneratorConfig::new(60)
                    .duplicate_fraction(0.6)
                    .max_duplicates_per_record(3)
                    .errors(profile)
                    .seed(seed),
            )
            .generate();
            let records = &db.records;
            for i in 0..records.len() {
                // Dense window: all pairs within distance 8, plus same-entity
                // pairs anywhere.
                for j in i + 1..records.len().min(i + 9) {
                    let (a, b) = (&records[i], &records[j]);
                    assert_eq!(
                        dsl.matches(a, b),
                        native.matches(a, b),
                        "disagreement (seed {seed}) on {:?} vs {:?}",
                        a,
                        b
                    );
                }
            }
        }
    }

    /// Rule indices must mean the same thing for the native and DSL
    /// theories, so attribution reports are comparable across engines.
    #[test]
    fn rule_names_match_dsl_program_in_order() {
        let dsl = employee_program();
        let native = NativeEmployeeTheory::new();
        assert_eq!(native.rule_names(), dsl.rule_names());
        assert_eq!(native.rule_names().len(), RULE_NAMES.len());
    }

    /// First-match-wins rule attribution must agree pair-for-pair with the
    /// DSL's `matching_rule`, not just the boolean verdict.
    #[test]
    fn native_rule_ids_agree_with_dsl_on_generated_pairs() {
        let dsl = employee_program();
        let native = NativeEmployeeTheory::new();
        let db = DatabaseGenerator::new(
            GeneratorConfig::new(60)
                .duplicate_fraction(0.6)
                .max_duplicates_per_record(3)
                .errors(ErrorProfile::heavy())
                .seed(105),
        )
        .generate();
        let records = &db.records;
        let mut fired = 0u32;
        for i in 0..records.len() {
            for j in i + 1..records.len().min(i + 9) {
                let (a, b) = (&records[i], &records[j]);
                assert_eq!(
                    dsl.matching_rule_id(a, b),
                    native.matching_rule_id(a, b),
                    "rule-id disagreement on {a:?} vs {b:?}"
                );
                if native.matching_rule_id(a, b).is_some() {
                    fired += 1;
                }
            }
        }
        assert!(fired > 0, "test data produced no matches at all");
    }

    #[test]
    fn native_is_symmetric_on_generated_pairs() {
        let native = NativeEmployeeTheory::new();
        let db = DatabaseGenerator::new(
            GeneratorConfig::new(80)
                .duplicate_fraction(0.8)
                .errors(ErrorProfile::heavy())
                .seed(104),
        )
        .generate();
        for w in db.records.windows(2) {
            assert_eq!(native.matches(&w[0], &w[1]), native.matches(&w[1], &w[0]));
        }
    }

    #[test]
    fn spot_checks() {
        let t = NativeEmployeeTheory::new();
        let mut a = Record::empty(RecordId(0));
        a.ssn = "123456789".into();
        a.first_name = "WILLIAM".into();
        a.last_name = "TURNER".into();
        a.street_number = "9".into();
        a.street_name = "ELM STREET".into();
        a.zip = "10001".into();

        // nickname + same last + same zip
        let mut b = a.clone();
        b.ssn = "000000000".into();
        b.first_name = "BILL".into();
        assert!(t.matches(&a, &b));

        // swapped first/middle with same ssn
        let mut c = a.clone();
        c.middle_initial = "WILLIAM".into();
        c.first_name = "Q".into();
        let mut a2 = a.clone();
        a2.middle_initial = "Q".into();
        assert!(t.matches(&a2, &c));

        // unrelated
        let mut z = Record::empty(RecordId(1));
        z.ssn = "555555555".into();
        z.first_name = "AGATHA".into();
        z.last_name = "VILLANUEVA".into();
        z.street_number = "777".into();
        z.street_name = "OCEAN PARKWAY".into();
        z.zip = "90210".into();
        assert!(!t.matches(&a, &z));
        assert_eq!(t.name(), "native-employee");
    }
}
