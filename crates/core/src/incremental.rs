//! Incremental merge/purge for the paper's monthly business cycle.
//!
//! §1 motivates merge/purge with a recurring workload: "It is not uncommon
//! for large businesses to acquire scores of databases each month ... that
//! need to be analyzed within a few days." Rerunning the full multi-pass
//! process over the ever-growing base each month wastes almost all of its
//! comparisons on old-vs-old pairs that previous cycles already decided.
//!
//! [`IncrementalMergePurge`] keeps, per pass, the sorted key order of the
//! records seen so far. A new batch is key-extracted, sorted, and *merged*
//! into each pass's order (O(N + B log B) instead of a full resort), and
//! the window scan evaluates only pairs with at least one new member.
//!
//! **Soundness relative to from-scratch runs**: inserting records can only
//! *increase* the distance between two old records in a pass's sorted
//! order, so any old-old pair within the window of a from-scratch run over
//! the concatenation was within the window of some earlier cycle and has
//! already been found. The accumulated incremental pair set is therefore a
//! superset of the from-scratch pair set for the same keys and window — it
//! never misses anything a full rerun would find (a test enforces this).

use crate::key::KeySpec;
use mp_closure::{PairSet, UnionFind};
use mp_record::{Record, RecordId};
use mp_rules::EquationalTheory;

/// State of one pass: the key list and the sorted order over all records
/// seen so far.
struct PassState {
    key: KeySpec,
    window: usize,
    keys: Vec<String>,
    order: Vec<u32>,
}

/// Accumulating multi-pass merge/purge over arriving batches.
///
/// ```
/// use merge_purge::{incremental::IncrementalMergePurge, KeySpec};
/// use mp_datagen::{DatabaseGenerator, GeneratorConfig};
/// use mp_rules::NativeEmployeeTheory;
///
/// let theory = NativeEmployeeTheory::new();
/// let mut inc = IncrementalMergePurge::new()
///     .pass(KeySpec::last_name_key(), 10)
///     .pass(KeySpec::first_name_key(), 10);
///
/// let month1 = DatabaseGenerator::new(GeneratorConfig::new(500).seed(1)).generate();
/// let month2 = DatabaseGenerator::new(GeneratorConfig::new(500).seed(2)).generate();
/// inc.add_batch(month1.records, &theory);
/// inc.add_batch(month2.records, &theory);
/// let classes = inc.classes();
/// assert!(!classes.is_empty());
/// ```
pub struct IncrementalMergePurge {
    passes: Vec<PassState>,
    records: Vec<Record>,
    pairs: PairSet,
    /// Comparisons performed across all batches (for cost accounting).
    comparisons: u64,
}

impl Default for IncrementalMergePurge {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalMergePurge {
    /// An empty incremental pipeline; add passes before the first batch.
    pub fn new() -> Self {
        IncrementalMergePurge {
            passes: Vec::new(),
            records: Vec::new(),
            pairs: PairSet::new(),
            comparisons: 0,
        }
    }

    /// Adds a sorted-neighborhood pass.
    ///
    /// # Panics
    ///
    /// Panics when `window < 2` or when records have already been added
    /// (pass configuration is fixed at first use).
    #[must_use]
    pub fn pass(mut self, key: KeySpec, window: usize) -> Self {
        assert!(window >= 2, "window must hold at least two records");
        assert!(
            self.records.is_empty(),
            "passes must be configured before the first batch"
        );
        self.passes.push(PassState {
            key,
            window,
            keys: Vec::new(),
            order: Vec::new(),
        });
        self
    }

    /// Records accumulated so far.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Match pairs accumulated so far (before closure).
    pub fn pairs(&self) -> &PairSet {
        &self.pairs
    }

    /// Total pair comparisons across all batches.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Ingests a batch: renumbers its records to follow the base, merges
    /// it into every pass's order, and scans only new-involving pairs.
    ///
    /// # Panics
    ///
    /// Panics when no passes are configured.
    pub fn add_batch(&mut self, mut batch: Vec<Record>, theory: &dyn EquationalTheory) {
        assert!(
            !self.passes.is_empty(),
            "configure passes before adding batches"
        );
        let old_len = self.records.len() as u32;
        for (i, r) in batch.iter_mut().enumerate() {
            r.id = RecordId(old_len + i as u32);
        }
        self.records.append(&mut batch);

        for p in 0..self.passes.len() {
            self.scan_pass(p, old_len, theory);
        }
    }

    fn scan_pass(&mut self, p: usize, old_len: u32, theory: &dyn EquationalTheory) {
        let pass = &mut self.passes[p];
        let records = &self.records;

        // Extract keys for the new records and sort the batch.
        let mut buf = String::new();
        for r in &records[old_len as usize..] {
            pass.key.extract_into(r, &mut buf);
            pass.keys.push(buf.clone());
        }
        let mut batch_order: Vec<u32> = (old_len..records.len() as u32).collect();
        batch_order.sort_by(|&a, &b| pass.keys[a as usize].cmp(&pass.keys[b as usize]));

        // Merge old order and batch order (both sorted; stable by id when
        // keys tie, matching a from-scratch stable sort).
        let keys = &pass.keys;
        let mut merged: Vec<u32> = Vec::with_capacity(pass.order.len() + batch_order.len());
        {
            let (mut i, mut j) = (0usize, 0usize);
            while i < pass.order.len() && j < batch_order.len() {
                let a = pass.order[i];
                let b = batch_order[j];
                // Old record ids are always smaller, so ties keep old first.
                if keys[a as usize] <= keys[b as usize] {
                    merged.push(a);
                    i += 1;
                } else {
                    merged.push(b);
                    j += 1;
                }
            }
            merged.extend_from_slice(&pass.order[i..]);
            merged.extend_from_slice(&batch_order[j..]);
        }

        // Window scan, skipping old-old pairs (decided in earlier cycles).
        let w = pass.window;
        for i in 1..merged.len() {
            let lo = i.saturating_sub(w - 1);
            let new_id = merged[i];
            for &prev in &merged[lo..i] {
                if new_id < old_len && prev < old_len {
                    continue; // both old: already compared when closer
                }
                self.comparisons += 1;
                let (a, b) = (&records[prev as usize], &records[new_id as usize]);
                if theory.matches(a, b) {
                    self.pairs.insert(prev, new_id);
                }
            }
        }
        pass.order = merged;
    }

    /// Transitive closure over everything found so far.
    pub fn classes(&self) -> Vec<Vec<u32>> {
        let mut uf = UnionFind::new(self.records.len());
        for (a, b) in self.pairs.iter() {
            uf.union(a, b);
        }
        uf.classes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multipass::MultiPass;
    use mp_datagen::{DatabaseGenerator, GeneratorConfig};
    use mp_rules::NativeEmployeeTheory;

    fn batches(seed: u64, n: usize, parts: usize) -> Vec<Vec<Record>> {
        let db = DatabaseGenerator::new(GeneratorConfig::new(n).duplicate_fraction(0.5).seed(seed))
            .generate();
        let chunk = db.records.len().div_ceil(parts);
        db.records.chunks(chunk).map(<[Record]>::to_vec).collect()
    }

    fn scratch_pairs(records: &[Record], w: usize) -> Vec<(u32, u32)> {
        let theory = NativeEmployeeTheory::new();
        let result = MultiPass::new()
            .sorted(KeySpec::last_name_key(), w)
            .sorted(KeySpec::first_name_key(), w)
            .run(records, &theory);
        let mut union = PairSet::new();
        for p in &result.passes {
            union.merge(&p.pairs);
        }
        union.sorted()
    }

    #[test]
    fn incremental_is_superset_of_from_scratch() {
        let theory = NativeEmployeeTheory::new();
        let w = 8;
        let mut inc = IncrementalMergePurge::new()
            .pass(KeySpec::last_name_key(), w)
            .pass(KeySpec::first_name_key(), w);
        for batch in batches(9001, 600, 4) {
            inc.add_batch(batch, &theory);
        }
        let scratch = scratch_pairs(inc.records(), w);
        for (a, b) in &scratch {
            assert!(
                inc.pairs().contains(*a, *b),
                "from-scratch pair ({a},{b}) missed by incremental"
            );
        }
        // And the extras are few (pairs that drifted apart as data grew).
        let extra = inc.pairs().len() - scratch.len();
        assert!(
            extra <= scratch.len() / 2,
            "too many extras: {extra} over {}",
            scratch.len()
        );
    }

    #[test]
    fn single_batch_equals_from_scratch_exactly() {
        let theory = NativeEmployeeTheory::new();
        let w = 10;
        let db =
            DatabaseGenerator::new(GeneratorConfig::new(400).duplicate_fraction(0.5).seed(9002))
                .generate();
        let mut inc = IncrementalMergePurge::new()
            .pass(KeySpec::last_name_key(), w)
            .pass(KeySpec::first_name_key(), w);
        inc.add_batch(db.records.clone(), &theory);
        assert_eq!(inc.pairs().sorted(), scratch_pairs(&db.records, w));
    }

    #[test]
    fn incremental_does_far_fewer_comparisons_than_reruns() {
        let theory = NativeEmployeeTheory::new();
        let w = 10;
        // Eight monthly cycles: the rerun cost grows quadratically with the
        // number of cycles while incremental stays linear.
        let parts = batches(9003, 800, 8);
        let mut inc = IncrementalMergePurge::new().pass(KeySpec::last_name_key(), w);
        let mut rerun_comparisons = 0u64;
        let mut all: Vec<Record> = Vec::new();
        for batch in parts {
            inc.add_batch(batch.clone(), &theory);
            // The naive alternative: full rerun over the concatenation.
            all.extend(batch);
            for (i, r) in all.iter_mut().enumerate() {
                r.id = RecordId(i as u32);
            }
            let full =
                crate::snm::SortedNeighborhood::new(KeySpec::last_name_key(), w).run(&all, &theory);
            rerun_comparisons += full.stats.comparisons;
        }
        assert!(
            inc.comparisons() < rerun_comparisons / 2,
            "incremental {} vs rerun {}",
            inc.comparisons(),
            rerun_comparisons
        );
    }

    #[test]
    fn classes_accumulate_across_batches() {
        let theory = NativeEmployeeTheory::new();
        let mut inc = IncrementalMergePurge::new().pass(KeySpec::last_name_key(), 6);
        let parts = batches(9004, 300, 3);
        let mut last = 0usize;
        for batch in parts {
            inc.add_batch(batch, &theory);
            let classes = inc.classes();
            assert!(classes.len() >= last || !classes.is_empty());
            last = classes.len();
        }
        assert!(last > 0);
    }

    #[test]
    #[should_panic(expected = "before the first batch")]
    fn pass_after_batch_rejected() {
        let theory = NativeEmployeeTheory::new();
        let mut inc = IncrementalMergePurge::new().pass(KeySpec::last_name_key(), 4);
        inc.add_batch(vec![Record::empty(RecordId(0))], &theory);
        let _ = inc.pass(KeySpec::first_name_key(), 4);
    }

    #[test]
    #[should_panic(expected = "configure passes")]
    fn batch_without_passes_rejected() {
        let theory = NativeEmployeeTheory::new();
        IncrementalMergePurge::new().add_batch(vec![], &theory);
    }
}
