//! Reusable scratch space making every distance kernel allocation-free.

use crate::damerau::damerau_impl;
use crate::jaro::jaro_impl;
use crate::lcs::lcs_impl;
use crate::levenshtein::{bounded_impl, distance_impl, normalize};
use crate::timing::{Kernel, KernelTimer};

/// Strips the common prefix and suffix of two slices. Edit distance is
/// invariant under this (those positions never contribute an edit), and the
/// conditioned records the hot loop compares are near-duplicates, so the
/// surviving DP problem is usually tiny.
fn trim_common<'s>(mut a: &'s [u8], mut b: &'s [u8]) -> (&'s [u8], &'s [u8]) {
    let prefix = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
    a = &a[prefix..];
    b = &b[prefix..];
    let suffix = a
        .iter()
        .rev()
        .zip(b.iter().rev())
        .take_while(|(x, y)| x == y)
        .count();
    (&a[..a.len() - suffix], &b[..b.len() - suffix])
}

/// Reusable work buffers for the whole distance-kernel family.
///
/// Every free function in this crate decodes its arguments into fresh
/// `Vec<char>`s and allocates DP rows per call. Inside a window scan that
/// evaluates the equational theory millions of times, those allocations
/// dominate the constant factor the paper calls `c_wscan`. A
/// `ScratchBuffers` owns one copy of every buffer the kernels need; each
/// method clears and reuses them, so after warm-up no call allocates.
///
/// Keep one instance per worker thread (the rule engine keeps one per OS
/// thread in a thread-local) — the buffers are cheap to create but are only
/// profitable when reused.
///
/// Results are bit-identical to the free functions:
///
/// ```
/// use mp_strsim::{jaro_winkler, levenshtein, ScratchBuffers};
///
/// let mut scratch = ScratchBuffers::new();
/// assert_eq!(scratch.levenshtein("KITTEN", "SITTING"), 3);
/// assert_eq!(scratch.levenshtein("KITTEN", "SITTING"), levenshtein("KITTEN", "SITTING"));
/// assert_eq!(scratch.jaro_winkler("MARTHA", "MARHTA"), jaro_winkler("MARTHA", "MARHTA"));
/// ```
#[derive(Debug, Default)]
pub struct ScratchBuffers {
    a_chars: Vec<char>,
    b_chars: Vec<char>,
    row_a: Vec<usize>,
    row_b: Vec<usize>,
    row_c: Vec<usize>,
    b_used: Vec<bool>,
    match_a: Vec<char>,
    match_b: Vec<char>,
}

impl ScratchBuffers {
    /// Creates empty buffers; they grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decodes `a` and `b` into the owned char buffers.
    fn decode(&mut self, a: &str, b: &str) {
        self.a_chars.clear();
        self.a_chars.extend(a.chars());
        self.b_chars.clear();
        self.b_chars.extend(b.chars());
    }

    /// Allocation-free [`crate::levenshtein`].
    pub fn levenshtein(&mut self, a: &str, b: &str) -> usize {
        let _t = KernelTimer::start(Kernel::Levenshtein);
        if a.is_ascii() && b.is_ascii() {
            let (a, b) = trim_common(a.as_bytes(), b.as_bytes());
            return distance_impl(a, b, &mut self.row_a);
        }
        self.decode(a, b);
        distance_impl(&self.a_chars, &self.b_chars, &mut self.row_a)
    }

    /// Allocation-free [`crate::levenshtein_bounded`].
    pub fn levenshtein_bounded(&mut self, a: &str, b: &str, max: usize) -> Option<usize> {
        let _t = KernelTimer::start(Kernel::LevenshteinBounded);
        if a.is_ascii() && b.is_ascii() {
            let (a, b) = trim_common(a.as_bytes(), b.as_bytes());
            return bounded_impl(a, b, max, &mut self.row_a);
        }
        self.decode(a, b);
        bounded_impl(&self.a_chars, &self.b_chars, max, &mut self.row_a)
    }

    /// Allocation-free [`crate::normalized_levenshtein`].
    pub fn normalized_levenshtein(&mut self, a: &str, b: &str) -> f64 {
        let _t = KernelTimer::start(Kernel::NormalizedLevenshtein);
        if a.is_ascii() && b.is_ascii() {
            // For ASCII the byte count is the char count, so the trimmed
            // distance normalizes against the original byte lengths.
            let (ta, tb) = trim_common(a.as_bytes(), b.as_bytes());
            let d = distance_impl(ta, tb, &mut self.row_a);
            return normalize(d, a.len(), b.len());
        }
        self.decode(a, b);
        let d = distance_impl(&self.a_chars, &self.b_chars, &mut self.row_a);
        normalize(d, self.a_chars.len(), self.b_chars.len())
    }

    /// Allocation-free [`crate::differ_slightly`].
    pub fn differ_slightly(&mut self, a: &str, b: &str, threshold: f64) -> bool {
        self.normalized_levenshtein(a, b) >= 1.0 - threshold
    }

    /// Allocation-free [`crate::damerau_levenshtein`].
    pub fn damerau_levenshtein(&mut self, a: &str, b: &str) -> usize {
        let _t = KernelTimer::start(Kernel::DamerauLevenshtein);
        self.decode(a, b);
        damerau_impl(
            &self.a_chars,
            &self.b_chars,
            &mut self.row_a,
            &mut self.row_b,
            &mut self.row_c,
        )
    }

    /// Allocation-free [`crate::jaro`].
    pub fn jaro(&mut self, a: &str, b: &str) -> f64 {
        let _t = KernelTimer::start(Kernel::Jaro);
        self.decode(a, b);
        jaro_impl(
            &self.a_chars,
            &self.b_chars,
            &mut self.b_used,
            &mut self.match_a,
            &mut self.match_b,
        )
    }

    /// Allocation-free [`crate::jaro_winkler`].
    pub fn jaro_winkler(&mut self, a: &str, b: &str) -> f64 {
        let _t = KernelTimer::start(Kernel::JaroWinkler);
        let j = self.jaro(a, b);
        let prefix = self
            .a_chars
            .iter()
            .zip(self.b_chars.iter())
            .take(4)
            .take_while(|(x, y)| x == y)
            .count();
        j + prefix as f64 * 0.1 * (1.0 - j)
    }

    /// Allocation-free [`crate::lcs_length`].
    pub fn lcs_length(&mut self, a: &str, b: &str) -> usize {
        let _t = KernelTimer::start(Kernel::Lcs);
        self.decode(a, b);
        lcs_impl(
            &self.a_chars,
            &self.b_chars,
            &mut self.row_a,
            &mut self.row_b,
        )
    }

    /// Allocation-free [`crate::lcs_similarity`].
    pub fn lcs_similarity(&mut self, a: &str, b: &str) -> f64 {
        let l = self.lcs_length(a, b);
        let max = self.a_chars.len().max(self.b_chars.len());
        if max == 0 {
            1.0
        } else {
            l as f64 / max as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        damerau_levenshtein, differ_slightly, jaro, jaro_winkler, lcs_length, lcs_similarity,
        levenshtein, levenshtein_bounded, normalized_levenshtein,
    };

    /// Name pairs spanning the interesting shapes: equal, empty, unicode,
    /// transposed, disjoint, and length-skewed.
    const PAIRS: &[(&str, &str)] = &[
        ("KITTEN", "SITTING"),
        ("MARTHA", "MARHTA"),
        ("DIXON", "DICKSONX"),
        ("", ""),
        ("", "ABC"),
        ("ABC", ""),
        ("SAME", "SAME"),
        ("AB", "BA"),
        ("café", "cafe"),
        ("MAIN STREET", "MN ST"),
        ("HERNANDEZ", "HERNANDES"),
        ("A", "ZZZZZZZZZZ"),
    ];

    #[test]
    fn scratch_matches_free_functions_across_reuse() {
        // One scratch reused across every pair — stale state from a previous
        // call must never leak into the next result.
        let mut s = ScratchBuffers::new();
        for &(a, b) in PAIRS {
            assert_eq!(s.levenshtein(a, b), levenshtein(a, b), "{a:?} {b:?}");
            assert_eq!(
                s.damerau_levenshtein(a, b),
                damerau_levenshtein(a, b),
                "{a:?} {b:?}"
            );
            assert_eq!(s.jaro(a, b).to_bits(), jaro(a, b).to_bits(), "{a:?} {b:?}");
            assert_eq!(
                s.jaro_winkler(a, b).to_bits(),
                jaro_winkler(a, b).to_bits(),
                "{a:?} {b:?}"
            );
            assert_eq!(s.lcs_length(a, b), lcs_length(a, b), "{a:?} {b:?}");
            assert_eq!(
                s.lcs_similarity(a, b).to_bits(),
                lcs_similarity(a, b).to_bits(),
                "{a:?} {b:?}"
            );
            assert_eq!(
                s.normalized_levenshtein(a, b).to_bits(),
                normalized_levenshtein(a, b).to_bits(),
                "{a:?} {b:?}"
            );
            for max in 0..4 {
                assert_eq!(
                    s.levenshtein_bounded(a, b, max),
                    levenshtein_bounded(a, b, max),
                    "{a:?} {b:?} max={max}"
                );
            }
            assert_eq!(
                s.differ_slightly(a, b, 0.25),
                differ_slightly(a, b, 0.25),
                "{a:?} {b:?}"
            );
        }
    }

    #[test]
    fn shrinking_inputs_do_not_reuse_stale_tail() {
        let mut s = ScratchBuffers::new();
        // Long pair first grows every buffer...
        assert_eq!(s.levenshtein("ABCDEFGHIJ", "ABCDEFGHIJKLM"), 3);
        assert_eq!(s.damerau_levenshtein("ABCDEFGHIJ", "BACDEFGHIJ"), 1);
        // ...then short pairs must still be exact.
        assert_eq!(s.levenshtein("A", "B"), 1);
        assert_eq!(s.damerau_levenshtein("AB", "BA"), 1);
        assert_eq!(s.lcs_length("A", "A"), 1);
        assert_eq!(s.jaro("", ""), 1.0);
    }
}
