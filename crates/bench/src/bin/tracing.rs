//! Tracing overhead measurement: structured tracing must cost <3% on the
//! multi-pass hot path.
//!
//! Runs the paper's three standard passes over one seeded database in four
//! observer configurations:
//!
//! 1. `noop`    — [`mp_metrics::NoopObserver`]: every observer hook is a
//!    no-op; this is the plain `run` path.
//! 2. `counters` — a live [`mp_metrics::MetricsRecorder`]: bulk atomic adds
//!    at phase boundaries.
//! 3. `traced`  — the recorder with tracing enabled: timed spans around
//!    every phase plus the sampled rule-evaluation latency histogram
//!    (every `LATENCY_SAMPLE_MASK + 1`-th evaluation is timed).
//! 4. `flight`  — the traced recorder drained into a
//!    [`mp_metrics::FlightRecorder`] after every run: the serving
//!    daemon's steady state (per-batch drain + bounded span ring).
//!
//! The closed pairs of the noop and traced runs are asserted identical;
//! the headline numbers are the noop → traced and noop → flight
//! wall-clock overheads, both asserted under the bound and written to
//! `BENCH_tracing.json`.
//!
//! A second measurement, `provenance_overhead`, runs the *incremental*
//! engine over the same database with the merge-lineage log (spanning
//! forest + rule firings) on vs [`without_provenance`], asserts the
//! matched pairs are identical and the overhead is under the same
//! bound, and writes `BENCH_provenance.json`.
//!
//! [`without_provenance`]: merge_purge::IncrementalMergePurge::without_provenance
//!
//! Usage: `cargo run --release -p mp-bench --bin tracing
//!         [--records N] [--window W] [--duplicates F] [--max-dups K]
//!         [--seed S] [--iters K] [--bound PCT] [--out FILE]
//!         [--prov-out FILE]`

use merge_purge::{IncrementalMergePurge, KeySpec, MultiPass, MultiPassResult};
use mp_bench::Args;
use mp_datagen::{DatabaseGenerator, GeneratorConfig};
use mp_metrics::{
    FlightRecorder, MetricsRecorder, NoopObserver, PipelineObserver, LATENCY_SAMPLE_MASK,
};
use mp_record::Record;
use mp_rules::NativeEmployeeTheory;
use std::time::{Duration, Instant};

/// One timed multi-pass run; span draining is included in the timed region
/// (it is part of what a traced run pays at run end). When a flight
/// recorder is given, the drained tracks are pushed into it — the
/// daemon's per-batch retention path — also inside the timed region.
fn timed(
    passes: &MultiPass,
    records: &[Record],
    theory: &NativeEmployeeTheory,
    observer: &dyn PipelineObserver,
    flight: Option<(&FlightRecorder, u64)>,
) -> (Duration, MultiPassResult, usize) {
    let t = Instant::now();
    let r = passes.run_observed(records, theory, observer);
    let spans = match (observer.tracer(), flight) {
        (Some(tr), Some((fr, seq))) => {
            let tracks = tr.drain();
            let n = tracks.iter().map(|t| t.spans.len()).sum();
            fr.record(format!("bench-{seq:08x}"), seq, false, tracks);
            n
        }
        (Some(tr), None) => tr.drain().iter().map(|t| t.spans.len()).sum(),
        (None, _) => 0,
    };
    (t.elapsed(), r, spans)
}

fn main() {
    let args = Args::from_env();
    let originals: usize = args.get("records", 10_000);
    let window: usize = args.get("window", 6);
    let duplicates: f64 = args.get("duplicates", 0.5);
    let max_dups: usize = args.get("max-dups", 5);
    let seed: u64 = args.get("seed", 7);
    let iters: usize = args.get("iters", 15);
    let bound_pct: f64 = args.get("bound", 3.0);
    let out: String = args.get("out", "BENCH_tracing.json".to_string());

    let mut db = DatabaseGenerator::new(
        GeneratorConfig::new(originals)
            .duplicate_fraction(duplicates)
            .max_duplicates_per_record(max_dups)
            .seed(seed),
    )
    .generate();
    mp_record::normalize::condition_all(&mut db.records, &mp_record::NicknameTable::standard());
    println!(
        "# tracing overhead — {} records ({} originals), window {window}, 3 passes, best of {iters}",
        db.records.len(),
        originals
    );

    let theory = NativeEmployeeTheory::new();
    let passes = MultiPass::standard_three(window);
    let counters = MetricsRecorder::new();
    // One long-lived ring across all flight-leg iterations, like the
    // daemon's: eviction of old entries is part of the measured cost.
    let flight = FlightRecorder::default();

    // Interleave the four configurations within each iteration — and
    // rotate their order every iteration — so slow drift in machine load
    // or clock speed hits all of them equally. The overhead estimate is
    // the *median of per-iteration ratios*: the legs of one iteration
    // run back to back, so a load spike inflates numerator and
    // denominator together and cancels, where a ratio of overall bests
    // would compare timings taken seconds apart.
    const LEGS: usize = 4;
    let mut best = [Duration::MAX; LEGS];
    let mut results: [Option<MultiPassResult>; LEGS] = [None, None, None, None];
    let mut ratios_counters = Vec::with_capacity(iters);
    let mut ratios_traced = Vec::with_capacity(iters);
    let mut ratios_flight = Vec::with_capacity(iters);
    let mut span_count = 0usize;
    for i in 0..iters.max(1) {
        let mut leg_time = [Duration::ZERO; LEGS];
        for leg in 0..LEGS {
            let leg = (leg + i) % LEGS;
            let (t, r, spans) = match leg {
                0 => timed(&passes, &db.records, &theory, &NoopObserver, None),
                1 => timed(&passes, &db.records, &theory, &counters, None),
                2 => {
                    let traced = MetricsRecorder::new().with_tracing();
                    timed(&passes, &db.records, &theory, &traced, None)
                }
                _ => {
                    let traced = MetricsRecorder::new().with_tracing();
                    timed(
                        &passes,
                        &db.records,
                        &theory,
                        &traced,
                        Some((&flight, i as u64)),
                    )
                }
            };
            span_count = span_count.max(spans);
            leg_time[leg] = t;
            best[leg] = best[leg].min(t);
            results[leg] = Some(r);
        }
        ratios_counters.push(leg_time[1].as_secs_f64() / leg_time[0].as_secs_f64());
        ratios_traced.push(leg_time[2].as_secs_f64() / leg_time[0].as_secs_f64());
        ratios_flight.push(leg_time[3].as_secs_f64() / leg_time[0].as_secs_f64());
    }
    let [best_noop, best_counters, best_traced, best_flight] = best;
    let [noop, _, traced, flighted] = results.map(|r| r.expect("at least one iteration"));

    assert_eq!(
        noop.closed_pairs.sorted(),
        traced.closed_pairs.sorted(),
        "tracing changed the closed pairs"
    );
    assert_eq!(
        noop.closed_pairs.sorted(),
        flighted.closed_pairs.sorted(),
        "the flight recorder changed the closed pairs"
    );
    assert!(
        !flight.is_empty(),
        "flight leg retained no entries — the drain path was not exercised"
    );

    fn median(v: &mut [f64]) -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
        v[v.len() / 2]
    }
    let overhead_counters = 100.0 * (median(&mut ratios_counters) - 1.0);
    let overhead_traced = 100.0 * (median(&mut ratios_traced) - 1.0);
    let overhead_flight = 100.0 * (median(&mut ratios_flight) - 1.0);
    let evaluations: u64 = traced.passes.iter().map(|p| p.stats.rule_evaluations).sum();
    let sampled = evaluations / (LATENCY_SAMPLE_MASK + 1);

    println!("noop observer:            {best_noop:>12.3?}");
    println!("counters only:            {best_counters:>12.3?}  ({overhead_counters:+.2}%)");
    println!(
        "counters + spans + hist:  {best_traced:>12.3?}  ({overhead_traced:+.2}%, \
         {span_count} spans, ~{sampled} latency samples)"
    );
    println!(
        "  + flight recorder:      {best_flight:>12.3?}  ({overhead_flight:+.2}%, \
         {} entries retained)",
        flight.len()
    );
    assert!(
        overhead_traced < bound_pct,
        "tracing overhead {overhead_traced:.2}% exceeds the {bound_pct}% bound"
    );
    assert!(
        overhead_flight < bound_pct,
        "flight-recorder overhead {overhead_flight:.2}% exceeds the {bound_pct}% bound"
    );
    println!(
        "tracing overhead {overhead_traced:.2}% and flight-recorder overhead \
         {overhead_flight:.2}% < {bound_pct}% bound"
    );

    let json = format!(
        "{{\n  \"records\": {},\n  \"window\": {window},\n  \"passes\": 3,\n  \"iters\": {iters},\n  \
         \"noop_best_ns\": {},\n  \"counters_best_ns\": {},\n  \"traced_best_ns\": {},\n  \
         \"flight_best_ns\": {},\n  \
         \"overhead_counters_pct\": {overhead_counters:.4},\n  \
         \"overhead_traced_pct\": {overhead_traced:.4},\n  \
         \"overhead_flight_pct\": {overhead_flight:.4},\n  \"bound_pct\": {bound_pct},\n  \
         \"spans_per_run\": {span_count},\n  \"rule_evaluations\": {evaluations},\n  \
         \"latency_samples_per_run\": {sampled},\n  \"flight_entries_retained\": {},\n  \
         \"closed_pairs\": {},\n  \
         \"closed_pairs_identical\": true\n}}\n",
        db.records.len(),
        best_noop.as_nanos(),
        best_counters.as_nanos(),
        best_traced.as_nanos(),
        best_flight.as_nanos(),
        flight.len(),
        noop.closed_pairs.len(),
    );
    std::fs::write(&out, json).expect("write bench report");
    println!("wrote {out}");

    // ------------------------------------------------------------------
    // Provenance overhead: the incremental engine's merge-lineage log,
    // on vs off, same interleave-and-median-of-ratios discipline as the
    // tracing legs above. One `add_batch` of the whole database is the
    // worst case for the log (every union is a recorded edge).
    let prov_out: String = args.get("prov-out", "BENCH_provenance.json".to_string());
    let run_incremental = |with_provenance: bool| {
        let mut engine = IncrementalMergePurge::new();
        if !with_provenance {
            engine = engine.without_provenance();
        }
        for key in KeySpec::standard_three() {
            engine = engine.pass(key, window);
        }
        let batch = db.records.clone();
        let t = Instant::now();
        engine.add_batch(batch, &theory);
        (t.elapsed(), engine)
    };
    let mut best_off = Duration::MAX;
    let mut best_on = Duration::MAX;
    let mut ratios_prov = Vec::with_capacity(iters);
    let mut pairs_off = Vec::new();
    let mut pairs_on = Vec::new();
    let mut edges = 0usize;
    for i in 0..iters.max(1) {
        let mut leg_time = [Duration::ZERO; 2];
        for leg in 0..2 {
            let leg = (leg + i) % 2;
            let (t, engine) = run_incremental(leg == 1);
            leg_time[leg] = t;
            if leg == 1 {
                best_on = best_on.min(t);
                edges = engine.provenance().edges.len();
                pairs_on = engine.pairs().sorted();
            } else {
                best_off = best_off.min(t);
                pairs_off = engine.pairs().sorted();
            }
        }
        ratios_prov.push(leg_time[1].as_secs_f64() / leg_time[0].as_secs_f64());
    }
    assert_eq!(
        pairs_off, pairs_on,
        "the provenance log changed the matched pairs"
    );
    let overhead_prov = 100.0 * (median(&mut ratios_prov) - 1.0);
    println!("\n# provenance overhead — incremental engine, same database");
    println!("provenance off:           {best_off:>12.3?}");
    println!(
        "provenance on:            {best_on:>12.3?}  ({overhead_prov:+.2}%, \
         {edges} merge edges)"
    );
    assert!(
        overhead_prov < bound_pct,
        "provenance overhead {overhead_prov:.2}% exceeds the {bound_pct}% bound"
    );
    println!("provenance overhead {overhead_prov:.2}% < {bound_pct}% bound");

    let json = format!(
        "{{\n  \"records\": {},\n  \"window\": {window},\n  \"passes\": 3,\n  \"iters\": {iters},\n  \
         \"off_best_ns\": {},\n  \"on_best_ns\": {},\n  \
         \"overhead_provenance_pct\": {overhead_prov:.4},\n  \"bound_pct\": {bound_pct},\n  \
         \"merge_edges\": {edges},\n  \"matched_pairs\": {},\n  \
         \"pairs_identical\": true\n}}\n",
        db.records.len(),
        best_off.as_nanos(),
        best_on.as_nanos(),
        pairs_on.len(),
    );
    std::fs::write(&prov_out, json).expect("write provenance report");
    println!("wrote {prov_out}");
}
