//! Longest common subsequence, used by rule predicates that tolerate
//! scattered character drops (e.g. heavily abbreviated street names).

/// Length of the longest common subsequence of `a` and `b`.
///
/// ```
/// use mp_strsim::lcs_length;
/// assert_eq!(lcs_length("MAIN STREET", "MN ST"), 5);
/// assert_eq!(lcs_length("ABC", "ABC"), 3);
/// ```
pub fn lcs_length(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    lcs_impl(&a, &b, &mut Vec::new(), &mut Vec::new())
}

/// Two-row DP over char slices; `prev` and `cur` are caller scratch.
pub(crate) fn lcs_impl(
    a: &[char],
    b: &[char],
    prev: &mut Vec<usize>,
    cur: &mut Vec<usize>,
) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    prev.clear();
    prev.resize(b.len() + 1, 0);
    cur.clear();
    cur.resize(b.len() + 1, 0);
    for &ca in a {
        for (j, &cb) in b.iter().enumerate() {
            cur[j + 1] = if ca == cb {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(prev, cur);
    }
    prev[b.len()]
}

/// LCS similarity in `[0, 1]`: `lcs / max(|a|, |b|)`.
///
/// High when one string is an abbreviation or subsequence of the other.
///
/// ```
/// use mp_strsim::lcs_similarity;
/// assert_eq!(lcs_similarity("ABCD", "ABCD"), 1.0);
/// assert_eq!(lcs_similarity("", ""), 1.0);
/// ```
pub fn lcs_similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let max = la.max(lb);
    if max == 0 {
        1.0
    } else {
        lcs_length(a, b) as f64 / max as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values() {
        assert_eq!(lcs_length("ABCBDAB", "BDCAB"), 4); // BCAB or BDAB
        assert_eq!(lcs_length("AGGTAB", "GXTXAYB"), 4); // GTAB
    }

    #[test]
    fn empty_and_disjoint() {
        assert_eq!(lcs_length("", "ANY"), 0);
        assert_eq!(lcs_length("ANY", ""), 0);
        assert_eq!(lcs_length("ABC", "XYZ"), 0);
    }

    #[test]
    fn subsequence_detection() {
        assert_eq!(lcs_length("MN ST", "MAIN STREET"), 5);
        assert!(lcs_similarity("MN ST", "MAIN STREET") < 0.5);
        // The abbreviation fully embeds, so LCS == |abbrev|.
        assert_eq!(lcs_length("MNST", "MAIN STREET"), 4);
    }

    #[test]
    fn bounded_by_shorter_string() {
        for (a, b) in [("ABC", "ABCDEF"), ("XYZ", "X"), ("", "")] {
            let bound = a.chars().count().min(b.chars().count());
            assert!(lcs_length(a, b) <= bound);
        }
    }

    #[test]
    fn similarity_range() {
        for (a, b) in [("ABCD", "ABDC"), ("A", "B"), ("LONG", "LONGER")] {
            let s = lcs_similarity(a, b);
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
