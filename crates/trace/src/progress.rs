//! Throttled progress heartbeat for long runs (records/s + ETA on stderr).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Emits `progress:` heartbeat lines to stderr at most once per interval.
///
/// Workers call [`tick`](ProgressMeter::tick) with the units of work they
/// just finished (comparisons, records sorted, …); the meter accumulates
/// into an atomic counter and at most once per second (by default) one
/// caller wins a compare-and-swap and prints a line with throughput and an
/// ETA extrapolated from the expected total. `tick` costs one relaxed
/// `fetch_add` plus the throttle check — safe to call from every window
/// position on every worker thread.
#[derive(Debug)]
pub struct ProgressMeter {
    what: &'static str,
    total: u64,
    done: AtomicU64,
    start: Instant,
    last_emit_ms: AtomicU64,
    interval_ms: u64,
}

impl ProgressMeter {
    /// A meter expecting `total` units of `what` (e.g. `"comparisons"`).
    pub fn new(what: &'static str, total: u64) -> Self {
        ProgressMeter {
            what,
            total,
            done: AtomicU64::new(0),
            start: Instant::now(),
            last_emit_ms: AtomicU64::new(0),
            interval_ms: 1_000,
        }
    }

    /// Overrides the minimum milliseconds between heartbeat lines.
    #[must_use]
    pub fn interval_ms(mut self, interval_ms: u64) -> Self {
        self.interval_ms = interval_ms;
        self
    }

    /// Units finished so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Records `n` finished units; prints a heartbeat if the interval has
    /// elapsed since the last one.
    #[inline]
    pub fn tick(&self, n: u64) {
        let done = self.done.fetch_add(n, Ordering::Relaxed) + n;
        let now_ms = self.start.elapsed().as_millis() as u64;
        let last = self.last_emit_ms.load(Ordering::Relaxed);
        if now_ms.saturating_sub(last) >= self.interval_ms
            && self
                .last_emit_ms
                .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            eprintln!("{}", self.render(done));
        }
    }

    /// Prints the final heartbeat unconditionally.
    pub fn finish(&self) {
        eprintln!("{} (done)", self.render(self.done()));
    }

    /// Renders one heartbeat line.
    fn render(&self, done: u64) -> String {
        let secs = self.start.elapsed().as_secs_f64();
        render_line(self.what, done, self.total, secs)
    }
}

/// Formats `12345678` as `12.3M`, `12345` as `12.3k`, `123` as `123`.
fn human(n: f64) -> String {
    if n >= 1e9 {
        format!("{:.1}G", n / 1e9)
    } else if n >= 1e6 {
        format!("{:.1}M", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.1}k", n / 1e3)
    } else {
        format!("{n:.0}")
    }
}

fn render_line(what: &str, done: u64, total: u64, elapsed_secs: f64) -> String {
    let rate = if elapsed_secs > 0.0 {
        done as f64 / elapsed_secs
    } else {
        0.0
    };
    let pct = if total > 0 {
        100.0 * done as f64 / total as f64
    } else {
        0.0
    };
    let eta = if rate > 0.0 && total > done {
        format!("{:.1}s", (total - done) as f64 / rate)
    } else {
        "0.0s".to_string()
    };
    format!(
        "progress: {}/{} {what} ({pct:.1}%) | {}/s | eta {eta}",
        human(done as f64),
        human(total as f64),
        human(rate),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_line_formats_rate_and_eta() {
        let line = render_line("comparisons", 500_000, 1_000_000, 2.0);
        assert_eq!(
            line,
            "progress: 500.0k/1.0M comparisons (50.0%) | 250.0k/s | eta 2.0s"
        );
    }

    #[test]
    fn render_handles_zero_total_and_overflow_done() {
        let line = render_line("comparisons", 10, 0, 1.0);
        assert!(line.contains("(0.0%)"), "{line}");
        assert!(line.contains("eta 0.0s"), "{line}");
        // done > total (estimate undershot): ETA clamps to zero.
        let line = render_line("comparisons", 20, 10, 1.0);
        assert!(line.contains("eta 0.0s"), "{line}");
    }

    #[test]
    fn ticks_accumulate_across_threads() {
        let m = ProgressMeter::new("comparisons", 1_000_000).interval_ms(u64::MAX);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1_000 {
                        m.tick(7);
                    }
                });
            }
        });
        assert_eq!(m.done(), 4 * 1_000 * 7);
    }

    #[test]
    fn human_scales() {
        assert_eq!(human(12.0), "12");
        assert_eq!(human(1_250.0), "1.2k");
        assert_eq!(human(3_200_000.0), "3.2M");
        assert_eq!(human(2_500_000_000.0), "2.5G");
    }
}
