//! Field-level corruption of duplicate records.

use crate::config::ErrorProfile;
use crate::names::random_variant;
use crate::typo::TypoModel;
use crate::{geo, names};
use mp_record::{Field, Record};
use rand::Rng;

/// Salutations occasionally prepended to first names (§2.1: "salutations
/// are at times included").
const SALUTATIONS: [&str; 4] = ["MR", "MRS", "MS", "DR"];

/// Applies the error profile to a duplicate record in place.
///
/// The original record is never touched; only copies are corrupted, exactly
/// as in the paper's generator where "errors \[are\] introduced in the
/// duplicate records" (§3.1).
pub fn corrupt<R: Rng>(
    record: &mut Record,
    profile: &ErrorProfile,
    typos: &TypoModel,
    surnames: &names::SurnamePool,
    rng: &mut R,
) {
    // Gross SSN errors: the §2.4 motivating example.
    if rng.gen_bool(profile.ssn_transpose_prob) {
        transpose_adjacent_digits(&mut record.ssn, rng);
    }
    if rng.gen_bool(profile.ssn_digit_error_prob) {
        replace_one_digit(&mut record.ssn, rng);
    }

    // Name-level changes.
    if rng.gen_bool(profile.last_name_change_prob) {
        record.last_name = surnames.sample(rng).to_string();
    }
    if rng.gen_bool(profile.nickname_prob) {
        if let Some(variant) = random_variant(&record.first_name, rng) {
            record.first_name = variant.to_string();
        }
    }
    if rng.gen_bool(profile.salutation_prob) {
        let sal = SALUTATIONS[rng.gen_range(0..SALUTATIONS.len())];
        record.first_name = format!("{sal} {}", record.first_name);
    }
    if rng.gen_bool(profile.name_swap_prob) && !record.middle_initial.is_empty() {
        std::mem::swap(&mut record.first_name, &mut record.middle_initial);
    }

    // The person moved: regenerate the whole address consistently.
    if rng.gen_bool(profile.address_change_prob) {
        let (num, street) = geo::random_street(rng);
        record.street_number = num;
        record.street_name = street;
        record.apartment = geo::random_apartment(rng);
        let city = geo::random_city(rng);
        record.city = city.name.to_string();
        record.state = city.state.to_string();
        record.zip = geo::random_zip(city, rng);
    }

    // Missing optional fields.
    if rng.gen_bool(profile.missing_field_prob) {
        record.middle_initial.clear();
    }
    if rng.gen_bool(profile.missing_field_prob) {
        record.apartment.clear();
    }

    // Per-character typographical noise over the text fields.
    for field in [
        Field::FirstName,
        Field::LastName,
        Field::StreetName,
        Field::City,
    ] {
        if rng.gen_bool(profile.field_typo_prob) {
            typos.apply_noise(record.field_mut(field), profile.typos_per_field, rng);
        }
    }
}

fn transpose_adjacent_digits<R: Rng>(s: &mut String, rng: &mut R) {
    let mut bytes: Vec<u8> = s.bytes().collect();
    if bytes.len() < 2 {
        return;
    }
    // Pick a position where the swap actually changes the string, if any.
    let candidates: Vec<usize> = (0..bytes.len() - 1)
        .filter(|&i| bytes[i] != bytes[i + 1])
        .collect();
    if candidates.is_empty() {
        return;
    }
    let i = candidates[rng.gen_range(0..candidates.len())];
    bytes.swap(i, i + 1);
    *s = String::from_utf8(bytes).expect("digits are ASCII");
}

fn replace_one_digit<R: Rng>(s: &mut String, rng: &mut R) {
    let mut bytes: Vec<u8> = s.bytes().collect();
    if bytes.is_empty() {
        return;
    }
    let i = rng.gen_range(0..bytes.len());
    let mut d = b'0' + rng.gen_range(0..10);
    while d == bytes[i] {
        d = b'0' + rng.gen_range(0..10);
    }
    bytes[i] = d;
    *s = String::from_utf8(bytes).expect("digits are ASCII");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::SurnamePool;
    use mp_record::RecordId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base_record() -> Record {
        let mut r = Record::empty(RecordId(0));
        r.ssn = "123456789".into();
        r.first_name = "ROBERT".into();
        r.middle_initial = "J".into();
        r.last_name = "JOHNSON".into();
        r.street_number = "42".into();
        r.street_name = "MAIN STREET".into();
        r.city = "CHICAGO".into();
        r.state = "IL".into();
        r.zip = "60601".into();
        r
    }

    #[test]
    fn full_profile_changes_something_usually() {
        let mut rng = StdRng::seed_from_u64(11);
        let typos = TypoModel::default();
        let pool = SurnamePool::new(1_000);
        let profile = ErrorProfile::heavy();
        let mut changed = 0;
        for _ in 0..100 {
            let mut dup = base_record();
            corrupt(&mut dup, &profile, &typos, &pool, &mut rng);
            if dup != base_record() {
                changed += 1;
            }
        }
        assert!(changed > 90, "only {changed}/100 duplicates changed");
    }

    #[test]
    fn zero_profile_changes_nothing() {
        let mut rng = StdRng::seed_from_u64(12);
        let typos = TypoModel::default();
        let pool = SurnamePool::new(10);
        let profile = ErrorProfile {
            typos_per_field: 0.0,
            field_typo_prob: 0.0,
            ssn_transpose_prob: 0.0,
            ssn_digit_error_prob: 0.0,
            last_name_change_prob: 0.0,
            nickname_prob: 0.0,
            address_change_prob: 0.0,
            salutation_prob: 0.0,
            missing_field_prob: 0.0,
            name_swap_prob: 0.0,
        };
        let mut dup = base_record();
        corrupt(&mut dup, &profile, &typos, &pool, &mut rng);
        assert_eq!(dup, base_record());
    }

    #[test]
    fn ssn_transposition_preserves_digit_multiset() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..50 {
            let mut s = String::from("193456782");
            transpose_adjacent_digits(&mut s, &mut rng);
            let mut a: Vec<u8> = s.bytes().collect();
            let mut b: Vec<u8> = "193456782".bytes().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
            assert_ne!(s, "193456782");
        }
    }

    #[test]
    fn transpose_handles_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut empty = String::new();
        transpose_adjacent_digits(&mut empty, &mut rng);
        assert!(empty.is_empty());
        let mut one = String::from("7");
        transpose_adjacent_digits(&mut one, &mut rng);
        assert_eq!(one, "7");
        let mut same = String::from("1111");
        transpose_adjacent_digits(&mut same, &mut rng);
        assert_eq!(same, "1111");
    }

    #[test]
    fn digit_replacement_changes_exactly_one_position() {
        let mut rng = StdRng::seed_from_u64(15);
        for _ in 0..50 {
            let mut s = String::from("123456789");
            replace_one_digit(&mut s, &mut rng);
            let diffs = s
                .bytes()
                .zip("123456789".bytes())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diffs, 1);
        }
    }

    #[test]
    fn address_change_keeps_city_state_zip_consistent() {
        let mut rng = StdRng::seed_from_u64(16);
        let typos = TypoModel::default();
        let pool = SurnamePool::new(10);
        let profile = ErrorProfile {
            address_change_prob: 1.0,
            field_typo_prob: 0.0,
            typos_per_field: 0.0,
            ssn_transpose_prob: 0.0,
            ssn_digit_error_prob: 0.0,
            last_name_change_prob: 0.0,
            nickname_prob: 0.0,
            salutation_prob: 0.0,
            missing_field_prob: 0.0,
            name_swap_prob: 0.0,
        };
        for _ in 0..20 {
            let mut dup = base_record();
            corrupt(&mut dup, &profile, &typos, &pool, &mut rng);
            assert_eq!(dup.zip.len(), 5);
            // zip prefix must match one of the seed cities with this name.
            assert!(!dup.city.is_empty());
            assert_eq!(dup.state.len(), 2);
        }
    }
}
