//! The paper's quantitative claims, encoded as assertions at reduced scale.
//! Each test names the section or figure it checks.

use merge_purge::{CostModel, Evaluation, KeySpec, MultiPass, SortedNeighborhood};
use mp_datagen::{DatabaseGenerator, GeneratorConfig};
use mp_rules::NativeEmployeeTheory;

fn fig2_style_db(n: usize, seed: u64) -> mp_datagen::GeneratedDatabase {
    let mut db = DatabaseGenerator::new(
        GeneratorConfig::new(n)
            .duplicate_fraction(0.5)
            .max_duplicates_per_record(5)
            .seed(seed),
    )
    .generate();
    mp_record::normalize::condition_all(&mut db.records, &mp_record::NicknameTable::standard());
    db
}

/// Fig. 2(a): "each independent run found from 50% to 70% of the duplicated
/// pairs" — at small scale our band is a little wider; assert each pass
/// lands in 25-80% and the *best* pass lands in 40-80%.
#[test]
fn single_pass_accuracy_band() {
    let db = fig2_style_db(4_000, 3001);
    let theory = NativeEmployeeTheory::new();
    let mut best: f64 = 0.0;
    for key in KeySpec::standard_three() {
        let pass = SortedNeighborhood::new(key, 10).run(&db.records, &theory);
        let eval = Evaluation::score(
            &MultiPass::close(db.records.len(), vec![pass]).closed_pairs,
            &db.truth,
        );
        assert!(
            (25.0..80.0).contains(&eval.percent_detected),
            "single pass at {:.1}% outside band",
            eval.percent_detected
        );
        best = best.max(eval.percent_detected);
    }
    assert!(best > 40.0, "best single pass only {best:.1}%");
}

/// Fig. 2(a): "the percent of duplicates found goes up to almost 90%" for
/// the multi-pass closure.
#[test]
fn multipass_approaches_ninety_percent() {
    let db = fig2_style_db(4_000, 3001);
    let theory = NativeEmployeeTheory::new();
    let multi = MultiPass::standard_three(10).run(&db.records, &theory);
    let eval = Evaluation::score(&multi.closed_pairs, &db.truth);
    assert!(
        eval.percent_detected > 85.0,
        "multi-pass only {:.1}%",
        eval.percent_detected
    );
}

/// Fig. 2(a): "increasing the window size does not help much" — going from
/// w = 10 to w = 50 must gain far less than the multi-pass closure gains
/// over the best single pass.
#[test]
fn widening_window_has_diminishing_returns() {
    let db = fig2_style_db(3_000, 3002);
    let theory = NativeEmployeeTheory::new();
    let at = |w: usize| {
        let pass = SortedNeighborhood::new(KeySpec::last_name_key(), w).run(&db.records, &theory);
        Evaluation::score(
            &MultiPass::close(db.records.len(), vec![pass]).closed_pairs,
            &db.truth,
        )
        .percent_detected
    };
    let w10 = at(10);
    let w50 = at(50);
    let multi = Evaluation::score(
        &MultiPass::standard_three(10)
            .run(&db.records, &theory)
            .closed_pairs,
        &db.truth,
    )
    .percent_detected;
    let window_gain = w50 - w10;
    let multipass_gain = multi - w50;
    assert!(
        multipass_gain > window_gain,
        "5x window gained {window_gain:.1}pp but multi-pass only {multipass_gain:.1}pp more"
    );
}

/// Fig. 2(b): false positives are "almost insignificant" for single runs
/// and grow with window size for the closure.
#[test]
fn false_positive_behaviour() {
    let db = fig2_style_db(6_000, 3003);
    let theory = NativeEmployeeTheory::new();
    let fp = |w: usize| {
        let multi = MultiPass::standard_three(w).run(&db.records, &theory);
        Evaluation::score(&multi.closed_pairs, &db.truth).percent_false_positive
    };
    let fp_small = fp(2);
    let fp_large = fp(30);
    assert!(fp_small < 0.5, "w=2 FP {fp_small:.3}% not insignificant");
    assert!(fp_large < 2.0, "w=30 FP {fp_large:.3}% too large");
    assert!(
        fp_large >= fp_small,
        "FP should not shrink as windows widen: {fp_small:.3}% -> {fp_large:.3}%"
    );
}

/// §3.5: the paper's own constants give a crossover near W = 41 for
/// N = 13,751, r = 3, w = 10.
#[test]
fn paper_cost_model_instance() {
    let m = CostModel::paper();
    let w = m.crossover_window(13_751, 3, 10);
    assert!((w - 41.0).abs() < 2.0, "got {w:.1}");
}

/// §2.4: a transposed SSN ruins the SSN-principal key but not the
/// name-principal keys — the whole motivation for multiple passes.
#[test]
fn transposed_ssn_recovered_by_name_pass_not_ssn_pass() {
    use mp_record::{Record, RecordId};
    let theory = NativeEmployeeTheory::new();
    // A tiny crafted database: 100 filler records plus the §2.4 pair.
    let mut db =
        DatabaseGenerator::new(GeneratorConfig::new(100).duplicate_fraction(0.0).seed(3004))
            .generate();
    let mut a = Record::empty(RecordId(0));
    a.ssn = "193456782".into();
    a.first_name = "KATHERINE".into();
    a.last_name = "QUIMBY".into();
    a.street_number = "12".into();
    a.street_name = "OAK LANE".into();
    a.city = "AUSTIN".into();
    a.zip = "78701".into();
    let mut b = a.clone();
    b.ssn = "913456782".into(); // first two digits transposed
    let n = db.records.len() as u32;
    a.id = RecordId(n);
    b.id = RecordId(n + 1);
    db.records.push(a);
    db.records.push(b);

    let ssn_pass = SortedNeighborhood::new(KeySpec::ssn_key(), 5).run(&db.records, &theory);
    let name_pass = SortedNeighborhood::new(KeySpec::last_name_key(), 5).run(&db.records, &theory);
    assert!(
        !ssn_pass.pairs.contains(n, n + 1),
        "ssn-principal key should miss the transposed pair at small w"
    );
    assert!(
        name_pass.pairs.contains(n, n + 1),
        "name-principal key should catch the transposed pair"
    );
}
