#![warn(missing_docs)]

//! External-memory (disk-resident) merge/purge: spill-aware sorting, the
//! streaming sorted-neighborhood scan, and the bulk-load path that feeds
//! the durable store, with exact I/O pass accounting throughout.
//!
//! # Why external
//!
//! §2.2 and §3.5 of the paper analyze the case where "the dominant cost
//! will be disk I/O, i.e., the number of passes over the data set":
//!
//! * the **sorted-neighborhood method** needs "at least three passes: one
//!   pass for conditioning the data and preparing keys, at least a second
//!   pass, likely more, for a high speed sort ..., and a final pass for
//!   window processing" — with an F-way external merge sort that is
//!   `2 + ceil(log_F(N/M))` data passes;
//! * the **clustering method** needs "approximately only 2 passes": one to
//!   assign records to clusters, and one where each cluster is processed
//!   in memory.
//!
//! This crate implements both over flat record files (the `mp-record` line
//! format), with a hard in-memory budget of `M` records and exact
//! [`IoStats`] so the pass-count analysis can be *measured* rather than
//! asserted. Results are bit-identical to the in-memory engines (tested):
//! the same pairs come out whether the data fits in RAM or not.
//!
//! # Pipeline and spill format
//!
//! [`ExternalSorter`] streams the input in chunks of at most
//! `memory_records` records. Each chunk is conditioned (optionally),
//! key-extracted, sorted, and written as one *run file*; runs are then
//! merged `fan_in` at a time until a single sorted run remains. A run file
//! is a plain text spill: one `key|id|field…` line per record (see
//! [`runfile`]), always written fully sorted — a run file is either
//! complete and sorted or it is garbage from a crashed process, never a
//! partially meaningful state. Temporary names embed the owning process id
//! (`run-{n}-{pid}.tmp`, `merge-{level}-{group}-{pid}.tmp`) so a crashed
//! sort can never be confused with a live one and stale files are swept on
//! the next open.
//!
//! # Run-merge invariants
//!
//! The global order produced by the sorter is **(key, record id)**,
//! bytewise on the key. Three facts make every configuration — any memory
//! budget, any fan-in, any thread count, either sort strategy — produce
//! the *identical* final run:
//!
//! 1. record ids ascend in input order, so the records of a chunk (and of
//!    any contiguous sub-chunk a worker thread sorts) already ascend by id;
//! 2. each run is written sorted by (key, id) — a stable sort by key over
//!    an id-ascending slice is exactly that;
//! 3. the merge heap breaks key ties by smaller id, which is a stable
//!    F-way merge of runs that are themselves (key, id)-sorted.
//!
//! Any split of the input into contiguous runs therefore merges to the
//! same total order an in-memory stable sort would produce, which is why
//! [`ExternalSnm`] is bit-identical to the in-memory engines and why run
//! formation can fan out across threads freely.
//!
//! # Sort strategies
//!
//! Runs are sorted either by a stable comparison sort or by an LSD radix
//! sort over fixed-width key prefixes (`merge_purge::SortStrategy`); the
//! two are permutation-identical by construction (property-tested in the
//! core crate), so the choice affects throughput only — see
//! `docs/SCALING.md` for the decision table.
//!
//! # Example
//!
//! Sort a generated record file and verify it comes back in key order:
//!
//! ```
//! use merge_purge::KeySpec;
//! use mp_extsort::{ExternalConfig, ExternalSorter};
//! use mp_record::io as rio;
//!
//! let dir = std::env::temp_dir().join(format!("mp-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let db = mp_datagen::DatabaseGenerator::new(
//!     mp_datagen::GeneratorConfig::new(100).seed(42),
//! )
//! .generate();
//! let n = db.records.len(); // base records plus generated duplicates
//! let input = dir.join("db.mp");
//! rio::write_records(std::fs::File::create(&input).unwrap(), &db.records).unwrap();
//!
//! // A deliberately tiny budget so the 100-record input spills into runs.
//! let config = ExternalConfig {
//!     memory_records: 32,
//!     ..ExternalConfig::default()
//! };
//! let sorted = ExternalSorter::new(KeySpec::last_name_key(), config)
//!     .sort(&input, &dir, false)
//!     .unwrap();
//! assert_eq!(sorted.records, n);
//! assert!(sorted.io.data_passes() >= 2, "run formation plus merging");
//!
//! let mut reader = mp_extsort::runfile::RunReader::open(&sorted.path).unwrap();
//! let mut prev = String::new();
//! while let Some((key, _)) = reader.next_entry().unwrap() {
//!     assert!(prev <= key, "sorted output");
//!     prev = key;
//! }
//! sorted.cleanup();
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod bulkload;
pub mod clustering;
pub mod runfile;
pub mod snm;
pub mod sorter;

pub use bulkload::{BulkLoadStats, BulkLoader, BulkOutcome, BulkPass};
pub use clustering::ExternalClustering;
pub use snm::ExternalSnm;
pub use sorter::ExternalSorter;

use mp_closure::PairSet;

/// Resource limits for external processing.
///
/// Construct with functional-update syntax so new knobs keep old call
/// sites compiling: `ExternalConfig { memory_records: 50_000,
/// ..ExternalConfig::default() }`.
#[derive(Debug, Clone, Copy)]
pub struct ExternalConfig {
    /// Maximum records held in memory at once (`M`). Run formation sorts
    /// chunks of this size; the clustering method requires every cluster to
    /// fit within it.
    pub memory_records: usize,
    /// Merge fan-in `F` (the paper's experiments "used merge sort ... which
    /// used a 16-way merge algorithm").
    pub fan_in: usize,
    /// Worker threads for run formation. Each memory-budget chunk is split
    /// into this many contiguous sub-chunks, sorted and spilled on scoped
    /// threads (the band-partition machinery of the sharded engine). More
    /// threads mean more, smaller initial runs — the merge invariants make
    /// the final order identical regardless.
    pub threads: usize,
    /// How each run's keys are ordered; permutation-identical either way.
    pub strategy: merge_purge::SortStrategy,
}

impl Default for ExternalConfig {
    fn default() -> Self {
        ExternalConfig {
            memory_records: 100_000,
            fan_in: 16,
            threads: 1,
            strategy: merge_purge::SortStrategy::Comparison,
        }
    }
}

/// Exact I/O accounting for one external run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Records read from disk (input + intermediate runs).
    pub records_read: u64,
    /// Records written to disk (runs + merge levels + cluster files).
    pub records_written: u64,
    /// Number of full sweeps over the data set (the §3.5 unit of cost):
    /// each sweep reads every live record once.
    pub sweeps: u32,
}

impl IoStats {
    /// Total data passes, the quantity §3.5 compares across methods.
    pub fn data_passes(&self) -> u32 {
        self.sweeps
    }

    fn add_sweep(&mut self) {
        self.sweeps += 1;
    }
}

/// Result of an external merge/purge pass.
#[derive(Debug)]
pub struct ExternalOutcome {
    /// Deduplicated matching pairs (same semantics as the in-memory
    /// engines).
    pub pairs: PairSet,
    /// Measured I/O accounting.
    pub io: IoStats,
    /// Number of records processed.
    pub records: usize,
}
