//! `mergepurge` — command-line merge/purge over flat record files.
//!
//! ```text
//! mergepurge generate --records 10000 --duplicates 0.4 --out db.mp
//! mergepurge dedupe   --input db.mp --window 10 --classes-out groups.txt
//! mergepurge dedupe   --input db.mp --rules my_rules.mpr --eval
//! mergepurge purge    --input db.mp --rules my_rules.mpr --out clean.mp
//! mergepurge explain  --input db.mp --a 17 --b 241
//! ```
//!
//! The record file format is the pipe-separated flat format of
//! `mp_record::io` (one record per line: entity column + ten fields).

use merge_purge::{Evaluation, KeySpec, MergePurge, MergePurgeResult, Purger};
use mp_datagen::{DatabaseGenerator, GeneratorConfig, GroundTruth};
use mp_metrics::{
    chrome_trace_json, Counter, FlightRecorder, KernelTime, MetricsRecorder, PipelineObserver,
    RuleFiringReport, SpanTreeTrack,
};
use mp_record::{io as rio, Record};
use mp_rules::{
    CompiledTheory, EquationalTheory, NativeEmployeeTheory, Plan, RuleFiringCounter, RuleProgram,
    Survivorship,
};
use std::fs::File;
use std::io::{BufReader, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = Flags::parse(&args[1..]);
    let result = match command.as_str() {
        "generate" => generate(&flags),
        "dedupe" => dedupe(&flags, false),
        "purge" => dedupe(&flags, true),
        "eval" => eval_cmd(&flags),
        "load" => load_cmd(&flags),
        "explain" => explain(&flags),
        "serve" => serve_cmd(&flags),
        "send" => send_cmd(&flags),
        "top" => top_cmd(&flags),
        "trace" => trace_cmd(&flags),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
mergepurge — sorted-neighborhood merge/purge (Hernandez & Stolfo, SIGMOD 1995)

commands:
  generate  --out FILE [--records N] [--duplicates F] [--max-dups K] [--seed S]
  dedupe    --input FILE [--rules FILE] [--theory T] [--no-plan] [--window W]
            [--keys a,b,c] [--pairs-out FILE] [--classes-out FILE] [--eval]
            [--stats FILE|-] [--trace FILE] [--progress] [--kernel-stats]
            [--no-prune]
  purge     --input FILE --out FILE [--rules FILE] [--theory T] [--no-plan]
            [--window W] [--keys a,b,c] [--stats FILE|-] [--trace FILE]
            [--progress] [--kernel-stats] [--no-prune]
  eval      --input FILE [--truth FILE] [--rules FILE] [--theory T]
            [--window W] [--keys a,b,c] [--no-plan] [--no-prune]
  explain   --input FILE --a ID --b ID [--rules FILE] [--theory T]
            | (--socket PATH | --addr HOST:PORT) --a ID --b ID
  load      --input FILE --store DIR [--window W] [--keys a,b,c]
            [--rules FILE] [--theory T] [--shards N] [--work-dir DIR]
            [--memory-budget N] [--fan-in N] [--sort-threads N]
            [--sort-strategy comparison|radix]
  serve     --socket PATH --store DIR [--window W] [--keys a,b,c]
            [--rules FILE] [--theory T] [--shards N] [--listen HOST:PORT]
            [--queue-depth N] [--snapshot-every N] [--slow-batch-ms T]
            [--large-cluster-threshold N]
            [--bulk-load FILE] [--memory-budget N] [--fan-in N]
            [--sort-threads N] [--sort-strategy comparison|radix]
            [--stats FILE] [--trace FILE] [--metrics-addr HOST:PORT]
            [--log FILE] [--log-level error|warn|info|debug]
            [--log-max-bytes N] [--log-keep N] [--progress] [--quiet]
  send      (--socket PATH | --addr HOST:PORT) --cmd CMD
            [--input FILE] [--id N] [--json RAW]
  top       (--socket PATH | --addr HOST:PORT) [--interval-ms N]
            [--iterations N] [--json]
  trace     (--socket PATH | --addr HOST:PORT) [--out FILE]

--stats FILE writes a JSON pipeline report (comparison, match, and closure
counters, per-pass attribution, per-rule firing counts, per-phase timings,
rule-latency quantiles, and the timed span tree) collected by mp-metrics;
`--stats -` prints the report to stdout (status lines move to stderr, so
the output pipes cleanly into jq). The section before the
\"phases_ns\" key is deterministic for a fixed input and configuration. See
docs/METRICS.md for the schema and docs/TRACING.md for the tracing layer.

--trace FILE writes a Chrome trace-event JSON (load it in Perfetto or
chrome://tracing; one track per thread, so parallel fragments get their own
rows). --progress prints a records/s + ETA heartbeat to stderr.
--kernel-stats additionally times the string-distance kernels.

--no-prune disables closure-aware pruning: by default window pairs already
known to be duplicates (transitively, across passes) skip rule evaluation,
reported as the pairs_pruned counter. Pruning never changes the closed
pairs, so the final groups are identical either way.

eval scores the pipeline's closed pairs against ground truth (the
paper's Fig. 2 metrics): recall, false-positive rate, and precision.
Ground truth comes from --truth FILE (a record file whose entity column
labels the true duplicates, e.g. a generate output) or, without it, from
the entity column of --input itself.

explain answers \"why are these two records duplicates?\". Offline
(--input) it re-evaluates the pair against the theory and names the
first rule that fires. Against a running daemon (--socket or --addr) it
walks the durable provenance forest and prints the full evidence chain —
every merge edge connecting the two records with its rule, pass, batch
sequence, and trace id (docs/PROVENANCE.md). serve's
--large-cluster-threshold N (default 100) raises the cluster_merged
event to warn level when a batch merges a cluster of at least N records.

keys: comma-separated from {last_name, first_name, address, ssn};
      default last_name,first_name,address (the paper's three runs).
rules: a rule-DSL program file; without one the DSL theories fall back to
       the built-in 26-rule employee theory source.

--theory T picks the equational-theory implementation:
  native        hand-coded Rust employee theory (default without --rules;
                rejects --rules)
  dsl           tree-walking rule interpreter
  dsl-compiled  the rule DSL lowered to a planned bytecode VM (default when
                --rules is given) — same decisions as dsl, close to native
                speed; see docs/RULE_COMPILER.md
dedupe/purge calibrate the dsl-compiled planner on a sample of input pairs;
serve uses the static cost-model plan. --no-plan compiles without predicate
reordering or common-subexpression memoization (bit-identical results,
slower). Compiled runs add the rules_compiled and subexpr_hits counters to
--stats reports.

load cold-loads a record file into an empty durable store through the
external-sort bulk pipeline (mp-extsort): the full database is never
materialized, so a 10M-record file loads under the --memory-budget
record cap (default 100000 records in memory; spill runs go to
--work-dir, default STORE/bulk-tmp). --sort-strategy radix switches run
formation to the LSD radix sort over fixed-width key prefixes; the
committed store is bit-identical either way. A non-empty store is left
untouched (exit failure). See docs/SCALING.md for the tuning model.

serve --bulk-load FILE runs the same cold load before the store opens
(readyz stays 503 throughout) and skips it harmlessly when the store
already has state, so a restart is safe. The same external-sort flags
apply. A running daemon with an empty store also accepts `send --cmd
bulk-load --input FILE`, where FILE is a *daemon-local* path.

serve runs the batch-ingest daemon on a Unix socket (plus TCP with
--listen; same wire protocol), backed by the durable match-store at
--store (crash-safe snapshots + batch journal; see docs/SERVING.md and
docs/INCREMENTAL.md). --shards N partitions the store by key band into N
journaling shard workers (fixed at store creation; the merged match set
stays identical to --shards 1). send is the matching client over either
transport: --cmd is one of ingest-batch (reads --input), bulk-load
(sends --input as a daemon-local path), query-matches (needs --id),
stats, snapshot, metrics, trace, healthz, readyz,
shutdown; --json RAW sends a raw request instead. serve's
--stats/--trace write the pipeline report / Chrome trace on shutdown.

serve tracing (docs/TRACING.md): every acked batch carries a
process-unique trace_id (on the wire ack, the batch_ingested event, and
its spans); the daemon keeps the last batches' spans in an in-memory
flight recorder, dumpable live via the trace command, `send --cmd
trace`, or GET /trace on --metrics-addr. --slow-batch-ms T pins batches
slower than T ms in the recorder and logs slow_batch events with a
per-phase critical-path breakdown.

serve observability (docs/OBSERVABILITY.md): --metrics-addr serves
Prometheus text /metrics plus /healthz, /readyz, and /trace over HTTP;
--log writes a leveled JSONL event log (rotated past --log-max-bytes
through --log-keep generations, default 1); --progress prints a periodic
heartbeat line to stderr; --quiet suppresses all serve status/heartbeat
stderr output. top polls a running daemon's stats and renders an
in-place refreshing terminal view of rolling 1m/5m/15m rates,
batch-latency quantiles, queue pressure, snapshot staleness, tracing
state, a match-quality panel (cluster-size histogram, largest cluster,
top rules by firings, rolling selectivity), and (sharded daemons) a
per-shard table with scan-latency
quantiles (--iterations 0 = run until interrupted); top --json prints
the same data as machine-readable JSON frames (one by default). trace
fetches the flight-recorder dump into a Perfetto-loadable file.";

/// Minimal `--flag value` parser.
struct Flags(Vec<String>);

impl Flags {
    fn parse(raw: &[String]) -> Self {
        Flags(raw.to_vec())
    }

    fn get(&self, name: &str) -> Option<&str> {
        let flag = format!("--{name}");
        self.0
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid --{name} value {v:?}")),
        }
    }

    fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.0.iter().any(|a| a == &flag)
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required"))
    }
}

/// Prints a human-readable status line: stdout normally, stderr when the
/// machine-readable report owns stdout (`--stats -`).
macro_rules! status {
    ($to_stderr:expr, $($arg:tt)*) => {
        if $to_stderr { eprintln!($($arg)*) } else { println!($($arg)*) }
    };
}

fn generate(flags: &Flags) -> Result<(), String> {
    let out = flags.require("out")?;
    let records: usize = flags.get_parsed("records", 10_000)?;
    let duplicates: f64 = flags.get_parsed("duplicates", 0.3)?;
    let max_dups: usize = flags.get_parsed("max-dups", 5)?;
    let seed: u64 = flags.get_parsed("seed", 1)?;
    let db = DatabaseGenerator::new(
        GeneratorConfig::new(records)
            .duplicate_fraction(duplicates)
            .max_duplicates_per_record(max_dups)
            .seed(seed),
    )
    .generate();
    let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    rio::write_records(file, &db.records).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "wrote {} records ({} originals + {} duplicates, {} true pairs) to {out}",
        db.records.len(),
        records,
        db.duplicate_count,
        db.truth.true_pair_count()
    );
    Ok(())
}

fn load_records(flags: &Flags) -> Result<Vec<Record>, String> {
    let input = flags.require("input")?;
    let file = File::open(input).map_err(|e| format!("open {input}: {e}"))?;
    rio::read_records(BufReader::new(file)).map_err(|e| format!("parse {input}: {e}"))
}

fn parse_keys(flags: &Flags) -> Result<Vec<KeySpec>, String> {
    let spec = flags.get("keys").unwrap_or("last_name,first_name,address");
    spec.split(',')
        .map(|name| match name.trim() {
            "last_name" => Ok(KeySpec::last_name_key()),
            "first_name" => Ok(KeySpec::first_name_key()),
            "address" => Ok(KeySpec::address_key()),
            "ssn" => Ok(KeySpec::ssn_key()),
            other => Err(format!(
                "unknown key {other:?} (expected last_name, first_name, address, or ssn)"
            )),
        })
        .collect()
}

/// Parses the external-sort resource flags shared by `load` and
/// `serve --bulk-load`: `--memory-budget` (records resident in the sort),
/// `--fan-in` (runs merged at once), `--sort-threads` (run-formation
/// threads), `--sort-strategy` (comparison | radix).
fn parse_external(flags: &Flags) -> Result<mp_extsort::ExternalConfig, String> {
    let mut ext = mp_extsort::ExternalConfig::default();
    ext.memory_records = flags.get_parsed("memory-budget", ext.memory_records)?;
    if ext.memory_records < 2 {
        return Err("--memory-budget must be at least 2 records".into());
    }
    ext.fan_in = flags.get_parsed("fan-in", ext.fan_in)?;
    if ext.fan_in < 2 {
        return Err("--fan-in must be at least 2".into());
    }
    ext.threads = flags.get_parsed("sort-threads", ext.threads)?;
    if ext.threads == 0 {
        return Err("--sort-threads must be at least 1".into());
    }
    if let Some(s) = flags.get("sort-strategy") {
        ext.strategy = merge_purge::SortStrategy::parse(s)?;
    }
    Ok(ext)
}

/// `mergepurge load` — cold-load a record file into an empty durable
/// store through the external-sort bulk pipeline. The store comes up
/// exactly as if a daemon had ingested the whole file as batch 1.
fn load_cmd(flags: &Flags) -> Result<(), String> {
    use merge_purge_repro::bulk::{bulk_load_store, BulkStoreConfig};
    let input = flags.require("input")?;
    let store = flags.require("store")?;
    let window: usize = flags.get_parsed("window", 10)?;
    if window < 2 {
        return Err("--window must be at least 2".into());
    }
    let shards: usize = flags.get_parsed("shards", 1)?;
    let cfg = BulkStoreConfig {
        window,
        keys: parse_keys(flags)?,
        shards,
        external: parse_external(flags)?,
    };
    let work = flags
        .get("work-dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::Path::new(store).join("bulk-tmp"));
    let theory = Theory::load(flags, None)?;
    let recorder = MetricsRecorder::new();
    let started = std::time::Instant::now();
    let report = bulk_load_store(
        std::path::Path::new(store),
        std::path::Path::new(input),
        &work,
        &cfg,
        theory.as_dyn(),
        &recorder,
    )?;
    let _ = std::fs::remove_dir_all(&work);
    let Some(report) = report else {
        return Err(format!(
            "store {store} is not empty; load only cold-starts empty stores \
             (use `serve` + ingest-batch for increments)"
        ));
    };
    let secs = started.elapsed().as_secs_f64();
    println!(
        "loaded {} records -> {store} in {secs:.1}s ({:.0} records/s)",
        report.records,
        report.records as f64 / secs.max(1e-9),
    );
    println!(
        "  {} pairs, {} comparisons, {} snapshot bytes, {} data passes \
         ({} records read, {} spilled)",
        report.pairs,
        report.comparisons,
        report.snapshot_bytes,
        report.io.data_passes(),
        report.io.records_read,
        report.io.records_written,
    );
    Ok(())
}

/// Adjacent input pairs sampled to calibrate the rule planner.
const CALIBRATION_PAIRS: usize = 2_048;

/// The theory selected by `--theory`/`--rules`: the hand-coded native
/// implementation, the DSL interpreter, or the planned bytecode VM.
enum Theory {
    Native(NativeEmployeeTheory),
    Program(RuleProgram),
    Compiled(CompiledTheory),
}

impl Theory {
    /// Resolves `--theory` (default: `dsl-compiled` when `--rules` is
    /// given, `native` otherwise) and loads the rule source — `--rules
    /// FILE`, or the built-in 26-rule employee theory for the DSL theories
    /// without one. With `calibrate` records, the compiled theory's plan is
    /// calibrated on up to [`CALIBRATION_PAIRS`] adjacent input pairs;
    /// `--no-plan` compiles in source order with no memoization.
    fn load(flags: &Flags, calibrate: Option<&[Record]>) -> Result<Self, String> {
        let has_rules = flags.get("rules").is_some();
        let kind = match flags.get("theory") {
            Some(k) => k,
            None if has_rules => "dsl-compiled",
            None => "native",
        };
        if flags.has("no-plan") && kind != "dsl-compiled" {
            return Err("--no-plan only applies to --theory dsl-compiled".into());
        }
        match kind {
            "native" => {
                if has_rules {
                    return Err(
                        "--theory native ignores --rules (the native theory is built in); \
                         drop one of the two flags"
                            .into(),
                    );
                }
                Ok(Theory::Native(NativeEmployeeTheory::new()))
            }
            "dsl" | "dsl-compiled" => {
                let (src, origin) = match flags.get("rules") {
                    Some(path) => (
                        std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?,
                        path.to_string(),
                    ),
                    None => (
                        mp_rules::EMPLOYEE_RULES_SRC.to_string(),
                        "built-in employee theory".to_string(),
                    ),
                };
                let program = RuleProgram::compile(&src).map_err(|e| format!("{origin}: {e}"))?;
                if kind == "dsl" {
                    return Ok(Theory::Program(program));
                }
                if flags.has("no-plan") {
                    return Ok(Theory::Compiled(CompiledTheory::from_program(
                        &program, None,
                    )));
                }
                let plan = match calibrate {
                    Some(records) if records.len() >= 2 => {
                        let n = (records.len() - 1).min(CALIBRATION_PAIRS);
                        let pairs: Vec<(&Record, &Record)> =
                            (0..n).map(|i| (&records[i], &records[i + 1])).collect();
                        Plan::calibrated(&program, &pairs)
                    }
                    _ => Plan::of(program.ast()),
                };
                Ok(Theory::Compiled(CompiledTheory::from_program(
                    &program,
                    Some(&plan),
                )))
            }
            other => Err(format!(
                "unknown --theory {other:?} (expected native, dsl, or dsl-compiled)"
            )),
        }
    }

    fn as_dyn(&self) -> &dyn EquationalTheory {
        match self {
            Theory::Native(t) => t,
            Theory::Program(p) => p,
            Theory::Compiled(c) => c,
        }
    }

    fn purger(&self) -> Purger {
        let spec = match self {
            Theory::Program(p) => p.purge_spec(),
            Theory::Compiled(c) => c.purge_spec(),
            Theory::Native(_) => None,
        };
        spec.map(|spec| Purger::from_spec(spec, Survivorship::Longest))
            .unwrap_or_default()
    }

    /// Adds the compiler counters to the pipeline report (zeros stay
    /// absent-by-value for the native and interpreted theories).
    fn record_compiler_counters(&self, recorder: &MetricsRecorder) {
        if let Theory::Compiled(c) = self {
            recorder.add(Counter::RulesCompiled, c.rules_compiled());
            recorder.add(Counter::SubexprHits, c.subexpr_hits());
        }
    }
}

fn run_passes(
    flags: &Flags,
    records: &mut [Record],
    recorder: &MetricsRecorder,
    count_rules: bool,
) -> Result<(MergePurgeResult, Theory, Option<RuleFiringReport>), String> {
    let window: usize = flags.get_parsed("window", 10)?;
    if window < 2 {
        return Err("--window must be at least 2".into());
    }
    let keys = parse_keys(flags)?;
    let theory = Theory::load(flags, Some(records))?;
    let counter = count_rules.then(|| RuleFiringCounter::new(theory.as_dyn()));
    let run = |t: &dyn EquationalTheory| {
        let mut pipeline = MergePurge::new(t);
        if flags.has("no-prune") {
            pipeline = pipeline.without_pruning();
        }
        for key in keys {
            pipeline = pipeline.pass(key, window);
        }
        pipeline.run_observed(records, recorder)
    };
    let result = match &counter {
        Some(c) => run(c),
        None => run(theory.as_dyn()),
    };
    let rules = counter.map(|c| RuleFiringReport {
        theory: c.name().to_string(),
        evaluations: c.evaluations(),
        misses: c.misses(),
        conditions_short_circuited: c.conditions_short_circuited(),
        fired: c.rule_names().into_iter().zip(c.fired()).collect(),
    });
    Ok((result, theory, rules))
}

/// §3.5 expected window-scan comparisons, `(w−1)(N − w/2)` per pass.
fn expected_comparisons(n: u64, window: u64, passes: u64) -> u64 {
    let w = window.min(n.max(1));
    (w - 1) * (n - w / 2) * passes
}

fn dedupe(flags: &Flags, purge: bool) -> Result<(), String> {
    let mut records = load_records(flags)?;
    let stats_dest = flags.get("stats").map(str::to_string);
    let trace_path = flags.get("trace").map(str::to_string);
    let want_report = stats_dest.is_some() || trace_path.is_some();
    // With `--stats -` the report owns stdout; everything human-readable
    // moves to stderr so the output pipes cleanly into `jq` and friends.
    let to_stderr = stats_dest.as_deref() == Some("-");
    let kernel_stats = flags.has("kernel-stats");

    let mut recorder = MetricsRecorder::new();
    if want_report {
        recorder = recorder.with_tracing();
    }
    if flags.has("progress") {
        let window: u64 = flags.get_parsed("window", 10u64)?;
        let passes = parse_keys(flags)?.len() as u64;
        let total = expected_comparisons(records.len() as u64, window, passes);
        recorder = recorder.with_progress("comparisons", total);
    }
    if kernel_stats {
        mp_strsim::timing::reset();
        mp_strsim::timing::set_enabled(true);
    }
    let (result, theory, rules) = run_passes(flags, &mut records, &recorder, want_report)?;
    if kernel_stats {
        mp_strsim::timing::set_enabled(false);
    }
    theory.record_compiler_counters(&recorder);
    if let Some(pm) = recorder.progress() {
        pm.finish();
    }

    if want_report {
        // Drain once; the Chrome trace and the report share the tracks.
        let tracks = recorder.drain_spans();
        if let Some(path) = &trace_path {
            let json = chrome_trace_json(&tracks);
            std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
            status!(
                to_stderr,
                "wrote Chrome trace to {path} (open in Perfetto or chrome://tracing)"
            );
        }
        if let Some(dest) = &stats_dest {
            let mut report = recorder.report();
            report.span_tree = tracks.into_iter().map(SpanTreeTrack::from).collect();
            report.attribution = Some(result.attribution.clone());
            report.rules = rules;
            if kernel_stats {
                report.kernels = mp_strsim::timing::snapshot()
                    .into_iter()
                    .map(|(name, calls, total_ns)| KernelTime {
                        name,
                        calls,
                        total_ns,
                    })
                    .collect();
            }
            let json = report.to_json();
            if dest == "-" {
                println!("{json}");
            } else {
                std::fs::write(dest, json).map_err(|e| format!("write {dest}: {e}"))?;
                println!("wrote pipeline stats to {dest}");
            }
        }
    } else if kernel_stats {
        for (name, calls, total_ns) in mp_strsim::timing::snapshot() {
            if calls > 0 {
                println!("  kernel {name:<24} {calls:>10} calls  {total_ns:>12} ns");
            }
        }
    }

    let found: usize = result.classes.iter().map(|c| c.len() - 1).sum();
    status!(
        to_stderr,
        "{} records -> {} duplicate groups ({} records shadowed)",
        records.len(),
        result.classes.len(),
        found
    );
    for pass in &result.passes {
        status!(
            to_stderr,
            "  pass [{:>10}] w={:<3} {:>8} pairs, {:>10} comparisons, {:>10} pruned, {:?}",
            pass.key_name,
            pass.window,
            pass.pairs.len(),
            pass.stats.comparisons,
            pass.stats.pairs_pruned,
            pass.stats.total()
        );
    }

    if flags.has("eval") {
        let truth = GroundTruth::from_records(&records);
        if truth.true_pair_count() == 0 {
            status!(
                to_stderr,
                "(no ground-truth entity ids in input; --eval skipped)"
            );
        } else {
            let eval = Evaluation::score(&result.closed_pairs, &truth);
            status!(
                to_stderr,
                "accuracy: {:.1}% of {} true pairs detected, {:.3}% false positives",
                eval.percent_detected,
                eval.true_pairs,
                eval.percent_false_positive
            );
        }
    }

    if let Some(path) = flags.get("pairs-out") {
        let mut f = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        for (a, b) in result.closed_pairs.sorted() {
            writeln!(f, "{a}\t{b}").map_err(|e| e.to_string())?;
        }
        status!(
            to_stderr,
            "wrote {} pairs to {path}",
            result.closed_pairs.len()
        );
    }
    if let Some(path) = flags.get("classes-out") {
        let mut f = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        for class in &result.classes {
            let ids: Vec<String> = class.iter().map(u32::to_string).collect();
            writeln!(f, "{}", ids.join("\t")).map_err(|e| e.to_string())?;
        }
        status!(to_stderr, "wrote {} groups to {path}", result.classes.len());
    }

    if purge {
        let out = flags.require("out")?;
        let purger = theory.purger();
        let survivors = result.purge(&records, &purger);
        let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
        rio::write_records(file, &survivors).map_err(|e| format!("write {out}: {e}"))?;
        status!(
            to_stderr,
            "purged: {} -> {} records written to {out}",
            records.len(),
            survivors.len()
        );
    }
    Ok(())
}

/// `mergepurge eval` — run the pipeline and score its closed pairs
/// against ground truth (the paper's Fig. 2 metrics). Truth comes from
/// `--truth FILE` (a record file whose entity column labels the real
/// duplicates) or, without it, from the input's own entity column.
fn eval_cmd(flags: &Flags) -> Result<(), String> {
    let mut records = load_records(flags)?;
    let truth = match flags.get("truth") {
        Some(path) => {
            let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
            let truth_records = rio::read_records(BufReader::new(file))
                .map_err(|e| format!("parse {path}: {e}"))?;
            if truth_records.len() != records.len() {
                return Err(format!(
                    "--truth {path} holds {} records but the input holds {}; \
                     both files must describe the same database",
                    truth_records.len(),
                    records.len()
                ));
            }
            GroundTruth::from_records(&truth_records)
        }
        None => GroundTruth::from_records(&records),
    };
    if truth.true_pair_count() == 0 {
        return Err("ground truth has no duplicate pairs (no entity ids?); \
             pass --truth FILE with labeled records"
            .into());
    }
    let recorder = MetricsRecorder::new();
    let (result, _theory, _) = run_passes(flags, &mut records, &recorder, false)?;
    let eval = Evaluation::score(&result.closed_pairs, &truth);
    println!(
        "{} records, {} true pairs, {} found ({} true + {} false)",
        records.len(),
        eval.true_pairs,
        eval.found_pairs,
        eval.true_found,
        eval.false_found
    );
    println!(
        "detected {:.1}%   false-positive {:.3}%   precision {:.1}%",
        eval.percent_detected,
        eval.percent_false_positive,
        eval.percent_precision()
    );
    Ok(())
}

fn serve_cmd(flags: &Flags) -> Result<(), String> {
    use merge_purge_repro::serve::{serve, ServeConfig};
    let socket = flags.require("socket")?;
    let store = flags.require("store")?;
    let window: usize = flags.get_parsed("window", 10)?;
    if window < 2 {
        return Err("--window must be at least 2".into());
    }
    let mut config = ServeConfig::new(socket, store);
    config.window = window;
    config.keys = parse_keys(flags)?;
    config.shards = flags.get_parsed("shards", 1)?;
    if config.shards == 0 || config.shards > 27 {
        return Err("--shards must be 1..=27 (key bands by first letter)".into());
    }
    config.listen = flags.get("listen").map(str::to_string);
    config.queue_depth = flags.get_parsed("queue-depth", 4)?;
    if config.queue_depth == 0 {
        return Err("--queue-depth must be at least 1".into());
    }
    config.snapshot_every = flags.get_parsed("snapshot-every", 0)?;
    config.metrics_addr = flags.get("metrics-addr").map(str::to_string);
    config.log_file = flags.get("log").map(std::path::PathBuf::from);
    if let Some(level) = flags.get("log-level") {
        config.log_level =
            merge_purge_repro::serve::eventlog::Level::parse(level).ok_or_else(|| {
                format!("invalid --log-level {level:?} (expected error, warn, info, or debug)")
            })?;
    }
    config.log_max_bytes = flags.get_parsed(
        "log-max-bytes",
        merge_purge_repro::serve::eventlog::DEFAULT_MAX_BYTES,
    )?;
    if config.log_max_bytes == 0 {
        return Err("--log-max-bytes must be at least 1".into());
    }
    config.log_keep =
        flags.get_parsed("log-keep", merge_purge_repro::serve::eventlog::DEFAULT_KEEP)?;
    if config.log_keep == 0 {
        return Err("--log-keep must be at least 1".into());
    }
    config.slow_batch_ms = flags.get_parsed("slow-batch-ms", 0)?;
    config.large_cluster_threshold = flags.get_parsed("large-cluster-threshold", 100)?;
    config.bulk_load = flags.get("bulk-load").map(std::path::PathBuf::from);
    config.bulk = parse_external(flags)?;
    config.quiet = flags.has("quiet");
    config.progress = flags.has("progress");
    let stats_path = flags.get("stats").map(str::to_string);
    let trace_path = flags.get("trace").map(str::to_string);

    // The daemon sees records incrementally, so the compiled plan is the
    // static one (no calibration sample exists up front).
    let theory = Theory::load(flags, None)?;
    let theory_dyn: &(dyn EquationalTheory + Sync) = match &theory {
        Theory::Native(t) => t,
        Theory::Program(p) => p,
        Theory::Compiled(c) => c,
    };
    // Tracing is always on for serve: the flight recorder is what the
    // live `trace` command and GET /trace answer from, and the per-batch
    // drain keeps the span buffers from accumulating.
    let recorder = MetricsRecorder::new().with_tracing();
    let flight = FlightRecorder::default();
    serve(&config, theory_dyn, &recorder, &flight)?;
    theory.record_compiler_counters(&recorder);

    // The daemon has drained; attach the observability artifacts. The
    // per-batch spans already sit in the flight recorder — whatever
    // recorded after its last in-daemon sweep (the `serve` root span)
    // joins them as one final entry so the dump covers the whole run.
    let tracks = recorder.drain_spans();
    if let Some(path) = &trace_path {
        flight.record("serve", 0, false, tracks.clone());
        std::fs::write(path, flight.chrome_json()).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote Chrome trace to {path}");
    }
    if let Some(path) = &stats_path {
        let mut report = recorder.report();
        report.span_tree = tracks.into_iter().map(SpanTreeTrack::from).collect();
        std::fs::write(path, report.to_json()).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote pipeline stats to {path}");
    }
    Ok(())
}

/// Where `send`/`top` talk to: the daemon's Unix socket or its TCP
/// listener. Same framing either way.
enum Target {
    Unix(std::path::PathBuf),
    Tcp(String),
}

impl Target {
    fn parse(flags: &Flags) -> Result<Target, String> {
        match (flags.get("socket"), flags.get("addr")) {
            (Some(s), None) => Ok(Target::Unix(s.into())),
            (None, Some(a)) => Ok(Target::Tcp(a.to_string())),
            (Some(_), Some(_)) => Err("--socket and --addr are mutually exclusive".into()),
            (None, None) => Err("need --socket PATH or --addr HOST:PORT".into()),
        }
    }

    fn request(&self, payload: &str) -> Result<String, String> {
        match self {
            Target::Unix(socket) => merge_purge_repro::serve::request(socket, payload)
                .map_err(|e| format!("request to {}: {e}", socket.display())),
            Target::Tcp(addr) => merge_purge_repro::serve::request_tcp(addr, payload)
                .map_err(|e| format!("request to {addr}: {e}")),
        }
    }

    fn display(&self) -> String {
        match self {
            Target::Unix(socket) => socket.display().to_string(),
            Target::Tcp(addr) => format!("tcp://{addr}"),
        }
    }
}

fn send_cmd(flags: &Flags) -> Result<(), String> {
    use merge_purge_repro::serve::ingest_request;
    let target = Target::parse(flags)?;
    let payload = if let Some(raw) = flags.get("json") {
        raw.to_string()
    } else {
        match flags.require("cmd")? {
            "ingest-batch" => {
                let batch = load_records(flags)?;
                ingest_request(&batch)
            }
            "bulk-load" => {
                // The path travels to the daemon, which opens it locally —
                // absolutize so a relative client path still resolves there.
                let input = flags.require("input")?;
                let path =
                    std::fs::canonicalize(input).map_err(|e| format!("resolve {input}: {e}"))?;
                use merge_purge_repro::serve::json::Json;
                Json::Obj(vec![
                    ("cmd".into(), Json::Str("bulk-load".into())),
                    ("path".into(), Json::Str(path.display().to_string())),
                ])
                .to_string()
            }
            "query-matches" => {
                let id: u32 = flags
                    .require("id")?
                    .parse()
                    .map_err(|_| "invalid --id value")?;
                format!("{{\"cmd\":\"query-matches\",\"id\":{id}}}")
            }
            cmd @ ("stats" | "snapshot" | "metrics" | "trace" | "healthz" | "readyz"
            | "shutdown") => {
                format!("{{\"cmd\":\"{cmd}\"}}")
            }
            other => {
                return Err(format!(
                    "unknown --cmd {other:?} (expected ingest-batch, bulk-load, \
                     query-matches, stats, snapshot, metrics, trace, healthz, readyz, \
                     or shutdown)"
                ))
            }
        }
    };
    let response = target.request(&payload)?;
    let parsed = merge_purge_repro::serve::json::Json::parse(&response).ok();
    // A `metrics` reply embeds the Prometheus text and a `trace` reply
    // the Chrome trace JSON; print those raw so the output pipes
    // straight into promtool / Perfetto without unwrapping.
    let embedded = parsed.as_ref().and_then(|v| {
        v.get("exposition")
            .or_else(|| v.get("trace"))
            .and_then(|e| e.as_str())
    });
    match embedded {
        Some(raw) => print!("{raw}"),
        None => println!("{response}"),
    }
    // Mirror the daemon's verdict in the exit code so shell scripts can
    // branch on `send` directly.
    let ok = parsed
        .and_then(|v| v.get("ok").and_then(|o| o.as_bool()))
        .unwrap_or(false);
    if ok {
        Ok(())
    } else {
        Err("daemon reported failure (see response above)".into())
    }
}

/// `mergepurge top` — poll a running daemon's `stats` and render an
/// in-place refreshing operational view (rates, queue, latency
/// quantiles, snapshot staleness).
fn top_cmd(flags: &Flags) -> Result<(), String> {
    use merge_purge_repro::serve::json::Json;
    let target = Target::parse(flags)?;
    let json_mode = flags.has("json");
    let interval_ms: u64 = flags.get_parsed("interval-ms", 2000)?;
    // 0 = forever; --json defaults to a single frame so scripts get one
    // document per invocation unless they ask for a stream.
    let iterations: u64 = flags.get_parsed("iterations", if json_mode { 1 } else { 0 })?;
    let mut frame = 0u64;
    loop {
        let reply = target.request("{\"cmd\":\"stats\"}")?;
        let stats = Json::parse(&reply).map_err(|e| format!("bad stats reply: {e}"))?;
        if stats.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(format!("daemon error: {reply}"));
        }
        if json_mode {
            // One machine-readable digest per line; no ANSI control
            // sequences, so the stream pipes cleanly into jq.
            println!("{}", top_json(&stats, &target.display()));
        } else {
            if frame > 0 {
                // Clear and home between frames only, so single-shot output
                // (--iterations 1, as used in tests and CI) stays plain text.
                print!("\x1b[2J\x1b[H");
            }
            print!("{}", render_top(&stats, &target.display()));
        }
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        frame += 1;
        if iterations > 0 && frame >= iterations {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// Builds the `top --json` digest frame: the daemon's `stats` sections
/// that matter operationally, re-keyed under a stable envelope with the
/// polled target, so each line is a self-describing sample.
fn top_json(stats: &merge_purge_repro::serve::json::Json, socket: &str) -> String {
    use merge_purge_repro::serve::json::Json;
    let section = |key: &str| stats.get(key).cloned().unwrap_or(Json::Null);
    let mut fields = vec![
        ("target".to_string(), Json::Str(socket.to_string())),
        ("schema".to_string(), section("schema")),
        ("seq".to_string(), section("seq")),
        ("health".to_string(), section("health")),
        ("store".to_string(), section("store")),
        ("windows".to_string(), section("windows")),
        ("tracing".to_string(), section("tracing")),
        ("quality".to_string(), section("quality")),
    ];
    if let Some(shards) = stats.get("shards") {
        fields.push(("shards".to_string(), shards.clone()));
    }
    Json::Obj(fields).to_string()
}

/// Formats a nanosecond latency for humans (µs/ms/s).
fn human_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}us", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// Renders one `top` frame from a schema-6 `stats` reply.
fn render_top(stats: &merge_purge_repro::serve::json::Json, socket: &str) -> String {
    use merge_purge_repro::serve::json::Json;
    let num = |v: Option<&Json>| v.and_then(Json::as_u64).unwrap_or(0);
    let health = stats.get("health");
    let store = stats.get("store");
    let h = |key: &str| num(health.and_then(|h| h.get(key)));
    let yn = |key: &str| {
        if health.and_then(|o| o.get(key)).and_then(Json::as_bool) == Some(true) {
            "yes"
        } else {
            "NO"
        }
    };
    let mut out = String::new();
    out.push_str(&format!(
        "mergepurge top — {socket}\n\
         up {}s   ready {}   alive {}   seq {}\n\
         records {}   groups {}   duplicates {}   queue {}/{}   journal lag {}   backpressure {}\n",
        h("uptime_secs"),
        yn("ready"),
        yn("alive"),
        num(stats.get("seq")),
        num(store.and_then(|s| s.get("records"))),
        num(store.and_then(|s| s.get("duplicate_groups"))),
        num(store.and_then(|s| s.get("duplicate_records"))),
        h("queue_depth"),
        h("queue_capacity"),
        h("journal_lag"),
        h("backpressure_waits"),
    ));
    match health
        .and_then(|o| o.get("snapshot_age_secs"))
        .and_then(Json::as_u64)
    {
        Some(age) => out.push_str(&format!(
            "snapshot {} bytes, {age}s old\n",
            h("snapshot_bytes")
        )),
        None => out.push_str("snapshot none yet\n"),
    }
    if let Some(tracing) = stats.get("tracing") {
        let fnum = |key: &str| match tracing.get(key) {
            Some(Json::Num(n)) => *n,
            _ => 0.0,
        };
        out.push_str(&format!(
            "trace {}   flight {}/{} pinned   imbalance(1m) {:.2}   reconcile p99 {}\n",
            tracing
                .get("last_trace_id")
                .and_then(Json::as_str)
                .unwrap_or("-"),
            num(tracing.get("flight_entries")),
            num(tracing.get("flight_pinned")),
            fnum("imbalance_1m"),
            human_ns(fnum("reconcile_p99_ns") as u64),
        ));
    }
    out.push_str(&format!(
        "\n{:<8}{:>12}{:>12}{:>12}{:>12}{:>10}{:>10}{:>10}\n",
        "window", "records/s", "cmp/s", "rules/s", "matches/s", "p50", "p95", "p99"
    ));
    if let Some(windows) = stats.get("windows").and_then(Json::as_array) {
        for w in windows {
            let rate = |key: &str| {
                w.get(&format!("{key}_per_sec"))
                    .map(|v| match v {
                        Json::Num(n) => format!("{n:.1}"),
                        _ => "0.0".into(),
                    })
                    .unwrap_or_else(|| "0.0".into())
            };
            out.push_str(&format!(
                "{:<8}{:>12}{:>12}{:>12}{:>12}{:>10}{:>10}{:>10}\n",
                w.get("window").and_then(Json::as_str).unwrap_or("?"),
                rate("records"),
                rate("comparisons"),
                rate("rule_invocations"),
                rate("matches"),
                human_ns(num(w.get("batch_p50_ns"))),
                human_ns(num(w.get("batch_p95_ns"))),
                human_ns(num(w.get("batch_p99_ns"))),
            ));
        }
    }
    if let Some(quality) = stats.get("quality") {
        let qnum = |key: &str| num(quality.get(key));
        let fnum = |key: &str| match quality.get(key) {
            Some(Json::Num(n)) => *n,
            _ => 0.0,
        };
        out.push_str(&format!(
            "\nquality: {} clusters   largest {}   merge edges {}   selectivity(1m) {:.4}\n",
            qnum("clusters"),
            qnum("largest_cluster"),
            qnum("merge_edges"),
            fnum("selectivity_1m"),
        ));
        if let Some(hist) = quality.get("cluster_size_hist").and_then(Json::as_array) {
            let buckets: Vec<String> = hist
                .iter()
                .map(|b| format!("{}+:{}", num(b.get("size_min")), num(b.get("count"))))
                .collect();
            if !buckets.is_empty() {
                out.push_str(&format!("cluster sizes  {}\n", buckets.join("  ")));
            }
        }
        if let Some(rules) = quality.get("rules").and_then(Json::as_array) {
            // Top five rules by firings — the theory's workhorses.
            let mut by_firings: Vec<(&Json, u64)> =
                rules.iter().map(|r| (r, num(r.get("firings")))).collect();
            by_firings.sort_by_key(|&(_, f)| std::cmp::Reverse(f));
            for (r, firings) in by_firings.iter().take(5).filter(|&&(_, f)| f > 0) {
                out.push_str(&format!(
                    "  rule {:<32} {:>10} firings\n",
                    r.get("rule").and_then(Json::as_str).unwrap_or("?"),
                    firings,
                ));
            }
        }
    }
    if let Some(shards) = stats.get("shards").and_then(Json::as_array) {
        out.push_str(&format!(
            "\n{:<8}{:>12}{:>16}{:>12}{:>10}{:>10}{:>10}\n",
            "shard", "records", "journal replays", "queue", "replayed", "scan p50", "scan p99"
        ));
        for s in shards {
            out.push_str(&format!(
                "{:<8}{:>12}{:>16}{:>12}{:>10}{:>10}{:>10}\n",
                num(s.get("shard")),
                num(s.get("records")),
                num(s.get("journal_replays")),
                num(s.get("queue_depth")),
                if s.get("replay_complete").and_then(Json::as_bool) == Some(true) {
                    "yes"
                } else {
                    "NO"
                },
                human_ns(num(s.get("scan_p50_ns"))),
                human_ns(num(s.get("scan_p99_ns"))),
            ));
        }
    }
    out
}

/// `mergepurge trace` — pull the flight recorder's retained batch spans
/// from a running daemon and write them as a Chrome trace JSON file that
/// loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
fn trace_cmd(flags: &Flags) -> Result<(), String> {
    use merge_purge_repro::serve::json::Json;
    let target = Target::parse(flags)?;
    let out = flags.get("out").unwrap_or("flight.trace.json");
    let reply = target.request("{\"cmd\":\"trace\"}")?;
    let parsed = Json::parse(&reply).map_err(|e| format!("bad trace reply: {e}"))?;
    if parsed.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!("daemon error: {reply}"));
    }
    let dump = parsed
        .get("trace")
        .and_then(Json::as_str)
        .ok_or("trace reply missing the `trace` document")?;
    std::fs::write(out, dump).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!(
        "wrote {out}: {} retained batches ({} pinned slow) from {}",
        parsed.get("entries").and_then(Json::as_u64).unwrap_or(0),
        parsed.get("pinned").and_then(Json::as_u64).unwrap_or(0),
        target.display(),
    );
    Ok(())
}

/// `mergepurge explain` against a running daemon: ask the engine worker
/// for the provenance evidence chain between two record ids and render
/// it hop by hop.
fn explain_live(flags: &Flags) -> Result<(), String> {
    use merge_purge_repro::serve::json::Json;
    let target = Target::parse(flags)?;
    let a: u32 = flags.require("a")?.parse().map_err(|_| "invalid --a id")?;
    let b: u32 = flags.require("b")?.parse().map_err(|_| "invalid --b id")?;
    let reply = target.request(&format!("{{\"cmd\":\"explain\",\"a\":{a},\"b\":{b}}}"))?;
    let parsed = Json::parse(&reply).map_err(|e| format!("bad explain reply: {e}"))?;
    if parsed.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!("daemon error: {reply}"));
    }
    let seq = parsed.get("seq").and_then(Json::as_u64).unwrap_or(0);
    if parsed.get("connected").and_then(Json::as_bool) != Some(true) {
        println!("records {a} and {b} are in different duplicate classes (as of seq {seq})");
        return Ok(());
    }
    let chain: &[Json] = parsed.get("chain").and_then(Json::as_array).unwrap_or(&[]);
    if chain.is_empty() {
        println!(
            "records {a} and {b} are connected with no recorded merge edges \
             (same id, or a bulk-loaded base — see docs/PROVENANCE.md)"
        );
        return Ok(());
    }
    println!(
        "records {a} and {b} are duplicates: {} merge edge(s) connect them (as of seq {seq})",
        chain.len()
    );
    for (i, e) in chain.iter().enumerate() {
        let num = |key: &str| e.get(key).and_then(Json::as_u64).unwrap_or(0);
        println!(
            "  {:>3}. {} ~ {}  rule `{}` (id {})  pass {}  batch {}  trace {}",
            i + 1,
            num("a"),
            num("b"),
            e.get("rule").and_then(Json::as_str).unwrap_or("?"),
            num("rule_id"),
            num("pass"),
            num("batch_seq"),
            e.get("trace_id").and_then(Json::as_str).unwrap_or("-"),
        );
    }
    Ok(())
}

fn explain(flags: &Flags) -> Result<(), String> {
    // With a daemon target, walk the live provenance forest; the offline
    // path below re-evaluates the pair against the theory instead.
    if flags.get("socket").is_some() || flags.get("addr").is_some() {
        return explain_live(flags);
    }
    let mut records = load_records(flags)?;
    let a: usize = flags.require("a")?.parse().map_err(|_| "invalid --a id")?;
    let b: usize = flags.require("b")?.parse().map_err(|_| "invalid --b id")?;
    if a >= records.len() || b >= records.len() {
        return Err(format!(
            "record ids out of range (file has {})",
            records.len()
        ));
    }
    mp_record::normalize::condition_all(&mut records, &mp_record::NicknameTable::standard());
    let theory = Theory::load(flags, None)?;
    let (ra, rb) = (&records[a], &records[b]);
    println!("record {a}: {ra:?}");
    println!("record {b}: {rb:?}");
    match &theory {
        Theory::Program(p) => match p.matching_rule(ra, rb) {
            Some(rule) => println!("MATCH via rule `{rule}`"),
            None => println!("no rule fires for this pair"),
        },
        Theory::Compiled(c) => match c.matching_rule(ra, rb) {
            Some(rule) => println!("MATCH via rule `{rule}`"),
            None => println!("no rule fires for this pair"),
        },
        Theory::Native(t) => {
            // The native theory has no per-rule trace; fall back to the DSL
            // twin, which agrees pair-for-pair.
            let dsl = mp_rules::employee_program();
            match dsl.matching_rule(ra, rb) {
                Some(rule) => println!("MATCH via rule `{rule}`"),
                None => {
                    debug_assert!(!t.matches(ra, rb));
                    println!("no rule fires for this pair");
                }
            }
        }
    }
    Ok(())
}
