//! Static type checking of rule programs.

use crate::ast::{CmpOp, Expr, Program};
use crate::builtins::lookup;
use crate::token::Pos;
use crate::value::Type;
use std::fmt;

/// A type error with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeError {
    msg: String,
    pos: Pos,
}

impl TypeError {
    fn new(msg: impl Into<String>, pos: Pos) -> Self {
        TypeError {
            msg: msg.into(),
            pos,
        }
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.msg, self.pos)
    }
}

impl std::error::Error for TypeError {}

/// Checks that every rule condition is boolean and every subexpression is
/// well-typed.
pub fn check(program: &Program) -> Result<(), TypeError> {
    for rule in &program.rules {
        let t = infer(&rule.condition)?;
        if t != Type::Bool {
            return Err(TypeError::new(
                format!("rule {:?} condition has type {t}, expected bool", rule.name),
                rule.condition.pos(),
            ));
        }
    }
    Ok(())
}

/// Infers the type of an expression, failing on any inconsistency.
pub fn infer(expr: &Expr) -> Result<Type, TypeError> {
    match expr {
        Expr::Bool(_, _) => Ok(Type::Bool),
        Expr::Num(_, _) => Ok(Type::Num),
        Expr::Str(_, _) => Ok(Type::Str),
        Expr::FieldRef(_, _, _) => Ok(Type::Str),
        Expr::Not(inner, pos) => {
            let t = infer(inner)?;
            if t != Type::Bool {
                return Err(TypeError::new(format!("`not` applied to {t}"), *pos));
            }
            Ok(Type::Bool)
        }
        Expr::And(parts, _) | Expr::Or(parts, _) => {
            for p in parts {
                let t = infer(p)?;
                if t != Type::Bool {
                    return Err(TypeError::new(
                        format!("logical operand has type {t}, expected bool"),
                        p.pos(),
                    ));
                }
            }
            Ok(Type::Bool)
        }
        Expr::Cmp(op, lhs, rhs, pos) => {
            let lt = infer(lhs)?;
            let rt = infer(rhs)?;
            if lt != rt {
                return Err(TypeError::new(
                    format!("cannot compare {lt} {} {rt}", op.symbol()),
                    *pos,
                ));
            }
            match op {
                CmpOp::Eq | CmpOp::Ne => Ok(Type::Bool),
                _ if lt == Type::Num => Ok(Type::Bool),
                _ => Err(TypeError::new(
                    format!(
                        "ordering comparison {} requires numbers, got {lt}",
                        op.symbol()
                    ),
                    *pos,
                )),
            }
        }
        Expr::Call(name, args, pos) => {
            let b = lookup(name)
                .ok_or_else(|| TypeError::new(format!("unknown function {name:?}"), *pos))?;
            if args.len() != b.params.len() {
                return Err(TypeError::new(
                    format!(
                        "{name} expects {} argument(s), got {}",
                        b.params.len(),
                        args.len()
                    ),
                    *pos,
                ));
            }
            for (i, (arg, want)) in args.iter().zip(b.params).enumerate() {
                let got = infer(arg)?;
                if got != *want {
                    return Err(TypeError::new(
                        format!(
                            "argument {} of {name} has type {got}, expected {want}",
                            i + 1
                        ),
                        arg.pos(),
                    ));
                }
            }
            Ok(b.ret)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<(), TypeError> {
        check(&parse(src).unwrap())
    }

    #[test]
    fn well_typed_program_passes() {
        check_src(
            r#"rule r {
                when r1.last_name == r2.last_name
                 and edit_sim(r1.first_name, r2.first_name) >= 0.75
                 and not is_empty(r1.city)
                then match
            }"#,
        )
        .unwrap();
    }

    #[test]
    fn non_bool_condition_rejected() {
        let err = check_src("rule r { when len(r1.city) then match }").unwrap_err();
        assert!(err.to_string().contains("expected bool"), "{err}");
    }

    #[test]
    fn mixed_comparison_rejected() {
        let err = check_src("rule r { when r1.city == 3 then match }").unwrap_err();
        assert!(err.to_string().contains("cannot compare"), "{err}");
    }

    #[test]
    fn string_ordering_rejected() {
        let err = check_src("rule r { when r1.city < r2.city then match }").unwrap_err();
        assert!(err.to_string().contains("requires numbers"), "{err}");
    }

    #[test]
    fn unknown_function_rejected() {
        let err = check_src("rule r { when frobnicate(r1.city) then match }").unwrap_err();
        assert!(err.to_string().contains("unknown function"), "{err}");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = check_src("rule r { when is_empty(r1.city, r2.city) then match }").unwrap_err();
        assert!(err.to_string().contains("expects 1 argument"), "{err}");
    }

    #[test]
    fn argument_type_mismatch_rejected() {
        let err = check_src("rule r { when is_empty(3) then match }").unwrap_err();
        assert!(err.to_string().contains("argument 1"), "{err}");
    }

    #[test]
    fn not_of_non_bool_rejected() {
        // `not` applies to a full comparison, so this is fine...
        check_src("rule r { when not len(r1.city) > 1 then match }").unwrap();
        // ...but `not` over a string-typed expression is an error.
        let err = check_src("rule r { when not prefix(r1.city, 1) then match }").unwrap_err();
        assert!(err.to_string().contains("`not` applied to string"), "{err}");
    }

    #[test]
    fn logical_operand_must_be_bool() {
        let err = check_src("rule r { when true and len(r1.city) then match }").unwrap_err();
        assert!(err.to_string().contains("logical operand"), "{err}");
    }

    #[test]
    fn bool_equality_allowed() {
        check_src("rule r { when is_empty(r1.city) == is_empty(r2.city) then match }").unwrap();
    }
}
