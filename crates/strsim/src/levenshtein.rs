//! Classic edit distance with a reusable work buffer, a bounded variant with
//! early termination, and a normalized similarity.

/// Reusable scratch space for repeated edit-distance computations.
///
/// The window-scan phase of the sorted-neighborhood method computes edit
/// distance for every pair inside every window; allocating two DP rows per
/// call would dominate the constant factor the paper calls `c_wscan`. Keep
/// one `EditBuffer` per worker and reuse it.
///
/// ```
/// use mp_strsim::EditBuffer;
/// let mut buf = EditBuffer::new();
/// assert_eq!(buf.distance("KITTEN", "SITTING"), 3);
/// assert_eq!(buf.distance("", "ABC"), 3);
/// ```
#[derive(Debug, Default)]
pub struct EditBuffer {
    row: Vec<usize>,
    a_chars: Vec<char>,
    b_chars: Vec<char>,
}

impl EditBuffer {
    /// Creates an empty buffer; it grows on first use and is then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Levenshtein distance between `a` and `b`, reusing internal storage.
    pub fn distance(&mut self, a: &str, b: &str) -> usize {
        self.a_chars.clear();
        self.a_chars.extend(a.chars());
        self.b_chars.clear();
        self.b_chars.extend(b.chars());
        distance_impl(&self.a_chars, &self.b_chars, &mut self.row)
    }

    /// Normalized similarity in `[0, 1]`; `1.0` means equal strings.
    pub fn similarity(&mut self, a: &str, b: &str) -> f64 {
        let d = self.distance(a, b);
        normalize(d, self.a_chars.len(), self.b_chars.len())
    }
}

pub(crate) fn normalize(distance: usize, a_len: usize, b_len: usize) -> f64 {
    let max = a_len.max(b_len);
    if max == 0 {
        1.0
    } else {
        1.0 - distance as f64 / max as f64
    }
}

/// Single-row DP over element slices (chars, or raw bytes when both inputs
/// are known ASCII). `row` is caller-provided scratch.
pub(crate) fn distance_impl<T: PartialEq + Copy>(a: &[T], b: &[T], row: &mut Vec<usize>) -> usize {
    // Iterate over the shorter string in the inner dimension to minimize the
    // row we keep live.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    row.clear();
    row.extend(0..=short.len());
    for (i, &lc) in long.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            let next = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[short.len()]
}

/// Levenshtein (edit) distance: the minimum number of single-character
/// insertions, deletions, and substitutions transforming `a` into `b`.
///
/// ```
/// use mp_strsim::levenshtein;
/// assert_eq!(levenshtein("FLAW", "LAWN"), 2);
/// assert_eq!(levenshtein("", ""), 0);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // Pre-size the DP row: `distance_impl` iterates the shorter string in
    // the inner dimension, so the row holds `min + 1` entries.
    let mut row = Vec::with_capacity(a.len().min(b.len()) + 1);
    distance_impl(&a, &b, &mut row)
}

/// Levenshtein distance with an upper bound: returns `None` as soon as the
/// distance provably exceeds `max`, which lets rule predicates bail out of
/// hopeless comparisons early.
///
/// ```
/// use mp_strsim::levenshtein_bounded;
/// assert_eq!(levenshtein_bounded("SMITH", "SMYTH", 1), Some(1));
/// assert_eq!(levenshtein_bounded("SMITH", "GARCIA", 2), None);
/// ```
pub fn levenshtein_bounded(a: &str, b: &str, max: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut row = Vec::with_capacity(a.len().min(b.len()) + 1);
    bounded_impl(&a, &b, max, &mut row)
}

/// Bounded DP over element slices with early exit. `row` is caller scratch.
pub(crate) fn bounded_impl<T: PartialEq + Copy>(
    a: &[T],
    b: &[T],
    max: usize,
    row: &mut Vec<usize>,
) -> Option<usize> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    // The distance is at least the length difference.
    if long.len() - short.len() > max {
        return None;
    }
    if short.is_empty() {
        return Some(long.len());
    }
    row.clear();
    row.extend(0..=short.len());
    for (i, &lc) in long.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        let mut row_min = row[0];
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            let next = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = next;
            row_min = row_min.min(next);
        }
        if row_min > max {
            return None;
        }
    }
    let d = row[short.len()];
    (d <= max).then_some(d)
}

/// Length-normalized edit similarity in `[0, 1]`.
///
/// Defined as `1 - d(a, b) / max(|a|, |b|)`; two empty strings are perfectly
/// similar.
///
/// ```
/// use mp_strsim::normalized_levenshtein;
/// assert_eq!(normalized_levenshtein("AAAA", "AAAA"), 1.0);
/// assert_eq!(normalized_levenshtein("AAAA", "BBBB"), 0.0);
/// ```
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let ac = a.chars().count();
    let bc = b.chars().count();
    normalize(levenshtein(a, b), ac, bc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("KITTEN", "SITTING"), 3);
        assert_eq!(levenshtein("SATURDAY", "SUNDAY"), 3);
        assert_eq!(levenshtein("ABC", "ABC"), 0);
        assert_eq!(levenshtein("", "ABC"), 3);
        assert_eq!(levenshtein("ABC", ""), 3);
        assert_eq!(levenshtein("", ""), 0);
    }

    #[test]
    fn single_char_operations() {
        assert_eq!(levenshtein("A", "B"), 1); // substitution
        assert_eq!(levenshtein("A", "AB"), 1); // insertion
        assert_eq!(levenshtein("AB", "A"), 1); // deletion
    }

    #[test]
    fn transposition_costs_two_without_damerau() {
        assert_eq!(levenshtein("AB", "BA"), 2);
    }

    #[test]
    fn unicode_chars_count_as_one() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
    }

    #[test]
    fn bounded_matches_exact_within_limit() {
        let pairs = [("KITTEN", "SITTING"), ("SMITH", "SMYTHE"), ("A", "")];
        for (a, b) in pairs {
            let d = levenshtein(a, b);
            assert_eq!(levenshtein_bounded(a, b, d), Some(d));
            assert_eq!(levenshtein_bounded(a, b, d + 5), Some(d));
            if d > 0 {
                assert_eq!(levenshtein_bounded(a, b, d - 1), None);
            }
        }
    }

    #[test]
    fn bounded_rejects_on_length_gap() {
        assert_eq!(levenshtein_bounded("AB", "ABCDEFGH", 3), None);
    }

    #[test]
    fn bounded_early_exit_at_max_threshold() {
        // Equal lengths, so the length-gap check cannot reject: the
        // row-minimum early exit must fire mid-DP.
        assert_eq!(levenshtein_bounded("AAAAAA", "BBBBBB", 3), None);
        // The tightest accepting threshold is max == d; one below rejects.
        assert_eq!(levenshtein_bounded("AAAAAA", "BBBBBB", 6), Some(6));
        assert_eq!(levenshtein_bounded("AAAAAA", "BBBBBB", 5), None);
        // max == 0 degenerates to an equality test.
        assert_eq!(levenshtein_bounded("SMITH", "SMITH", 0), Some(0));
        assert_eq!(levenshtein_bounded("SMITH", "SMYTH", 0), None);
    }

    #[test]
    fn normalized_bounds() {
        assert_eq!(normalized_levenshtein("", ""), 1.0);
        assert_eq!(normalized_levenshtein("", "XYZ"), 0.0);
        let s = normalized_levenshtein("JOHNSON", "JOHNSTON");
        assert!(s > 0.8 && s < 1.0, "got {s}");
    }

    #[test]
    fn buffer_reuse_is_consistent() {
        let mut buf = EditBuffer::new();
        assert_eq!(buf.distance("KITTEN", "SITTING"), 3);
        assert_eq!(buf.distance("", ""), 0);
        assert_eq!(
            buf.distance("LONGERSTRING", "SHORT"),
            levenshtein("LONGERSTRING", "SHORT")
        );
        assert!((buf.similarity("AAAA", "AABA") - 0.75).abs() < 1e-12);
    }
}
