#![warn(missing_docs)]

//! Key-space clustering substrate for the clustering method (§2.2.1, §4.2).
//!
//! The clustering method avoids a full sort of the database: it maps each
//! record's key into one of `C` clusters chosen so every cluster receives
//! roughly `1/C` of the records, then sorts and window-scans each cluster
//! independently (and in parallel). Balance comes from a frequency
//! histogram over the key domain: "given a frequency distribution histogram
//! with B bins for that field (C ≤ B), we want to divide those B bins ...
//! into C subranges" with "the sum of the frequencies over the subrange ...
//! close to 1/C."
//!
//! * [`KeyHistogram`] — B-bin histogram over fixed-length key prefixes
//!   (the paper's 27×27×27 space for three letters), built from a full scan
//!   or a random sample;
//! * [`RangePartition`] — balanced division of the bins into `C` contiguous
//!   subranges with `log B` lookup;
//! * [`lpt_assign`] — Graham's longest-processing-time-first rule for
//!   re-balancing clusters across processors (§4.2).

pub mod balance;
pub mod histogram;
pub mod partition;

pub use balance::{lpt_assign, Assignment};
pub use histogram::KeyHistogram;
pub use partition::RangePartition;
