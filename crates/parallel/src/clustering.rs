//! The parallel clustering method (§4.2).

use crate::parallel_extract_keys;
use merge_purge::{ClusteringConfig, KeySpec, PassResult, PassStats};
use mp_closure::PairSet;
use mp_cluster::{lpt_assign, KeyHistogram, RangePartition};
use mp_metrics::{span, span_labeled, Counter, NoopObserver, Phase, PipelineObserver};
use mp_record::Record;
use mp_rules::EquationalTheory;
use std::time::Instant;

/// Parallel clustering pass: the coordinator histograms the key space into
/// `C·P` subranges, distributes records to clusters, LPT-balances clusters
/// across `P` processors, and each processor sorts and window-scans its
/// clusters locally.
///
/// ```
/// use mp_parallel::ParallelClustering;
/// use merge_purge::{ClusteringConfig, KeySpec};
/// use mp_datagen::{DatabaseGenerator, GeneratorConfig};
/// use mp_rules::NativeEmployeeTheory;
///
/// let db = DatabaseGenerator::new(GeneratorConfig::new(400).seed(4)).generate();
/// let pc = ParallelClustering::new(
///     KeySpec::last_name_key(),
///     ClusteringConfig { clusters: 100, histogram_prefix: 3, cluster_key_len: 6, window: 10 },
///     4,
/// );
/// let result = pc.run(&db.records, &NativeEmployeeTheory::new());
/// assert!(result.pairs.len() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct ParallelClustering {
    key: KeySpec,
    /// `config.clusters` is interpreted as clusters *per processor* (the
    /// paper runs "100 clusters per processor").
    config: ClusteringConfig,
    processors: usize,
}

impl ParallelClustering {
    /// A parallel clustering pass.
    ///
    /// # Panics
    ///
    /// Panics when `window < 2`, `clusters == 0`, or `processors == 0`.
    pub fn new(key: KeySpec, config: ClusteringConfig, processors: usize) -> Self {
        assert!(config.window >= 2, "window must hold at least two records");
        assert!(
            config.clusters >= 1,
            "need at least one cluster per processor"
        );
        assert!(processors >= 1, "need at least one processor");
        ParallelClustering {
            key,
            config,
            processors,
        }
    }

    /// Number of worker threads.
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// Total clusters formed (`C · P`).
    pub fn total_clusters(&self) -> usize {
        self.config.clusters * self.processors
    }

    /// Runs the parallel clustering method.
    pub fn run(&self, records: &[Record], theory: &dyn EquationalTheory) -> PassResult {
        self.run_observed(records, theory, &NoopObserver)
    }

    /// Like [`ParallelClustering::run`], reporting counters and phase
    /// timings to `observer`: per-worker fragment counts, comparisons, and
    /// the coordinator's partial-result merge time. Workers report in bulk
    /// after joining, so observation adds no synchronization to the scan.
    pub fn run_observed(
        &self,
        records: &[Record],
        theory: &dyn EquationalTheory,
        observer: &dyn PipelineObserver,
    ) -> PassResult {
        let mut stats = PassStats::default();
        let p = self.processors;
        let total_clusters = self.total_clusters();
        let _pass_span = span_labeled(observer, "pass", || {
            format!(
                "{} w={} clustered P={}",
                self.key.name(),
                self.config.window,
                p
            )
        });

        // Coordinator: keys, histogram, partition, cluster assignment.
        let t0 = Instant::now();
        let _key_span = span(observer, "key_build");
        let keys = parallel_extract_keys(&self.key, records, p);
        let truncated: Vec<&str> = keys
            .iter()
            .map(|k| truncate(k, self.config.cluster_key_len))
            .collect();
        let histogram =
            KeyHistogram::from_keys(truncated.iter().copied(), self.config.histogram_prefix);
        let bins = histogram.bins();
        let partition = RangePartition::build(&histogram, total_clusters.min(bins));
        let mut clusters: Vec<Vec<u32>> = vec![Vec::new(); partition.clusters()];
        for (i, t) in truncated.iter().enumerate() {
            clusters[partition.cluster_of(t)].push(i as u32);
        }
        // Static load balancing: LPT on cluster sizes (§4.2).
        let sizes: Vec<u64> = clusters.iter().map(|c| c.len() as u64).collect();
        let assignment = lpt_assign(&sizes, p);
        drop(_key_span);
        stats.create_keys = t0.elapsed();
        observer.add(Counter::RecordsKeyed, records.len() as u64);
        observer.phase_ns(Phase::CreateKeys, stats.create_keys.as_nanos() as u64);

        // Workers: sort + scan their clusters.
        let t1 = Instant::now();
        let w = self.config.window;
        let mut partials: Vec<(PairSet, u64)> = Vec::with_capacity(p);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..p)
                .map(|proc| {
                    let my_clusters: Vec<Vec<u32>> = assignment
                        .jobs_of(proc)
                        .into_iter()
                        .map(|j| clusters[j].clone())
                        .collect();
                    let truncated = &truncated;
                    s.spawn(move || {
                        let _frag_span = span_labeled(observer, "fragment", || format!("j={proc}"));
                        let mut local = PairSet::new();
                        let mut comparisons = 0u64;
                        let _scan_span = span(observer, "scan");
                        for mut cluster in my_clusters {
                            cluster
                                .sort_by(|&a, &b| truncated[a as usize].cmp(truncated[b as usize]));
                            for i in 1..cluster.len() {
                                let lo = i.saturating_sub(w - 1);
                                let new = &records[cluster[i] as usize];
                                for &prev in &cluster[lo..i] {
                                    comparisons += 1;
                                    let old = &records[prev as usize];
                                    if theory.matches(old, new) {
                                        local.insert(old.id.0, new.id.0);
                                    }
                                }
                                if let Some(pm) = observer.progress() {
                                    pm.tick((i - lo) as u64);
                                }
                            }
                        }
                        drop(_scan_span);
                        (local, comparisons)
                    })
                })
                .collect();
            for h in handles {
                partials.push(h.join().expect("cluster worker panicked"));
            }
        });
        observer.add(Counter::WorkerFragments, partials.len() as u64);
        let t_merge = Instant::now();
        let mut pairs = PairSet::new();
        let mut worker_comparisons = Vec::with_capacity(p);
        {
            let _s = span(observer, "coordinator_merge");
            for (local, comparisons) in partials {
                pairs.merge(&local);
                stats.comparisons += comparisons;
                worker_comparisons.push(comparisons);
            }
        }
        observer.phase_ns(Phase::CoordinatorMerge, t_merge.elapsed().as_nanos() as u64);
        stats.window_scan = t1.elapsed();
        stats.matches = pairs.len();
        observer.phase_ns(Phase::WindowScan, stats.window_scan.as_nanos() as u64);
        observer.add(Counter::Comparisons, stats.comparisons);
        observer.add(Counter::RuleInvocations, stats.comparisons);
        observer.add(Counter::Matches, stats.matches as u64);

        PassResult {
            key_name: self.key.name().to_string(),
            window: w,
            pairs,
            stats,
            worker_comparisons,
        }
    }
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merge_purge::ClusteringMethod;
    use mp_datagen::{DatabaseGenerator, GeneratorConfig};
    use mp_rules::NativeEmployeeTheory;

    #[test]
    fn matches_serial_clustering_with_same_total_clusters() {
        let db = DatabaseGenerator::new(GeneratorConfig::new(500).duplicate_fraction(0.5).seed(91))
            .generate();
        let theory = NativeEmployeeTheory::new();
        // Serial with C = 24 total == parallel with 8 per proc x 3 procs,
        // because cluster contents and per-cluster scans are identical
        // regardless of which processor executes them.
        let serial = ClusteringMethod::new(
            KeySpec::last_name_key(),
            ClusteringConfig {
                clusters: 24,
                histogram_prefix: 3,
                cluster_key_len: 6,
                window: 8,
            },
        )
        .run(&db.records, &theory);
        let parallel = ParallelClustering::new(
            KeySpec::last_name_key(),
            ClusteringConfig {
                clusters: 8,
                histogram_prefix: 3,
                cluster_key_len: 6,
                window: 8,
            },
            3,
        )
        .run(&db.records, &theory);
        assert_eq!(parallel.pairs.sorted(), serial.pairs.sorted());
        assert_eq!(parallel.stats.comparisons, serial.stats.comparisons);
    }

    #[test]
    fn processor_count_does_not_change_results() {
        let db = DatabaseGenerator::new(GeneratorConfig::new(300).duplicate_fraction(0.4).seed(92))
            .generate();
        let theory = NativeEmployeeTheory::new();
        // Keep total clusters fixed at 24 while varying P.
        let mut baseline: Option<Vec<(u32, u32)>> = None;
        for (per_proc, procs) in [(24, 1), (12, 2), (6, 4), (3, 8)] {
            let r = ParallelClustering::new(
                KeySpec::first_name_key(),
                ClusteringConfig {
                    clusters: per_proc,
                    histogram_prefix: 3,
                    cluster_key_len: 6,
                    window: 6,
                },
                procs,
            )
            .run(&db.records, &theory);
            let sorted = r.pairs.sorted();
            match &baseline {
                None => baseline = Some(sorted),
                Some(b) => assert_eq!(&sorted, b, "procs = {procs}"),
            }
        }
    }

    #[test]
    fn cluster_count_clamped_to_bins() {
        // 1-letter histogram has 27 bins; asking for 100x4 clusters must
        // not panic.
        let db = DatabaseGenerator::new(GeneratorConfig::new(100).seed(93)).generate();
        let theory = NativeEmployeeTheory::new();
        let r = ParallelClustering::new(
            KeySpec::last_name_key(),
            ClusteringConfig {
                clusters: 100,
                histogram_prefix: 1,
                cluster_key_len: 6,
                window: 4,
            },
            4,
        )
        .run(&db.records, &theory);
        assert!(r.stats.comparisons > 0 || r.pairs.is_empty());
    }

    #[test]
    fn empty_input() {
        let theory = NativeEmployeeTheory::new();
        let r = ParallelClustering::new(
            KeySpec::last_name_key(),
            ClusteringConfig::paper_serial(4),
            2,
        )
        .run(&[], &theory);
        assert!(r.pairs.is_empty());
    }
}
