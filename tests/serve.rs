//! End-to-end serve-protocol tests against the real `mergepurge` binary:
//! ingest batches over the Unix socket, query, shut down gracefully,
//! restart, and check the daemon answers — and its deterministic `store`
//! stats section — are identical. A second scenario kills the daemon with
//! SIGKILL mid-stream and verifies journal replay restores the state.

#![cfg(unix)]

use merge_purge::{IncrementalMergePurge, KeySpec};
use merge_purge_repro::serve::shard::ShardRouter;
use merge_purge_repro::serve::{ingest_request, json::Json, request, request_tcp};
use mp_datagen::{DatabaseGenerator, GeneratorConfig};
use mp_record::Record;
use mp_rules::{EquationalTheory, NativeEmployeeTheory};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mp-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn batches(seed: u64, n: usize, parts: usize) -> Vec<Vec<Record>> {
    let db = DatabaseGenerator::new(GeneratorConfig::new(n).duplicate_fraction(0.4).seed(seed))
        .generate();
    let chunk = db.records.len().div_ceil(parts);
    db.records.chunks(chunk).map(<[Record]>::to_vec).collect()
}

fn spawn_daemon_with(socket: &Path, store: &Path, extra: &[&str], capture_stderr: bool) -> Child {
    let child = Command::new(env!("CARGO_BIN_EXE_mergepurge"))
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--window",
            "8",
            "--keys",
            "last_name,first_name",
        ])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(if capture_stderr {
            Stdio::piped()
        } else {
            Stdio::null()
        })
        .spawn()
        .expect("spawn mergepurge serve");
    // The socket appearing is the readiness signal.
    let deadline = Instant::now() + Duration::from_secs(20);
    while !socket.exists() {
        assert!(Instant::now() < deadline, "daemon never bound {socket:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    child
}

fn spawn_daemon(socket: &Path, store: &Path) -> Child {
    spawn_daemon_with(socket, store, &[], false)
}

fn ask(socket: &Path, payload: &str) -> Json {
    // The daemon may momentarily lag between binding and accepting.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match request(socket, payload) {
            Ok(response) => return Json::parse(&response).expect("daemon speaks json"),
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("request failed: {e}"),
        }
    }
}

fn expect_ok(v: &Json) {
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
}

/// The deterministic part of `stats`: the whole `store` object.
fn store_section(socket: &Path) -> Json {
    let stats = ask(socket, r#"{"cmd":"stats"}"#);
    expect_ok(&stats);
    stats
        .get("store")
        .expect("stats has a store section")
        .clone()
}

fn shutdown_and_wait(socket: &Path, child: &mut Child) {
    let bye = ask(socket, r#"{"cmd":"shutdown"}"#);
    expect_ok(&bye);
    let status = child.wait().expect("daemon exit status");
    assert!(status.success(), "graceful shutdown exits 0: {status:?}");
    assert!(!socket.exists(), "socket unlinked on graceful shutdown");
}

#[test]
fn ingest_query_shutdown_restart_gives_identical_answers() {
    let dir = tmp_dir("basic");
    let socket = dir.join("mp.sock");
    let store = dir.join("store");
    let parts = batches(4242, 400, 2);

    let mut child = spawn_daemon(&socket, &store);
    for (i, part) in parts.iter().enumerate() {
        let reply = ask(&socket, &ingest_request(part));
        expect_ok(&reply);
        assert_eq!(
            reply.get("seq").and_then(Json::as_u64),
            Some(i as u64 + 1),
            "journal sequence numbers are contiguous"
        );
    }
    let total: usize = parts.iter().map(Vec::len).sum();

    // Query every record once; remember each answer.
    let stats_before = store_section(&socket);
    assert_eq!(
        stats_before.get("records").and_then(Json::as_u64),
        Some(total as u64)
    );
    let probe: Vec<u64> = (0..total as u64).step_by(17).collect();
    let answers_before: Vec<Json> = probe
        .iter()
        .map(|id| ask(&socket, &format!(r#"{{"cmd":"query-matches","id":{id}}}"#)))
        .collect();
    for a in &answers_before {
        expect_ok(a);
    }
    shutdown_and_wait(&socket, &mut child);

    // Restart on the same store: same stats, same classes.
    let mut child = spawn_daemon(&socket, &store);
    assert_eq!(
        store_section(&socket),
        stats_before,
        "store stats survive restart"
    );
    let answers_after: Vec<Json> = probe
        .iter()
        .map(|id| ask(&socket, &format!(r#"{{"cmd":"query-matches","id":{id}}}"#)))
        .collect();
    assert_eq!(
        answers_after, answers_before,
        "query answers survive restart"
    );
    shutdown_and_wait(&socket, &mut child);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sigkill_mid_run_replays_the_journal_to_the_same_stats() {
    let dir = tmp_dir("kill9");
    let socket = dir.join("mp.sock");
    let store = dir.join("store");
    let parts = batches(5151, 450, 3);

    // Golden run: all three batches in one uninterrupted daemon.
    let golden_store = dir.join("store-golden");
    let mut child = spawn_daemon(&socket, &golden_store);
    for part in &parts {
        expect_ok(&ask(&socket, &ingest_request(part)));
    }
    let want = store_section(&socket);
    shutdown_and_wait(&socket, &mut child);

    // Crash run: two batches acknowledged, then SIGKILL — no graceful
    // drain, no snapshot (the store only has the journal).
    let mut child = spawn_daemon(&socket, &store);
    expect_ok(&ask(&socket, &ingest_request(&parts[0])));
    expect_ok(&ask(&socket, &ingest_request(&parts[1])));
    child.kill().expect("SIGKILL the daemon");
    child.wait().unwrap();
    let _ = std::fs::remove_file(&socket);

    // Restart: the journal replays both batches; finish the third.
    let mut child = spawn_daemon(&socket, &store);
    let stats = ask(&socket, r#"{"cmd":"stats"}"#);
    expect_ok(&stats);
    assert_eq!(
        stats
            .get("process")
            .and_then(|p| p.get("journal_replays"))
            .and_then(Json::as_u64),
        Some(2),
        "both acknowledged batches replay: {stats}"
    );
    expect_ok(&ask(&socket, &ingest_request(&parts[2])));
    assert_eq!(
        store_section(&socket),
        want,
        "kill/restart reaches the exact single-process stats"
    );
    shutdown_and_wait(&socket, &mut child);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let dir = tmp_dir("errors");
    let socket = dir.join("mp.sock");
    let mut child = spawn_daemon(&socket, &dir.join("store"));

    let bad = ask(&socket, "{not json");
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    let unknown = ask(&socket, r#"{"cmd":"frobnicate"}"#);
    assert_eq!(unknown.get("ok").and_then(Json::as_bool), Some(false));
    let out_of_range = ask(&socket, r#"{"cmd":"query-matches","id":999999}"#);
    assert_eq!(out_of_range.get("ok").and_then(Json::as_bool), Some(false));
    let empty = ask(&socket, r#"{"cmd":"ingest-batch","records":[]}"#);
    assert_eq!(empty.get("ok").and_then(Json::as_bool), Some(false));

    // The daemon is still healthy after every error.
    let stats = ask(&socket, r#"{"cmd":"stats"}"#);
    expect_ok(&stats);
    shutdown_and_wait(&socket, &mut child);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---- observability ---------------------------------------------------

/// Picks a TCP port that was free a moment ago (good enough for a test).
fn free_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

/// Plain HTTP/1.1 GET; returns (status line, body).
fn http_get(port: u16, path: &str) -> (String, String) {
    use std::io::{Read, Write};
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut stream = loop {
        match std::net::TcpStream::connect(("127.0.0.1", port)) {
            Ok(s) => break s,
            Err(e) => {
                assert!(Instant::now() < deadline, "metrics port never opened: {e}");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    };
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("http response head");
    (
        head.lines().next().unwrap_or("").to_string(),
        body.to_string(),
    )
}

/// Parses exposition text into (name-with-labels, value) samples.
fn prom_samples(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .map(|l| {
            let (name, value) = l.rsplit_once(' ').expect("sample line");
            let v = if value == "+Inf" {
                f64::INFINITY
            } else {
                value.parse().unwrap_or_else(|_| panic!("bad value: {l}"))
            };
            (name.to_string(), v)
        })
        .collect()
}

#[test]
fn metrics_probes_windows_and_event_log_work_end_to_end() {
    let dir = tmp_dir("obs");
    let socket = dir.join("mp.sock");
    let store = dir.join("store");
    let log = dir.join("events.jsonl");
    let port = free_port();
    let parts = batches(7777, 400, 2);

    let mut child = spawn_daemon_with(
        &socket,
        &store,
        &[
            "--metrics-addr",
            &format!("127.0.0.1:{port}"),
            "--log",
            log.to_str().unwrap(),
            "--log-level",
            "debug",
            "--quiet",
        ],
        true,
    );

    // Probes answer over both transports once the socket is up.
    let ready = ask(&socket, r#"{"cmd":"readyz"}"#);
    expect_ok(&ready);
    assert_eq!(ready.get("ready").and_then(Json::as_bool), Some(true));
    let health = ask(&socket, r#"{"cmd":"healthz"}"#);
    expect_ok(&health);
    assert_eq!(health.get("alive").and_then(Json::as_bool), Some(true));
    let (status, _) = http_get(port, "/healthz");
    assert!(status.contains("200"), "{status}");
    let (status, body) = http_get(port, "/readyz");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"ready\":true"), "{body}");
    let (status, _) = http_get(port, "/nope");
    assert!(status.contains("404"), "{status}");

    // First scrape, then ingest, then scrape again: counters must be
    // monotonic and the exposition parseable throughout.
    let (status, scrape1) = http_get(port, "/metrics");
    assert!(status.contains("200"), "{status}");
    let before = prom_samples(&scrape1);
    assert!(
        before.iter().any(|(n, _)| n == "mergepurge_ready"),
        "gauges present"
    );

    for part in &parts {
        expect_ok(&ask(&socket, &ingest_request(part)));
    }
    let total: u64 = parts.iter().map(|p| p.len() as u64).sum();

    let (_, scrape2) = http_get(port, "/metrics");
    let after = prom_samples(&scrape2);
    for (name, v1) in &before {
        if name.ends_with("_total") || name.contains("_bucket") || name.ends_with("_count") {
            let v2 = after
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("counter {name} vanished"))
                .1;
            assert!(v2 >= *v1, "counter {name} decreased: {v1} -> {v2}");
        }
    }
    let records_gauge = after
        .iter()
        .find(|(n, _)| n == "mergepurge_records")
        .expect("records gauge")
        .1;
    assert_eq!(records_gauge as u64, total);
    assert!(
        after
            .iter()
            .any(|(n, _)| n.starts_with("mergepurge_window_rate{")),
        "window rate family present"
    );
    assert_eq!(
        after
            .iter()
            .find(|(n, _)| n == "mergepurge_batch_ingest_duration_seconds_count")
            .expect("batch latency histogram")
            .1 as u64,
        parts.len() as u64
    );

    // The `metrics` wire command carries the same exposition.
    let wire = ask(&socket, r#"{"cmd":"metrics"}"#);
    expect_ok(&wire);
    let exposition = wire
        .get("exposition")
        .and_then(Json::as_str)
        .expect("exposition text");
    assert!(exposition.contains("mergepurge_records_keyed_total"));

    // Schema-6 stats: seq watermark, health, and windows that reflect
    // the batches just ingested (1m window, well inside resolution).
    let stats = ask(&socket, r#"{"cmd":"stats"}"#);
    expect_ok(&stats);
    assert_eq!(stats.get("schema").and_then(Json::as_u64), Some(6));
    assert_eq!(stats.get("seq").and_then(Json::as_u64), Some(2));
    let windows = stats
        .get("windows")
        .and_then(Json::as_array)
        .expect("windows section");
    assert_eq!(windows.len(), 3);
    let one_min = &windows[0];
    assert_eq!(one_min.get("window").and_then(Json::as_str), Some("1m"));
    assert_eq!(one_min.get("records").and_then(Json::as_u64), Some(total));
    assert_eq!(one_min.get("batches").and_then(Json::as_u64), Some(2));
    assert!(one_min.get("batch_p99_ns").and_then(Json::as_u64).unwrap() > 0);
    let health = stats.get("health").expect("health section");
    assert_eq!(health.get("ready").and_then(Json::as_bool), Some(true));
    // The window totals agree with the cumulative store counters (the
    // whole run fits in one window).
    assert_eq!(
        one_min.get("comparisons").and_then(Json::as_u64),
        stats
            .get("store")
            .and_then(|s| s.get("comparisons"))
            .and_then(Json::as_u64),
    );

    // query-matches carries the same watermark.
    let q = ask(&socket, r#"{"cmd":"query-matches","id":0}"#);
    expect_ok(&q);
    assert_eq!(q.get("seq").and_then(Json::as_u64), Some(2));

    shutdown_and_wait(&socket, &mut child);

    // --quiet: no status lines on stderr.
    let mut stderr = String::new();
    use std::io::Read as _;
    child
        .stderr
        .take()
        .unwrap()
        .read_to_string(&mut stderr)
        .unwrap();
    assert!(
        stderr.is_empty(),
        "--quiet daemon wrote to stderr: {stderr:?}"
    );

    // Event log: every line is JSON with monotonically increasing seq,
    // and the expected lifecycle + per-batch events are present.
    let text = std::fs::read_to_string(&log).unwrap();
    let events: Vec<Json> = text
        .lines()
        .map(|l| Json::parse(l).expect("event lines are JSON"))
        .collect();
    assert!(!events.is_empty());
    let seqs: Vec<u64> = events
        .iter()
        .map(|e| e.get("seq").and_then(Json::as_u64).unwrap())
        .collect();
    assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1), "gap-free seqs");
    let names: Vec<&str> = events
        .iter()
        .map(|e| e.get("event").and_then(Json::as_str).unwrap())
        .collect();
    for expected in [
        "starting",
        "metrics_listening",
        "journal_replayed",
        "listening",
        "batch_ingested",
        "shutdown_begun",
        "checkpoint_written",
        "stopped",
    ] {
        assert!(names.contains(&expected), "missing event {expected}");
    }
    assert_eq!(
        names.iter().filter(|n| **n == "batch_ingested").count(),
        2,
        "one summary per batch"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn event_log_rotates_and_top_renders() {
    let dir = tmp_dir("toplog");
    let socket = dir.join("mp.sock");
    let store = dir.join("store");
    let log = dir.join("ev.jsonl");
    let parts = batches(8888, 300, 3);

    // A 700-byte cap forces rotation within a few events.
    let mut child = spawn_daemon_with(
        &socket,
        &store,
        &[
            "--log",
            log.to_str().unwrap(),
            "--log-level",
            "debug",
            "--log-max-bytes",
            "700",
            "--quiet",
        ],
        false,
    );
    for part in &parts {
        expect_ok(&ask(&socket, &ingest_request(part)));
    }

    // `mergepurge top --iterations 1` renders one plain-text frame.
    let out = Command::new(env!("CARGO_BIN_EXE_mergepurge"))
        .args([
            "top",
            "--socket",
            socket.to_str().unwrap(),
            "--iterations",
            "1",
        ])
        .output()
        .expect("run mergepurge top");
    assert!(out.status.success(), "top exits 0: {out:?}");
    let frame = String::from_utf8(out.stdout).unwrap();
    assert!(frame.contains("mergepurge top"), "{frame}");
    assert!(frame.contains("ready yes"), "{frame}");
    assert!(frame.contains("records "), "{frame}");
    assert!(frame.contains("queue 0/"), "{frame}");
    assert!(frame.contains("1m"), "{frame}");
    assert!(frame.contains("p99"), "{frame}");
    assert!(!frame.contains('\u{1b}'), "single frame has no ANSI codes");

    shutdown_and_wait(&socket, &mut child);

    let rotated = dir.join("ev.jsonl.1");
    assert!(rotated.exists(), "log rotated at 700 bytes");
    // Both generations hold valid JSONL; the rotation boundary is
    // seq-contiguous.
    let head: Vec<Json> = std::fs::read_to_string(&rotated)
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).unwrap())
        .collect();
    let tail: Vec<Json> = std::fs::read_to_string(&log)
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).unwrap())
        .collect();
    assert!(!head.is_empty() && !tail.is_empty());
    let last_head = head.last().unwrap().get("seq").and_then(Json::as_u64);
    let first_tail = tail.first().unwrap().get("seq").and_then(Json::as_u64);
    assert_eq!(
        first_tail,
        last_head.map(|s| s + 1),
        "seq continues across rotation"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---- tracing ---------------------------------------------------------

/// The one trace_id per batch must be the same string on the wire ack,
/// the `batch_ingested` event-log line, the flight-recorder span dump
/// (wire `trace` command, HTTP `/trace`, and the `mergepurge trace`
/// client), and the `stats` tracing section — on a live `--shards 4`
/// daemon whose dump shows one lane per shard worker.
#[test]
fn trace_ids_flow_from_ack_to_event_log_and_flight_dump() {
    let dir = tmp_dir("tracing");
    let socket = dir.join("mp.sock");
    let store = dir.join("store");
    let log = dir.join("events.jsonl");
    let port = free_port();
    let parts = batches(3434, 400, 3);

    let mut child = spawn_daemon_with(
        &socket,
        &store,
        &[
            "--shards",
            "4",
            "--metrics-addr",
            &format!("127.0.0.1:{port}"),
            "--log",
            log.to_str().unwrap(),
            "--quiet",
        ],
        false,
    );

    // Every ack carries a distinct trace id.
    let mut acked_ids: Vec<String> = Vec::new();
    for part in &parts {
        let reply = ask(&socket, &ingest_request(part));
        expect_ok(&reply);
        let id = reply
            .get("trace_id")
            .and_then(Json::as_str)
            .expect("ack carries trace_id")
            .to_string();
        assert!(!acked_ids.contains(&id), "trace ids are unique: {id}");
        acked_ids.push(id);
    }

    // stats: the tracing section names the last batch's trace id and the
    // recorder retains one entry per batch (plus the startup sweep).
    let stats = ask(&socket, r#"{"cmd":"stats"}"#);
    expect_ok(&stats);
    let tracing = stats.get("tracing").expect("schema-6 tracing section");
    assert_eq!(
        tracing.get("last_trace_id").and_then(Json::as_str),
        Some(acked_ids.last().unwrap().as_str()),
        "{stats}"
    );
    assert!(
        tracing
            .get("flight_entries")
            .and_then(Json::as_u64)
            .unwrap()
            >= parts.len() as u64,
        "{stats}"
    );

    // Wire `trace` command: a Chrome trace document containing every
    // acked trace id and one named lane per shard worker.
    let wire = ask(&socket, r#"{"cmd":"trace"}"#);
    expect_ok(&wire);
    assert_eq!(
        wire.get("format").and_then(Json::as_str),
        Some("chrome-trace-json")
    );
    let dump = wire
        .get("trace")
        .and_then(Json::as_str)
        .expect("trace document");
    let parsed = Json::parse(dump).expect("trace document is valid JSON");
    assert!(
        parsed.get("traceEvents").and_then(Json::as_array).is_some(),
        "chrome trace shape"
    );
    for id in &acked_ids {
        assert!(dump.contains(id.as_str()), "dump misses trace id {id}");
    }
    for lane in ["shard-0", "shard-1", "shard-2", "shard-3", "engine"] {
        assert!(dump.contains(lane), "dump misses worker lane {lane}");
    }
    for span in ["batch", "shard_ingest", "shard_scan", "closure_reconcile"] {
        assert!(dump.contains(span), "dump misses span {span}");
    }

    // HTTP `/trace` serves the same document.
    let (status, body) = http_get(port, "/trace");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"traceEvents\""), "{body}");
    for id in &acked_ids {
        assert!(body.contains(id.as_str()), "/trace misses trace id {id}");
    }

    // `mergepurge trace` writes the dump to a file.
    let out_file = dir.join("flight.json");
    let out = Command::new(env!("CARGO_BIN_EXE_mergepurge"))
        .args([
            "trace",
            "--socket",
            socket.to_str().unwrap(),
            "--out",
            out_file.to_str().unwrap(),
        ])
        .output()
        .expect("run mergepurge trace");
    assert!(out.status.success(), "trace exits 0: {out:?}");
    let written = std::fs::read_to_string(&out_file).unwrap();
    Json::parse(&written).expect("written trace file is valid JSON");
    assert!(written.contains(acked_ids[0].as_str()));

    // `mergepurge top --json` emits one machine-readable digest frame.
    let out = Command::new(env!("CARGO_BIN_EXE_mergepurge"))
        .args(["top", "--socket", socket.to_str().unwrap(), "--json"])
        .output()
        .expect("run mergepurge top --json");
    assert!(out.status.success(), "top --json exits 0: {out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert_eq!(text.lines().count(), 1, "one frame per line: {text}");
    assert!(!text.contains('\u{1b}'), "no ANSI codes in --json output");
    let frame = Json::parse(text.trim()).expect("top --json frame is JSON");
    assert_eq!(frame.get("schema").and_then(Json::as_u64), Some(6));
    assert_eq!(
        frame.get("seq").and_then(Json::as_u64),
        Some(parts.len() as u64)
    );
    assert_eq!(
        frame
            .get("tracing")
            .and_then(|t| t.get("last_trace_id"))
            .and_then(Json::as_str),
        Some(acked_ids.last().unwrap().as_str())
    );
    assert_eq!(
        frame
            .get("shards")
            .and_then(Json::as_array)
            .map(<[Json]>::len),
        Some(4)
    );

    shutdown_and_wait(&socket, &mut child);

    // Event log: the batch_ingested lines carry the acked trace ids, in
    // ingest order.
    let text = std::fs::read_to_string(&log).unwrap();
    let logged_ids: Vec<String> = text
        .lines()
        .map(|l| Json::parse(l).expect("event lines are JSON"))
        .filter(|e| e.get("event").and_then(Json::as_str) == Some("batch_ingested"))
        .map(|e| {
            e.get("trace_id")
                .and_then(Json::as_str)
                .expect("batch_ingested carries trace_id")
                .to_string()
        })
        .collect();
    assert_eq!(logged_ids, acked_ids, "event log matches wire acks");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `--slow-batch-ms 1` pins over-threshold batches in the flight
/// recorder and emits a `slow_batch` event with the per-phase breakdown.
#[test]
fn slow_batches_are_pinned_and_logged_with_phase_breakdown() {
    let dir = tmp_dir("slowbatch");
    let socket = dir.join("mp.sock");
    let store = dir.join("store");
    let log = dir.join("events.jsonl");
    // One big batch through a 4-shard scatter + journal fsync takes well
    // over 1ms on any real machine.
    let big = batches(2727, 2000, 1).remove(0);

    let mut child = spawn_daemon_with(
        &socket,
        &store,
        &[
            "--shards",
            "4",
            "--slow-batch-ms",
            "1",
            "--log",
            log.to_str().unwrap(),
            "--quiet",
        ],
        false,
    );
    let reply = ask(&socket, &ingest_request(&big));
    expect_ok(&reply);
    let trace_id = reply
        .get("trace_id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    let stats = ask(&socket, r#"{"cmd":"stats"}"#);
    expect_ok(&stats);
    let pinned = stats
        .get("tracing")
        .and_then(|t| t.get("flight_pinned"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(pinned >= 1, "slow batch pinned in the recorder: {stats}");

    shutdown_and_wait(&socket, &mut child);

    let text = std::fs::read_to_string(&log).unwrap();
    let slow: Vec<Json> = text
        .lines()
        .map(|l| Json::parse(l).unwrap())
        .filter(|e| e.get("event").and_then(Json::as_str) == Some("slow_batch"))
        .collect();
    assert!(!slow.is_empty(), "slow_batch event emitted:\n{text}");
    let ev = &slow[0];
    assert_eq!(
        ev.get("trace_id").and_then(Json::as_str),
        Some(trace_id.as_str())
    );
    for key in ["duration_ms", "threshold_ms", "critical_phase"] {
        assert!(ev.get(key).is_some(), "slow_batch misses {key}: {ev}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `--log-keep 3` retains three rotated generations (plus the live
/// file), oldest dropped, seqs contiguous across the surviving chain.
#[test]
fn log_keep_three_retains_three_generations() {
    let dir = tmp_dir("logkeep");
    let socket = dir.join("mp.sock");
    let store = dir.join("store");
    let log = dir.join("ev.jsonl");
    let parts = batches(9898, 360, 6);

    let mut child = spawn_daemon_with(
        &socket,
        &store,
        &[
            "--log",
            log.to_str().unwrap(),
            "--log-level",
            "debug",
            "--log-max-bytes",
            "250",
            "--log-keep",
            "3",
            "--quiet",
        ],
        false,
    );
    for part in &parts {
        expect_ok(&ask(&socket, &ingest_request(part)));
    }
    shutdown_and_wait(&socket, &mut child);

    assert!(log.exists());
    assert!(dir.join("ev.jsonl.1").exists(), "generation 1 kept");
    assert!(dir.join("ev.jsonl.2").exists(), "generation 2 kept");
    assert!(dir.join("ev.jsonl.3").exists(), "generation 3 kept");
    assert!(
        !dir.join("ev.jsonl.4").exists(),
        "generations past --log-keep are dropped"
    );
    // Oldest-to-newest chain is valid JSONL with contiguous seqs.
    let mut seqs: Vec<u64> = Vec::new();
    for gen in ["ev.jsonl.3", "ev.jsonl.2", "ev.jsonl.1", "ev.jsonl"] {
        for line in std::fs::read_to_string(dir.join(gen)).unwrap().lines() {
            let e = Json::parse(line).expect("event lines are JSON");
            seqs.push(e.get("seq").and_then(Json::as_u64).unwrap());
        }
    }
    assert!(seqs.len() >= 4, "events span the four surviving files");
    assert!(
        seqs.windows(2).all(|w| w[1] == w[0] + 1),
        "seqs contiguous across generations: {seqs:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---- sharding --------------------------------------------------------

/// How a hammer client reaches the daemon: Unix socket or TCP, sharing
/// the same length-prefixed JSON framing.
#[derive(Clone)]
enum Transport {
    Unix(PathBuf),
    Tcp(String),
}

impl Transport {
    /// Like [`ask`], retrying while the daemon finishes binding.
    fn ask(&self, payload: &str) -> Json {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let reply = match self {
                Transport::Unix(socket) => request(socket, payload),
                Transport::Tcp(addr) => request_tcp(addr, payload),
            };
            match reply {
                Ok(response) => return Json::parse(&response).expect("daemon speaks json"),
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => panic!("request failed: {e}"),
            }
        }
    }
}

/// 24 concurrent clients hammer a `--shards 4` daemon with disjoint
/// seeded batches. No batch may be lost, every client's acked seq
/// watermark must be monotone, and the final deterministic store section
/// must be byte-identical to a serial single-worker daemon fed the same
/// batches in acked-seq order.
fn hammer_sharded_daemon(name: &str, use_tcp: bool) {
    let dir = tmp_dir(name);
    let socket = dir.join("mp.sock");
    let store = dir.join("store");
    let addr = format!("127.0.0.1:{}", free_port());

    // A deliberately shallow queue so the hammer exercises backpressure
    // blocking (not just the happy path).
    let mut extra = vec!["--shards", "4", "--queue-depth", "2"];
    if use_tcp {
        extra.push("--listen");
        extra.push(&addr);
    }
    let mut child = spawn_daemon_with(&socket, &store, &extra, false);

    const CLIENTS: usize = 24;
    const BATCHES_PER_CLIENT: usize = 3;
    // Disjoint seeded batches: client i owns the records of seed 9000+i.
    let client_batches: Vec<Vec<Vec<Record>>> = (0..CLIENTS)
        .map(|i| batches(9_000 + i as u64, 30, BATCHES_PER_CLIENT))
        .collect();

    let transport = if use_tcp {
        Transport::Tcp(addr)
    } else {
        Transport::Unix(socket.clone())
    };

    // Every client ingests its batches in order, recording acked seqs.
    let acked: Vec<Vec<(u64, usize, usize)>> = std::thread::scope(|s| {
        let handles: Vec<_> = client_batches
            .iter()
            .enumerate()
            .map(|(i, parts)| {
                let transport = transport.clone();
                s.spawn(move || {
                    let mut seqs: Vec<(u64, usize, usize)> = Vec::new();
                    for (j, part) in parts.iter().enumerate() {
                        let reply = transport.ask(&ingest_request(part));
                        expect_ok(&reply);
                        let seq = reply
                            .get("seq")
                            .and_then(Json::as_u64)
                            .expect("ack carries the journal seq");
                        if let Some((prev, _, _)) = seqs.last() {
                            assert!(seq > *prev, "client {i}: watermark is monotone");
                        }
                        seqs.push((seq, i, j));
                    }
                    seqs
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Zero lost batches: acked seqs are exactly 1..=72, gap- and dup-free.
    let mut all: Vec<(u64, usize, usize)> = acked.into_iter().flatten().collect();
    all.sort_unstable();
    let got: Vec<u64> = all.iter().map(|&(s, _, _)| s).collect();
    let want: Vec<u64> = (1..=(CLIENTS * BATCHES_PER_CLIENT) as u64).collect();
    assert_eq!(got, want, "every batch acked exactly once, gap-free");

    // Schema-6 stats carry a per-shard section; records are spread over
    // all four shards and sum to the engine total.
    let stats = transport.ask(r#"{"cmd":"stats"}"#);
    expect_ok(&stats);
    let shard_stats = stats
        .get("shards")
        .and_then(Json::as_array)
        .expect("schema-6 shards section");
    assert_eq!(shard_stats.len(), 4);
    let per_shard: u64 = shard_stats
        .iter()
        .map(|s| s.get("records").and_then(Json::as_u64).unwrap())
        .sum();
    let engine_records = stats
        .get("store")
        .and_then(|s| s.get("records"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(per_shard, engine_records, "shard records sum to the total");

    let sharded_section = stats.get("store").unwrap().clone();
    shutdown_and_wait(&socket, &mut child);

    // Golden: a single-worker daemon fed the reconstructed batch stream
    // serially, in acked-seq order.
    let golden_socket = dir.join("golden.sock");
    let mut child = spawn_daemon(&golden_socket, &dir.join("store-golden"));
    for &(_, i, j) in &all {
        expect_ok(&ask(&golden_socket, &ingest_request(&client_batches[i][j])));
    }
    assert_eq!(
        store_section(&golden_socket).to_string(),
        sharded_section.to_string(),
        "sharded daemon matches the serial single-worker engine byte for byte"
    );
    shutdown_and_wait(&golden_socket, &mut child);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn hammer_24_clients_over_unix_socket_matches_serial_golden() {
    hammer_sharded_daemon("hammer-unix", false);
}

#[test]
fn hammer_24_clients_over_tcp_matches_serial_golden() {
    hammer_sharded_daemon("hammer-tcp", true);
}

#[test]
fn sigkill_sharded_daemon_replays_only_the_written_shard() {
    let dir = tmp_dir("kill9-shard");
    let socket = dir.join("mp.sock");
    let store = dir.join("store");

    // Craft batches that land entirely in one shard by routing every
    // generated record through the daemon's own router (first key, 4
    // shards) and keeping one shard's records.
    let router = ShardRouter::new(KeySpec::last_name_key(), 4);
    let all: Vec<Record> = batches(6161, 600, 1).remove(0);
    let target = router.shard_of(&all[0]);
    let owned: Vec<Record> = all
        .iter()
        .filter(|r| router.shard_of(r) == target)
        .cloned()
        .collect();
    assert!(owned.len() >= 40, "single-shard records: {}", owned.len());
    let chunk = owned.len().div_ceil(2);
    let parts: Vec<Vec<Record>> = owned.chunks(chunk).map(<[Record]>::to_vec).collect();
    let shards_flag = ["--shards", "4"];

    // Golden: the same batches in one uninterrupted sharded daemon.
    let golden_store = dir.join("store-golden");
    let mut child = spawn_daemon_with(&socket, &golden_store, &shards_flag, false);
    for part in &parts {
        expect_ok(&ask(&socket, &ingest_request(part)));
    }
    let want = store_section(&socket);
    shutdown_and_wait(&socket, &mut child);

    // Crash run: both batches acked, then SIGKILL — the store holds only
    // the per-shard journals, no snapshot.
    let mut child = spawn_daemon_with(&socket, &store, &shards_flag, false);
    for part in &parts {
        expect_ok(&ask(&socket, &ingest_request(part)));
    }
    child.kill().expect("SIGKILL the daemon");
    child.wait().unwrap();
    let _ = std::fs::remove_file(&socket);

    // Restart: only the owning shard replays non-empty frames; the other
    // shards' journals hold the seq-aligning empty frames.
    let mut child = spawn_daemon_with(&socket, &store, &shards_flag, false);
    let stats = ask(&socket, r#"{"cmd":"stats"}"#);
    expect_ok(&stats);
    let shard_stats = stats
        .get("shards")
        .and_then(Json::as_array)
        .expect("shards section");
    assert_eq!(shard_stats.len(), 4);
    for s in shard_stats {
        let k = s.get("shard").and_then(Json::as_u64).unwrap() as usize;
        let replays = s.get("journal_replays").and_then(Json::as_u64).unwrap();
        let expected = if k == target { 2 } else { 0 };
        assert_eq!(replays, expected, "shard {k} replay count: {stats}");
        assert_eq!(
            s.get("replay_complete").and_then(Json::as_bool),
            Some(true),
            "shard {k} finished replay"
        );
    }
    // The global replay counter still counts whole batches.
    assert_eq!(
        stats
            .get("process")
            .and_then(|p| p.get("journal_replays"))
            .and_then(Json::as_u64),
        Some(2)
    );
    // readyz rolls up per-shard replay once every shard has finished.
    let ready = ask(&socket, r#"{"cmd":"readyz"}"#);
    expect_ok(&ready);
    assert_eq!(ready.get("shards").and_then(Json::as_u64), Some(4));
    assert_eq!(ready.get("shards_replayed").and_then(Json::as_u64), Some(4));
    // Cross-shard fingerprint identical to the uninterrupted golden.
    assert_eq!(store_section(&socket), want, "replay matches golden");
    shutdown_and_wait(&socket, &mut child);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---- decision provenance --------------------------------------------

/// The `explain` wire command against a live 4-shard TCP daemon must
/// return the exact evidence chain the serial in-process engine derives
/// on the same data — rule id, pass, batch seq, and the acked trace ids
/// — and the `mergepurge explain --addr` client must render it.
#[test]
fn explain_over_the_wire_matches_the_serial_engine() {
    let dir = tmp_dir("explain");
    let socket = dir.join("mp.sock");
    let addr = format!("127.0.0.1:{}", free_port());
    let parts = batches(3737, 400, 3);

    let mut child = spawn_daemon_with(
        &socket,
        &dir.join("store"),
        &["--shards", "4", "--listen", &addr],
        false,
    );
    let tcp = Transport::Tcp(addr.clone());

    // Serial reference engine, fed the identical batches and annotated
    // with the trace ids the daemon acked — so even trace_id must agree.
    let theory = NativeEmployeeTheory::new();
    let rule_names = theory.rule_names();
    let mut serial = IncrementalMergePurge::new()
        .pass(KeySpec::last_name_key(), 8)
        .pass(KeySpec::first_name_key(), 8);
    for part in &parts {
        let reply = tcp.ask(&ingest_request(part));
        expect_ok(&reply);
        serial.add_batch(part.clone(), &theory);
        serial.note_batch_trace(
            reply
                .get("trace_id")
                .and_then(Json::as_str)
                .expect("ack carries trace id"),
        );
    }

    // Probe pairs: near and far members of real duplicate classes.
    let mut probes: Vec<(u32, u32)> = Vec::new();
    for class in serial.classes() {
        if class.len() >= 2 {
            probes.push((class[0], *class.last().unwrap()));
        }
        if probes.len() >= 16 {
            break;
        }
    }
    assert!(!probes.is_empty(), "the seeded data has duplicate classes");

    for &(a, b) in &probes {
        let reply = tcp.ask(&format!(r#"{{"cmd":"explain","a":{a},"b":{b}}}"#));
        expect_ok(&reply);
        assert_eq!(reply.get("connected").and_then(Json::as_bool), Some(true));
        let chain = reply
            .get("chain")
            .and_then(Json::as_array)
            .expect("connected pairs carry a chain");
        let want = serial.explain(a, b).expect("serial engine agrees");
        assert_eq!(chain.len(), want.len(), "chain length for ({a}, {b})");
        for (hop, evidence) in chain.iter().zip(&want) {
            assert_eq!(hop.get("a").and_then(Json::as_u64), Some(evidence.a as u64));
            assert_eq!(hop.get("b").and_then(Json::as_u64), Some(evidence.b as u64));
            assert_eq!(
                hop.get("rule_id").and_then(Json::as_u64),
                Some(evidence.rule_id as u64)
            );
            assert_eq!(
                hop.get("rule").and_then(Json::as_str),
                Some(rule_names[evidence.rule_id as usize].as_str()),
                "rule name resolves through the theory's table"
            );
            assert_eq!(
                hop.get("pass").and_then(Json::as_u64),
                Some(evidence.pass as u64)
            );
            assert_eq!(
                hop.get("batch_seq").and_then(Json::as_u64),
                Some(evidence.batch_seq)
            );
            assert_eq!(
                hop.get("trace_id").and_then(Json::as_str),
                evidence.trace_id.as_deref(),
                "wire chain carries the acked ingest trace id"
            );
        }
    }

    // Negative cases: records in different classes connect to nothing;
    // out-of-range ids are a protocol error, not a crash.
    let singleton = {
        let in_class: std::collections::HashSet<u32> =
            serial.classes().into_iter().flatten().collect();
        (0..serial.records().len() as u32)
            .find(|id| !in_class.contains(id))
            .expect("seeded data has singletons")
    };
    let other = probes[0].0;
    let reply = tcp.ask(&format!(
        r#"{{"cmd":"explain","a":{singleton},"b":{other}}}"#
    ));
    expect_ok(&reply);
    assert_eq!(reply.get("connected").and_then(Json::as_bool), Some(false));
    let oob = tcp.ask(r#"{"cmd":"explain","a":0,"b":999999}"#);
    assert_eq!(oob.get("ok").and_then(Json::as_bool), Some(false), "{oob}");

    // The client subcommand renders the same chain over TCP.
    let (a, b) = probes[0];
    let out = Command::new(env!("CARGO_BIN_EXE_mergepurge"))
        .args(["explain", "--addr", &addr])
        .args(["--a", &a.to_string(), "--b", &b.to_string()])
        .output()
        .expect("run mergepurge explain");
    assert!(out.status.success(), "explain exits 0: {out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("duplicates"), "verdict line: {text}");
    let want = serial.explain(a, b).unwrap();
    for evidence in &want {
        assert!(
            text.contains(rule_names[evidence.rule_id as usize].as_str()),
            "chain line names rule {}: {text}",
            evidence.rule_id
        );
    }

    shutdown_and_wait(&socket, &mut child);
    std::fs::remove_dir_all(&dir).unwrap();
}
