//! Vendored stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a handful of concrete
//! (non-generic) types but never invokes serde serialization — there is no
//! `serde_json` in the tree, and report emission is hand-rolled in
//! `mp-metrics`. These derives therefore emit empty marker impls of the
//! shim traits in the sibling `serde` package.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the struct/enum a derive was applied to.
///
/// Good enough for the concrete types this workspace derives on; generic
/// types would need real parsing and are rejected with a compile error.
fn type_name(input: &TokenStream) -> Result<String, String> {
    let mut tokens = input.clone().into_iter();
    while let Some(tok) = tokens.next() {
        if let TokenTree::Ident(ident) = &tok {
            let word = ident.to_string();
            if word == "struct" || word == "enum" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        let name = name.to_string();
                        // Reject generics: the marker impl below would not
                        // compile for `Foo<T>` and silently-wrong output is
                        // worse than a clear error.
                        if let Some(TokenTree::Punct(p)) = tokens.next() {
                            if p.as_char() == '<' {
                                return Err(format!(
                                    "shim serde_derive does not support generic type {name}"
                                ));
                            }
                        }
                        return Ok(name);
                    }
                    _ => return Err("expected type name after struct/enum".into()),
                }
            }
        }
    }
    Err("no struct or enum found in derive input".into())
}

fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    match type_name(&input) {
        Ok(name) => format!("impl ::serde::{trait_name} for {name} {{}}")
            .parse()
            .expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("generated error parses"),
    }
}

/// Derives the shim `serde::Serialize` marker trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

/// Derives the shim `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}
