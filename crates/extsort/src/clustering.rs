//! Disk-resident clustering method — the "approximately only 2 passes"
//! alternative of §3.5.

use crate::runfile::{RunReader, RunWriter};
use crate::{ExternalConfig, ExternalOutcome, IoStats};
use merge_purge::{window_scan, KeySpec};
use mp_closure::PairSet;
use mp_cluster::{KeyHistogram, RangePartition};
use mp_record::{io as rio, Record};
use mp_rules::EquationalTheory;
use std::fs::File;
use std::io::{self, BufReader};
use std::path::{Path, PathBuf};

/// External clustering pass.
///
/// Pass 1 streams the input, conditions, extracts keys, and scatters each
/// record into one of `C` cluster files by histogram range partition; pass
/// 2 loads each cluster (which must fit in the memory budget), sorts it on
/// the fixed-size cluster key, and window-scans it. The partition comes
/// from a histogram computed on a bounded sample — the paper's "gathered
/// off-line" step — so the whole method is two data passes regardless of N.
#[derive(Debug, Clone)]
pub struct ExternalClustering {
    key: KeySpec,
    clusters: usize,
    histogram_prefix: usize,
    cluster_key_len: usize,
    window: usize,
    config: ExternalConfig,
    /// Records sampled for the offline histogram.
    sample_size: usize,
}

impl ExternalClustering {
    /// An external clustering pass with the paper's defaults (3-letter
    /// histogram space, 12-character fixed cluster key).
    ///
    /// # Panics
    ///
    /// Panics when `window < 2` or `clusters == 0`.
    pub fn new(key: KeySpec, clusters: usize, window: usize, config: ExternalConfig) -> Self {
        assert!(window >= 2, "window must hold at least two records");
        assert!(clusters >= 1, "need at least one cluster");
        ExternalClustering {
            key,
            clusters,
            histogram_prefix: 3,
            cluster_key_len: 12,
            window,
            config,
            sample_size: 10_000,
        }
    }

    /// Runs over the flat record file at `input`, temporaries under
    /// `work_dir`.
    ///
    /// # Errors
    ///
    /// Besides I/O failures, fails with `InvalidData` when a cluster
    /// exceeds the memory budget (the paper's premise is that clusters are
    /// sized to fit: "we desire a cluster to be main memory based").
    pub fn run(
        &self,
        input: &Path,
        work_dir: &Path,
        theory: &dyn EquationalTheory,
    ) -> io::Result<ExternalOutcome> {
        std::fs::create_dir_all(work_dir)?;
        let mut io_stats = IoStats::default();
        let nicknames = mp_record::NicknameTable::standard();

        // Offline: histogram from a bounded sample (not counted as a data
        // pass, matching the paper's accounting).
        let partition = self.sample_partition(input, &nicknames)?;

        // Pass 1: scatter into cluster files.
        io_stats.add_sweep();
        let pid = std::process::id();
        let paths: Vec<PathBuf> = (0..partition.clusters())
            .map(|c| work_dir.join(format!("cluster-{c}-{pid}.tmp")))
            .collect();
        let mut writers: Vec<RunWriter> = paths
            .iter()
            .map(|p| RunWriter::create(p))
            .collect::<io::Result<_>>()?;
        let mut stream = rio::RecordStream::new(BufReader::new(File::open(input)?));
        let mut buf = String::new();
        let mut total = 0usize;
        for record in &mut stream {
            let mut record =
                record.map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            mp_record::normalize::condition(&mut record, &nicknames);
            self.key.extract_into(&record, &mut buf);
            let truncated = truncate(&buf, self.cluster_key_len);
            let c = partition.cluster_of(truncated);
            writers[c].write(truncated, &record)?;
            total += 1;
            io_stats.records_read += 1;
        }
        for w in writers {
            io_stats.records_written += w.finish()?;
        }

        // Pass 2: per-cluster in-memory sort + window scan.
        io_stats.add_sweep();
        let mut pairs = PairSet::new();
        for path in &paths {
            let mut reader = RunReader::open(path)?;
            let mut keys: Vec<String> = Vec::new();
            let mut records: Vec<Record> = Vec::new();
            while let Some((key, record)) = reader.next_entry()? {
                keys.push(key);
                records.push(record);
                io_stats.records_read += 1;
                if records.len() > self.config.memory_records {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "cluster {} exceeds the memory budget of {} records; \
                             increase the cluster count",
                            path.display(),
                            self.config.memory_records
                        ),
                    ));
                }
            }
            let mut order: Vec<u32> = (0..records.len() as u32).collect();
            order.sort_by(|&a, &b| keys[a as usize].cmp(&keys[b as usize]));
            window_scan(&records, &order, self.window, theory, &mut pairs);
        }

        for p in paths {
            let _ = std::fs::remove_file(p);
        }
        Ok(ExternalOutcome {
            pairs,
            io: io_stats,
            records: total,
        })
    }

    fn sample_partition(
        &self,
        input: &Path,
        nicknames: &mp_record::NicknameTable,
    ) -> io::Result<RangePartition> {
        let mut stream = rio::RecordStream::new(BufReader::new(File::open(input)?));
        let mut buf = String::new();
        let mut sampled: Vec<String> = Vec::with_capacity(self.sample_size.min(4096));
        for record in stream.by_ref().take(self.sample_size) {
            let mut record =
                record.map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            mp_record::normalize::condition(&mut record, nicknames);
            self.key.extract_into(&record, &mut buf);
            sampled.push(truncate(&buf, self.cluster_key_len).to_string());
        }
        let histogram =
            KeyHistogram::from_keys(sampled.iter().map(String::as_str), self.histogram_prefix);
        let clusters = self.clusters.min(histogram.bins());
        Ok(RangePartition::build(&histogram, clusters))
    }
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datagen::{DatabaseGenerator, GeneratorConfig};
    use mp_rules::NativeEmployeeTheory;
    use std::path::PathBuf;

    fn work_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mp-xcl-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_db(n: usize, seed: u64, dir: &Path) -> (PathBuf, mp_datagen::GeneratedDatabase) {
        let db = DatabaseGenerator::new(GeneratorConfig::new(n).duplicate_fraction(0.5).seed(seed))
            .generate();
        let input = dir.join("db.mp");
        rio::write_records(std::fs::File::create(&input).unwrap(), &db.records).unwrap();
        (input, db)
    }

    #[test]
    fn always_exactly_two_data_passes() {
        let dir = work_dir("two");
        let (input, db) = write_db(500, 7001, &dir);
        let theory = NativeEmployeeTheory::new();
        for clusters in [8usize, 32] {
            let xc = ExternalClustering::new(
                KeySpec::last_name_key(),
                clusters,
                8,
                ExternalConfig {
                    memory_records: 1_000,
                    fan_in: 16,
                    ..ExternalConfig::default()
                },
            );
            let outcome = xc.run(&input, &dir, &theory).unwrap();
            assert_eq!(outcome.io.data_passes(), 2, "clusters = {clusters}");
            assert_eq!(outcome.records, db.records.len());
            assert!(!outcome.pairs.is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn finds_same_true_pairs_as_in_memory_clustering_roughly() {
        // The external variant uses a sampled histogram, so cluster
        // boundaries can differ slightly from the full-scan in-memory
        // method; require ≥ 95% agreement on found pairs.
        let dir = work_dir("agree");
        let (input, mut db) = write_db(600, 7002, &dir);
        mp_record::normalize::condition_all(&mut db.records, &mp_record::NicknameTable::standard());
        let theory = NativeEmployeeTheory::new();
        let mem = merge_purge::ClusteringMethod::new(
            KeySpec::last_name_key(),
            merge_purge::ClusteringConfig {
                clusters: 16,
                histogram_prefix: 3,
                cluster_key_len: 12,
                window: 8,
            },
        )
        .run(&db.records, &theory);
        let ext = ExternalClustering::new(
            KeySpec::last_name_key(),
            16,
            8,
            ExternalConfig {
                memory_records: 5_000,
                fan_in: 16,
                ..ExternalConfig::default()
            },
        )
        .run(&input, &dir, &theory)
        .unwrap();
        let mem_pairs: std::collections::HashSet<_> = mem.pairs.iter().collect();
        let shared = ext.pairs.iter().filter(|p| mem_pairs.contains(p)).count();
        assert!(
            shared as f64 >= 0.95 * mem_pairs.len() as f64,
            "only {shared}/{} pairs agree",
            mem_pairs.len()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_cluster_reports_clear_error() {
        let dir = work_dir("oversize");
        let (input, _) = write_db(300, 7003, &dir);
        let theory = NativeEmployeeTheory::new();
        let xc = ExternalClustering::new(
            KeySpec::last_name_key(),
            2, // two clusters of ~300 records...
            4,
            ExternalConfig {
                memory_records: 50,
                fan_in: 16,
                ..ExternalConfig::default()
            }, // ...but only 50 fit
        );
        let err = xc.run(&input, &dir, &theory).unwrap_err();
        assert!(err.to_string().contains("memory budget"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
