//! Minimal HTTP/1.1 responder for `mergepurge serve --metrics-addr`.
//!
//! The build environment has no HTTP crate, and a metrics endpoint needs
//! almost nothing from one: Prometheus scrapes with a plain
//! `GET /metrics HTTP/1.1` and reads one response. This module binds a
//! `TcpListener`, parses only the request line, and answers three routes:
//!
//! * `GET /metrics` — the Prometheus text exposition (always 200);
//! * `GET /healthz` — engine-worker liveness (200, or 503 when the
//!   heartbeat is stale);
//! * `GET /readyz`  — traffic readiness (200, or 503 during journal
//!   replay, backpressure, or shutdown);
//! * `GET /trace`   — the flight recorder's retained batch spans as
//!   Chrome trace-event JSON (always 200; an empty document before the
//!   first batch), loadable directly in Perfetto.
//!
//! Everything else is 404. Connections are `Connection: close`; the
//! accept loop is nonblocking and polls the daemon's shutdown flag, so
//! the thread exits promptly on SIGTERM.

use super::obs::ObsState;
use mp_metrics::{FlightRecorder, MetricsRecorder};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Runs the HTTP accept loop until `shutdown` flips. The listener must
/// already be bound (binding early lets `readyz` answer 503 while the
/// journal is still replaying).
pub fn serve_http(
    listener: TcpListener,
    obs: &ObsState,
    recorder: &MetricsRecorder,
    flight: &FlightRecorder,
    shutdown: &AtomicBool,
) {
    if listener.set_nonblocking(true).is_err() {
        eprintln!("mergepurge serve: metrics listener: cannot set nonblocking; disabled");
        return;
    }
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: scrapes are small, rare (seconds apart),
                // and must not outlive the daemon's thread scope.
                let _ = handle(stream, obs, recorder, flight);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// Reads the request head (bounded) and returns the request-line target,
/// e.g. `/metrics`.
fn read_target(stream: &mut TcpStream) -> std::io::Result<String> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "only GET is served",
        ));
    }
    Ok(target.to_string())
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn handle(
    mut stream: TcpStream,
    obs: &ObsState,
    recorder: &MetricsRecorder,
    flight: &FlightRecorder,
) -> std::io::Result<()> {
    let target = match read_target(&mut stream) {
        Ok(t) => t,
        Err(_) => {
            return respond(
                &mut stream,
                "405 Method Not Allowed",
                "text/plain",
                "GET only\n",
            );
        }
    };
    match target.split('?').next().unwrap_or("") {
        "/metrics" => respond(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &obs.exposition(recorder),
        ),
        "/healthz" => {
            let status = if obs.worker_alive() {
                "200 OK"
            } else {
                "503 Service Unavailable"
            };
            respond(&mut stream, status, "application/json", &obs.healthz_json())
        }
        "/readyz" => {
            let status = if obs.readiness().is_ok() {
                "200 OK"
            } else {
                "503 Service Unavailable"
            };
            respond(&mut stream, status, "application/json", &obs.readyz_json())
        }
        "/trace" => respond(
            &mut stream,
            "200 OK",
            "application/json",
            &flight.chrome_json(),
        ),
        _ => respond(&mut stream, "404 Not Found", "text/plain", "unknown path\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        let (head, body) = out.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn routes_metrics_health_ready_and_404() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let obs = ObsState::new(4, None);
        obs.init_shards(2);
        obs.beat();
        let recorder = MetricsRecorder::new().with_tracing();
        let flight = FlightRecorder::default();
        {
            let _s = mp_metrics::span_labeled(&recorder, "batch", || "trace=http-test".into());
        }
        flight.record("http-test", 1, false, recorder.drain_spans());
        let shutdown = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| serve_http(listener, &obs, &recorder, &flight, &shutdown));

            let (head, body) = get(addr, "/metrics");
            assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
            assert!(body.contains("mergepurge_uptime_seconds"));

            // Not ready yet: replay has not completed.
            let (head, body) = get(addr, "/readyz");
            assert!(head.starts_with("HTTP/1.1 503"), "{head}");
            assert!(body.contains("\"ready\":false"));
            obs.set_replay_complete();
            obs.set_accepting(true);

            // Still not ready: one shard has not finished its replay.
            obs.set_shard_replay_complete(0);
            let (head, body) = get(addr, "/readyz");
            assert!(head.starts_with("HTTP/1.1 503"), "{head}");
            assert!(body.contains("shard journal replay"), "{body}");
            obs.set_shard_replay_complete(1);
            let (head, body) = get(addr, "/readyz");
            assert!(head.starts_with("HTTP/1.1 200"), "{head}");
            assert!(body.contains("\"shards_replayed\":2"), "{body}");

            let (head, body) = get(addr, "/healthz");
            assert!(head.starts_with("HTTP/1.1 200"), "{head}");
            assert!(body.contains("\"alive\":true"));

            let (head, body) = get(addr, "/trace");
            assert!(head.starts_with("HTTP/1.1 200"), "{head}");
            assert!(head.contains("application/json"), "{head}");
            assert!(body.contains("\"traceEvents\""), "{body}");
            assert!(body.contains("trace=http-test"), "{body}");

            let (head, _) = get(addr, "/nope");
            assert!(head.starts_with("HTTP/1.1 404"), "{head}");

            shutdown.store(true, Ordering::SeqCst);
        });
    }
}
