//! Flat-file persistence for record lists.
//!
//! One record per line, fields separated by `|` (which never occurs in
//! generated data and is rejected on write). The ground-truth entity id is
//! stored first so evaluation can reload it; production exports simply leave
//! the column empty.

use crate::record::{EntityId, Record, RecordId};
use std::fmt;
use std::io::{self, BufRead, Write};

/// Number of `|`-separated columns per line: the entity column plus the ten
/// data fields.
const COLUMNS: usize = 1 + crate::field::Field::ALL.len();

/// Error produced while reading a record file.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line did not have exactly the expected number of columns (the
    /// entity column plus the ten data fields).
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Number of columns found.
        columns: usize,
    },
    /// The entity column held something other than an integer or blank.
    BadEntity {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::Malformed { line, columns } => {
                write!(
                    f,
                    "line {line}: expected {COLUMNS} columns, found {columns}"
                )
            }
            ReadError::BadEntity { line } => write!(f, "line {line}: invalid entity id"),
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Writes records in the flat format; field values containing `|` or a
/// newline are rejected with `InvalidData`.
pub fn write_records<W: Write>(mut w: W, records: &[Record]) -> io::Result<()> {
    let mut line = String::new();
    for r in records {
        line.clear();
        if let Some(EntityId(e)) = r.entity {
            line.push_str(&e.to_string())
        }
        for f in crate::field::Field::ALL {
            let v = r.field(f);
            if v.contains(['|', '\n']) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("field {f} of {} contains a separator", r.id),
                ));
            }
            line.push('|');
            line.push_str(v);
        }
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    w.flush()
}

/// Reads records written by [`write_records`], assigning sequential
/// [`RecordId`]s from zero (the id is positional, exactly as in the
/// concatenated list the paper sorts).
pub fn read_records<R: BufRead>(r: R) -> Result<Vec<Record>, ReadError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        out.push(parse_line(&line, i + 1, out.len() as u32)?);
    }
    Ok(out)
}

/// Streams records from a flat file one at a time, assigning positional
/// ids — the memory-bounded counterpart of [`read_records`] used by the
/// external-memory engines.
pub struct RecordStream<R: BufRead> {
    lines: std::io::Lines<R>,
    line_no: usize,
    next_id: u32,
}

impl<R: BufRead> RecordStream<R> {
    /// Wraps a buffered reader.
    pub fn new(reader: R) -> Self {
        RecordStream {
            lines: reader.lines(),
            line_no: 0,
            next_id: 0,
        }
    }
}

impl<R: BufRead> Iterator for RecordStream<R> {
    type Item = Result<Record, ReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.line_no += 1;
            let line = match self.lines.next()? {
                Ok(l) => l,
                Err(e) => return Some(Err(ReadError::Io(e))),
            };
            if line.is_empty() {
                continue;
            }
            let parsed = parse_line(&line, self.line_no, self.next_id);
            if parsed.is_ok() {
                self.next_id += 1;
            }
            return Some(parsed);
        }
    }
}

fn parse_line(line: &str, line_no: usize, id: u32) -> Result<Record, ReadError> {
    let cols: Vec<&str> = line.split('|').collect();
    if cols.len() != COLUMNS {
        return Err(ReadError::Malformed {
            line: line_no,
            columns: cols.len(),
        });
    }
    let entity = if cols[0].is_empty() {
        None
    } else {
        Some(EntityId(
            cols[0]
                .parse()
                .map_err(|_| ReadError::BadEntity { line: line_no })?,
        ))
    };
    let mut rec = Record::empty(RecordId(id));
    rec.entity = entity;
    for (field, value) in crate::field::Field::ALL.iter().zip(&cols[1..]) {
        *rec.field_mut(*field) = (*value).to_string();
    }
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Field;

    fn sample(n: u32) -> Vec<Record> {
        (0..n)
            .map(|i| {
                let mut r = Record::empty(RecordId(i));
                r.entity = (i % 2 == 0).then_some(EntityId(i * 10));
                r.first_name = format!("FIRST{i}");
                r.last_name = format!("LAST{i}");
                r.zip = "10027".into();
                r
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let records = sample(5);
        let mut buf = Vec::new();
        write_records(&mut buf, &records).unwrap();
        let back = read_records(buf.as_slice()).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn empty_fields_and_missing_entity_roundtrip() {
        let mut r = Record::empty(RecordId(0));
        r.city = "AUSTIN".into();
        let mut buf = Vec::new();
        write_records(&mut buf, &[r.clone()]).unwrap();
        let back = read_records(buf.as_slice()).unwrap();
        assert_eq!(back, vec![r]);
    }

    #[test]
    fn separator_in_field_rejected() {
        let mut r = Record::empty(RecordId(0));
        r.city = "BAD|CITY".into();
        let err = write_records(Vec::new(), &[r]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn malformed_line_reports_position() {
        let err = read_records("a|b|c\n".as_bytes()).unwrap_err();
        match err {
            ReadError::Malformed { line, columns } => {
                assert_eq!(line, 1);
                assert_eq!(columns, 3);
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn bad_entity_reported() {
        let line = format!("xx{}\n", "|".repeat(COLUMNS - 1));
        let err = read_records(line.as_bytes()).unwrap_err();
        assert!(matches!(err, ReadError::BadEntity { line: 1 }));
    }

    #[test]
    fn stream_matches_batch_reader() {
        let records = sample(6);
        let mut buf = Vec::new();
        write_records(&mut buf, &records).unwrap();
        let streamed: Vec<Record> = RecordStream::new(buf.as_slice())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, records);
    }

    #[test]
    fn stream_reports_errors_with_line_numbers() {
        let text = "a|b|c\n";
        let mut stream = RecordStream::new(text.as_bytes());
        match stream.next().unwrap() {
            Err(ReadError::Malformed { line, .. }) => assert_eq!(line, 1),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn blank_lines_skipped_and_ids_positional() {
        let records = sample(3);
        let mut buf = Vec::new();
        write_records(&mut buf, &records).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.insert(0, '\n');
        let back = read_records(text.as_bytes()).unwrap();
        assert_eq!(back.len(), 3);
        for (i, r) in back.iter().enumerate() {
            assert_eq!(r.id, RecordId(i as u32));
            assert_eq!(r.field(Field::FirstName), format!("FIRST{i}"));
        }
    }
}
