//! Cross-crate equivalence: the parallel engines must reproduce the serial
//! engines' results exactly, for every processor count, at the full
//! multi-pass level.

use merge_purge::{ClusteringConfig, KeySpec, MultiPass};
use mp_datagen::{DatabaseGenerator, GeneratorConfig};
use mp_parallel::{parallel_multipass, ParallelClustering, ParallelPass, ParallelSnm};
use mp_rules::NativeEmployeeTheory;

#[test]
fn parallel_multipass_equals_serial_for_many_processor_counts() {
    let mut db = DatabaseGenerator::new(
        GeneratorConfig::new(1_200)
            .duplicate_fraction(0.5)
            .seed(4001),
    )
    .generate();
    mp_record::normalize::condition_all(&mut db.records, &mp_record::NicknameTable::standard());
    let theory = NativeEmployeeTheory::new();
    let serial = MultiPass::standard_three(9).run(&db.records, &theory);
    for procs in [1usize, 2, 4, 7] {
        let passes: Vec<ParallelPass> = KeySpec::standard_three()
            .into_iter()
            .map(|k| ParallelPass::Snm(ParallelSnm::new(k, 9, procs)))
            .collect();
        let parallel = parallel_multipass(&passes, &db.records, &theory);
        assert_eq!(
            parallel.closed_pairs.sorted(),
            serial.closed_pairs.sorted(),
            "procs = {procs}"
        );
    }
}

#[test]
fn parallel_clustering_invariant_under_processor_count_with_fixed_total_clusters() {
    let mut db = DatabaseGenerator::new(
        GeneratorConfig::new(1_000)
            .duplicate_fraction(0.4)
            .seed(4002),
    )
    .generate();
    mp_record::normalize::condition_all(&mut db.records, &mp_record::NicknameTable::standard());
    let theory = NativeEmployeeTheory::new();
    let total = 36;
    let mut baseline = None;
    for procs in [1usize, 2, 3, 4, 6] {
        let config = ClusteringConfig {
            clusters: total / procs,
            histogram_prefix: 3,
            cluster_key_len: 12,
            window: 7,
        };
        let r = ParallelClustering::new(KeySpec::address_key(), config, procs)
            .run(&db.records, &theory);
        let sorted = r.pairs.sorted();
        match &baseline {
            None => baseline = Some(sorted),
            Some(b) => assert_eq!(&sorted, b, "procs = {procs}"),
        }
    }
}

#[test]
fn worker_comparisons_sum_to_total() {
    let db = DatabaseGenerator::new(GeneratorConfig::new(800).duplicate_fraction(0.5).seed(4003))
        .generate();
    let theory = NativeEmployeeTheory::new();
    for procs in [1usize, 3, 5] {
        let r = ParallelSnm::new(KeySpec::last_name_key(), 11, procs).run(&db.records, &theory);
        assert_eq!(
            r.worker_comparisons.iter().sum::<u64>(),
            r.stats.comparisons,
            "procs = {procs}"
        );
        assert!(r.worker_comparisons.len() <= procs);
    }
}
