#![warn(missing_docs)]

//! Transitive closure over match pairs.
//!
//! The multi-pass approach (§2.4) runs several independent sorted-
//! neighborhood passes, each emitting pairs of tuple ids its equational
//! theory declared equivalent, and then unions them: "The results will be a
//! union of all pairs discovered by all independent runs, with no
//! duplicates, plus all those pairs that can be inferred by transitivity of
//! equality." §3.3 notes the closure runs over a pair set at least an order
//! of magnitude smaller than the record database and cites fast
//! multiprocessor closure algorithms; a union-find forest gives the same
//! result in near-linear time.
//!
//! * [`UnionFind`] — the sequential forest with path halving and union by
//!   rank.
//! * [`PairSet`] — a deduplicating accumulator of undirected pairs.
//! * [`concurrent::ConcurrentUnionFind`] — a lock-striped variant that lets
//!   the parallel engines merge pairs from many worker threads without a
//!   global lock.
//! * [`provenance::ProvenanceLog`] — the spanning-forest edge log keeping
//!   the evidence (rule, pass, batch, trace) behind every merge, plus
//!   [`provenance::ClusterSizes`] cluster-size telemetry.

pub mod concurrent;
pub mod pairs;
pub mod provenance;
pub mod unionfind;

pub use concurrent::ConcurrentUnionFind;
pub use pairs::PairSet;
pub use provenance::{ClusterSizes, MergeEdge, ProvenanceLog};
pub use unionfind::UnionFind;

/// Computes the transitive closure of `pairs` over the id space `0..n` and
/// returns the equivalence classes with at least two members, each sorted
/// ascending, classes ordered by their smallest member.
///
/// This is the one-shot convenience entry; pipelines that stream pairs use
/// [`UnionFind`] directly.
///
/// ```
/// use mp_closure::close_pairs;
/// let classes = close_pairs(6, [(0, 1), (1, 2), (4, 5)]);
/// assert_eq!(classes, vec![vec![0, 1, 2], vec![4, 5]]);
/// ```
pub fn close_pairs<I>(n: usize, pairs: I) -> Vec<Vec<u32>>
where
    I: IntoIterator<Item = (u32, u32)>,
{
    let mut uf = UnionFind::new(n);
    for (a, b) in pairs {
        uf.union(a, b);
    }
    uf.classes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_pairs_chains_transitively() {
        let classes = close_pairs(5, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(classes, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn close_pairs_empty_input() {
        assert!(close_pairs(10, []).is_empty());
        assert!(close_pairs(0, []).is_empty());
    }

    #[test]
    fn singletons_not_reported() {
        let classes = close_pairs(4, [(1, 2)]);
        assert_eq!(classes, vec![vec![1, 2]]);
    }
}
