//! Name corpora.
//!
//! The paper draws names "randomly from a list of 63000 real names". We have
//! no such proprietary list, so (per DESIGN.md §5) we substitute a
//! deterministic pool: a seed list of frequent American surnames extended by
//! syllable composition to any requested size. Composition preserves the
//! skewed first-letter/prefix distribution that the clustering method's
//! histogram partitioner must cope with, which is the property the
//! experiments actually exercise.

use rand::Rng;

/// Frequent American surnames used verbatim and as composition stems.
const SURNAME_SEEDS: [&str; 96] = [
    "SMITH",
    "JOHNSON",
    "WILLIAMS",
    "BROWN",
    "JONES",
    "GARCIA",
    "MILLER",
    "DAVIS",
    "RODRIGUEZ",
    "MARTINEZ",
    "HERNANDEZ",
    "LOPEZ",
    "GONZALEZ",
    "WILSON",
    "ANDERSON",
    "THOMAS",
    "TAYLOR",
    "MOORE",
    "JACKSON",
    "MARTIN",
    "LEE",
    "PEREZ",
    "THOMPSON",
    "WHITE",
    "HARRIS",
    "SANCHEZ",
    "CLARK",
    "RAMIREZ",
    "LEWIS",
    "ROBINSON",
    "WALKER",
    "YOUNG",
    "ALLEN",
    "KING",
    "WRIGHT",
    "SCOTT",
    "TORRES",
    "NGUYEN",
    "HILL",
    "FLORES",
    "GREEN",
    "ADAMS",
    "NELSON",
    "BAKER",
    "HALL",
    "RIVERA",
    "CAMPBELL",
    "MITCHELL",
    "CARTER",
    "ROBERTS",
    "GOMEZ",
    "PHILLIPS",
    "EVANS",
    "TURNER",
    "DIAZ",
    "PARKER",
    "CRUZ",
    "EDWARDS",
    "COLLINS",
    "REYES",
    "STEWART",
    "MORRIS",
    "MORALES",
    "MURPHY",
    "COOK",
    "ROGERS",
    "GUTIERREZ",
    "ORTIZ",
    "MORGAN",
    "COOPER",
    "PETERSON",
    "BAILEY",
    "REED",
    "KELLY",
    "HOWARD",
    "RAMOS",
    "KIM",
    "COX",
    "WARD",
    "RICHARDSON",
    "WATSON",
    "BROOKS",
    "CHAVEZ",
    "WOOD",
    "JAMES",
    "BENNETT",
    "GRAY",
    "MENDOZA",
    "RUIZ",
    "HUGHES",
    "PRICE",
    "ALVAREZ",
    "CASTILLO",
    "SANDERS",
    "PATEL",
    "MYERS",
];

/// Onset syllables for composed surnames, weighted by rough letter-frequency
/// of American surnames (more entries under common initials).
const ONSETS: [&str; 48] = [
    "BAR", "BEL", "BEN", "BER", "BOW", "BRAN", "CAL", "CAR", "CAS", "CHAM", "DAL", "DAV", "DEL",
    "DON", "FAIR", "FER", "GAL", "GAR", "GRAN", "HAL", "HAM", "HAR", "HEN", "HOL", "KEN", "KIR",
    "LAM", "LAN", "LIN", "MAC", "MAR", "MCAL", "MER", "MON", "MOR", "NOR", "PAR", "PEM", "RAN",
    "ROS", "SAL", "SHER", "STAN", "TAL", "VAN", "WAL", "WES", "WIN",
];

/// Middle syllables.
const MIDDLES: [&str; 16] = [
    "", "BER", "DER", "DING", "FIELD", "GER", "LAN", "LEY", "LING", "MAN", "MER", "NER", "RING",
    "TER", "THER", "VER",
];

/// Coda syllables.
const CODAS: [&str; 24] = [
    "SON", "TON", "MAN", "BERG", "FORD", "WELL", "WOOD", "LAND", "FIELD", "WORTH", "BROOK", "SHAW",
    "DALE", "GATE", "HURST", "COMB", "WICK", "STEIN", "HOLM", "STROM", "MONT", "VALE", "MORE",
    "BY",
];

/// Common first (given) names used by the generator; aligned with the
/// nickname classes in `mp-record` so nickname corruption is realistic.
const FIRST_NAMES: [&str; 64] = [
    "ROBERT",
    "WILLIAM",
    "JOSEPH",
    "JOHN",
    "MICHAEL",
    "JAMES",
    "RICHARD",
    "CHARLES",
    "THOMAS",
    "CHRISTOPHER",
    "DANIEL",
    "MATTHEW",
    "ANTHONY",
    "STEVEN",
    "EDWARD",
    "HENRY",
    "ALEXANDER",
    "FRANCIS",
    "LAWRENCE",
    "PETER",
    "ELIZABETH",
    "MARGARET",
    "KATHERINE",
    "MARY",
    "PATRICIA",
    "JENNIFER",
    "SUSAN",
    "BARBARA",
    "DOROTHY",
    "REBECCA",
    "DEBORAH",
    "VICTORIA",
    "LINDA",
    "CAROL",
    "SANDRA",
    "DONNA",
    "SHARON",
    "MICHELLE",
    "LAURA",
    "SARAH",
    "KIMBERLY",
    "JESSICA",
    "NANCY",
    "KAREN",
    "BETTY",
    "HELEN",
    "AMANDA",
    "MELISSA",
    "BRIAN",
    "KEVIN",
    "JASON",
    "JEFFREY",
    "RYAN",
    "GARY",
    "NICHOLAS",
    "ERIC",
    "JONATHAN",
    "STEPHEN",
    "LARRY",
    "JUSTIN",
    "SCOTT",
    "BRANDON",
    "BENJAMIN",
    "SAMUEL",
];

/// A deterministic pool of `size` distinct surnames.
///
/// Index `i` always yields the same name for the same pool size, so
/// generated databases are reproducible across runs and machines.
///
/// ```
/// use mp_datagen::names::SurnamePool;
/// let pool = SurnamePool::new(63_000);
/// assert_eq!(pool.len(), 63_000);
/// assert_eq!(pool.get(0), pool.get(0));
/// assert_ne!(pool.get(0), pool.get(1));
/// ```
#[derive(Debug, Clone)]
pub struct SurnamePool {
    names: Vec<String>,
}

impl SurnamePool {
    /// Builds a pool of exactly `size` distinct surnames.
    pub fn new(size: usize) -> Self {
        let mut names: Vec<String> = Vec::with_capacity(size);
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        for seed in SURNAME_SEEDS.iter().take(size) {
            seen.insert((*seed).to_string());
            names.push((*seed).to_string());
        }
        // Compose ONSET x MIDDLE x CODA, interleaved so consecutive indices
        // differ in prefix (keeps the pool's prefix distribution stable
        // under truncation); beyond one full cycle, a letter tag
        // disambiguates repeats. Cross-combination string collisions (e.g.
        // a middle/coda pair spelling another combination) are dropped by
        // the `seen` check.
        let cycle = ONSETS.len() * MIDDLES.len() * CODAS.len();
        let mut n = 0usize;
        while names.len() < size {
            let onset = ONSETS[n % ONSETS.len()];
            let m = MIDDLES[(n / ONSETS.len()) % MIDDLES.len()];
            let c = CODAS[(n / (ONSETS.len() * MIDDLES.len())) % CODAS.len()];
            let round = n / cycle;
            n += 1;
            let candidate = if round == 0 {
                format!("{onset}{m}{c}")
            } else {
                format!("{onset}{m}{c}{}", alpha_tag(round - 1))
            };
            if seen.insert(candidate.clone()) {
                names.push(candidate);
            }
        }
        debug_assert_eq!(names.len(), size);
        SurnamePool { names }
    }

    /// Number of names in the pool.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The `i`-th surname.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn get(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// A uniformly random surname.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> &str {
        self.get(rng.gen_range(0..self.names.len()))
    }

    /// A surname drawn with realistic Zipf-like skew (common names — the
    /// seed list — dominate; see [`zipf_index`]).
    pub fn sample_skewed<R: Rng>(&self, rng: &mut R) -> &str {
        self.get(zipf_index(self.names.len(), 3.0, rng))
    }
}

/// Draws a skewed (Zipf-like) index in `0..n`: real name frequencies are
/// heavily concentrated on a few common names (SMITH alone covers ~1% of
/// the U.S. population), and that skew is what produces the paper's small
/// but non-zero false-positive rates — distinct people sharing a name.
///
/// `u^exponent` for uniform `u` concentrates mass near index 0; exponent 3
/// puts ~5% of draws on the first ten of 63,000 surnames, matching census
/// data to first order.
pub fn zipf_index<R: Rng>(n: usize, exponent: f64, rng: &mut R) -> usize {
    assert!(n > 0, "empty pool");
    let u: f64 = rng.gen();
    ((n as f64 * u.powf(exponent)) as usize).min(n - 1)
}

fn alpha_tag(mut n: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((b'A' + (n % 26) as u8) as char);
        n /= 26;
        if n == 0 {
            break;
        }
    }
    s
}

/// A uniformly random first name from the built-in list.
pub fn random_first_name<R: Rng>(rng: &mut R) -> &'static str {
    FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())]
}

/// Onset syllables for composed given names.
const FIRST_ONSETS: [&str; 24] = [
    "AD", "AL", "AN", "AR", "BEL", "BER", "CAR", "CEL", "DAR", "EL", "FER", "GER", "HAR", "IS",
    "JOR", "KAR", "LEN", "MAR", "NOR", "OR", "ROS", "SAL", "TER", "VAL",
];

/// Coda syllables for composed given names.
const FIRST_CODAS: [&str; 20] = [
    "A", "AN", "ANA", "ELLE", "EN", "ENA", "ETTE", "IA", "IAN", "ICE", "INA", "INE", "IO", "IS",
    "ITA", "MUND", "ON", "OS", "TON", "WIN",
];

/// A deterministic pool of distinct given names: the canonical list (which
/// the nickname table covers) extended by syllable composition.
///
/// A realistic population draws from a few thousand distinct given names;
/// with only the canonical 64, the first-name sort key would have far less
/// discriminating power than the paper's real-name data.
#[derive(Debug, Clone)]
pub struct FirstNamePool {
    names: Vec<String>,
}

impl FirstNamePool {
    /// Builds a pool of exactly `size` distinct given names, starting with
    /// the canonical nickname-covered list.
    pub fn new(size: usize) -> Self {
        let mut names: Vec<String> = Vec::with_capacity(size);
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        for n in FIRST_NAMES.iter().take(size) {
            seen.insert((*n).to_string());
            names.push((*n).to_string());
        }
        let cycle = FIRST_ONSETS.len() * FIRST_CODAS.len();
        let mut n = 0usize;
        while names.len() < size {
            let onset = FIRST_ONSETS[n % FIRST_ONSETS.len()];
            let coda = FIRST_CODAS[(n / FIRST_ONSETS.len()) % FIRST_CODAS.len()];
            let round = n / cycle;
            n += 1;
            let candidate = if round == 0 {
                format!("{onset}{coda}")
            } else {
                format!("{onset}{coda}{}", alpha_tag(round - 1))
            };
            if seen.insert(candidate.clone()) {
                names.push(candidate);
            }
        }
        FirstNamePool { names }
    }

    /// Number of names in the pool.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The `i`-th name.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn get(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// A uniformly random given name from the pool.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> &str {
        self.get(rng.gen_range(0..self.names.len()))
    }

    /// A given name drawn with realistic Zipf-like skew (given names are
    /// even more concentrated than surnames; see [`zipf_index`]).
    pub fn sample_skewed<R: Rng>(&self, rng: &mut R) -> &str {
        self.get(zipf_index(self.names.len(), 3.0, rng))
    }
}

/// A random nickname/variant for `name` drawn from the standard equivalence
/// classes, or `None` when the name has no known variants.
pub fn random_variant<R: Rng>(name: &str, rng: &mut R) -> Option<&'static str> {
    for class in mp_record::nickname::standard_classes() {
        if class.contains(&name) {
            let others: Vec<&str> = class.iter().copied().filter(|&n| n != name).collect();
            if others.is_empty() {
                return None;
            }
            return Some(others[rng.gen_range(0..others.len())]);
        }
    }
    None
}

/// All built-in first names (used by tests and the quickstart example).
pub fn first_names() -> &'static [&'static str] {
    &FIRST_NAMES
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn pool_of_paper_size_is_distinct() {
        let pool = SurnamePool::new(63_000);
        assert_eq!(pool.len(), 63_000);
        let set: HashSet<&str> = (0..pool.len()).map(|i| pool.get(i)).collect();
        assert_eq!(set.len(), 63_000, "pool contains duplicates");
    }

    #[test]
    fn pool_names_alphabetic_uppercase() {
        let pool = SurnamePool::new(10_000);
        for i in 0..pool.len() {
            let n = pool.get(i);
            assert!(!n.is_empty());
            assert!(n.bytes().all(|b| b.is_ascii_uppercase()), "bad name {n}");
        }
    }

    #[test]
    fn pool_deterministic_and_prefix_stable() {
        let a = SurnamePool::new(5_000);
        let b = SurnamePool::new(5_000);
        for i in 0..5_000 {
            assert_eq!(a.get(i), b.get(i));
        }
        // Truncation keeps a prefix: first 1000 of a larger pool match.
        let big = SurnamePool::new(20_000);
        for i in 0..5_000 {
            assert_eq!(a.get(i), big.get(i));
        }
    }

    #[test]
    fn first_letter_distribution_is_skewed_not_uniform() {
        // The histogram partitioner needs realistic skew; verify the pool
        // does not degenerate to a uniform first-letter distribution.
        let pool = SurnamePool::new(63_000);
        let mut counts = [0usize; 26];
        for i in 0..pool.len() {
            counts[(pool.get(i).as_bytes()[0] - b'A') as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let nonzero_min = *counts.iter().filter(|&&c| c > 0).min().unwrap();
        assert!(max > nonzero_min * 2, "distribution suspiciously flat");
    }

    #[test]
    fn small_pools() {
        assert_eq!(SurnamePool::new(1).len(), 1);
        assert!(SurnamePool::new(0).is_empty());
    }

    #[test]
    fn variants_stay_in_class() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let v = random_variant("ROBERT", &mut rng).unwrap();
            assert_ne!(v, "ROBERT");
            let t = mp_record::NicknameTable::standard();
            assert!(t.equivalent(v, "ROBERT"), "{v} not equivalent");
        }
        assert_eq!(random_variant("XQZ", &mut rng), None);
    }

    #[test]
    fn first_name_pool_distinct_and_seeded() {
        let pool = FirstNamePool::new(1_200);
        assert_eq!(pool.len(), 1_200);
        let set: HashSet<&str> = (0..pool.len()).map(|i| pool.get(i)).collect();
        assert_eq!(set.len(), 1_200);
        // Canonical names lead the pool so nickname corruption stays live.
        assert_eq!(pool.get(0), "ROBERT");
        for i in 0..pool.len() {
            assert!(
                pool.get(i).bytes().all(|b| b.is_ascii_uppercase()),
                "{}",
                pool.get(i)
            );
        }
    }

    #[test]
    fn sampling_in_range() {
        let pool = SurnamePool::new(100);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let n = pool.sample(&mut rng);
            assert!((0..100).any(|i| pool.get(i) == n));
        }
        let f = random_first_name(&mut rng);
        assert!(first_names().contains(&f));
    }
}
