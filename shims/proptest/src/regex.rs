//! Tiny regex-shaped string generator backing `&str` strategies.
//!
//! Supports the subset the workspace's tests use: literal characters,
//! character classes with ranges and escapes (`[A-Z0-9 '\-]`), the
//! printable-character class `\PC`, and the quantifiers `{n}`, `{m,n}`,
//! `*`, and `+`.

use crate::TestRng;

/// Pool for `\PC`: printable ASCII plus a spread of multi-byte characters,
/// including ones whose uppercase form expands ('ß' → "SS", 'ᾼ' → "ΑΙ") so
/// key-extraction properties see the interesting Unicode cases.
const PRINTABLE_EXTRAS: &[char] = &['ß', 'ᾼ', 'é', 'ñ', 'ü', 'æ', 'Ω', 'λ', 'Д', '中', '・', '†'];

/// One repeatable unit of a pattern.
enum Atom {
    /// Choose uniformly from an explicit set.
    Class(Vec<char>),
    /// Choose a printable character (`\PC`).
    Printable,
}

/// A parsed pattern: atoms with repetition bounds.
pub struct Pattern {
    atoms: Vec<(Atom, usize, usize)>,
}

impl Pattern {
    /// Parses the supported regex subset; panics on anything else so an
    /// unsupported pattern fails loudly rather than generating garbage.
    pub fn parse(src: &str) -> Pattern {
        let chars: Vec<char> = src.chars().collect();
        let mut i = 0;
        let mut atoms = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    i += 1;
                    let mut set = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let c = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        // Range like `A-Z` (a trailing `-` is a literal).
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let hi = chars[i + 2];
                            set.extend((c..=hi).filter(|x| *x <= hi));
                            i += 3;
                        } else {
                            set.push(c);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in {src:?}");
                    i += 1; // consume ']'
                    Atom::Class(set)
                }
                '\\' => {
                    if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                        i += 3;
                        Atom::Printable
                    } else {
                        i += 2;
                        Atom::Class(vec![chars[i - 1]])
                    }
                }
                c => {
                    i += 1;
                    Atom::Class(vec![c])
                }
            };
            // Optional quantifier.
            let (lo, hi) = match chars.get(i) {
                Some('*') => {
                    i += 1;
                    (0, 16)
                }
                Some('+') => {
                    i += 1;
                    (1, 16)
                }
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unterminated quantifier in {src:?}"));
                    let body: String = chars[i + 1..i + close].iter().collect();
                    i += close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.parse().expect("quantifier lower bound"),
                            n.parse().expect("quantifier upper bound"),
                        ),
                        None => {
                            let n: usize = body.parse().expect("quantifier count");
                            (n, n)
                        }
                    }
                }
                _ => (1, 1),
            };
            assert!(lo <= hi, "inverted quantifier in {src:?}");
            atoms.push((atom, lo, hi));
        }
        Pattern { atoms }
    }

    /// Draws one string matching the pattern.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, lo, hi) in &self.atoms {
            let reps = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..reps {
                match atom {
                    Atom::Class(set) => {
                        assert!(!set.is_empty(), "empty character class");
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                    Atom::Printable => {
                        // 1/8 of draws come from the non-ASCII extras.
                        if rng.below(8) == 0 {
                            let i = rng.below(PRINTABLE_EXTRAS.len() as u64) as usize;
                            out.push(PRINTABLE_EXTRAS[i]);
                        } else {
                            out.push((0x20 + rng.below(0x5f) as u8) as char);
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TestRng;

    fn gen(pat: &str, case: u64) -> String {
        Pattern::parse(pat).generate(&mut TestRng::new(pat, case))
    }

    #[test]
    fn class_with_ranges_and_escapes() {
        for case in 0..200 {
            let s = gen("[A-Z0-9 '\\-]{0,16}", case);
            assert!(s.chars().count() <= 16);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || " '-".contains(c)));
        }
    }

    #[test]
    fn bounded_repetition_hits_bounds() {
        let (mut saw_min, mut saw_max) = (false, false);
        for case in 0..400 {
            let s = gen("[A-D]{1,3}", case);
            let n = s.chars().count();
            assert!((1..=3).contains(&n));
            saw_min |= n == 1;
            saw_max |= n == 3;
        }
        assert!(saw_min && saw_max);
    }

    #[test]
    fn exact_repetition() {
        for case in 0..50 {
            assert_eq!(gen("[A-C]{4}", case).chars().count(), 4);
        }
    }

    #[test]
    fn printable_star_is_printable_and_varied() {
        let mut saw_unicode = false;
        for case in 0..400 {
            let s = gen("\\PC*", case);
            assert!(s.chars().count() <= 16);
            assert!(s.chars().all(|c| !c.is_control()));
            saw_unicode |= !s.is_ascii();
        }
        assert!(saw_unicode, "expected some non-ASCII draws");
    }

    #[test]
    fn literals_pass_through() {
        assert_eq!(gen("AB{2}C", 0), "ABBC");
    }
}
