//! Figure 7: scale-up — time vs database size at three duplication rates.
//!
//! Paper setup: four no-duplicate base sizes (0.5, 1, 1.5, 2 ×10⁶ records),
//! each with 10%, 30%, and 50% of tuples selected for duplication (12
//! databases); three concurrent independent runs (4 processors each) plus
//! the closure, for both methods. Expected result: time grows linearly with
//! database size at every duplication factor. The paper then extrapolates
//! to 10⁹ records: ~10 days (SNM) and ~7 days (clustering).
//!
//! Defaults scale sizes by 1/20 (25k/50k/75k/100k originals); use
//! `--scale-div 1` for paper sizes.
//!
//! Usage: `cargo run --release -p mp-bench --bin fig7 [--scale-div D] [--procs P]`

use merge_purge::{ClusteringConfig, KeySpec};
use mp_bench::{header, row, sec_cell, secs, Args};
use mp_datagen::{DatabaseGenerator, GeneratorConfig};
use mp_parallel::{parallel_multipass, ParallelClustering, ParallelPass, ParallelSnm};
use mp_rules::NativeEmployeeTheory;
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let div: usize = args.get("scale-div", 20);
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let procs: usize = args.get("procs", hw.min(4));
    let w: usize = args.get("window", 10);
    let seed: u64 = args.get("seed", 7);

    let base_sizes: Vec<usize> = [500_000usize, 1_000_000, 1_500_000, 2_000_000]
        .iter()
        .map(|s| s / div)
        .collect();
    let dup_rates = [0.1f64, 0.3, 0.5];
    let theory = NativeEmployeeTheory::new();

    println!(
        "# Figure 7 — scale-up, sizes {base_sizes:?} originals x duplication {{10%,30%,50%}}, \
         3 concurrent runs x {procs} procs each, w = {w}"
    );

    let mut extrapolation: Vec<(String, usize, f64)> = Vec::new();
    for (label, clustered) in [("sorted-neighborhood", false), ("clustering", true)] {
        println!("\n## {label} method");
        header(&[
            "originals",
            "total records",
            "10% dup",
            "30% dup",
            "50% dup",
        ]);
        for &size in &base_sizes {
            let mut cells = vec![size.to_string(), String::new()];
            let mut total_records = 0usize;
            for (di, &rate) in dup_rates.iter().enumerate() {
                let mut db = DatabaseGenerator::new(
                    GeneratorConfig::new(size)
                        .duplicate_fraction(rate)
                        .max_duplicates_per_record(5)
                        .seed(seed + di as u64),
                )
                .generate();
                mp_record::normalize::condition_all(
                    &mut db.records,
                    &mp_record::NicknameTable::standard(),
                );
                total_records = db.records.len();
                let passes: Vec<ParallelPass> = KeySpec::standard_three()
                    .into_iter()
                    .map(|k| {
                        if clustered {
                            ParallelPass::Clustering(ParallelClustering::new(
                                k,
                                ClusteringConfig {
                                    clusters: 100,
                                    histogram_prefix: 3,
                                    cluster_key_len: 6,
                                    window: w,
                                },
                                procs,
                            ))
                        } else {
                            ParallelPass::Snm(ParallelSnm::new(k, w, procs))
                        }
                    })
                    .collect();
                // Best of two runs: on hosts with fewer cores than worker
                // threads, scheduler noise dominates a single sample.
                let mut elapsed = f64::INFINITY;
                for _ in 0..2 {
                    let t0 = Instant::now();
                    let result = parallel_multipass(&passes, &db.records, &theory);
                    elapsed = elapsed.min(secs(t0.elapsed()));
                    drop(result);
                }
                if (rate - 0.3).abs() < 1e-9 && size == *base_sizes.last().unwrap() {
                    extrapolation.push((label.to_string(), total_records, elapsed));
                }
                cells.push(sec_cell(elapsed));
            }
            cells[1] = format!("(up to {total_records})");
            row(&cells);
        }
    }

    println!("\n## Billion-record extrapolation (paper: ~10 days SNM, ~7 days clustering)");
    for (label, records, elapsed) in extrapolation {
        let projected = 1e9 * elapsed / records as f64;
        println!(
            "- {label}: {records} records in {elapsed:.1}s → 10^9 records in ~{:.1} hours ({:.2} days)",
            projected / 3600.0,
            projected / 86400.0
        );
    }
    println!(
        "\nPaper shape check: rows grow linearly with size for every duplication \
         factor, and clustering stays below sorted-neighborhood."
    );
}
