//! The pre-optimization employee theory, frozen as a benchmark baseline.
//!
//! [`AllocatingEmployeeTheory`] is the original hand-coded implementation of
//! the 26-rule employee theory, exactly as it existed before
//! [`mp_strsim::ScratchBuffers`] was introduced: every distance predicate
//! calls the free `mp_strsim` functions, which allocate their working
//! buffers (char vectors, DP rows, match tables) on every invocation. It is
//! kept so the `pruning` benchmark in `mp-bench` can measure what the
//! allocation-free hot path saves against a faithful "before" — not a
//! synthetic strawman.
//!
//! Do not use this theory outside benchmarks; [`crate::NativeEmployeeTheory`]
//! decides identically (a test below keeps the two from drifting apart) and
//! is strictly faster.

use crate::builtins::shared::{digits_transposed, initials_match, nysiis_eq};
use crate::EquationalTheory;
use mp_record::{NicknameTable, Record};
use mp_strsim::{
    differ_slightly, jaro_winkler, keyboard_distance, levenshtein, normalized_levenshtein,
    soundex_eq, trigram_similarity,
};

/// The employee theory with per-call allocating distance kernels.
///
/// Decision-identical to [`crate::NativeEmployeeTheory`]; exists only as the
/// "before" side of the multi-pass hot-path benchmark.
#[derive(Debug, Default)]
pub struct AllocatingEmployeeTheory {
    nicknames: NicknameTable,
}

impl AllocatingEmployeeTheory {
    /// Baseline theory with the standard nickname table.
    pub fn new() -> Self {
        AllocatingEmployeeTheory {
            nicknames: NicknameTable::standard(),
        }
    }
}

/// `edit_sim(a, b) >= threshold` exactly as the DSL computes it.
#[inline]
fn edit_sim_ge(a: &str, b: &str, threshold: f64) -> bool {
    normalized_levenshtein(a, b) >= threshold
}

#[inline]
fn eq_nonempty(a: &str, b: &str) -> bool {
    !a.is_empty() && a == b
}

impl EquationalTheory for AllocatingEmployeeTheory {
    #[allow(clippy::too_many_lines)] // one block per rule, mirroring the DSL
    fn matches(&self, r1: &Record, r2: &Record) -> bool {
        // Precompute the cheap equalities most rules consult.
        let same_ssn = eq_nonempty(&r1.ssn, &r2.ssn);
        let same_last = eq_nonempty(&r1.last_name, &r2.last_name);
        let same_first = r1.first_name == r2.first_name;
        let same_street_no = r1.street_number == r2.street_number;
        let same_zip = eq_nonempty(&r1.zip, &r2.zip);

        // -- Group A: SSN-anchored ------------------------------------------
        // exact_ssn_close_last
        if same_ssn && differ_slightly(&r1.last_name, &r2.last_name, 0.4) {
            return true;
        }
        // exact_ssn_close_first
        if same_ssn && differ_slightly(&r1.first_name, &r2.first_name, 0.4) {
            return true;
        }
        // exact_ssn_same_zip
        if same_ssn && same_zip {
            return true;
        }
        // ssn_transposed_close_names
        if digits_transposed(&r1.ssn, &r2.ssn)
            && differ_slightly(&r1.last_name, &r2.last_name, 0.3)
            && (differ_slightly(&r1.first_name, &r2.first_name, 0.3)
                || initials_match(&r1.first_name, &r2.first_name)
                || self.nicknames.equivalent(&r1.first_name, &r2.first_name))
        {
            return true;
        }
        // ssn_one_digit_off_same_address
        if same_street_no
            && !r1.street_number.is_empty()
            && levenshtein(&r1.ssn, &r2.ssn) <= 1
            && edit_sim_ge(&r1.street_name, &r2.street_name, 0.8)
        {
            return true;
        }

        // -- Group B: name + address ----------------------------------------
        // same_last_close_first_same_address (the paper's worked example)
        if same_last
            && same_street_no
            && differ_slightly(&r1.first_name, &r2.first_name, 0.3)
            && edit_sim_ge(&r1.street_name, &r2.street_name, 0.8)
        {
            return true;
        }
        // close_last_same_first_same_address
        if same_first
            && !r1.first_name.is_empty()
            && same_street_no
            && differ_slightly(&r1.last_name, &r2.last_name, 0.25)
            && edit_sim_ge(&r1.street_name, &r2.street_name, 0.8)
        {
            return true;
        }
        // close_names_same_address_and_zip
        if !r1.last_name.is_empty()
            && !r1.zip.is_empty()
            && same_street_no
            && r1.zip == r2.zip
            && differ_slightly(&r1.last_name, &r2.last_name, 0.25)
            && differ_slightly(&r1.first_name, &r2.first_name, 0.25)
            && edit_sim_ge(&r1.street_name, &r2.street_name, 0.7)
        {
            return true;
        }
        // nickname_same_last_same_zip
        if same_last && same_zip && self.nicknames.equivalent(&r1.first_name, &r2.first_name) {
            return true;
        }
        // nickname_same_last_same_address
        if same_last
            && same_street_no
            && self.nicknames.equivalent(&r1.first_name, &r2.first_name)
            && edit_sim_ge(&r1.street_name, &r2.street_name, 0.8)
        {
            return true;
        }
        // initials_same_last_same_address
        if same_last
            && same_street_no
            && initials_match(&r1.first_name, &r2.first_name)
            && edit_sim_ge(&r1.street_name, &r2.street_name, 0.85)
        {
            return true;
        }

        // -- Group C: phonetic ----------------------------------------------
        // soundex_last_same_first_same_address
        if same_first
            && !r1.first_name.is_empty()
            && same_street_no
            && soundex_eq(&r1.last_name, &r2.last_name)
            && edit_sim_ge(&r1.street_name, &r2.street_name, 0.8)
        {
            return true;
        }
        // nysiis_last_initials_same_zip_street
        if same_zip
            && same_street_no
            && initials_match(&r1.first_name, &r2.first_name)
            && nysiis_eq(&r1.last_name, &r2.last_name)
        {
            return true;
        }
        // soundex_both_names_same_city_street
        if eq_nonempty(&r1.city, &r2.city)
            && same_street_no
            && soundex_eq(&r1.last_name, &r2.last_name)
            && soundex_eq(&r1.first_name, &r2.first_name)
            && edit_sim_ge(&r1.street_name, &r2.street_name, 0.75)
        {
            return true;
        }

        // -- Group D: typewriter / jaro / q-gram -----------------------------
        // keyboard_last_same_first_same_city
        if same_first
            && !r1.first_name.is_empty()
            && r1.city == r2.city
            && same_street_no
            && keyboard_distance(&r1.last_name, &r2.last_name) <= 1.0
        {
            return true;
        }
        // jaro_names_same_address
        if same_street_no
            && !r1.street_number.is_empty()
            && jaro_winkler(&r1.last_name, &r2.last_name) >= 0.92
            && jaro_winkler(&r1.first_name, &r2.first_name) >= 0.9
            && edit_sim_ge(&r1.street_name, &r2.street_name, 0.7)
        {
            return true;
        }
        // trigram_street_same_names
        if same_last
            && same_street_no
            && (same_first || initials_match(&r1.first_name, &r2.first_name))
            && trigram_similarity(&r1.street_name, &r2.street_name) >= 0.75
        {
            return true;
        }

        // -- Group E: moved person -------------------------------------------
        // moved_same_name_similar_ssn
        if same_last
            && same_first
            && !r1.first_name.is_empty()
            && levenshtein(&r1.ssn, &r2.ssn) <= 2
        {
            return true;
        }
        // moved_same_full_name_with_middle
        if same_last
            && same_first
            && !r1.first_name.is_empty()
            && eq_nonempty(&r1.middle_initial, &r2.middle_initial)
            && levenshtein(&r1.ssn, &r2.ssn) <= 3
        {
            return true;
        }

        // -- Group F: city / zip / state errors --------------------------------
        // city_typo_same_rest
        if same_last
            && same_first
            && same_street_no
            && edit_sim_ge(&r1.street_name, &r2.street_name, 0.8)
            && differ_slightly(&r1.city, &r2.city, 0.35)
        {
            return true;
        }
        // zip_error_same_rest
        if same_last
            && same_first
            && same_street_no
            && levenshtein(&r1.zip, &r2.zip) <= 2
            && edit_sim_ge(&r1.street_name, &r2.street_name, 0.8)
        {
            return true;
        }
        // same_full_name_same_city (the loosest rule; FP source, see DSL)
        if same_last
            && same_first
            && !r1.first_name.is_empty()
            && (r1.middle_initial == r2.middle_initial
                || r1.middle_initial.is_empty()
                || r2.middle_initial.is_empty())
            && eq_nonempty(&r1.city, &r2.city)
        {
            return true;
        }

        // -- Group G: missing fields / swapped names ---------------------------
        // empty_first_same_ssn_last
        if (r1.first_name.is_empty() || r2.first_name.is_empty()) && same_last && same_ssn {
            return true;
        }
        // empty_street_same_ssn_city
        if (r1.street_name.is_empty() || r2.street_name.is_empty())
            && same_ssn
            && eq_nonempty(&r1.city, &r2.city)
        {
            return true;
        }
        // apartment_anchor_close_names
        if eq_nonempty(&r1.apartment, &r2.apartment)
            && same_street_no
            && differ_slightly(&r1.last_name, &r2.last_name, 0.3)
            && (initials_match(&r1.first_name, &r2.first_name)
                || differ_slightly(&r1.first_name, &r2.first_name, 0.3))
        {
            return true;
        }
        // swapped_first_and_middle
        if r1.first_name == r2.middle_initial
            && r1.middle_initial == r2.first_name
            && !r1.first_name.is_empty()
            && !r1.middle_initial.is_empty()
            && r1.last_name == r2.last_name
            && (r1.ssn == r2.ssn || r1.zip == r2.zip)
        {
            return true;
        }

        false
    }

    fn name(&self) -> &str {
        "native-employee-allocating"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NativeEmployeeTheory;
    use mp_datagen::{DatabaseGenerator, ErrorProfile, GeneratorConfig};

    /// The baseline must never drift from the optimized theory: both must
    /// decide every pair of a noisy generated database identically.
    #[test]
    fn baseline_agrees_with_scratch_theory_on_generated_pairs() {
        let baseline = AllocatingEmployeeTheory::new();
        let native = NativeEmployeeTheory::new();
        for (seed, profile) in [
            (201, ErrorProfile::light()),
            (202, ErrorProfile::default()),
            (203, ErrorProfile::heavy()),
        ] {
            let db = DatabaseGenerator::new(
                GeneratorConfig::new(60)
                    .duplicate_fraction(0.6)
                    .max_duplicates_per_record(3)
                    .errors(profile)
                    .seed(seed),
            )
            .generate();
            let records = &db.records;
            for i in 0..records.len() {
                for j in i + 1..records.len().min(i + 9) {
                    let (a, b) = (&records[i], &records[j]);
                    assert_eq!(
                        baseline.matches(a, b),
                        native.matches(a, b),
                        "baseline drifted from native theory (seed {seed}) on {a:?} vs {b:?}"
                    );
                }
            }
        }
    }
}
