//! Transitive-closure benchmarks: the multi-pass approach's extra cost
//! beyond its passes (§3.3 argues it is small because the pair set is an
//! order of magnitude smaller than the database).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mp_closure::{ConcurrentUnionFind, PairSet, UnionFind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pair workload shaped like multi-pass output: mostly chains of 2-5
/// records with many repeated discoveries across passes.
fn workload(n_records: usize, n_pairs: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs = Vec::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        let base = rng.gen_range(0..n_records.saturating_sub(5)) as u32;
        let off = rng.gen_range(1..5) as u32;
        pairs.push((base, base + off));
    }
    pairs
}

fn bench_closure(c: &mut Criterion) {
    let mut g = c.benchmark_group("closure");
    for &n in &[10_000usize, 100_000] {
        let pairs = workload(n, n / 2, 42);
        g.bench_with_input(BenchmarkId::new("union_find", n), &pairs, |b, pairs| {
            b.iter(|| {
                let mut uf = UnionFind::new(n);
                for &(x, y) in pairs {
                    uf.union(x, y);
                }
                black_box(uf.set_count())
            });
        });
        g.bench_with_input(
            BenchmarkId::new("union_find_with_classes", n),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    let mut uf = UnionFind::new(n);
                    for &(x, y) in pairs {
                        uf.union(x, y);
                    }
                    black_box(uf.classes().len())
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("concurrent_union_find", n),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    let uf = ConcurrentUnionFind::new(n);
                    for &(x, y) in pairs {
                        uf.union(x, y);
                    }
                    black_box(uf.set_count())
                });
            },
        );
        g.bench_with_input(BenchmarkId::new("pair_set_dedup", n), &pairs, |b, pairs| {
            b.iter(|| {
                let mut ps = PairSet::with_capacity(pairs.len());
                for &(x, y) in pairs {
                    ps.insert(x, y);
                }
                black_box(ps.len())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_closure);
criterion_main!(benches);
