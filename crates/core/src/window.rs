//! The merge phase: fixed-size window scanning over a sorted record order.

use mp_closure::{PairSet, UnionFind};
use mp_metrics::{ScanHooks, LATENCY_SAMPLE_MASK};
use mp_record::Record;
use mp_rules::EquationalTheory;
use std::time::Instant;

/// Evaluates the theory on one candidate pair, timing every
/// [`LATENCY_SAMPLE_MASK`]`+1`-th evaluation into the latency histogram
/// when one is hooked. `n` is the pre-increment evaluation ordinal.
#[inline]
fn eval_pair(
    theory: &dyn EquationalTheory,
    old: &Record,
    new: &Record,
    hooks: &ScanHooks<'_>,
    n: u64,
) -> bool {
    if let Some(h) = hooks.latency {
        if n & LATENCY_SAMPLE_MASK == 0 {
            let t = Instant::now();
            let matched = theory.matches(old, new);
            h.record(t.elapsed().as_nanos() as u64);
            return matched;
        }
    }
    theory.matches(old, new)
}

/// Work accounting of one pruned window scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanCounts {
    /// Candidate pairs the window produced (the §3.5 `(w−1)(N − w/2)`
    /// quantity — identical whether or not pruning is enabled).
    pub comparisons: u64,
    /// Pairs actually handed to the equational theory.
    pub rule_evaluations: u64,
    /// Pairs skipped because both records were already in the same
    /// equivalence class. `comparisons == rule_evaluations + pairs_pruned`.
    pub pairs_pruned: u64,
}

/// Slides a `window`-record window over `order` (indices into `records`,
/// already sorted by key) and applies `theory` to every pair inside the
/// window, accumulating matches into `pairs`.
///
/// "If the size of the window is w records, then every new record entering
/// the window is compared with the previous w − 1 records to find 'matching'
/// records" (§2.2). Returns the number of pair comparisons performed —
/// `(N − w/2 ish) · (w − 1)` — which the cost model and benches consume.
///
/// # Panics
///
/// Panics when `window < 2` (a window of one record can compare nothing).
pub fn window_scan(
    records: &[Record],
    order: &[u32],
    window: usize,
    theory: &dyn EquationalTheory,
    pairs: &mut PairSet,
) -> u64 {
    window_scan_hooked(records, order, window, theory, pairs, &ScanHooks::none())
}

/// [`window_scan`] with optional per-comparison instrumentation: sampled
/// rule-evaluation latencies and progress heartbeats. With empty `hooks`
/// the inner loop is identical to [`window_scan`]'s (two `None` branches
/// per window position).
///
/// # Panics
///
/// Panics when `window < 2`.
pub fn window_scan_hooked(
    records: &[Record],
    order: &[u32],
    window: usize,
    theory: &dyn EquationalTheory,
    pairs: &mut PairSet,
    hooks: &ScanHooks<'_>,
) -> u64 {
    assert!(window >= 2, "window must hold at least two records");
    let mut comparisons = 0u64;
    for i in 1..order.len() {
        let lo = i.saturating_sub(window - 1);
        let new = &records[order[i] as usize];
        for &prev in &order[lo..i] {
            let old = &records[prev as usize];
            if eval_pair(theory, old, new, hooks, comparisons) {
                pairs.insert(old.id.0, new.id.0);
            }
            comparisons += 1;
        }
        if let Some(p) = hooks.progress {
            p.tick((i - lo) as u64);
        }
    }
    comparisons
}

/// Like [`window_scan`], but skips rule evaluation for pairs whose records
/// are already connected in `uf`, and unions every match into `uf` as it is
/// found.
///
/// This applies the paper's §3.3 transitive-closure insight *inside* the
/// scan rather than only after it: once `a≡b` and `b≡c` are known, the
/// window pair `(a, c)` needs no rule evaluation — connectivity already
/// implies it contributes nothing new to the closure. Kejriwal & Miranker
/// ("On the Complexity of Sorted Neighborhood") show such redundant
/// re-checks dominate the comparison budget as windows grow; pruning them
/// changes no closed pair (the closure over emitted matches is identical —
/// tested) while skipping the expensive equational theory for them.
///
/// `uf` must span every record id that can appear (ids are used as
/// union-find elements). Passing a union-find carried over from previous
/// passes prunes cross-pass duplicates too — the multi-pass engine does
/// exactly that.
///
/// # Panics
///
/// Panics when `window < 2`.
pub fn window_scan_pruned(
    records: &[Record],
    order: &[u32],
    window: usize,
    theory: &dyn EquationalTheory,
    uf: &mut UnionFind,
    pairs: &mut PairSet,
) -> ScanCounts {
    window_scan_pruned_hooked(
        records,
        order,
        window,
        theory,
        uf,
        pairs,
        &ScanHooks::none(),
    )
}

/// [`window_scan_pruned`] with optional per-comparison instrumentation
/// (see [`window_scan_hooked`]).
///
/// # Panics
///
/// Panics when `window < 2`.
#[allow(clippy::too_many_arguments)] // the hooked variant of an established signature
pub fn window_scan_pruned_hooked(
    records: &[Record],
    order: &[u32],
    window: usize,
    theory: &dyn EquationalTheory,
    uf: &mut UnionFind,
    pairs: &mut PairSet,
    hooks: &ScanHooks<'_>,
) -> ScanCounts {
    assert!(window >= 2, "window must hold at least two records");
    let mut counts = ScanCounts::default();
    // `connected` can only hold between records that have each been merged
    // at least once, so gate the union-find walk behind one byte load per
    // endpoint — with sparse duplicates almost every candidate pair
    // short-circuits here.
    let mut linked: Vec<bool> = (0..uf.len() as u32).map(|x| !uf.is_singleton(x)).collect();
    for i in 1..order.len() {
        let lo = i.saturating_sub(window - 1);
        let new = &records[order[i] as usize];
        for &prev in &order[lo..i] {
            counts.comparisons += 1;
            let old = &records[prev as usize];
            let (a, b) = (old.id.0, new.id.0);
            if linked[a as usize] && linked[b as usize] && uf.connected(a, b) {
                counts.pairs_pruned += 1;
                continue;
            }
            if eval_pair(theory, old, new, hooks, counts.rule_evaluations) {
                pairs.insert(a, b);
                uf.union(a, b);
                linked[a as usize] = true;
                linked[b as usize] = true;
            }
            counts.rule_evaluations += 1;
        }
        if let Some(p) = hooks.progress {
            p.tick((i - lo) as u64);
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_record::RecordId;

    /// Theory matching records with equal last names.
    struct SameLast;
    impl EquationalTheory for SameLast {
        fn matches(&self, a: &Record, b: &Record) -> bool {
            !a.last_name.is_empty() && a.last_name == b.last_name
        }
        fn name(&self) -> &str {
            "same-last"
        }
    }

    fn records(lasts: &[&str]) -> Vec<Record> {
        lasts
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let mut r = Record::empty(RecordId(i as u32));
                r.last_name = (*l).to_string();
                r
            })
            .collect()
    }

    #[test]
    fn adjacent_matches_found_with_minimal_window() {
        let recs = records(&["A", "A", "B", "C", "C"]);
        let order: Vec<u32> = (0..recs.len() as u32).collect();
        let mut pairs = PairSet::new();
        window_scan(&recs, &order, 2, &SameLast, &mut pairs);
        assert_eq!(pairs.sorted(), vec![(0, 1), (3, 4)]);
    }

    #[test]
    fn matches_beyond_window_are_missed() {
        // The fundamental SNM limitation the multi-pass approach fixes.
        let recs = records(&["A", "B", "C", "A"]);
        let order: Vec<u32> = (0..4).collect();
        let mut pairs = PairSet::new();
        window_scan(&recs, &order, 3, &SameLast, &mut pairs);
        assert!(pairs.is_empty());
        let mut pairs = PairSet::new();
        window_scan(&recs, &order, 4, &SameLast, &mut pairs);
        assert_eq!(pairs.sorted(), vec![(0, 3)]);
    }

    #[test]
    fn comparison_count_matches_formula() {
        let recs = records(&["A"; 10]);
        let order: Vec<u32> = (0..10).collect();
        let mut pairs = PairSet::new();
        let w = 4;
        let c = window_scan(&recs, &order, w, &SameLast, &mut pairs);
        // First w-1 entries compare with fewer: sum_{i=1}^{N-1} min(i, w-1).
        let expected: u64 = (1..10u64).map(|i| i.min(w as u64 - 1)).sum();
        assert_eq!(c, expected);
        // All 45 pairs of equal records within distance 3 match.
        assert_eq!(pairs.len() as u64, expected);
    }

    #[test]
    fn order_indirection_respected() {
        // Records sorted differently from their id order.
        let recs = records(&["Z", "A", "Z"]);
        let order = vec![1u32, 0, 2]; // A, Z, Z
        let mut pairs = PairSet::new();
        window_scan(&recs, &order, 2, &SameLast, &mut pairs);
        assert_eq!(pairs.sorted(), vec![(0, 2)]);
    }

    #[test]
    fn window_larger_than_list_is_fine() {
        let recs = records(&["A", "A"]);
        let order = vec![0u32, 1];
        let mut pairs = PairSet::new();
        let c = window_scan(&recs, &order, 100, &SameLast, &mut pairs);
        assert_eq!(c, 1);
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let recs = records(&[]);
        let mut pairs = PairSet::new();
        assert_eq!(window_scan(&recs, &[], 2, &SameLast, &mut pairs), 0);
        let recs = records(&["A"]);
        assert_eq!(window_scan(&recs, &[0], 2, &SameLast, &mut pairs), 0);
        assert!(pairs.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn window_of_one_rejected() {
        let recs = records(&["A"]);
        let mut pairs = PairSet::new();
        window_scan(&recs, &[0], 1, &SameLast, &mut pairs);
    }

    #[test]
    fn pruned_scan_skips_transitively_implied_pairs() {
        // Three equal records in one window: after 0-1 and 0-2 match, the
        // 1-2 pair is implied by transitivity and must be pruned.
        let recs = records(&["A", "A", "A"]);
        let order: Vec<u32> = (0..3).collect();
        let mut uf = UnionFind::new(3);
        let mut pairs = PairSet::new();
        let counts = window_scan_pruned(&recs, &order, 3, &SameLast, &mut uf, &mut pairs);
        assert_eq!(counts.comparisons, 3);
        assert_eq!(counts.rule_evaluations, 2);
        assert_eq!(counts.pairs_pruned, 1);
        assert_eq!(
            counts.comparisons,
            counts.rule_evaluations + counts.pairs_pruned
        );
        // The emitted pairs close to the same classes as the unpruned scan.
        assert_eq!(uf.classes(), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn pruned_scan_same_candidate_count_and_closure_as_unpruned() {
        let lasts: Vec<&str> = ["A", "B", "A", "C", "B", "A", "C", "C", "B", "A"].to_vec();
        let recs = records(&lasts);
        let order: Vec<u32> = (0..recs.len() as u32).collect();
        for w in [2usize, 4, 8] {
            let mut plain_pairs = PairSet::new();
            let plain = window_scan(&recs, &order, w, &SameLast, &mut plain_pairs);

            let mut uf = UnionFind::new(recs.len());
            let mut pruned_pairs = PairSet::new();
            let counts =
                window_scan_pruned(&recs, &order, w, &SameLast, &mut uf, &mut pruned_pairs);
            assert_eq!(counts.comparisons, plain, "w={w}");
            assert!(counts.rule_evaluations <= plain);

            // Same closure: union the unpruned pairs and compare classes.
            let mut uf_plain = UnionFind::new(recs.len());
            for (a, b) in plain_pairs.iter() {
                uf_plain.union(a, b);
            }
            assert_eq!(uf.classes(), uf_plain.classes(), "w={w}");
        }
    }

    #[test]
    fn pruned_scan_with_preconnected_union_find_prunes_cross_pass() {
        // Simulates a second pass: the union-find already knows 0≡1.
        let recs = records(&["A", "A"]);
        let order = vec![0u32, 1];
        let mut uf = UnionFind::new(2);
        uf.union(0, 1);
        let mut pairs = PairSet::new();
        let counts = window_scan_pruned(&recs, &order, 2, &SameLast, &mut uf, &mut pairs);
        assert_eq!(counts.comparisons, 1);
        assert_eq!(counts.rule_evaluations, 0);
        assert_eq!(counts.pairs_pruned, 1);
        assert!(pairs.is_empty());
    }
}
