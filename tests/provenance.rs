//! Provenance equivalence: the merge-lineage forest (edges, rule
//! firings, explain chains) must be identical across every engine
//! configuration — serial, sharded scans at 1..=8 bands, and the durable
//! engine — and must survive SIGKILL + journal replay byte for byte.
//!
//! The guarantee under test is the band-replicated scan's deterministic
//! first-found attribution: every configuration discovers pairs in the
//! same order, so the spanning forest (first union wins) is the same
//! everywhere, and an `explain(a, b)` answer is a stable fact about the
//! data, not an artifact of the execution plan.

#![cfg(unix)]

use merge_purge::incremental::DurableIncremental;
use merge_purge::{IncrementalMergePurge, KeySpec};
use merge_purge_repro::serve::{ingest_request, json::Json, request};
use mp_datagen::{DatabaseGenerator, GeneratorConfig};
use mp_metrics::NoopObserver;
use mp_record::Record;
use mp_rules::NativeEmployeeTheory;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mp-prov-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn generate(seed: u64, n: usize) -> Vec<Record> {
    DatabaseGenerator::new(GeneratorConfig::new(n).duplicate_fraction(0.5).seed(seed))
        .generate()
        .records
}

fn split(records: &[Record], parts: usize) -> Vec<Vec<Record>> {
    let chunk = records.len().div_ceil(parts.max(1));
    records.chunks(chunk).map(<[Record]>::to_vec).collect()
}

fn engine(window: usize) -> IncrementalMergePurge {
    IncrementalMergePurge::new()
        .pass(KeySpec::last_name_key(), window)
        .pass(KeySpec::first_name_key(), window)
}

/// Encoded provenance log: the byte-level identity every configuration
/// must agree on (edges in discovery order, batch traces, rule firings).
fn dump(e: &IncrementalMergePurge) -> Vec<u8> {
    let mut out = Vec::new();
    e.provenance().encode_into(&mut out);
    out
}

/// Sample pairs spanning the interesting cases: same cluster near and
/// far, different clusters, and identity.
fn probe_pairs(e: &IncrementalMergePurge) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    for class in e.classes() {
        if class.len() >= 2 {
            pairs.push((class[0], class[1]));
            pairs.push((class[0], *class.last().unwrap()));
            if pairs.len() >= 24 {
                break;
            }
        }
    }
    let n = e.records().len() as u32;
    if n >= 2 {
        pairs.push((0, n - 1));
        pairs.push((n - 1, n - 1));
    }
    pairs
}

proptest! {
    #[test]
    fn chains_identical_across_shard_counts_and_durability(
        seed in 0u64..1_000_000,
        originals in 60usize..240,
        parts in 1usize..4,
    ) {
        let records = generate(seed, originals);
        let batches = split(&records, parts);
        let theory = NativeEmployeeTheory::new();

        // Reference: the serial incremental engine.
        let mut serial = engine(6);
        for (i, b) in batches.iter().enumerate() {
            serial.add_batch(b.clone(), &theory);
            serial.note_batch_trace(&format!("trace-{i}"));
        }
        let want = dump(&serial);
        let probes = probe_pairs(&serial);

        // Sharded scans, every band count 1..=8.
        for shards in 1..=8usize {
            let mut e = engine(6);
            for (i, b) in batches.iter().enumerate() {
                e.add_batch_sharded(b.clone(), &theory, shards, &NoopObserver);
                e.note_batch_trace(&format!("trace-{i}"));
            }
            prop_assert_eq!(
                &dump(&e), &want,
                "provenance bytes diverge at {} shards", shards
            );
            for &(a, b) in &probes {
                prop_assert_eq!(
                    e.explain(a, b), serial.explain(a, b),
                    "explain({}, {}) diverges at {} shards", a, b, shards
                );
            }
        }

        // Durable engine: journal every batch, then reopen and replay.
        let dir = tmp_dir(&format!("prop-{seed}-{originals}-{parts}"));
        let configure = |e: IncrementalMergePurge| {
            e.pass(KeySpec::last_name_key(), 6)
                .pass(KeySpec::first_name_key(), 6)
        };
        let (mut durable, _) =
            DurableIncremental::open(&dir, configure, &theory, &NoopObserver).unwrap();
        for (i, b) in batches.iter().enumerate() {
            durable
                .ingest(b.clone(), Some(&format!("trace-{i}")), &theory, &NoopObserver)
                .unwrap();
        }
        prop_assert_eq!(dump(durable.engine()), want.clone());
        drop(durable);
        let (reopened, report) =
            DurableIncremental::open(&dir, configure, &theory, &NoopObserver).unwrap();
        prop_assert_eq!(report.batches_replayed, batches.len() as u64);
        prop_assert_eq!(
            dump(reopened.engine()), want,
            "journal replay must rebuild the identical provenance log"
        );
        for &(a, b) in &probes {
            prop_assert_eq!(reopened.engine().explain(a, b), serial.explain(a, b));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Every explain chain is a real path: connectivity agrees with the
/// closure, and consecutive edges share the record the walk is standing
/// on, ending at the asked-for pair.
#[test]
fn explain_chains_are_valid_paths_matching_the_closure() {
    let records = generate(77, 400);
    let theory = NativeEmployeeTheory::new();
    let mut e = engine(8);
    e.add_batch(records, &theory);

    let classes = e.classes();
    let class_of = {
        let mut m = vec![u32::MAX; e.records().len()];
        for (c, class) in classes.iter().enumerate() {
            for &id in class {
                m[id as usize] = c as u32;
            }
        }
        m
    };
    let n = e.records().len() as u32;
    let mut connected = 0;
    for a in (0..n).step_by(7) {
        for b in (0..n).step_by(13) {
            let chain = e.explain(a, b);
            if a == b {
                assert_eq!(chain, Some(vec![]), "a record explains itself trivially");
                continue;
            }
            // `classes()` lists multi-record classes only: a sentinel
            // means singleton, which never explains against anything.
            let (ca, cb) = (class_of[a as usize], class_of[b as usize]);
            if ca != cb || ca == u32::MAX {
                assert!(chain.is_none(), "{a} and {b} are in different classes");
                continue;
            }
            connected += 1;
            let chain = chain.unwrap_or_else(|| panic!("{a} and {b} share a class"));
            assert!(!chain.is_empty());
            // Walk the chain from `a`: each hop's edge must touch the
            // record we stand on and move us to the other endpoint.
            let mut at = a;
            for hop in &chain {
                assert!(hop.a < hop.b, "edges are stored low-high");
                at = if hop.a == at {
                    hop.b
                } else {
                    assert_eq!(hop.b, at, "edge ({}, {}) skips {at}", hop.a, hop.b);
                    hop.a
                };
                assert!(hop.batch_seq >= 1);
            }
            assert_eq!(at, b, "the walk must end at the asked-for record");
        }
    }
    assert!(connected > 0, "the probe grid found no connected pairs");
}

/// Provenance is an observer: turning it off changes no match decision,
/// and rule firings count every match while edges count only the unions.
#[test]
fn without_provenance_keeps_decisions_and_drops_the_log() {
    let records = generate(99, 300);
    let theory = NativeEmployeeTheory::new();
    let mut with = engine(6);
    with.add_batch(records.clone(), &theory);
    let mut without = engine(6).without_provenance();
    without.add_batch(records, &theory);

    assert_eq!(with.pairs().sorted(), without.pairs().sorted());
    assert_eq!(with.classes(), without.classes());
    assert_eq!(with.comparisons(), without.comparisons());
    assert!(without.provenance().is_empty());
    assert!(
        without.explain(0, 1).is_none(),
        "no edges recorded, so nothing to explain"
    );

    let edges = with.provenance().edges.len() as u64;
    let firings: u64 = with.provenance().rule_firings.iter().sum();
    let classes_merged: usize = with
        .classes()
        .iter()
        .filter(|c| c.len() >= 2)
        .map(|c| c.len() - 1)
        .sum();
    assert_eq!(
        edges, classes_merged as u64,
        "spanning forest: one edge per merge ever"
    );
    assert!(
        firings >= edges,
        "every union came from a firing, plus redundant matches"
    );
    let found: u64 = with.pass_counters().iter().map(|p| p.pairs_found).sum();
    assert_eq!(firings, found, "one firing per found match, every pass");
}

// ---------------------------------------------------------------------------
// Crash safety: SIGKILL the real daemon mid-stream, then replay the
// journal in-process and require the byte-identical provenance log.
// ---------------------------------------------------------------------------

fn ask(socket: &Path, payload: &str) -> Json {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match request(socket, payload) {
            Ok(response) => return Json::parse(&response).expect("daemon speaks json"),
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(25)),
            Err(e) => panic!("request failed: {e}"),
        }
    }
}

#[test]
fn sigkill_then_replay_rebuilds_byte_identical_provenance() {
    let dir = tmp_dir("kill9");
    let socket = dir.join("mp.sock");
    let store = dir.join("store");
    let records = generate(4141, 500);
    let batches = split(&records, 3);

    let mut child = Command::new(env!("CARGO_BIN_EXE_mergepurge"))
        .args(["serve", "--socket", socket.to_str().unwrap()])
        .args(["--store", store.to_str().unwrap()])
        .args(["--window", "8", "--keys", "last_name,first_name"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn mergepurge serve");
    let deadline = Instant::now() + Duration::from_secs(20);
    while !socket.exists() {
        assert!(Instant::now() < deadline, "daemon never bound {socket:?}");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Ingest all three batches, keeping the acked trace ids — they are
    // part of the provenance log and must survive the crash.
    let mut traces = Vec::new();
    for b in &batches {
        let reply = ask(&socket, &ingest_request(b));
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(true),
            "{reply}"
        );
        traces.push(
            reply
                .get("trace_id")
                .and_then(Json::as_str)
                .expect("acks carry trace ids")
                .to_string(),
        );
    }
    child.kill().expect("SIGKILL the daemon");
    child.wait().unwrap();
    let _ = std::fs::remove_file(&socket);

    // The daemon never snapshotted (default interval 0): recovery is pure
    // journal replay. It must rebuild exactly the log the live engine
    // held — same edges, same firings, same trace table.
    let theory = NativeEmployeeTheory::new();
    let configure = |e: IncrementalMergePurge| {
        e.pass(KeySpec::last_name_key(), 8)
            .pass(KeySpec::first_name_key(), 8)
    };
    let (replayed, report) =
        DurableIncremental::open(&store, configure, &theory, &NoopObserver).unwrap();
    assert_eq!(report.batches_replayed, batches.len() as u64);
    assert!(!report.snapshot_loaded);

    let mut reference = engine(8);
    for (b, t) in batches.iter().zip(&traces) {
        reference.add_batch(b.clone(), &theory);
        reference.note_batch_trace(t);
    }
    assert_eq!(
        dump(replayed.engine()),
        dump(&reference),
        "replayed provenance must be byte-identical to the live engine's"
    );
    assert!(!replayed.engine().provenance().is_empty());
    for (i, t) in traces.iter().enumerate() {
        assert_eq!(
            replayed.engine().provenance().trace_for(i as u64 + 1),
            Some(t.as_str()),
            "batch {} keeps its acked trace id",
            i + 1
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
