//! Corrupt-tail recovery at the store level: flip or chop bytes in the
//! journal tail of a store holding real generated batches, reopen, and the
//! intact prefix must load cleanly with the damage reported — never
//! silently absorbed.

use mp_datagen::{DatabaseGenerator, GeneratorConfig};
use mp_record::Record;
use mp_store::{MatchStore, JOURNAL_FILE};
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mp-store-ct-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn batches() -> Vec<Vec<Record>> {
    let db = DatabaseGenerator::new(GeneratorConfig::new(300).duplicate_fraction(0.5).seed(77))
        .generate();
    db.records.chunks(100).map(<[Record]>::to_vec).collect()
}

fn store_with_journaled_batches(name: &str) -> (PathBuf, Vec<Vec<Record>>, Vec<u64>) {
    let dir = tmp_dir(name);
    let parts = batches();
    let mut offsets = Vec::new(); // journal length after each append
    {
        let (mut store, _) = MatchStore::open(&dir).unwrap();
        for b in &parts {
            store.append_batch(b, None).unwrap();
            offsets.push(std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len());
        }
    }
    (dir, parts, offsets)
}

#[test]
fn flipped_byte_in_tail_truncates_to_last_good_frame() {
    let (dir, parts, offsets) = store_with_journaled_batches("flip");
    let journal = dir.join(JOURNAL_FILE);
    let mut data = std::fs::read(&journal).unwrap();
    // Flip a byte inside the *last* frame's payload.
    let in_last = offsets[offsets.len() - 2] as usize + 40;
    data[in_last] ^= 0xA5;
    std::fs::write(&journal, &data).unwrap();

    let (_, loaded) = MatchStore::open(&dir).unwrap();
    assert!(loaded.recovery.truncated(), "damage must be reported");
    assert!(loaded.recovery.truncated_bytes > 0);
    assert_eq!(
        loaded.replayable.len(),
        parts.len() - 1,
        "all intact frames load"
    );
    for (i, b) in loaded.replayable.iter().enumerate() {
        assert_eq!(b.seq, i as u64 + 1);
        assert_eq!(b.records, parts[i], "intact batch {i} byte-identical");
    }
    // The truncation is physical: the tail is gone from disk and a second
    // open is clean.
    assert_eq!(
        std::fs::metadata(&journal).unwrap().len(),
        offsets[offsets.len() - 2]
    );
    let (_, again) = MatchStore::open(&dir).unwrap();
    assert!(!again.recovery.truncated());
    assert_eq!(again.replayable.len(), parts.len() - 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mid_journal_corruption_drops_everything_from_the_damage_on() {
    let (dir, parts, offsets) = store_with_journaled_batches("mid");
    let journal = dir.join(JOURNAL_FILE);
    let mut data = std::fs::read(&journal).unwrap();
    // Damage the *second* frame: the first survives, the rest is tail.
    let in_second = offsets[0] as usize + 40;
    data[in_second] ^= 0x0F;
    std::fs::write(&journal, &data).unwrap();

    let (_, loaded) = MatchStore::open(&dir).unwrap();
    assert!(loaded.recovery.truncated());
    assert_eq!(loaded.replayable.len(), 1);
    assert_eq!(loaded.replayable[0].records, parts[0]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_truncation_point_recovers_cleanly() {
    // Chop the journal at a spread of byte positions — mid-header,
    // mid-frame-header, mid-payload — and every single one must reopen
    // without error, loading a prefix of the appended batches.
    let (dir, parts, offsets) = store_with_journaled_batches("chop");
    let journal = dir.join(JOURNAL_FILE);
    let pristine = std::fs::read(&journal).unwrap();
    let step = (pristine.len() / 23).max(1);
    for cut in (0..pristine.len()).step_by(step) {
        std::fs::write(&journal, &pristine[..cut]).unwrap();
        let (_, loaded) = MatchStore::open(&dir).unwrap();
        let full_frames = offsets.iter().filter(|&&end| end <= cut as u64).count();
        assert_eq!(
            loaded.replayable.len(),
            full_frames,
            "cut at {cut}: exactly the fully-written frames replay"
        );
        for (i, b) in loaded.replayable.iter().enumerate() {
            assert_eq!(b.records, parts[i]);
        }
        // A cut strictly inside data is a reported truncation (cutting at
        // a frame boundary or before the header leaves nothing torn).
        let at_boundary = cut == 0 || cut == 8 || offsets.contains(&(cut as u64));
        assert_eq!(
            loaded.recovery.truncated(),
            !at_boundary,
            "cut at {cut}: truncation reporting"
        );
        // Restore for the next iteration.
        std::fs::write(&journal, &pristine).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
