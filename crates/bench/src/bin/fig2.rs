//! Figure 2: accuracy of the sorted-neighborhood method vs window size.
//!
//! Paper setup: 1,000,000 original records plus 1,423,644 duplicates with
//! varying errors; three independent runs (last name / first name / street
//! address as the principal key field) plus the multi-pass transitive
//! closure over all three; window sizes 2..50.
//!
//! * Fig. 2(a): percent of correctly detected duplicated pairs.
//! * Fig. 2(b): percent of incorrectly detected duplicated pairs
//!   (false positives).
//!
//! Defaults here are scaled to 20,000 originals (≈ 48k records); pass
//! `--records 1000000` to run at paper scale. `--spell-correct` enables the
//! §3.2 city-field spelling corrector and prints the accuracy delta.
//!
//! Usage: `cargo run --release -p mp-bench --bin fig2 [--records N] [--seed S] [--spell-correct]`

use merge_purge::{Evaluation, KeySpec, MultiPass};
use mp_bench::{fig2_database, header, pct, pct3, row, Args};
use mp_datagen::geo;
use mp_record::SpellCorrector;
use mp_rules::NativeEmployeeTheory;

fn main() {
    let args = Args::from_env();
    let originals: usize = args.get("records", 20_000);
    let seed: u64 = args.get("seed", 2);
    let spell = args.has("spell-correct");

    let mut db = fig2_database(originals, seed);
    println!(
        "# Figure 2 — {} originals, {} duplicates, {} records total, {} true pairs",
        originals,
        db.duplicate_count,
        db.records.len(),
        db.truth.true_pair_count()
    );

    // Condition once (all passes share the conditioned list, as in the
    // paper where conditioning is a separate earlier phase).
    let theory = NativeEmployeeTheory::new();
    mp_record::normalize::condition_all(&mut db.records, &mp_record::NicknameTable::standard());
    if spell {
        let corrector = SpellCorrector::new(geo::city_corpus(18_670), 2);
        let mut corrected = 0usize;
        for r in &mut db.records {
            if corrector.correct_in_place(&mut r.city) {
                corrected += 1;
            }
        }
        println!("(spell corrector fixed {corrected} city fields)");
    }

    let windows = [2usize, 5, 10, 20, 30, 40, 50];
    let keys = KeySpec::standard_three();

    println!("\n## (a) Percent of correctly detected duplicated pairs");
    header(&[
        "window",
        "last-name key",
        "first-name key",
        "address key",
        "multi-pass closure",
    ]);
    let mut fp_rows: Vec<Vec<String>> = Vec::new();
    for &w in &windows {
        let mut cells = vec![w.to_string()];
        let mut fp_cells = vec![w.to_string()];
        let mut passes = Vec::new();
        for key in &keys {
            let result =
                merge_purge::SortedNeighborhood::new(key.clone(), w).run(&db.records, &theory);
            let closed = MultiPass::close(db.records.len(), vec![result.clone()]);
            let eval = Evaluation::score(&closed.closed_pairs, &db.truth);
            cells.push(pct(eval.percent_detected));
            fp_cells.push(pct3(eval.percent_false_positive));
            passes.push(result);
        }
        let multi = MultiPass::close(db.records.len(), passes);
        let eval = Evaluation::score(&multi.closed_pairs, &db.truth);
        cells.push(pct(eval.percent_detected));
        fp_cells.push(pct3(eval.percent_false_positive));
        row(&cells);
        fp_rows.push(fp_cells);
    }

    println!("\n## (b) Percent of incorrectly detected duplicated pairs (false positives)");
    header(&[
        "window",
        "last-name key",
        "first-name key",
        "address key",
        "multi-pass closure",
    ]);
    for cells in fp_rows {
        row(&cells);
    }

    println!(
        "\nPaper shape check: each single run detects 50–70% and flattens as w grows; \
         the multi-pass closure reaches ~90%; false positives stay small and grow \
         fastest for the closure."
    );
}
