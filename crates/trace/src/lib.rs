//! Low-overhead structured tracing for the merge/purge pipeline.
//!
//! The paper's evaluation (§3.3–3.5) is about *where* time and accuracy come
//! from: per-pass contribution of each key, rule-evaluation cost versus sort
//! and closure cost, serial-versus-parallel phase breakdowns. Flat end-of-run
//! counters (see `mp-metrics`) answer *how much*; this crate answers *where
//! and when*:
//!
//! - [`TraceCollector`] — hierarchical timed spans recorded into per-thread
//!   buffers (one uncontended mutex per registered thread, locked only by its
//!   owner until the run-end drain), so parallel fragments trace without
//!   cross-thread contention. When tracing is disabled nothing is constructed
//!   and the instrumentation sites cost a single branch on an `Option`.
//! - [`LatencyHistogram`] — fixed log2-bucket atomic histograms for
//!   rule-evaluation latencies; no allocation on the record path, p50/p95/p99
//!   read out at report time.
//! - [`chrome_trace_json`] — export of the drained spans as Chrome
//!   trace-event JSON, loadable in Perfetto / `chrome://tracing`, with one
//!   track (tid) per registered thread.
//! - [`FlightRecorder`] — a bounded in-memory ring of recent per-batch
//!   span sets for long-running processes, dumpable as one merged Chrome
//!   trace while the process is live.
//! - [`ProgressMeter`] — throttled records/s + ETA heartbeat lines for long
//!   runs.
//!
//! All timing uses monotonic [`std::time::Instant`] only; wall-clock dates
//! never enter a trace, so traces from the same workload are comparable.

#![warn(missing_docs)]

mod chrome;
mod flight;
mod histogram;
mod progress;
mod span;

pub use chrome::chrome_trace_json;
pub use flight::{FlightEntry, FlightRecorder, DEFAULT_CAPACITY as FLIGHT_DEFAULT_CAPACITY};
pub use histogram::{HistogramSnapshot, LatencyHistogram, LATENCY_SAMPLE_MASK};
pub use progress::ProgressMeter;
pub use span::{SpanGuard, SpanNode, SpanRecord, TraceCollector, TrackSpans};
