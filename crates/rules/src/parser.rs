//! Recursive-descent parser for the rule language.

use crate::ast::{CmpOp, Expr, Program, PurgeSpec, RecordRef, Rule, Survivorship};
use crate::lexer::lex;
use crate::token::{Pos, Spanned, Tok};
use std::collections::HashSet;
use std::fmt;

/// Parse/lex failure with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    msg: String,
    pos: Option<Pos>,
}

impl ParseError {
    pub(crate) fn bad_char(c: char, pos: Pos) -> Self {
        ParseError {
            msg: format!("unexpected character {c:?}"),
            pos: Some(pos),
        }
    }

    pub(crate) fn unterminated_string(pos: Pos) -> Self {
        ParseError {
            msg: "unterminated string literal".into(),
            pos: Some(pos),
        }
    }

    pub(crate) fn bad_number(text: String, pos: Pos) -> Self {
        ParseError {
            msg: format!("invalid number {text:?}"),
            pos: Some(pos),
        }
    }

    fn at(msg: impl Into<String>, pos: Pos) -> Self {
        ParseError {
            msg: msg.into(),
            pos: Some(pos),
        }
    }

    fn eof(msg: impl Into<String>) -> Self {
        ParseError {
            msg: msg.into(),
            pos: None,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(f, "{} at {p}", self.msg),
            None => write!(f, "{} at end of input", self.msg),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses a full rule program from source text.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, i: 0 };
    let mut rules = Vec::new();
    let mut names = HashSet::new();
    let mut purge: Option<PurgeSpec> = None;
    while !p.done() {
        if let Some(Spanned {
            tok: Tok::Purge,
            pos,
        }) = p.peek().cloned()
        {
            if purge.is_some() {
                return Err(ParseError::at("duplicate purge block", pos));
            }
            purge = Some(p.purge_block()?);
            continue;
        }
        let rule = p.rule()?;
        if !names.insert(rule.name.clone()) {
            return Err(ParseError::at(
                format!("duplicate rule name {:?}", rule.name),
                rule.pos,
            ));
        }
        rules.push(rule);
    }
    if rules.is_empty() {
        return Err(ParseError::eof("program contains no rules"));
    }
    Ok(Program { rules, purge })
}

struct Parser {
    toks: Vec<Spanned>,
    i: usize,
}

impl Parser {
    fn done(&self) -> bool {
        self.i >= self.toks.len()
    }

    fn peek(&self) -> Option<&Spanned> {
        self.toks.get(self.i)
    }

    fn next(&mut self) -> Option<Spanned> {
        let t = self.toks.get(self.i).cloned();
        self.i += 1;
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<Pos, ParseError> {
        match self.next() {
            Some(s) if &s.tok == want => Ok(s.pos),
            Some(s) => Err(ParseError::at(
                format!("expected {what}, found `{}`", s.tok),
                s.pos,
            )),
            None => Err(ParseError::eof(format!("expected {what}"))),
        }
    }

    /// `purge { field <- strategy ... }`
    fn purge_block(&mut self) -> Result<PurgeSpec, ParseError> {
        self.expect(&Tok::Purge, "`purge`")?;
        self.expect(&Tok::LBrace, "`{`")?;
        let mut assignments = Vec::new();
        loop {
            match self.next() {
                Some(Spanned {
                    tok: Tok::RBrace, ..
                }) => break,
                Some(Spanned {
                    tok: Tok::Ident(fname),
                    pos,
                }) => {
                    let field = fname
                        .parse()
                        .map_err(|_| ParseError::at(format!("unknown field {fname:?}"), pos))?;
                    self.expect(&Tok::Arrow, "`<-`")?;
                    match self.next() {
                        Some(Spanned {
                            tok: Tok::Ident(sname),
                            pos,
                        }) => {
                            let strategy = Survivorship::parse(&sname).ok_or_else(|| {
                                ParseError::at(
                                    format!(
                                        "unknown survivorship strategy {sname:?} \
                                         (expected first, first_non_empty, longest, \
                                         or most_frequent)"
                                    ),
                                    pos,
                                )
                            })?;
                            assignments.push((field, strategy));
                        }
                        Some(s) => {
                            return Err(ParseError::at(
                                format!("expected strategy name, found `{}`", s.tok),
                                s.pos,
                            ))
                        }
                        None => return Err(ParseError::eof("expected strategy name")),
                    }
                }
                Some(s) => {
                    return Err(ParseError::at(
                        format!("expected field name or `}}`, found `{}`", s.tok),
                        s.pos,
                    ))
                }
                None => return Err(ParseError::eof("unterminated purge block")),
            }
        }
        Ok(PurgeSpec { assignments })
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        let pos = self.expect(&Tok::Rule, "`rule`")?;
        let name = match self.next() {
            Some(Spanned {
                tok: Tok::Ident(n), ..
            }) => n,
            Some(s) => {
                return Err(ParseError::at(
                    format!("expected rule name, found `{}`", s.tok),
                    s.pos,
                ))
            }
            None => return Err(ParseError::eof("expected rule name")),
        };
        self.expect(&Tok::LBrace, "`{`")?;
        self.expect(&Tok::When, "`when`")?;
        let condition = self.or_expr()?;
        self.expect(&Tok::Then, "`then`")?;
        self.expect(&Tok::Match, "`match`")?;
        self.expect(&Tok::RBrace, "`}`")?;
        Ok(Rule {
            name,
            condition,
            pos,
        })
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let first = self.and_expr()?;
        let pos = first.pos();
        let mut parts = vec![first];
        while matches!(self.peek(), Some(Spanned { tok: Tok::Or, .. })) {
            self.next();
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            Expr::Or(parts, pos)
        })
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let first = self.not_expr()?;
        let pos = first.pos();
        let mut parts = vec![first];
        while matches!(self.peek(), Some(Spanned { tok: Tok::And, .. })) {
            self.next();
            parts.push(self.not_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            Expr::And(parts, pos)
        })
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if let Some(Spanned { tok: Tok::Not, pos }) = self.peek().cloned() {
            self.next();
            let inner = self.not_expr()?;
            return Ok(Expr::Not(Box::new(inner), pos));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.primary()?;
        let op = match self.peek().map(|s| &s.tok) {
            Some(Tok::EqEq) => Some(CmpOp::Eq),
            Some(Tok::NotEq) => Some(CmpOp::Ne),
            Some(Tok::Gt) => Some(CmpOp::Gt),
            Some(Tok::Ge) => Some(CmpOp::Ge),
            Some(Tok::Lt) => Some(CmpOp::Lt),
            Some(Tok::Le) => Some(CmpOp::Le),
            _ => None,
        };
        if let Some(op) = op {
            let pos = self.next().expect("peeked").pos;
            let rhs = self.primary()?;
            return Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs), pos));
        }
        Ok(lhs)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Spanned {
                tok: Tok::LParen, ..
            }) => {
                let e = self.or_expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Spanned {
                tok: Tok::True,
                pos,
            }) => Ok(Expr::Bool(true, pos)),
            Some(Spanned {
                tok: Tok::False,
                pos,
            }) => Ok(Expr::Bool(false, pos)),
            Some(Spanned {
                tok: Tok::Number(n),
                pos,
            }) => Ok(Expr::Num(n, pos)),
            Some(Spanned {
                tok: Tok::Str(s),
                pos,
            }) => Ok(Expr::Str(s, pos)),
            Some(Spanned { tok: Tok::R1, pos }) => self.field_ref(RecordRef::R1, pos),
            Some(Spanned { tok: Tok::R2, pos }) => self.field_ref(RecordRef::R2, pos),
            Some(Spanned {
                tok: Tok::Ident(name),
                pos,
            }) => {
                self.expect(&Tok::LParen, "`(` after function name")?;
                let mut args = Vec::new();
                if !matches!(
                    self.peek(),
                    Some(Spanned {
                        tok: Tok::RParen,
                        ..
                    })
                ) {
                    loop {
                        args.push(self.or_expr()?);
                        match self.peek().map(|s| &s.tok) {
                            Some(Tok::Comma) => {
                                self.next();
                            }
                            _ => break,
                        }
                    }
                }
                self.expect(&Tok::RParen, "`)`")?;
                Ok(Expr::Call(name, args, pos))
            }
            Some(s) => Err(ParseError::at(
                format!("expected expression, found `{}`", s.tok),
                s.pos,
            )),
            None => Err(ParseError::eof("expected expression")),
        }
    }

    fn field_ref(&mut self, rec: RecordRef, pos: Pos) -> Result<Expr, ParseError> {
        self.expect(&Tok::Dot, "`.` after record designator")?;
        match self.next() {
            Some(Spanned {
                tok: Tok::Ident(name),
                pos: fpos,
            }) => {
                let field = name
                    .parse()
                    .map_err(|_| ParseError::at(format!("unknown field {name:?}"), fpos))?;
                Ok(Expr::FieldRef(rec, field, pos))
            }
            Some(s) => Err(ParseError::at(
                format!("expected field name, found `{}`", s.tok),
                s.pos,
            )),
            None => Err(ParseError::eof("expected field name")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_record::Field;

    #[test]
    fn minimal_rule_parses() {
        let p = parse("rule r { when true then match }").unwrap();
        assert_eq!(p.rules.len(), 1);
        assert_eq!(p.rules[0].name, "r");
        assert!(matches!(p.rules[0].condition, Expr::Bool(true, _)));
    }

    #[test]
    fn field_comparison_parses() {
        let p = parse("rule r { when r1.last_name == r2.last_name then match }").unwrap();
        match &p.rules[0].condition {
            Expr::Cmp(CmpOp::Eq, lhs, rhs, _) => {
                assert!(matches!(
                    **lhs,
                    Expr::FieldRef(RecordRef::R1, Field::LastName, _)
                ));
                assert!(matches!(
                    **rhs,
                    Expr::FieldRef(RecordRef::R2, Field::LastName, _)
                ));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn precedence_or_binds_looser_than_and() {
        let p = parse("rule r { when true and false or true then match }").unwrap();
        match &p.rules[0].condition {
            Expr::Or(parts, _) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], Expr::And(_, _)));
                assert!(matches!(parts[1], Expr::Bool(true, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parentheses_override_precedence() {
        let p = parse("rule r { when true and (false or true) then match }").unwrap();
        match &p.rules[0].condition {
            Expr::And(parts, _) => {
                assert!(matches!(parts[1], Expr::Or(_, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn not_is_prefix_and_nests() {
        let p = parse("rule r { when not not is_empty(r1.apartment) then match }").unwrap();
        match &p.rules[0].condition {
            Expr::Not(inner, _) => assert!(matches!(**inner, Expr::Not(_, _))),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn call_with_args_parses() {
        let p =
            parse(r#"rule r { when differ_slightly(r1.city, "BOSTON", 0.2) then match }"#).unwrap();
        match &p.rules[0].condition {
            Expr::Call(name, args, _) => {
                assert_eq!(name, "differ_slightly");
                assert_eq!(args.len(), 3);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn multiple_rules_and_duplicates_rejected() {
        let src = "rule a { when true then match } rule b { when false then match }";
        assert_eq!(parse(src).unwrap().rules.len(), 2);
        let dup = "rule a { when true then match } rule a { when false then match }";
        let err = parse(dup).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn error_messages_carry_positions() {
        let err = parse("rule r { when r1.salary == 3 then match }").unwrap_err();
        assert!(err.to_string().contains("unknown field"), "{err}");
        let err = parse("rule r { when then match }").unwrap_err();
        assert!(err.to_string().contains("expected expression"), "{err}");
        let err = parse("rule { when true then match }").unwrap_err();
        assert!(err.to_string().contains("rule name"), "{err}");
        let err = parse("").unwrap_err();
        assert!(err.to_string().contains("no rules"), "{err}");
        let err = parse("rule r { when true then match").unwrap_err();
        assert!(err.to_string().contains("end of input"), "{err}");
    }

    #[test]
    fn purge_block_parses() {
        use mp_record::Field;
        let p = parse(
            "rule r { when true then match }\n\
             purge { first_name <- longest middle_initial <- most_frequent }",
        )
        .unwrap();
        let spec = p.purge.unwrap();
        assert_eq!(spec.assignments.len(), 2);
        assert_eq!(spec.strategy(Field::FirstName), Some(Survivorship::Longest));
        assert_eq!(
            spec.strategy(Field::MiddleInitial),
            Some(Survivorship::MostFrequent)
        );
        assert_eq!(spec.strategy(Field::City), None);
    }

    #[test]
    fn purge_block_before_rules_and_empty_are_fine() {
        let p = parse("purge { } rule r { when true then match }").unwrap();
        assert!(p.purge.unwrap().assignments.is_empty());
    }

    #[test]
    fn later_purge_assignment_wins() {
        use mp_record::Field;
        let p =
            parse("rule r { when true then match } purge { zip <- first zip <- longest }").unwrap();
        assert_eq!(
            p.purge.unwrap().strategy(Field::Zip),
            Some(Survivorship::Longest)
        );
    }

    #[test]
    fn purge_errors_reported() {
        let err = parse("rule r { when true then match } purge { salary <- first }").unwrap_err();
        assert!(err.to_string().contains("unknown field"), "{err}");
        let err = parse("rule r { when true then match } purge { zip <- weirdest }").unwrap_err();
        assert!(err.to_string().contains("unknown survivorship"), "{err}");
        let err = parse("rule r { when true then match } purge { zip <- first").unwrap_err();
        assert!(err.to_string().contains("unterminated purge"), "{err}");
        let err = parse("purge {} purge {} rule r { when true then match }").unwrap_err();
        assert!(err.to_string().contains("duplicate purge"), "{err}");
        let err = parse("rule r { when true then match } purge { zip first }").unwrap_err();
        assert!(err.to_string().contains("`<-`"), "{err}");
    }

    #[test]
    fn bare_identifier_requires_call_parens() {
        assert!(parse("rule r { when last_name then match }").is_err());
    }
}
