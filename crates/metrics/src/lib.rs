#![warn(missing_docs)]

//! Pipeline observability for the merge/purge engines.
//!
//! Every engine hot path (key creation, sort, window scan, closure, the
//! parallel workers, external sorting) reports progress through a
//! [`PipelineObserver`]. The trait's methods default to no-ops and
//! [`NoopObserver`] is a zero-sized implementation, so un-instrumented runs
//! pay only a dead-branch per phase — counters are accumulated *in bulk*
//! (one `add` per phase, not per comparison), never inside inner loops.
//!
//! [`MetricsRecorder`] is the default real observer: lock-free atomic
//! counters plus per-phase monotonic nanosecond totals, aggregated into a
//! serializable [`PipelineReport`] (the CLI's `--stats` output).
//!
//! # The §3.5 cost model, in counters
//!
//! The paper's analysis says a `w`-record window sliding over `N` sorted
//! records performs `Σ_{i=1}^{N−1} min(i, w−1) = (w−1)(N − w/2)` pair
//! comparisons per pass (for `N ≥ w`). [`Counter::Comparisons`] counts
//! exactly those candidate pairs, so the closed form is checkable against a
//! live recorder:
//!
//! ```
//! use mp_metrics::{Counter, MetricsRecorder, PipelineObserver};
//!
//! // The window-scan loop reports one comparison per candidate pair; here
//! // we replay the §3.5 formula the engines produce organically.
//! let (n, w) = (1_000u64, 10u64);
//! let comparisons: u64 = (1..n).map(|i| i.min(w - 1)).sum();
//! assert_eq!(comparisons, (w - 1) * n - (w - 1) * w / 2); // (w−1)(N − w/2)
//!
//! let m = MetricsRecorder::new();
//! m.add(Counter::Comparisons, comparisons);
//! assert_eq!(m.get(Counter::Comparisons), 8_955);
//! ```
//!
//! With closure-aware pruning, [`Counter::Comparisons`] still counts every
//! candidate pair the window produces (the formula above holds), while
//! [`Counter::RuleInvocations`] counts only the pairs actually handed to
//! the equational theory and [`Counter::PairsPruned`] the pairs skipped
//! because their records were already in the same equivalence class:
//! `comparisons == rule_invocations + pairs_pruned` on pruned scans.

pub mod prom;
pub mod rolling;

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use serde::Serialize;

pub use prom::PromWriter;
pub use rolling::{RollingRing, WindowCounter, WindowSnapshot};

pub use mp_trace::{
    chrome_trace_json, FlightEntry, FlightRecorder, HistogramSnapshot, LatencyHistogram,
    ProgressMeter, SpanGuard, SpanNode, SpanRecord, TraceCollector, TrackSpans,
    LATENCY_SAMPLE_MASK,
};

/// Version of the `--stats` JSON report layout. Bumped to 2 when the span
/// tree, attribution, rule-firing, and latency sections were added (the
/// schema-1 `counters`/`phases_ns` sections are unchanged).
pub const REPORT_SCHEMA: u32 = 2;

/// Monotonic event counters the engines report.
///
/// Counters are additive across passes and workers: a three-pass run
/// reports the *sum* of its passes' comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Sort keys extracted (one per record per pass).
    RecordsKeyed,
    /// Record-pair comparisons attempted by window scans.
    Comparisons,
    /// Equational-theory (rule engine) invocations. Equals
    /// [`Counter::Comparisons`] for window scans, but purge/merge phases may
    /// invoke the theory outside a scan.
    RuleInvocations,
    /// Candidate pairs skipped by closure-aware pruning: the window
    /// produced the pair, but its two records were already known to be in
    /// the same equivalence class, so the (expensive) rule evaluation was
    /// skipped. Always zero on unpruned scans; on pruned scans
    /// `comparisons == rule_invocations + pairs_pruned`.
    PairsPruned,
    /// Matching pairs emitted by passes (deduplicated within a pass).
    Matches,
    /// Pair instances fed to the transitive closure (pass-pair multiset).
    ClosureInputPairs,
    /// Input pairs the closure discarded as redundant — already connected
    /// when processed, i.e. deduplicated across passes or transitively
    /// implied by earlier pairs.
    ClosureDedupedPairs,
    /// Pairs in the closed (transitive-closure-expanded) result.
    ClosedPairs,
    /// Sorted runs formed by the external sorter.
    SortRuns,
    /// Of those, runs whose formation *spilled*: the chunk filled the
    /// memory budget before the input was exhausted, so the sorter was
    /// genuinely external for that run (a run covering the whole input
    /// never spilled). `spill_runs < sort_runs` means the final,
    /// short run fit in memory.
    SpillRuns,
    /// Bytes spilled to run files by the external sorter.
    BytesSpilled,
    /// Total inputs across external merge steps (sum of each merge's
    /// fan-in; divide by the number of merges for the mean fan-in).
    MergeFanIn,
    /// Worker fragments spawned by the parallel engines.
    WorkerFragments,
    /// Comparisons crossing a fragment boundary in the band-replicated
    /// parallel window scan (the overlap work replication costs).
    BandOverlapComparisons,
    /// Batches ingested by the incremental engine in this process (journal
    /// replay does not count — see [`Counter::JournalReplays`]).
    BatchesIngested,
    /// Journaled batches replayed during store recovery (crash/restart).
    JournalReplays,
    /// Bytes written by match-store snapshot checkpoints.
    SnapshotBytes,
    /// Corrupt or torn journal tails detected and truncated during store
    /// recovery. Nonzero means a crash landed mid-append and the store
    /// dropped the unacknowledged tail — by design, never silently loaded.
    CorruptTailTruncations,
    /// DSL rules lowered to bytecode by the rule compiler (one increment
    /// per rule per compiled theory; zero for interpreted or native runs).
    RulesCompiled,
    /// Common-subexpression memo hits inside the rule VM: kernel
    /// evaluations answered from the per-pair memo instead of recomputed.
    SubexprHits,
    /// Scatter passes executed by the LSD radix key sort (constant-byte
    /// columns are detected by the histogram pre-pass and skipped, so this
    /// is ≤ the prefix width per sort).
    RadixPasses,
}

impl Counter {
    /// Every counter, in stable report order.
    pub const ALL: [Counter; 21] = [
        Counter::RecordsKeyed,
        Counter::Comparisons,
        Counter::RuleInvocations,
        Counter::PairsPruned,
        Counter::Matches,
        Counter::ClosureInputPairs,
        Counter::ClosureDedupedPairs,
        Counter::ClosedPairs,
        Counter::SortRuns,
        Counter::SpillRuns,
        Counter::BytesSpilled,
        Counter::MergeFanIn,
        Counter::WorkerFragments,
        Counter::BandOverlapComparisons,
        Counter::BatchesIngested,
        Counter::JournalReplays,
        Counter::SnapshotBytes,
        Counter::CorruptTailTruncations,
        Counter::RulesCompiled,
        Counter::SubexprHits,
        Counter::RadixPasses,
    ];

    /// Stable snake_case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::RecordsKeyed => "records_keyed",
            Counter::Comparisons => "comparisons",
            Counter::RuleInvocations => "rule_invocations",
            Counter::PairsPruned => "pairs_pruned",
            Counter::Matches => "matches",
            Counter::ClosureInputPairs => "closure_input_pairs",
            Counter::ClosureDedupedPairs => "closure_deduped_pairs",
            Counter::ClosedPairs => "closed_pairs",
            Counter::SortRuns => "sort_runs",
            Counter::SpillRuns => "spill_runs",
            Counter::BytesSpilled => "bytes_spilled",
            Counter::MergeFanIn => "merge_fan_in",
            Counter::WorkerFragments => "worker_fragments",
            Counter::BandOverlapComparisons => "band_overlap_comparisons",
            Counter::BatchesIngested => "batches_ingested",
            Counter::JournalReplays => "journal_replays",
            Counter::SnapshotBytes => "snapshot_bytes",
            Counter::CorruptTailTruncations => "corrupt_tail_truncations",
            Counter::RulesCompiled => "rules_compiled",
            Counter::SubexprHits => "subexpr_hits",
            Counter::RadixPasses => "radix_passes",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// Pipeline phases whose wall-clock time the engines report.
///
/// Times are monotonic nanosecond totals: concurrent workers' phase times
/// sum, so a phase total can exceed wall-clock on multi-threaded runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Record conditioning (normalization, nicknames, spell correction).
    Condition,
    /// Sort-key extraction.
    CreateKeys,
    /// Sorting (or per-cluster sorting for the clustering method).
    Sort,
    /// The window-scan merge phase.
    WindowScan,
    /// Transitive closure over pass pairs.
    Closure,
    /// Coordinator-side merging of parallel workers' partial results.
    CoordinatorMerge,
    /// External sort: forming sorted runs.
    RunFormation,
    /// External sort: merging runs.
    RunMerge,
}

impl Phase {
    /// Every phase, in stable report order.
    pub const ALL: [Phase; 8] = [
        Phase::Condition,
        Phase::CreateKeys,
        Phase::Sort,
        Phase::WindowScan,
        Phase::Closure,
        Phase::CoordinatorMerge,
        Phase::RunFormation,
        Phase::RunMerge,
    ];

    /// Stable snake_case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Condition => "condition",
            Phase::CreateKeys => "create_keys",
            Phase::Sort => "sort",
            Phase::WindowScan => "window_scan",
            Phase::Closure => "closure",
            Phase::CoordinatorMerge => "coordinator_merge",
            Phase::RunFormation => "run_formation",
            Phase::RunMerge => "run_merge",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// Observer of engine progress. All methods default to no-ops so
/// implementations opt into exactly what they need; implementations must be
/// thread-safe because parallel workers report concurrently.
pub trait PipelineObserver: Send + Sync {
    /// Adds `n` to `counter`.
    #[inline]
    fn add(&self, counter: Counter, n: u64) {
        let _ = (counter, n);
    }

    /// Adds `ns` nanoseconds to `phase`'s total.
    #[inline]
    fn phase_ns(&self, phase: Phase, ns: u64) {
        let _ = (phase, ns);
    }

    /// The span collector, when structured tracing is enabled. Engines open
    /// spans through [`span`]/[`span_labeled`], so the disabled path costs
    /// exactly this one `None` branch.
    #[inline]
    fn tracer(&self) -> Option<&TraceCollector> {
        None
    }

    /// Histogram receiving sampled rule-evaluation latencies, when enabled.
    #[inline]
    fn rule_latency(&self) -> Option<&LatencyHistogram> {
        None
    }

    /// Progress heartbeat meter, when enabled.
    #[inline]
    fn progress(&self) -> Option<&ProgressMeter> {
        None
    }

    /// Called once when a pipeline run finishes, after all counters are in.
    /// Implementations may validate cross-counter invariants here (see
    /// [`MetricsRecorder::check_invariants`]).
    #[inline]
    fn run_complete(&self) {}
}

/// Opens a named span on `observer`'s collector; `None` (one branch, no
/// allocation) when tracing is disabled.
#[inline]
pub fn span(observer: &dyn PipelineObserver, name: &'static str) -> Option<SpanGuard> {
    observer.tracer().map(|t| t.span(name))
}

/// Like [`span`], with a dynamic label (key name, fragment index, …). The
/// label closure only runs when tracing is enabled.
#[inline]
pub fn span_labeled(
    observer: &dyn PipelineObserver,
    name: &'static str,
    label: impl FnOnce() -> String,
) -> Option<SpanGuard> {
    observer.tracer().map(|t| t.span_labeled(name, label()))
}

/// Optional per-comparison instrumentation threaded into window scans.
///
/// Bundles the (rare) hooks that must be consulted inside the scan's inner
/// loop, so the scan signature stays stable as hooks are added. Both fields
/// are `None` in un-instrumented runs and the whole struct is two words;
/// checking it costs one branch per hook.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanHooks<'a> {
    /// Sampled rule-evaluation latency histogram (sites time every
    /// [`LATENCY_SAMPLE_MASK`]`+1`-th evaluation).
    pub latency: Option<&'a LatencyHistogram>,
    /// Progress meter ticked once per window position.
    pub progress: Option<&'a ProgressMeter>,
}

impl<'a> ScanHooks<'a> {
    /// No instrumentation (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// The hooks `observer` exposes.
    pub fn from_observer(observer: &'a dyn PipelineObserver) -> Self {
        ScanHooks {
            latency: observer.rule_latency(),
            progress: observer.progress(),
        }
    }
}

/// Zero-cost observer for un-instrumented runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl PipelineObserver for NoopObserver {}

/// The default real observer: lock-free atomic counters and per-phase
/// nanosecond totals.
///
/// ```
/// use mp_metrics::{Counter, MetricsRecorder, PipelineObserver};
/// let m = MetricsRecorder::new();
/// m.add(Counter::Comparisons, 10);
/// m.add(Counter::Comparisons, 5);
/// assert_eq!(m.get(Counter::Comparisons), 15);
/// ```
#[derive(Debug, Default)]
pub struct MetricsRecorder {
    counters: [AtomicU64; Counter::ALL.len()],
    phases: [AtomicU64; Phase::ALL.len()],
    tracer: Option<TraceCollector>,
    rule_latency: Option<LatencyHistogram>,
    progress: Option<ProgressMeter>,
}

impl MetricsRecorder {
    /// A recorder with all counters and phase totals at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables structured tracing: timed spans (drained into the report's
    /// `span_tree` and available for Chrome-trace export) and the sampled
    /// rule-evaluation latency histogram.
    #[must_use]
    pub fn with_tracing(mut self) -> Self {
        self.tracer = Some(TraceCollector::new());
        self.rule_latency = Some(LatencyHistogram::new());
        self
    }

    /// Enables progress heartbeat lines on stderr, expecting `total` units
    /// of `what` (e.g. the §3.5 expected comparison count).
    #[must_use]
    pub fn with_progress(mut self, what: &'static str, total: u64) -> Self {
        self.progress = Some(ProgressMeter::new(what, total));
        self
    }

    /// Drains the span collector (empty when tracing is disabled or already
    /// drained). Use for Chrome-trace export via [`chrome_trace_json`];
    /// note [`MetricsRecorder::report`] also drains, so export first or
    /// reuse the drained tracks for both.
    pub fn drain_spans(&self) -> Vec<TrackSpans> {
        self.tracer
            .as_ref()
            .map(TraceCollector::drain)
            .unwrap_or_default()
    }

    /// Checks cross-counter invariants, notably the pruning accounting
    /// identity `comparisons == rule_invocations + pairs_pruned` (§3.5 cost
    /// model: every window candidate pair is either handed to the
    /// equational theory or pruned as closure-redundant — never both,
    /// never neither). Holds for every engine configuration: single- and
    /// multi-pass SNM, clustering, merge-fused, parallel, and external.
    pub fn check_invariants(&self) -> Result<(), String> {
        let comparisons = self.get(Counter::Comparisons);
        let evals = self.get(Counter::RuleInvocations);
        let pruned = self.get(Counter::PairsPruned);
        if comparisons != evals + pruned {
            return Err(format!(
                "counter invariant violated: comparisons ({comparisons}) != \
                 rule_invocations ({evals}) + pairs_pruned ({pruned})"
            ));
        }
        let input = self.get(Counter::ClosureInputPairs);
        let deduped = self.get(Counter::ClosureDedupedPairs);
        if deduped > input {
            return Err(format!(
                "counter invariant violated: closure_deduped_pairs ({deduped}) > \
                 closure_input_pairs ({input})"
            ));
        }
        Ok(())
    }

    /// Current value of `counter`.
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// Total nanoseconds recorded for `phase`.
    pub fn phase_total_ns(&self, phase: Phase) -> u64 {
        self.phases[phase.index()].load(Ordering::Relaxed)
    }

    /// Resets every counter and phase total to zero.
    pub fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        for p in &self.phases {
            p.store(0, Ordering::Relaxed);
        }
    }

    /// Snapshot of all counters and phase totals, plus — when tracing is
    /// enabled — the drained span tree and latency histogram. Draining
    /// consumes the recorded spans, so to *also* export a Chrome trace,
    /// call [`MetricsRecorder::drain_spans`] first and attach the tracks to
    /// the report yourself (see the CLI).
    pub fn report(&self) -> PipelineReport {
        PipelineReport {
            schema: REPORT_SCHEMA,
            counters: Counter::ALL
                .iter()
                .map(|&c| CounterValue {
                    name: c.name(),
                    value: self.get(c),
                })
                .collect(),
            attribution: None,
            rules: None,
            phases: Phase::ALL
                .iter()
                .map(|&p| PhaseTime {
                    name: p.name(),
                    ns: self.phase_total_ns(p),
                })
                .collect(),
            latency: self
                .rule_latency
                .as_ref()
                .map(|h| {
                    vec![NamedHistogram {
                        name: "rule_eval",
                        hist: h.snapshot(),
                    }]
                })
                .unwrap_or_default(),
            span_tree: self
                .drain_spans()
                .into_iter()
                .map(SpanTreeTrack::from)
                .collect(),
            kernels: Vec::new(),
        }
    }
}

impl PipelineObserver for MetricsRecorder {
    #[inline]
    fn add(&self, counter: Counter, n: u64) {
        self.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    fn phase_ns(&self, phase: Phase, ns: u64) {
        self.phases[phase.index()].fetch_add(ns, Ordering::Relaxed);
    }

    #[inline]
    fn tracer(&self) -> Option<&TraceCollector> {
        self.tracer.as_ref()
    }

    #[inline]
    fn rule_latency(&self) -> Option<&LatencyHistogram> {
        self.rule_latency.as_ref()
    }

    #[inline]
    fn progress(&self) -> Option<&ProgressMeter> {
        self.progress.as_ref()
    }

    /// Debug builds assert the counter invariants at pipeline end; release
    /// builds skip the check (it is also covered by tests).
    fn run_complete(&self) {
        if cfg!(debug_assertions) {
            if let Err(msg) = self.check_invariants() {
                panic!("{msg}");
            }
        }
    }
}

/// Times a phase and reports it to an observer when dropped.
///
/// ```
/// use mp_metrics::{MetricsRecorder, Phase, Stopwatch};
/// let m = MetricsRecorder::new();
/// {
///     let _t = Stopwatch::start(&m, Phase::Sort);
///     // ... sorting work ...
/// }
/// // Drop reported the elapsed time.
/// let _ = m.phase_total_ns(Phase::Sort);
/// ```
pub struct Stopwatch<'a> {
    observer: &'a dyn PipelineObserver,
    phase: Phase,
    start: Instant,
}

impl<'a> Stopwatch<'a> {
    /// Starts timing `phase`.
    pub fn start(observer: &'a dyn PipelineObserver, phase: Phase) -> Self {
        Stopwatch {
            observer,
            phase,
            start: Instant::now(),
        }
    }
}

impl Drop for Stopwatch<'_> {
    fn drop(&mut self) {
        self.observer
            .phase_ns(self.phase, self.start.elapsed().as_nanos() as u64);
    }
}

/// One named counter value in a [`PipelineReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CounterValue {
    /// Stable counter name ([`Counter::name`]).
    pub name: &'static str,
    /// Accumulated value.
    pub value: u64,
}

/// One named phase total in a [`PipelineReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PhaseTime {
    /// Stable phase name ([`Phase::name`]).
    pub name: &'static str,
    /// Accumulated nanoseconds.
    pub ns: u64,
}

/// What one pass contributed to the closed result (paper §3.3: independent
/// passes over different keys, union-closed at the end).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassAttribution {
    /// Zero-based pass index (pass order is part of the configuration).
    pub pass: usize,
    /// Sort-key name of the pass.
    pub key: String,
    /// Window size of the pass.
    pub window: usize,
    /// Matching pairs the pass emitted.
    pub pairs_found: u64,
    /// Of those, pairs no *earlier* pass had already emitted (provenance:
    /// the first pass to find a pair owns it).
    pub pairs_first_found: u64,
    /// Pairs *no other* pass emitted at all — lost if this pass is dropped
    /// (before closure re-inference). The paper's multi-pass argument made
    /// observable.
    pub pairs_unique: u64,
}

/// Per-pass provenance of the final duplicate set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AttributionReport {
    /// One entry per pass, in pass order.
    pub passes: Vec<PassAttribution>,
    /// Distinct pairs emitted across all passes (≤ Σ `pairs_found`).
    pub distinct_matched_pairs: u64,
    /// Pairs present only in the transitive closure of the matched pairs —
    /// duplicates no pass found directly, inferred via `a≡b ∧ b≡c ⇒ a≡c`.
    pub closure_inferred_pairs: u64,
}

/// Per-rule firing counts for an ordered, first-match-wins rule list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RuleFiringReport {
    /// Name of the equational theory the counts describe.
    pub theory: String,
    /// Total theory evaluations observed by the counter wrapper.
    pub evaluations: u64,
    /// Evaluations where no rule fired.
    pub misses: u64,
    /// Rule conditions never evaluated because an earlier rule in the
    /// ordered list fired first (Σ over rules `fired[i] · (R − 1 − i)`).
    pub conditions_short_circuited: u64,
    /// `(rule name, times fired)` in rule order, including zero-fired rules.
    pub fired: Vec<(String, u64)>,
}

/// A named latency histogram snapshot in a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedHistogram {
    /// What was timed (`"rule_eval"`, …).
    pub name: &'static str,
    /// The snapshot.
    pub hist: HistogramSnapshot,
}

/// One string-kernel's accumulated time (see `mp-strsim` kernel timing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelTime {
    /// Kernel name (`"levenshtein"`, `"jaro"`, …).
    pub name: &'static str,
    /// Calls observed.
    pub calls: u64,
    /// Total nanoseconds across those calls.
    pub total_ns: u64,
}

/// The reconstructed span forest of one thread/track.
#[derive(Debug, Clone)]
pub struct SpanTreeTrack {
    /// Stable per-run track index (opening thread is track 0).
    pub track: u32,
    /// Thread name at registration time.
    pub thread_name: String,
    /// Root spans in start order.
    pub roots: Vec<SpanNode>,
}

impl From<TrackSpans> for SpanTreeTrack {
    fn from(t: TrackSpans) -> Self {
        SpanTreeTrack {
            track: t.track,
            thread_name: t.thread_name.clone(),
            roots: t.tree(),
        }
    }
}

/// Aggregated snapshot of a [`MetricsRecorder`], in stable order.
///
/// The **deterministic section** — everything `to_json` renders before the
/// `"phases_ns"` key: `schema`, `counters`, `attribution`, `rules` — is
/// byte-stable for a fixed seed and configuration. Everything from
/// `"phases_ns"` on (`latency`, `span_tree`, `kernels`) is wall-clock and
/// varies run to run.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineReport {
    /// Report layout version ([`REPORT_SCHEMA`]).
    pub schema: u32,
    /// All counters, in [`Counter::ALL`] order.
    pub counters: Vec<CounterValue>,
    /// Per-pass provenance of the final duplicates (multi-pass runs).
    pub attribution: Option<AttributionReport>,
    /// Per-rule firing counts (when the theory was wrapped in a counter).
    pub rules: Option<RuleFiringReport>,
    /// All phase totals, in [`Phase::ALL`] order.
    pub phases: Vec<PhaseTime>,
    /// Latency histograms (empty unless tracing was enabled).
    pub latency: Vec<NamedHistogram>,
    /// Timed span forest per thread (empty unless tracing was enabled).
    pub span_tree: Vec<SpanTreeTrack>,
    /// String-kernel timings (empty unless kernel timing was enabled).
    pub kernels: Vec<KernelTime>,
}

impl PipelineReport {
    /// Value of the counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Renders the report as pretty-printed JSON.
    ///
    /// Serialization is hand-rolled: the vendored offline `serde` shim has
    /// no serializer backend, and a fixed field order keeps the
    /// deterministic section (everything before `"phases_ns"`) byte-stable
    /// across runs. Optional sections are omitted entirely when absent, so
    /// presence is also deterministic for a fixed configuration.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": {},\n", self.schema));
        out.push_str("  \"counters\": {\n");
        for (i, c) in self.counters.iter().enumerate() {
            let sep = if i + 1 == self.counters.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!("    \"{}\": {}{sep}\n", c.name, c.value));
        }
        out.push_str("  },\n");
        if let Some(attr) = &self.attribution {
            out.push_str("  \"attribution\": {\n    \"passes\": [\n");
            for (i, p) in attr.passes.iter().enumerate() {
                let sep = if i + 1 == attr.passes.len() { "" } else { "," };
                out.push_str(&format!(
                    "      {{\"pass\": {}, \"key\": {}, \"window\": {}, \
                     \"pairs_found\": {}, \"pairs_first_found\": {}, \
                     \"pairs_unique\": {}}}{sep}\n",
                    p.pass,
                    json_string(&p.key),
                    p.window,
                    p.pairs_found,
                    p.pairs_first_found,
                    p.pairs_unique
                ));
            }
            out.push_str("    ],\n");
            out.push_str(&format!(
                "    \"distinct_matched_pairs\": {},\n",
                attr.distinct_matched_pairs
            ));
            out.push_str(&format!(
                "    \"closure_inferred_pairs\": {}\n  }},\n",
                attr.closure_inferred_pairs
            ));
        }
        if let Some(rules) = &self.rules {
            out.push_str("  \"rules\": {\n");
            out.push_str(&format!(
                "    \"theory\": {},\n",
                json_string(&rules.theory)
            ));
            out.push_str(&format!("    \"evaluations\": {},\n", rules.evaluations));
            out.push_str(&format!("    \"misses\": {},\n", rules.misses));
            out.push_str(&format!(
                "    \"conditions_short_circuited\": {},\n",
                rules.conditions_short_circuited
            ));
            out.push_str("    \"fired\": {\n");
            for (i, (name, count)) in rules.fired.iter().enumerate() {
                let sep = if i + 1 == rules.fired.len() { "" } else { "," };
                out.push_str(&format!("      {}: {count}{sep}\n", json_string(name)));
            }
            out.push_str("    }\n  },\n");
        }
        out.push_str("  \"phases_ns\": {\n");
        for (i, p) in self.phases.iter().enumerate() {
            let sep = if i + 1 == self.phases.len() { "" } else { "," };
            out.push_str(&format!("    \"{}\": {}{sep}\n", p.name, p.ns));
        }
        out.push_str("  }");
        if !self.latency.is_empty() {
            out.push_str(",\n  \"latency\": {\n");
            for (i, h) in self.latency.iter().enumerate() {
                let sep = if i + 1 == self.latency.len() { "" } else { "," };
                let buckets = h
                    .hist
                    .buckets
                    .iter()
                    .map(|(lo, n)| format!("[{lo}, {n}]"))
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!(
                    "    \"{}\": {{\"samples\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \
                     \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, \"buckets\": [{buckets}]}}{sep}\n",
                    h.name,
                    h.hist.count,
                    h.hist.mean_ns(),
                    h.hist.p50_ns,
                    h.hist.p95_ns,
                    h.hist.p99_ns,
                    h.hist.max_ns
                ));
            }
            out.push_str("  }");
        }
        if !self.span_tree.is_empty() {
            out.push_str(",\n  \"span_tree\": [\n");
            for (i, t) in self.span_tree.iter().enumerate() {
                let sep = if i + 1 == self.span_tree.len() {
                    ""
                } else {
                    ","
                };
                out.push_str(&format!(
                    "    {{\"track\": {}, \"thread\": {}, \"spans\": [",
                    t.track,
                    json_string(&t.thread_name)
                ));
                for (j, node) in t.roots.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    push_span_node(&mut out, node);
                }
                out.push_str(&format!("]}}{sep}\n"));
            }
            out.push_str("  ]");
        }
        if !self.kernels.is_empty() {
            out.push_str(",\n  \"kernels\": {\n");
            for (i, k) in self.kernels.iter().enumerate() {
                let sep = if i + 1 == self.kernels.len() { "" } else { "," };
                out.push_str(&format!(
                    "    \"{}\": {{\"calls\": {}, \"total_ns\": {}}}{sep}\n",
                    k.name, k.calls, k.total_ns
                ));
            }
            out.push_str("  }");
        }
        out.push_str("\n}\n");
        out
    }
}

/// Renders `s` as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders one span node (and its children) as compact JSON.
fn push_span_node(out: &mut String, node: &SpanNode) {
    out.push_str(&format!(
        "{{\"name\": \"{}\", \"start_ns\": {}, \"dur_ns\": {}",
        node.name, node.start_ns, node.dur_ns
    ));
    if let Some(label) = &node.label {
        out.push_str(&format!(", \"label\": {}", json_string(label)));
    }
    if !node.children.is_empty() {
        out.push_str(", \"children\": [");
        for (i, c) in node.children.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            push_span_node(out, c);
        }
        out.push(']');
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRecorder::new();
        m.add(Counter::Comparisons, 7);
        m.add(Counter::Comparisons, 3);
        m.add(Counter::Matches, 1);
        assert_eq!(m.get(Counter::Comparisons), 10);
        assert_eq!(m.get(Counter::Matches), 1);
        assert_eq!(m.get(Counter::ClosedPairs), 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = MetricsRecorder::new();
        m.add(Counter::SortRuns, 4);
        m.phase_ns(Phase::Sort, 123);
        m.reset();
        assert_eq!(m.get(Counter::SortRuns), 0);
        assert_eq!(m.phase_total_ns(Phase::Sort), 0);
    }

    #[test]
    fn concurrent_adds_sum_exactly() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let m = MetricsRecorder::new();
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let m = &m;
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        m.add(Counter::Comparisons, 1);
                        m.phase_ns(Phase::WindowScan, 2);
                    }
                });
            }
        });
        assert_eq!(m.get(Counter::Comparisons), THREADS * PER_THREAD);
        assert_eq!(
            m.phase_total_ns(Phase::WindowScan),
            2 * THREADS * PER_THREAD
        );
    }

    #[test]
    fn concurrent_mixed_counters_do_not_interfere() {
        let m = MetricsRecorder::new();
        std::thread::scope(|s| {
            for (i, &c) in Counter::ALL.iter().enumerate() {
                let m = &m;
                s.spawn(move || {
                    for _ in 0..1_000 {
                        m.add(c, (i + 1) as u64);
                    }
                });
            }
        });
        for (i, &c) in Counter::ALL.iter().enumerate() {
            assert_eq!(m.get(c), 1_000 * (i + 1) as u64, "{}", c.name());
        }
    }

    #[test]
    fn stopwatch_reports_on_drop() {
        let m = MetricsRecorder::new();
        {
            let _t = Stopwatch::start(&m, Phase::Closure);
            std::hint::black_box(0u64);
        }
        // Monotonic clocks can legally report 0ns for a tiny span; the drop
        // itself must have fired exactly once and never panic.
        let first = m.phase_total_ns(Phase::Closure);
        {
            let _t = Stopwatch::start(&m, Phase::Closure);
        }
        assert!(m.phase_total_ns(Phase::Closure) >= first);
    }

    #[test]
    fn report_names_are_stable_and_json_wellformed() {
        let m = MetricsRecorder::new();
        m.add(Counter::Comparisons, 42);
        m.phase_ns(Phase::Sort, 9);
        let report = m.report();
        assert_eq!(report.counter("comparisons"), Some(42));
        assert_eq!(report.counter("nonexistent"), None);
        let json = report.to_json();
        assert!(json.contains("\"comparisons\": 42"));
        assert!(json.contains("\"sort\": 9"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Identical recorder state must render byte-identical JSON.
        assert_eq!(json, m.report().to_json());
    }

    #[test]
    fn noop_observer_ignores_everything() {
        let n = NoopObserver;
        n.add(Counter::Comparisons, u64::MAX);
        n.phase_ns(Phase::Sort, u64::MAX);
        assert!(n.tracer().is_none());
        assert!(n.rule_latency().is_none());
        assert!(n.progress().is_none());
        n.run_complete();
    }

    #[test]
    fn span_helper_is_none_without_tracing_and_records_with_it() {
        let plain = MetricsRecorder::new();
        assert!(span(&plain, "run").is_none());
        assert!(span_labeled(&plain, "pass", || unreachable!(
            "label closure must not run"
        ))
        .is_none());

        let traced = MetricsRecorder::new().with_tracing();
        {
            let _run = span(&traced, "run");
            let _pass = span_labeled(&traced, "pass", || "key=last".into());
        }
        let tracks = traced.drain_spans();
        assert_eq!(tracks.len(), 1);
        let tree = tracks[0].tree();
        assert_eq!(tree[0].name, "run");
        assert_eq!(tree[0].children[0].label.as_deref(), Some("key=last"));
    }

    #[test]
    fn invariant_check_catches_mismatch() {
        let m = MetricsRecorder::new();
        m.add(Counter::Comparisons, 10);
        m.add(Counter::RuleInvocations, 7);
        m.add(Counter::PairsPruned, 3);
        assert!(m.check_invariants().is_ok());
        m.run_complete();
        m.add(Counter::PairsPruned, 1);
        assert!(m.check_invariants().is_err());
    }

    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "run_complete only asserts in debug builds"
    )]
    #[should_panic(expected = "counter invariant violated")]
    fn run_complete_panics_on_violation_in_debug() {
        let m = MetricsRecorder::new();
        m.add(Counter::Comparisons, 1);
        m.run_complete();
    }

    #[test]
    fn report_includes_tracing_sections_when_enabled() {
        let m = MetricsRecorder::new().with_tracing();
        {
            let _run = span(&m, "run");
        }
        m.rule_latency().unwrap().record(150);
        let json = m.report().to_json();
        assert!(json.contains("\"schema\": 2"));
        assert!(json.contains("\"latency\""));
        assert!(json.contains("\"p99_ns\""));
        assert!(json.contains("\"span_tree\""));
        assert!(json.contains("\"name\": \"run\""));
        // Both wall-clock sections render after the deterministic prefix.
        let phases_at = json.find("\"phases_ns\"").unwrap();
        assert!(json.find("\"latency\"").unwrap() > phases_at);
        assert!(json.find("\"span_tree\"").unwrap() > phases_at);
    }

    #[test]
    fn report_renders_attribution_rules_and_kernels() {
        let m = MetricsRecorder::new();
        let mut report = m.report();
        report.attribution = Some(AttributionReport {
            passes: vec![PassAttribution {
                pass: 0,
                key: "last_name".into(),
                window: 6,
                pairs_found: 10,
                pairs_first_found: 10,
                pairs_unique: 4,
            }],
            distinct_matched_pairs: 10,
            closure_inferred_pairs: 2,
        });
        report.rules = Some(RuleFiringReport {
            theory: "native-employee".into(),
            evaluations: 100,
            misses: 90,
            conditions_short_circuited: 50,
            fired: vec![("exact_ssn".into(), 7), ("never".into(), 0)],
        });
        report.kernels = vec![KernelTime {
            name: "levenshtein",
            calls: 3,
            total_ns: 999,
        }];
        let json = report.to_json();
        for needle in [
            "\"attribution\"",
            "\"pairs_unique\": 4",
            "\"distinct_matched_pairs\": 10",
            "\"closure_inferred_pairs\": 2",
            "\"rules\"",
            "\"exact_ssn\": 7",
            "\"never\": 0",
            "\"conditions_short_circuited\": 50",
            "\"kernels\"",
            "\"levenshtein\": {\"calls\": 3, \"total_ns\": 999}",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // Deterministic sections precede phases_ns; kernels follow it.
        let phases_at = json.find("\"phases_ns\"").unwrap();
        assert!(json.find("\"attribution\"").unwrap() < phases_at);
        assert!(json.find("\"rules\"").unwrap() < phases_at);
        assert!(json.find("\"kernels\"").unwrap() > phases_at);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn scan_hooks_from_observer_mirror_enabled_state() {
        let plain = MetricsRecorder::new();
        let hooks = ScanHooks::from_observer(&plain);
        assert!(hooks.latency.is_none() && hooks.progress.is_none());
        let traced = MetricsRecorder::new()
            .with_tracing()
            .with_progress("comparisons", 100);
        let hooks = ScanHooks::from_observer(&traced);
        assert!(hooks.latency.is_some() && hooks.progress.is_some());
    }
}
