//! Abstract syntax for rule programs.

use crate::token::Pos;
use mp_record::Field;

/// Which of the two records a field reference addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordRef {
    /// The first record of the pair (`r1`).
    R1,
    /// The second record of the pair (`r2`).
    R2,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
}

impl CmpOp {
    /// Operator spelling, for error messages.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
        }
    }
}

/// An expression node. Every node carries the source position of its head
/// token so type errors point at the offending construct.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Disjunction of two or more subexpressions.
    Or(Vec<Expr>, Pos),
    /// Conjunction of two or more subexpressions.
    And(Vec<Expr>, Pos),
    /// Logical negation.
    Not(Box<Expr>, Pos),
    /// Binary comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>, Pos),
    /// Builtin function call.
    Call(String, Vec<Expr>, Pos),
    /// Field access `r1.x` / `r2.x`.
    FieldRef(RecordRef, Field, Pos),
    /// Numeric literal.
    Num(f64, Pos),
    /// String literal.
    Str(String, Pos),
    /// Boolean literal.
    Bool(bool, Pos),
}

impl Expr {
    /// Source position of this expression's head.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Or(_, p)
            | Expr::And(_, p)
            | Expr::Not(_, p)
            | Expr::Cmp(_, _, _, p)
            | Expr::Call(_, _, p)
            | Expr::FieldRef(_, _, p)
            | Expr::Num(_, p)
            | Expr::Str(_, p)
            | Expr::Bool(_, p) => *p,
        }
    }
}

/// One named rule: `rule NAME { when EXPR then match }`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Rule name (unique within a program).
    pub name: String,
    /// The condition; the rule fires when it evaluates to true.
    pub condition: Expr,
    /// Position of the `rule` keyword.
    pub pos: Pos,
}

/// Field-survivorship strategies for the purge phase (§5: the rule base's
/// consequents "can be programmed to specify selective extraction, purging,
/// and even deduction").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Survivorship {
    /// Value of the earliest record in the class (input order).
    First,
    /// First non-empty value in input order.
    FirstNonEmpty,
    /// Longest value (most complete); ties resolve to the earliest.
    Longest,
    /// Most frequent value among the class; ties resolve to the earliest
    /// occurrence. Empty values do not vote.
    MostFrequent,
}

impl Survivorship {
    /// Strategy name as written in rule source.
    pub fn name(self) -> &'static str {
        match self {
            Survivorship::First => "first",
            Survivorship::FirstNonEmpty => "first_non_empty",
            Survivorship::Longest => "longest",
            Survivorship::MostFrequent => "most_frequent",
        }
    }

    /// Parses a strategy name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "first" => Some(Survivorship::First),
            "first_non_empty" => Some(Survivorship::FirstNonEmpty),
            "longest" => Some(Survivorship::Longest),
            "most_frequent" => Some(Survivorship::MostFrequent),
            _ => None,
        }
    }
}

/// The optional `purge { field <- strategy ... }` block of a program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PurgeSpec {
    /// Per-field survivorship assignments, in source order.
    pub assignments: Vec<(Field, Survivorship)>,
}

impl PurgeSpec {
    /// The strategy assigned to `field`, if any.
    pub fn strategy(&self, field: Field) -> Option<Survivorship> {
        self.assignments
            .iter()
            .rev() // later assignments win
            .find(|(f, _)| *f == field)
            .map(|(_, s)| *s)
    }
}

/// A complete rule program — the equational theory is the disjunction of
/// its rules, plus an optional purge specification.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// The rules, in source order (evaluation short-circuits on first fire).
    pub rules: Vec<Rule>,
    /// Survivorship spec from the `purge { ... }` block, if present.
    pub purge: Option<PurgeSpec>,
}
