//! Rolling time-window aggregates for the serving daemon.
//!
//! A one-shot counter snapshot answers "how much work since start?", but
//! operating a long-running service needs *rates*: records ingested per
//! second over the last minute, the p99 batch latency over the last five.
//! [`RollingRing`] provides those as a lock-light ring of fixed-width
//! time buckets: writers bump relaxed atomics in the bucket owned by the
//! current time slice, readers sum the buckets that fall inside a query
//! window. Buckets age out at bucket granularity — an expired slot is
//! lazily re-zeroed when the ring wraps back onto it.
//!
//! All methods take the current time as an explicit `now_secs` argument
//! (any monotonic second counter, e.g. seconds since daemon start).
//! Nothing inside reads a clock, which makes window semantics exactly
//! testable with a virtual clock:
//!
//! ```
//! use mp_metrics::rolling::{RollingRing, WindowCounter};
//!
//! let ring = RollingRing::new(5, 900); // 5 s buckets spanning 15 min
//! ring.add(2, WindowCounter::Records, 100);
//! ring.add(3, WindowCounter::Batches, 1);
//! ring.record_latency(3, 2_000_000); // 2 ms batch ingest
//! let w = ring.window(4, 60);
//! assert_eq!(w.count(WindowCounter::Records), 100);
//! assert!(w.rate(WindowCounter::Records) > 1.0);
//! assert_eq!(w.latency_count, 1);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 latency buckets per ring slot (same scheme as
/// `mp_trace::LatencyHistogram`: bucket `i` holds samples with
/// `floor(log2(ns)) == i`).
pub const LAT_BUCKETS: usize = 48;

/// The standard reporting windows: (label, seconds).
pub const WINDOWS: [(&str, u64); 3] = [("1m", 60), ("5m", 300), ("15m", 900)];

/// Event kinds a [`RollingRing`] tracks per bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowCounter {
    /// Records ingested.
    Records,
    /// Batches ingested.
    Batches,
    /// Window-scan pair comparisons.
    Comparisons,
    /// Equational-theory (rule) invocations.
    RuleInvocations,
    /// Matching pairs found.
    Matches,
}

impl WindowCounter {
    /// Every window counter, in stable report order.
    pub const ALL: [WindowCounter; 5] = [
        WindowCounter::Records,
        WindowCounter::Batches,
        WindowCounter::Comparisons,
        WindowCounter::RuleInvocations,
        WindowCounter::Matches,
    ];

    /// Stable snake_case name used in reports and exposition labels.
    pub fn name(self) -> &'static str {
        match self {
            WindowCounter::Records => "records",
            WindowCounter::Batches => "batches",
            WindowCounter::Comparisons => "comparisons",
            WindowCounter::RuleInvocations => "rule_invocations",
            WindowCounter::Matches => "matches",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// Log2 bucket index for a nanosecond latency (bucket 0 also holds 0 ns).
#[inline]
pub fn log2_bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        ((63 - ns.leading_zeros()) as usize).min(LAT_BUCKETS - 1)
    }
}

/// Inclusive upper bound in nanoseconds of log2 bucket `i`.
pub fn log2_bucket_upper(i: usize) -> u64 {
    if i + 1 >= 64 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// One time slice of the ring. `epoch` is the absolute bucket number
/// (`now_secs / width_secs`) the slot currently represents; a slot whose
/// epoch is outside the queried window is simply skipped by readers, so
/// stale slots never need eager cleanup.
struct Slot {
    epoch: AtomicU64,
    counts: [AtomicU64; WindowCounter::ALL.len()],
    lat: [AtomicU64; LAT_BUCKETS],
    lat_count: AtomicU64,
    lat_sum_ns: AtomicU64,
    lat_max_ns: AtomicU64,
}

/// Sentinel epoch for a slot that has never been written.
const EMPTY: u64 = u64::MAX;

impl Slot {
    fn new() -> Self {
        Slot {
            epoch: AtomicU64::new(EMPTY),
            counts: [const { AtomicU64::new(0) }; WindowCounter::ALL.len()],
            lat: [const { AtomicU64::new(0) }; LAT_BUCKETS],
            lat_count: AtomicU64::new(0),
            lat_sum_ns: AtomicU64::new(0),
            lat_max_ns: AtomicU64::new(0),
        }
    }

    fn zero(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        for b in &self.lat {
            b.store(0, Ordering::Relaxed);
        }
        self.lat_count.store(0, Ordering::Relaxed);
        self.lat_sum_ns.store(0, Ordering::Relaxed);
        self.lat_max_ns.store(0, Ordering::Relaxed);
    }
}

/// A ring of fixed-width time buckets yielding rolling-window rates and
/// latency quantiles. See the [module docs](self) for semantics.
///
/// Thread-safety: recording is relaxed atomics only. The intended shape
/// is a single writer (the daemon's engine worker) with any number of
/// concurrent readers (scrape threads); concurrent writers are safe but
/// a reader racing a slot-rollover may observe a partially-reset bucket —
/// rates are operational telemetry, not accounting.
pub struct RollingRing {
    width_secs: u64,
    slots: Vec<Slot>,
}

impl RollingRing {
    /// A ring of `span_secs / width_secs + 1` buckets, each `width_secs`
    /// wide. `span_secs` is the largest window the ring can answer (the
    /// extra slot keeps the current partial bucket from evicting the
    /// oldest one still inside the span).
    ///
    /// # Panics
    ///
    /// Panics when `width_secs` is 0 or `span_secs < width_secs`.
    pub fn new(width_secs: u64, span_secs: u64) -> Self {
        assert!(width_secs > 0, "bucket width must be positive");
        assert!(
            span_secs >= width_secs,
            "span must cover at least one bucket"
        );
        let n = (span_secs / width_secs) as usize + 1;
        RollingRing {
            width_secs,
            slots: (0..n).map(|_| Slot::new()).collect(),
        }
    }

    /// The standard daemon ring: 5-second buckets spanning the largest
    /// window in [`WINDOWS`].
    pub fn standard() -> Self {
        Self::new(5, WINDOWS[WINDOWS.len() - 1].1)
    }

    /// Bucket width in seconds (the resolution at which samples age out).
    pub fn width_secs(&self) -> u64 {
        self.width_secs
    }

    /// The slot for `now_secs`, lazily re-zeroed if the ring has wrapped
    /// past its previous tenant.
    fn slot(&self, now_secs: u64) -> &Slot {
        let epoch = now_secs / self.width_secs;
        let slot = &self.slots[(epoch % self.slots.len() as u64) as usize];
        if slot.epoch.load(Ordering::Relaxed) != epoch {
            slot.zero();
            slot.epoch.store(epoch, Ordering::Relaxed);
        }
        slot
    }

    /// Adds `n` events of kind `counter` at time `now_secs`.
    pub fn add(&self, now_secs: u64, counter: WindowCounter, n: u64) {
        self.slot(now_secs).counts[counter.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Records one latency sample (e.g. a batch-ingest duration) at
    /// `now_secs`.
    pub fn record_latency(&self, now_secs: u64, ns: u64) {
        let slot = self.slot(now_secs);
        slot.lat[log2_bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        slot.lat_count.fetch_add(1, Ordering::Relaxed);
        slot.lat_sum_ns.fetch_add(ns, Ordering::Relaxed);
        slot.lat_max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Aggregates the last `window_secs` seconds ending at `now_secs`.
    ///
    /// The window covers the current (partial) bucket plus the previous
    /// `window_secs / width − 1` buckets, so a sample ages out when its
    /// bucket's start falls more than `window_secs` before the current
    /// bucket's end — resolution is one bucket width.
    pub fn window(&self, now_secs: u64, window_secs: u64) -> WindowSnapshot {
        let now_epoch = now_secs / self.width_secs;
        let span = (window_secs / self.width_secs)
            .max(1)
            .min(self.slots.len() as u64 - 1);
        let oldest = now_epoch.saturating_sub(span - 1);
        let mut snap = WindowSnapshot {
            window_secs,
            counts: [0; WindowCounter::ALL.len()],
            latency_count: 0,
            latency_sum_ns: 0,
            latency_max_ns: 0,
            latency_buckets: [0; LAT_BUCKETS],
        };
        for slot in &self.slots {
            let epoch = slot.epoch.load(Ordering::Relaxed);
            if epoch == EMPTY || epoch < oldest || epoch > now_epoch {
                continue;
            }
            for (i, c) in slot.counts.iter().enumerate() {
                snap.counts[i] += c.load(Ordering::Relaxed);
            }
            snap.latency_count += slot.lat_count.load(Ordering::Relaxed);
            snap.latency_sum_ns += slot.lat_sum_ns.load(Ordering::Relaxed);
            snap.latency_max_ns = snap
                .latency_max_ns
                .max(slot.lat_max_ns.load(Ordering::Relaxed));
            for (i, b) in slot.lat.iter().enumerate() {
                snap.latency_buckets[i] += b.load(Ordering::Relaxed);
            }
        }
        snap
    }
}

impl std::fmt::Debug for RollingRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RollingRing")
            .field("width_secs", &self.width_secs)
            .field("slots", &self.slots.len())
            .finish()
    }
}

/// Aggregated view of one rolling window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSnapshot {
    /// The window length the query asked for, in seconds.
    pub window_secs: u64,
    /// Event totals inside the window, indexed by [`WindowCounter::ALL`].
    pub counts: [u64; WindowCounter::ALL.len()],
    /// Latency samples inside the window.
    pub latency_count: u64,
    /// Sum of those samples, in nanoseconds.
    pub latency_sum_ns: u64,
    /// Largest sample inside the window, in nanoseconds.
    pub latency_max_ns: u64,
    /// Log2 latency buckets (index `i` holds samples with
    /// `floor(log2(ns)) == i`).
    pub latency_buckets: [u64; LAT_BUCKETS],
}

impl WindowSnapshot {
    /// Total events of kind `c` inside the window.
    pub fn count(&self, c: WindowCounter) -> u64 {
        self.counts[c.index()]
    }

    /// Events of kind `c` per second, averaged over the full window
    /// length (an empty window rates 0).
    pub fn rate(&self, c: WindowCounter) -> f64 {
        if self.window_secs == 0 {
            return 0.0;
        }
        self.count(c) as f64 / self.window_secs as f64
    }

    /// Latency at quantile `q` in `[0, 1]`: the upper bound of the log2
    /// bucket containing the `ceil(q · count)`-th sample, clamped to the
    /// window's observed maximum. Returns 0 for an empty window.
    pub fn latency_quantile_ns(&self, q: f64) -> u64 {
        if self.latency_count == 0 {
            return 0;
        }
        let rank = ((q * self.latency_count as f64).ceil() as u64).clamp(1, self.latency_count);
        let mut seen = 0u64;
        for (i, &n) in self.latency_buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return log2_bucket_upper(i).min(self.latency_max_ns);
            }
        }
        self.latency_max_ns
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn latency_mean_ns(&self) -> u64 {
        self.latency_sum_ns
            .checked_div(self.latency_count)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_the_queried_window() {
        let ring = RollingRing::new(10, 60);
        ring.add(5, WindowCounter::Records, 10);
        ring.add(15, WindowCounter::Records, 20);
        // At t=19, a 60 s window sees both buckets.
        assert_eq!(ring.window(19, 60).count(WindowCounter::Records), 30);
        // A 10 s window at t=19 covers only the current bucket [10, 20).
        assert_eq!(ring.window(19, 10).count(WindowCounter::Records), 20);
    }

    #[test]
    fn samples_age_out_at_bucket_granularity() {
        let ring = RollingRing::new(10, 120);
        ring.add(5, WindowCounter::Batches, 1);
        // Window [6..65]: bucket 0 (epoch 0) is 6 buckets back from epoch
        // 6 — outside a 60 s (6-bucket) window ending at t=65.
        assert_eq!(ring.window(65, 60).count(WindowCounter::Batches), 0);
        // A 120 s window still sees it.
        assert_eq!(ring.window(65, 120).count(WindowCounter::Batches), 1);
    }

    #[test]
    fn ring_wraparound_rezeroes_expired_slots() {
        // 3 slots: width 10, span 20.
        let ring = RollingRing::new(10, 20);
        ring.add(0, WindowCounter::Records, 7);
        // t=30 maps onto the same slot as t=0 (epoch 3 ≡ 0 mod 3); the
        // stale count must not leak into the new epoch.
        ring.add(30, WindowCounter::Records, 1);
        assert_eq!(ring.window(30, 10).count(WindowCounter::Records), 1);
        assert_eq!(ring.window(30, 20).count(WindowCounter::Records), 1);
    }

    #[test]
    fn empty_window_rates_and_quantiles_are_zero() {
        let ring = RollingRing::new(5, 900);
        let w = ring.window(1_000, 60);
        assert_eq!(w.count(WindowCounter::Records), 0);
        assert_eq!(w.rate(WindowCounter::Comparisons), 0.0);
        assert_eq!(w.latency_quantile_ns(0.99), 0);
        assert_eq!(w.latency_mean_ns(), 0);
    }

    #[test]
    fn rates_average_over_the_window_length() {
        let ring = RollingRing::new(5, 900);
        for t in 0..60 {
            ring.add(t, WindowCounter::Records, 2);
        }
        let w = ring.window(59, 60);
        assert_eq!(w.count(WindowCounter::Records), 120);
        assert!((w.rate(WindowCounter::Records) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_from_sparse_samples() {
        let ring = RollingRing::new(5, 900);
        // 99 fast samples and one slow outlier: p50 stays in the fast
        // bucket, p99 does not reach the outlier, p100 is exact.
        for _ in 0..99 {
            ring.record_latency(10, 1_000);
        }
        ring.record_latency(10, 1_000_000);
        let w = ring.window(12, 60);
        assert_eq!(w.latency_count, 100);
        assert_eq!(
            w.latency_quantile_ns(0.50),
            log2_bucket_upper(log2_bucket_index(1_000))
        );
        assert_eq!(
            w.latency_quantile_ns(0.99),
            log2_bucket_upper(log2_bucket_index(1_000))
        );
        assert_eq!(w.latency_quantile_ns(1.0), 1_000_000);
        // A single sample: every quantile is that sample (clamped to max).
        let ring2 = RollingRing::new(5, 900);
        ring2.record_latency(0, 12_345);
        let w2 = ring2.window(0, 60);
        assert_eq!(w2.latency_quantile_ns(0.5), 12_345);
        assert_eq!(w2.latency_quantile_ns(0.99), 12_345);
    }

    #[test]
    fn latency_sums_and_max_accumulate_across_buckets() {
        let ring = RollingRing::new(10, 120);
        ring.record_latency(5, 100);
        ring.record_latency(15, 300);
        let w = ring.window(19, 120);
        assert_eq!(w.latency_count, 2);
        assert_eq!(w.latency_sum_ns, 400);
        assert_eq!(w.latency_max_ns, 300);
        assert_eq!(w.latency_mean_ns(), 200);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let ring = RollingRing::new(5, 900);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for t in 0..1_000u64 {
                        ring.add(t % 60, WindowCounter::Comparisons, 1);
                    }
                });
            }
        });
        assert_eq!(ring.window(59, 60).count(WindowCounter::Comparisons), 4_000);
    }

    #[test]
    fn standard_ring_survives_a_full_fifteen_minute_wrap() {
        // The standard ring is 181 slots of 5 s spanning 900 s. Drive a
        // virtual clock through well over one complete revolution,
        // recording one batch (and one latency sample) per bucket, and
        // check every reporting window at every step: lazily re-zeroed
        // slots must never leak a previous revolution's samples into a
        // window, and never lose current ones.
        let ring = RollingRing::standard();
        let width = ring.width_secs();
        let slots = 900 / width + 1; // 181
        let two_revolutions = 2 * slots * width + 3 * width;
        let mut t = 0u64;
        while t <= two_revolutions {
            ring.add(t, WindowCounter::Batches, 1);
            ring.record_latency(t, 1_000_000);
            for (label, secs) in WINDOWS {
                let w = ring.window(t, secs);
                // One sample per bucket: a window of `secs` covers the
                // current partial bucket plus secs/width − 1 full ones.
                let expect = (secs / width).min(t / width + 1);
                assert_eq!(
                    w.count(WindowCounter::Batches),
                    expect,
                    "window {label} at t={t}"
                );
                assert_eq!(w.latency_count, expect, "latency {label} at t={t}");
            }
            t += width;
        }
    }

    #[test]
    fn slot_reuse_after_a_full_wrap_rezeroes_lazily() {
        // Epoch 0 and epoch 181 map to the same physical slot of the
        // standard ring. The stale slot must be invisible to reads at
        // the far edge of the 15m window *before* it is re-zeroed, and
        // must drop its old samples once rewritten.
        let ring = RollingRing::standard();
        let slots = 900 / ring.width_secs() + 1; // 181
        let wrap_t = slots * ring.width_secs(); // 905: epoch 181
        ring.add(0, WindowCounter::Records, 1_000);
        ring.record_latency(0, 5_000_000_000); // 5 s outlier in epoch 0
                                               // At t=904 (epoch 180) the 15m window spans epochs 1..=180, so
                                               // epoch 0's slot is out of range even though it still holds data.
        let w = ring.window(wrap_t - 1, 900);
        assert_eq!(w.count(WindowCounter::Records), 0, "aged out, not leaked");
        assert_eq!(w.latency_count, 0);
        // Writing at t=905 reuses the slot: old tenant's counts must not
        // survive the lazy re-zero.
        ring.add(wrap_t, WindowCounter::Records, 7);
        let w = ring.window(wrap_t, 900);
        assert_eq!(w.count(WindowCounter::Records), 7);
        assert_eq!(w.latency_max_ns, 0, "stale 5 s outlier was re-zeroed");
        // Untouched slots from the first revolution stay EMPTY-or-stale
        // without polluting any later window.
        let w = ring.window(wrap_t + 450, 900);
        assert_eq!(w.count(WindowCounter::Records), 7);
    }

    #[test]
    fn sparse_writes_across_revolutions_never_leak() {
        // Write only every third bucket, sweep three revolutions, and
        // assert the 15m total matches exactly the live buckets: slots
        // skipped by the writer keep their stale epoch and are filtered
        // by the reader's range check instead of a re-zero.
        let ring = RollingRing::standard();
        let width = ring.width_secs();
        let slots = 900 / width + 1;
        let end = 3 * slots * width;
        let mut t = 0u64;
        while t <= end {
            if (t / width).is_multiple_of(3) {
                ring.add(t, WindowCounter::Matches, 2);
            }
            t += width;
        }
        let last = end - (end / width % 3) * width; // last written bucket
        let w = ring.window(end, 900);
        // Buckets in [end-895, end] with epoch % 3 == 0.
        let oldest = end / width - (900 / width - 1);
        let expect = (oldest..=end / width).filter(|e| e % 3 == 0).count() as u64;
        assert_eq!(w.count(WindowCounter::Matches), expect * 2, "last={last}");
    }

    #[test]
    fn standard_ring_answers_every_reporting_window() {
        let ring = RollingRing::standard();
        ring.add(0, WindowCounter::Records, 1);
        for (label, secs) in WINDOWS {
            let w = ring.window(0, secs);
            assert_eq!(w.count(WindowCounter::Records), 1, "window {label}");
        }
    }
}
