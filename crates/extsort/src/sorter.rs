//! External merge sort over keyed run files.
//!
//! See the crate docs for the spill format and the run-merge invariants;
//! the short version is that every run is written sorted by **(key,
//! record id)** and the F-way merge breaks key ties by smaller id, so any
//! partition of the input into contiguous runs — one per memory-budget
//! chunk, or several per chunk when run formation fans out across threads
//! — merges to the exact order an in-memory stable sort would produce.

use crate::runfile::{RunReader, RunWriter};
use crate::{ExternalConfig, IoStats};
use merge_purge::{band_ranges, chunked_str_cmp, radix_order_by, KeySpec, SortStrategy};
use mp_metrics::{span, span_labeled, Counter, NoopObserver, Phase, PipelineObserver};
use mp_record::{io as rio, Record};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{self, BufReader};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// External merge sort: run formation (fused with key extraction and
/// optional conditioning) followed by F-way merge levels.
///
/// Sorting is stable with respect to record ids on equal keys, which makes
/// the final order identical to the in-memory engines' stable sort — and
/// therefore the window scan results identical too.
#[derive(Debug, Clone)]
pub struct ExternalSorter {
    key: KeySpec,
    config: ExternalConfig,
}

/// A fully sorted run on disk plus the accounting that produced it.
pub struct SortedRun {
    /// Path of the final sorted run file.
    pub path: PathBuf,
    /// Number of records.
    pub records: usize,
    /// I/O accounting so far (run formation + merge levels).
    pub io: IoStats,
    /// Intermediate files created (caller removes them with
    /// [`SortedRun::cleanup`]).
    pub temp_files: Vec<PathBuf>,
}

impl SortedRun {
    /// Removes the final run and any leftover temporaries.
    pub fn cleanup(self) {
        for f in self.temp_files {
            let _ = std::fs::remove_file(f);
        }
        let _ = std::fs::remove_file(self.path);
    }
}

/// What one run-formation worker produced: its run file plus the
/// accounting folded back into the chunk totals.
struct FormedRun {
    path: PathBuf,
    records_written: u64,
    bytes: u64,
    radix_passes: u64,
}

impl ExternalSorter {
    /// A sorter for the given key and resource limits.
    ///
    /// # Panics
    ///
    /// Panics when the memory budget is zero, the fan-in is below 2, or
    /// the thread count is zero.
    pub fn new(key: KeySpec, config: ExternalConfig) -> Self {
        assert!(config.memory_records >= 1, "memory budget must be positive");
        assert!(config.fan_in >= 2, "fan-in must be at least 2");
        assert!(
            config.threads >= 1,
            "need at least one run-formation thread"
        );
        ExternalSorter { key, config }
    }

    /// Sorts the flat record file at `input` into a single keyed run under
    /// `work_dir`. `condition` applies §3.2 conditioning during run
    /// formation (the paper folds conditioning and key creation into one
    /// pass).
    pub fn sort(&self, input: &Path, work_dir: &Path, condition: bool) -> io::Result<SortedRun> {
        self.sort_observed(input, work_dir, condition, &NoopObserver)
    }

    /// Like [`ExternalSorter::sort`], reporting external-sort statistics to
    /// `observer`: initial run count ([`Counter::SortRuns`]), runs formed
    /// from full memory-budget chunks ([`Counter::SpillRuns`]), bytes
    /// written to run and merge files ([`Counter::BytesSpilled`]), total
    /// runs fed into merge steps ([`Counter::MergeFanIn`]), radix scatter
    /// passes when the radix strategy is selected
    /// ([`Counter::RadixPasses`]), and run-formation / run-merge phase
    /// times.
    pub fn sort_observed(
        &self,
        input: &Path,
        work_dir: &Path,
        condition: bool,
        observer: &dyn PipelineObserver,
    ) -> io::Result<SortedRun> {
        std::fs::create_dir_all(work_dir)?;
        let _ext_span = span(observer, "extsort");
        let _strategy_span = span_labeled(observer, "sort_strategy", || {
            format!(
                "{} threads={}",
                self.config.strategy.name(),
                self.config.threads
            )
        });
        let mut io_stats = IoStats::default();
        let mut temp_files = Vec::new();

        // Pass 1: run formation. Stream M records at a time, condition,
        // extract keys, sort in memory, write a run (or one run per worker
        // thread). At no point do more than M records live in memory.
        let nicknames = mp_record::NicknameTable::standard();
        let mut stream = rio::RecordStream::new(BufReader::new(File::open(input)?));
        io_stats.add_sweep();

        let t_runs = Instant::now();
        let mut bytes_spilled = 0u64;
        let mut radix_passes = 0u64;
        let mut spill_runs = 0u64;
        let mut total = 0usize;
        let mut runs: Vec<PathBuf> = Vec::new();
        let mut chunk: Vec<Record> = Vec::with_capacity(self.config.memory_records);
        let mut done = false;
        while !done {
            chunk.clear();
            while chunk.len() < self.config.memory_records {
                match stream.next() {
                    Some(Ok(r)) => chunk.push(r),
                    Some(Err(e)) => {
                        return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
                    }
                    None => {
                        done = true;
                        break;
                    }
                }
            }
            if chunk.is_empty() {
                break;
            }
            total += chunk.len();
            io_stats.records_read += chunk.len() as u64;
            let budget_full = chunk.len() == self.config.memory_records;

            let formed = self.form_runs(
                &mut chunk,
                runs.len(),
                work_dir,
                condition.then_some(&nicknames),
                observer,
            )?;
            for run in formed {
                io_stats.records_written += run.records_written;
                bytes_spilled += run.bytes;
                radix_passes += run.radix_passes;
                spill_runs += u64::from(budget_full);
                runs.push(run.path);
            }
        }
        observer.add(Counter::SortRuns, runs.len() as u64);
        observer.add(Counter::SpillRuns, spill_runs);
        if self.config.strategy == SortStrategy::Radix {
            observer.add(Counter::RadixPasses, radix_passes);
        }
        observer.phase_ns(Phase::RunFormation, t_runs.elapsed().as_nanos() as u64);

        // Merge levels: F runs at a time until one remains.
        let t_merge = Instant::now();
        let _merge_span = span(observer, "merge");
        let mut merge_inputs = 0u64;
        let mut level = 0usize;
        while runs.len() > 1 {
            io_stats.add_sweep();
            let mut next: Vec<PathBuf> = Vec::new();
            for (g, group) in runs.chunks(self.config.fan_in).enumerate() {
                let path = work_dir.join(format!("merge-{level}-{g}-{}.tmp", std::process::id()));
                let (read, written) = merge_group(group, &path)?;
                merge_inputs += group.len() as u64;
                io_stats.records_read += read;
                io_stats.records_written += written;
                bytes_spilled += std::fs::metadata(&path)?.len();
                next.push(path);
            }
            temp_files.extend(runs);
            level += 1;
            runs = next;
        }
        drop(_merge_span);
        observer.add(Counter::MergeFanIn, merge_inputs);
        observer.add(Counter::BytesSpilled, bytes_spilled);
        observer.phase_ns(Phase::RunMerge, t_merge.elapsed().as_nanos() as u64);

        let path = runs.pop().unwrap_or_else(|| {
            // Empty input: produce an empty run file for uniformity.
            let p = work_dir.join(format!("run-empty-{}.tmp", std::process::id()));
            let _ = RunWriter::create(&p).and_then(RunWriter::finish);
            p
        });
        Ok(SortedRun {
            path,
            records: total,
            io: io_stats,
            temp_files,
        })
    }

    /// Conditions, keys, sorts, and spills one memory-budget chunk as
    /// `threads` contiguous sub-runs (one when `threads == 1`). Worker `k`
    /// owns `chunk[bands[k]]`; because record ids ascend in input order,
    /// each sub-run is (key, id)-sorted and the merge invariants make the
    /// final order independent of the split.
    fn form_runs(
        &self,
        chunk: &mut [Record],
        first_run: usize,
        work_dir: &Path,
        nicknames: Option<&mp_record::NicknameTable>,
        observer: &dyn PipelineObserver,
    ) -> io::Result<Vec<FormedRun>> {
        let threads = self.config.threads.min(chunk.len()).max(1);
        // band_ranges splits 1-based scan positions; shift to 0-based
        // slice offsets to carve the chunk.
        let bands: Vec<(usize, usize)> = band_ranges(chunk.len() + 1, threads)
            .into_iter()
            .map(|(a, b)| (a - 1, b - 1))
            .collect();

        let run_one = |slice: &mut [Record], run_idx: usize| -> io::Result<FormedRun> {
            let gen_span = span_labeled(observer, "run_gen", || format!("run {run_idx}"));
            if let Some(table) = nicknames {
                mp_record::normalize::condition_all(slice, table);
            }
            let mut buf = String::new();
            let keyed: Vec<(String, usize)> = slice
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    self.key.extract_into(r, &mut buf);
                    (buf.clone(), i)
                })
                .collect();
            let (order, passes) = match self.config.strategy {
                SortStrategy::Comparison => {
                    let mut order: Vec<u32> = (0..keyed.len() as u32).collect();
                    order.sort_by(|&a, &b| {
                        chunked_str_cmp(&keyed[a as usize].0, &keyed[b as usize].0)
                    });
                    (order, 0u64)
                }
                SortStrategy::Radix => {
                    let out = radix_order_by(keyed.len(), |i| keyed[i].0.as_str());
                    (out.order, out.passes as u64)
                }
            };
            drop(gen_span);

            let _spill_span = span_labeled(observer, "spill", || format!("run {run_idx}"));
            let path = work_dir.join(format!("run-{run_idx}-{}.tmp", std::process::id()));
            let mut w = RunWriter::create(&path)?;
            for &i in &order {
                let (key, local) = &keyed[i as usize];
                w.write(key, &slice[*local])?;
            }
            let records_written = w.finish()?;
            let bytes = std::fs::metadata(&path)?.len();
            Ok(FormedRun {
                path,
                records_written,
                bytes,
                radix_passes: passes,
            })
        };

        if threads == 1 {
            return Ok(vec![run_one(chunk, first_run)?]);
        }

        // Carve the chunk into disjoint mutable bands and form each band's
        // run on its own scoped thread.
        let mut slices: Vec<&mut [Record]> = Vec::with_capacity(threads);
        let mut rest = chunk;
        let mut offset = 0usize;
        for &(from, to) in &bands {
            let (band, tail) = rest.split_at_mut(to - offset);
            debug_assert_eq!(offset, from);
            slices.push(band);
            rest = tail;
            offset = to;
        }
        let results: Vec<io::Result<FormedRun>> = std::thread::scope(|scope| {
            let handles: Vec<_> = slices
                .into_iter()
                .enumerate()
                .map(|(k, band)| {
                    let run_one = &run_one;
                    scope.spawn(move || run_one(band, first_run + k))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        results.into_iter().collect()
    }

    /// The configured key.
    pub fn key(&self) -> &KeySpec {
        &self.key
    }
}

struct HeapEntry {
    key: String,
    id: u32,
    record: Record,
    source: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: reverse. Ties by record id keep the order identical to
        // the in-memory stable sort (ids are positional in the input).
        chunked_str_cmp(&other.key, &self.key).then_with(|| other.id.cmp(&self.id))
    }
}

fn merge_group(group: &[PathBuf], out: &Path) -> io::Result<(u64, u64)> {
    let mut readers: Vec<RunReader> = group
        .iter()
        .map(|p| RunReader::open(p))
        .collect::<io::Result<_>>()?;
    let mut heap = BinaryHeap::with_capacity(readers.len());
    let mut read = 0u64;
    for (i, r) in readers.iter_mut().enumerate() {
        if let Some((key, record)) = r.next_entry()? {
            read += 1;
            heap.push(HeapEntry {
                key,
                id: record.id.0,
                record,
                source: i,
            });
        }
    }
    let mut w = RunWriter::create(out)?;
    while let Some(top) = heap.pop() {
        w.write(&top.key, &top.record)?;
        if let Some((key, record)) = readers[top.source].next_entry()? {
            read += 1;
            heap.push(HeapEntry {
                key,
                id: record.id.0,
                record,
                source: top.source,
            });
        }
    }
    let written = w.finish()?;
    Ok((read, written))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datagen::{DatabaseGenerator, GeneratorConfig};

    fn work_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mp-extsort-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_db(n: usize, seed: u64, dir: &Path) -> (PathBuf, mp_datagen::GeneratedDatabase) {
        let db = DatabaseGenerator::new(GeneratorConfig::new(n).duplicate_fraction(0.5).seed(seed))
            .generate();
        let path = dir.join("input.mp");
        let mut f = std::fs::File::create(&path).unwrap();
        rio::write_records(&mut f, &db.records).unwrap();
        (path, db)
    }

    fn read_ids(path: &Path) -> Vec<u32> {
        let mut reader = RunReader::open(path).unwrap();
        let mut got = Vec::new();
        while let Some((_, r)) = reader.next_entry().unwrap() {
            got.push(r.id.0);
        }
        got
    }

    #[test]
    fn external_sort_order_matches_in_memory_stable_sort() {
        let dir = work_dir("order");
        let (input, db) = write_db(500, 5001, &dir);
        let key = KeySpec::last_name_key();
        let sorter = ExternalSorter::new(
            key.clone(),
            ExternalConfig {
                memory_records: 64,
                fan_in: 4,
                ..ExternalConfig::default()
            },
        );
        let sorted = sorter.sort(&input, &dir, false).unwrap();

        // In-memory reference order.
        let keys: Vec<String> = db.records.iter().map(|r| key.extract(r)).collect();
        let mut expect: Vec<u32> = (0..db.records.len() as u32).collect();
        expect.sort_by(|&a, &b| keys[a as usize].cmp(&keys[b as usize]));

        assert_eq!(read_ids(&sorted.path), expect);
        sorted.cleanup();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_strategy_and_thread_count_produces_the_identical_run() {
        let dir = work_dir("matrix");
        let (input, db) = write_db(700, 5005, &dir);
        let key = KeySpec::last_name_key();

        let reference = {
            let sorter = ExternalSorter::new(key.clone(), ExternalConfig::default());
            let sorted = sorter.sort(&input, &dir, false).unwrap();
            let ids = read_ids(&sorted.path);
            sorted.cleanup();
            ids
        };
        assert_eq!(reference.len(), db.records.len());

        for strategy in [SortStrategy::Comparison, SortStrategy::Radix] {
            for threads in [1usize, 2, 3] {
                for memory in [48usize, 701] {
                    let sorter = ExternalSorter::new(
                        key.clone(),
                        ExternalConfig {
                            memory_records: memory,
                            fan_in: 4,
                            threads,
                            strategy,
                        },
                    );
                    let sorted = sorter.sort(&input, &dir, false).unwrap();
                    assert_eq!(
                        read_ids(&sorted.path),
                        reference,
                        "strategy={} threads={threads} memory={memory}",
                        strategy.name()
                    );
                    sorted.cleanup();
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pass_count_matches_formula() {
        let dir = work_dir("passes");
        let (input, db) = write_db(400, 5002, &dir);
        let n = db.records.len();
        for (m, f) in [(50usize, 2usize), (100, 4), (1_000, 16)] {
            let sorter = ExternalSorter::new(
                KeySpec::last_name_key(),
                ExternalConfig {
                    memory_records: m,
                    fan_in: f,
                    ..ExternalConfig::default()
                },
            );
            let sorted = sorter.sort(&input, &dir, false).unwrap();
            let runs = n.div_ceil(m).max(1);
            let merge_levels = if runs <= 1 {
                0
            } else {
                (runs as f64).log(f as f64).ceil() as u32
            };
            assert_eq!(
                sorted.io.data_passes(),
                1 + merge_levels,
                "m={m} f={f} runs={runs}"
            );
            sorted.cleanup();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_runs_counts_full_budget_chunks() {
        use mp_metrics::MetricsRecorder;
        let dir = work_dir("spill");
        let (input, db) = write_db(250, 5003, &dir);
        let n = db.records.len();
        let m = 100usize;
        let sorter = ExternalSorter::new(
            KeySpec::last_name_key(),
            ExternalConfig {
                memory_records: m,
                fan_in: 16,
                ..ExternalConfig::default()
            },
        );
        let recorder = MetricsRecorder::new();
        let sorted = sorter
            .sort_observed(&input, &dir, false, &recorder)
            .unwrap();
        assert_eq!(recorder.get(Counter::SortRuns), n.div_ceil(m) as u64);
        // Full chunks spill; the final short chunk does not.
        assert_eq!(recorder.get(Counter::SpillRuns), (n / m) as u64);
        sorted.cleanup();

        // An input that fits in one chunk forms one non-spill run.
        let recorder = MetricsRecorder::new();
        let roomy = ExternalSorter::new(KeySpec::last_name_key(), ExternalConfig::default());
        let sorted = roomy.sort_observed(&input, &dir, false, &recorder).unwrap();
        assert_eq!(recorder.get(Counter::SortRuns), 1);
        assert_eq!(recorder.get(Counter::SpillRuns), 0);
        sorted.cleanup();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn radix_strategy_reports_scatter_passes() {
        use mp_metrics::MetricsRecorder;
        let dir = work_dir("radixcnt");
        let (input, _) = write_db(200, 5004, &dir);
        let sorter = ExternalSorter::new(
            KeySpec::last_name_key(),
            ExternalConfig {
                strategy: SortStrategy::Radix,
                ..ExternalConfig::default()
            },
        );
        let recorder = MetricsRecorder::new();
        let sorted = sorter
            .sort_observed(&input, &dir, false, &recorder)
            .unwrap();
        assert!(recorder.get(Counter::RadixPasses) > 0);
        sorted.cleanup();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_input_sorts_to_empty_run() {
        let dir = work_dir("empty");
        let input = dir.join("empty.mp");
        std::fs::write(&input, "").unwrap();
        let sorter = ExternalSorter::new(KeySpec::last_name_key(), ExternalConfig::default());
        let sorted = sorter.sort(&input, &dir, false).unwrap();
        assert_eq!(sorted.records, 0);
        let mut reader = RunReader::open(&sorted.path).unwrap();
        assert!(reader.next_entry().unwrap().is_none());
        sorted.cleanup();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn conditioning_during_run_formation() {
        let dir = work_dir("cond");
        let mut r = Record::empty(mp_record::RecordId(0));
        r.first_name = "mr. bob".into();
        r.last_name = "smith jr".into();
        let input = dir.join("one.mp");
        let mut f = std::fs::File::create(&input).unwrap();
        rio::write_records(&mut f, &[r]).unwrap();

        let sorter = ExternalSorter::new(KeySpec::last_name_key(), ExternalConfig::default());
        let sorted = sorter.sort(&input, &dir, true).unwrap();
        let mut reader = RunReader::open(&sorted.path).unwrap();
        let (_, rec) = reader.next_entry().unwrap().unwrap();
        assert_eq!(rec.first_name, "ROBERT");
        assert_eq!(rec.last_name, "SMITH");
        sorted.cleanup();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
