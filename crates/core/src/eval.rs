//! Accuracy scoring against ground truth, matching the paper's metrics.

use mp_closure::PairSet;
use mp_datagen::GroundTruth;

/// Accuracy of a detected pair set relative to ground truth.
///
/// * `percent_detected` — Fig. 2(a)'s "percent of correctly detected
///   duplicated pairs": true pairs found / true pairs, ×100.
/// * `percent_false_positive` — Fig. 2(b)'s "percent of those records
///   incorrectly marked as duplicates": false pairs / pairs found, ×100.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// True duplicate pairs in the ground truth.
    pub true_pairs: u64,
    /// Pairs the method reported.
    pub found_pairs: u64,
    /// Reported pairs that are real duplicates.
    pub true_found: u64,
    /// Reported pairs that are not duplicates.
    pub false_found: u64,
    /// Recall percentage.
    pub percent_detected: f64,
    /// False-positive percentage of reported pairs.
    pub percent_false_positive: f64,
}

impl Evaluation {
    /// Scores `found` (typically closure output) against `truth`.
    pub fn score(found: &PairSet, truth: &GroundTruth) -> Self {
        let mut truth_set: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        for p in truth.true_pairs() {
            truth_set.insert(p);
        }
        let mut true_found = 0u64;
        let mut false_found = 0u64;
        for (a, b) in found.iter() {
            if truth_set.contains(&(a, b)) {
                true_found += 1;
            } else {
                false_found += 1;
            }
        }
        let true_pairs = truth.true_pair_count();
        let found_pairs = found.len() as u64;
        Evaluation {
            true_pairs,
            found_pairs,
            true_found,
            false_found,
            percent_detected: percent(true_found, true_pairs),
            percent_false_positive: percent(false_found, found_pairs),
        }
    }

    /// Precision percentage (100 − false-positive percentage when any pair
    /// was found; 100 for an empty result).
    pub fn percent_precision(&self) -> f64 {
        if self.found_pairs == 0 {
            100.0
        } else {
            100.0 - self.percent_false_positive
        }
    }
}

fn percent(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_record::{EntityId, Record, RecordId};

    fn truth_of(classes: &[&[u32]], total: u32) -> GroundTruth {
        let mut records = Vec::new();
        let mut entity_of = std::collections::HashMap::new();
        for (e, class) in classes.iter().enumerate() {
            for &id in *class {
                entity_of.insert(id, e as u32);
            }
        }
        let mut next_entity = classes.len() as u32;
        for id in 0..total {
            let mut r = Record::empty(RecordId(id));
            let e = entity_of.get(&id).copied().unwrap_or_else(|| {
                let e = next_entity;
                next_entity += 1;
                e
            });
            r.entity = Some(EntityId(e));
            records.push(r);
        }
        GroundTruth::from_records(&records)
    }

    #[test]
    fn perfect_detection() {
        let truth = truth_of(&[&[0, 1, 2]], 5);
        let found: PairSet = [(0, 1), (0, 2), (1, 2)].into_iter().collect();
        let e = Evaluation::score(&found, &truth);
        assert_eq!(e.percent_detected, 100.0);
        assert_eq!(e.percent_false_positive, 0.0);
        assert_eq!(e.percent_precision(), 100.0);
        assert_eq!(e.true_found, 3);
    }

    #[test]
    fn partial_detection_with_false_positive() {
        let truth = truth_of(&[&[0, 1], &[2, 3]], 6);
        // Found one real pair and one bogus pair.
        let found: PairSet = [(0, 1), (4, 5)].into_iter().collect();
        let e = Evaluation::score(&found, &truth);
        assert_eq!(e.true_pairs, 2);
        assert_eq!(e.true_found, 1);
        assert_eq!(e.false_found, 1);
        assert_eq!(e.percent_detected, 50.0);
        assert_eq!(e.percent_false_positive, 50.0);
    }

    #[test]
    fn empty_found_set() {
        let truth = truth_of(&[&[0, 1]], 3);
        let e = Evaluation::score(&PairSet::new(), &truth);
        assert_eq!(e.percent_detected, 0.0);
        assert_eq!(e.percent_false_positive, 0.0);
        assert_eq!(e.percent_precision(), 100.0);
    }

    #[test]
    fn no_true_pairs_all_false() {
        let truth = truth_of(&[], 4);
        let found: PairSet = [(0, 1)].into_iter().collect();
        let e = Evaluation::score(&found, &truth);
        assert_eq!(e.percent_detected, 0.0);
        assert_eq!(e.percent_false_positive, 100.0);
    }
}
