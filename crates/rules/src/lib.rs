#![warn(missing_docs)]

//! A declarative rule language for merge/purge equational theories.
//!
//! §2.3: "a natural approach to specifying an equational theory and making
//! it practical would be the use of a declarative rule language." The paper
//! wrote its 26-rule employee theory in OPS5, then recoded it in C for
//! speed. This crate provides the same split:
//!
//! * a small rule DSL — lexer → parser → type checker → tree-walking
//!   evaluator — for experimentation ([`RuleProgram`]);
//! * a compiler from the same checked AST to a planned, register-based
//!   bytecode VM ([`CompiledTheory`]): field names resolve to slots at
//!   compile time, predicates are reordered cheapest-and-most-selective
//!   first ([`Plan`]), and shared kernel calls are memoized per record
//!   pair — same decisions as the interpreter, most of the native theory's
//!   speed (see `docs/RULE_COMPILER.md`);
//! * a hand-coded native Rust implementation of the identical theory for
//!   production throughput ([`native::NativeEmployeeTheory`]);
//! * the [`EquationalTheory`] trait all three implement, which the
//!   window-scan phase calls for every candidate pair.
//!
//! # The language
//!
//! ```text
//! rule same-name-address {
//!     when last_name equal
//!      and first_name differ_slightly(0.25)
//!      and address equal
//!     then match
//! }
//! ```
//!
//! is sugar-free in this implementation; the real grammar is expression
//! based:
//!
//! ```text
//! rule same_name_address {
//!     when r1.last_name == r2.last_name
//!      and differ_slightly(r1.first_name, r2.first_name, 0.25)
//!      and r1.street_number == r2.street_number
//!      and edit_sim(r1.street_name, r2.street_name) >= 0.75
//!     then match
//! }
//! ```
//!
//! A program is a disjunction of rules: two records are equivalent when any
//! rule fires. See [`builtins`] for the predicate library (edit, phonetic,
//! typewriter distances, nickname equivalence, and friends).
//!
//! # Example
//!
//! Compile a program once, then evaluate record pairs. [`RuleProgram`] is
//! the tree-walking interpreter; [`CompiledTheory`] lowers the same source
//! to planned bytecode and makes bit-identical decisions, faster:
//!
//! ```
//! use mp_rules::{CompiledTheory, EquationalTheory, RuleProgram};
//! use mp_record::{Record, RecordId};
//!
//! let src = r#"
//!     rule same_person {
//!         when r1.ssn == r2.ssn
//!          and differ_slightly(r1.last_name, r2.last_name, 0.3)
//!         then match
//!     }
//! "#;
//! let interpreted = RuleProgram::compile(src).unwrap();
//! let compiled = CompiledTheory::compile(src).unwrap();
//!
//! let mut a = Record::empty(RecordId(0));
//! a.ssn = "123456789".into();
//! a.last_name = "HERNANDEZ".into();
//! let mut b = a.clone();
//! b.id = RecordId(1);
//! b.last_name = "HERNANDES".into();
//! assert!(interpreted.matches(&a, &b));
//! assert!(compiled.matches(&a, &b));
//! assert_eq!(compiled.matching_rule(&a, &b), Some("same_person"));
//! ```

pub mod ast;
pub mod baseline;
pub mod builtins;
pub(crate) mod compile;
pub mod display;
pub mod employee;
pub mod eval;
pub mod lexer;
pub mod native;
pub mod observe;
pub mod parser;
pub mod plan;
pub mod semantic;
pub mod token;
pub mod value;
pub mod vm;

pub use ast::{Expr, Program, PurgeSpec, Rule, Survivorship};
pub use baseline::AllocatingEmployeeTheory;
pub use builtins::CostClass;
pub use display::{print_program, programs_equivalent};
pub use employee::{employee_program, EMPLOYEE_RULES_SRC};
pub use eval::RuleProgram;
pub use native::NativeEmployeeTheory;
pub use observe::RuleFiringCounter;
pub use parser::ParseError;
pub use plan::{Plan, PlanStats};
pub use semantic::TypeError;
pub use vm::CompiledTheory;

use mp_record::Record;

/// The equational theory interface: decides whether two records describe
/// the same real-world entity.
///
/// Implementations must be pure functions of the two records (the window
/// scan may evaluate a pair in any order and from any thread).
pub trait EquationalTheory: Sync {
    /// `true` when the theory declares `a` and `b` equivalent.
    fn matches(&self, a: &Record, b: &Record) -> bool;

    /// Human-readable name for reports.
    fn name(&self) -> &str;

    /// Index (into [`EquationalTheory::rule_names`]) of the first rule that
    /// declares `a ≡ b`, or `None` when the pair does not match. Theories
    /// are ordered first-match-wins disjunctions, so "first" is
    /// well-defined; the default treats the whole theory as one anonymous
    /// rule `0`.
    fn matching_rule_id(&self, a: &Record, b: &Record) -> Option<usize> {
        self.matches(a, b).then_some(0)
    }

    /// The theory's rule names, indexed by
    /// [`EquationalTheory::matching_rule_id`]. The default single-rule view
    /// reuses the theory name.
    fn rule_names(&self) -> Vec<String> {
        vec![self.name().to_string()]
    }
}

impl<T: EquationalTheory + ?Sized> EquationalTheory for &T {
    fn matches(&self, a: &Record, b: &Record) -> bool {
        (**self).matches(a, b)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn matching_rule_id(&self, a: &Record, b: &Record) -> Option<usize> {
        (**self).matching_rule_id(a, b)
    }

    fn rule_names(&self) -> Vec<String> {
        (**self).rule_names()
    }
}

/// Errors surfaced when compiling a rule program.
#[derive(Debug)]
pub enum CompileError {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// The program parsed but is ill-typed.
    Type(TypeError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Type(e) => write!(f, "type error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<TypeError> for CompileError {
    fn from(e: TypeError) -> Self {
        CompileError::Type(e)
    }
}
