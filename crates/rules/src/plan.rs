//! Predicate planning for compiled rule programs.
//!
//! The compiler (`crate::compile`) lowers rules exactly as written; this
//! module decides *what order* to evaluate them in. A [`Plan`] carries three
//! independent decisions the VM applies without changing any decision the
//! theory makes:
//!
//! 1. **Within a rule**, the top-level `and` conjuncts are reordered
//!    cheapest-and-most-selective-first. Conjuncts are pure predicates, so
//!    any permutation preserves the conjunction's value; the planner sorts
//!    by expected cost per rejected pair, `cost / (1 − P(true))`, the
//!    classic short-circuit ordering criterion.
//! 2. **Across rules**, blocks are emitted most-frequently-firing-first
//!    (when firing statistics are available). A program is a disjunction,
//!    so `matches` is order-independent; the VM keeps first-match-wins
//!    *attribution* exact by continuing to scan blocks whose original index
//!    is smaller than the best firing block found so far. On a miss every
//!    rule is evaluated regardless of order, so this only speeds up hits —
//!    the conjunct ordering and the memo do the heavy lifting.
//! 3. **Common subexpressions** — identical kernel calls appearing in two
//!    or more places program-wide (one `edit_sim(r1.last_name,
//!    r2.last_name)` shared by four rules, say) — are given per-pair memo
//!    slots, so each distinct kernel/field-pair combination is computed at
//!    most once per record pair.
//!
//! Cost comes from each builtin's static [`CostClass`]; selectivity comes
//! from static per-predicate priors, optionally replaced by measured rates
//! when the plan is [`Plan::calibrated`] against sample record pairs using
//! the per-rule firing statistics [`RuleFiringCounter`] collects.

use crate::ast::{CmpOp, Expr, Program};
use crate::builtins::{lookup, CostClass};
use crate::eval::RuleProgram;
use crate::observe::RuleFiringCounter;
use crate::EquationalTheory;
use mp_record::Record;

/// Conjunct true-rates below this never count as "free" — keeps the
/// expected-cost ratio finite for predicates that were always true in the
/// calibration sample.
const MIN_REJECT_RATE: f64 = 0.01;

/// Calibration evaluates each conjunct on at most this many sample pairs.
const CALIBRATION_CAP: usize = 2_048;

/// An evaluation order for a rule program. Produced by the constructors
/// here, consumed by [`crate::CompiledTheory`]. Plans never change what a
/// program decides — only how fast it decides it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Block emission order: original rule indices, most-likely-to-fire
    /// first.
    pub(crate) rule_order: Vec<usize>,
    /// Per original rule: permutation of its top-level `and` conjuncts
    /// (identity for rules whose condition is not a conjunction).
    pub(crate) conjunct_orders: Vec<Vec<usize>>,
    /// Whether shared kernel calls get per-pair memo slots.
    pub(crate) cse: bool,
}

/// Firing statistics feeding across-rule ordering, extracted from a
/// [`RuleFiringCounter`] or supplied directly.
#[derive(Debug, Clone, Default)]
pub struct PlanStats {
    /// Per-rule firing counts, in original rule order.
    pub fired: Vec<u64>,
    /// Evaluations where no rule fired.
    pub misses: u64,
}

impl PlanStats {
    /// Snapshot of the statistics a firing counter has accumulated.
    pub fn from_counter<T: EquationalTheory>(counter: &RuleFiringCounter<T>) -> Self {
        PlanStats {
            fired: counter.fired(),
            misses: counter.misses(),
        }
    }
}

impl Plan {
    /// A plan from the static cost model alone: conjuncts ordered by
    /// `cost / (1 − P(true))` with prior selectivities, rules left in
    /// source order, memoization enabled.
    pub fn of(program: &Program) -> Self {
        Self::build(program, None, None)
    }

    /// [`Plan::of`], with rules additionally ordered by measured firing
    /// counts (descending; ties keep source order).
    pub fn with_stats(program: &Program, stats: &PlanStats) -> Self {
        Self::build(program, Some(&stats.fired), None)
    }

    /// A plan calibrated against sample record pairs: rule order comes from
    /// a [`RuleFiringCounter`] run over `pairs`, and each top-level
    /// conjunct's selectivity is measured on the sample (capped at
    /// `CALIBRATION_CAP` = 2,048 pairs) instead of using priors. Deterministic
    /// for a fixed program and sample. Falls back to [`Plan::of`] when
    /// `pairs` is empty.
    pub fn calibrated(rules: &RuleProgram, pairs: &[(&Record, &Record)]) -> Self {
        let program = rules.ast();
        if pairs.is_empty() {
            return Self::of(program);
        }
        let counted = RuleFiringCounter::new(rules);
        for &(a, b) in pairs {
            let _ = counted.matching_rule_id(a, b);
        }
        let fired = counted.fired();

        let sample = &pairs[..pairs.len().min(CALIBRATION_CAP)];
        let measured: Vec<Vec<f64>> = program
            .rules
            .iter()
            .map(|rule| {
                conjuncts(&rule.condition)
                    .iter()
                    .map(|c| {
                        let resolved = crate::eval::resolve(c);
                        let t = sample
                            .iter()
                            .filter(|(a, b)| {
                                crate::eval::eval(&resolved, a, b, rules.ctx()).as_bool()
                            })
                            .count();
                        t as f64 / sample.len() as f64
                    })
                    .collect()
            })
            .collect();
        Self::build(program, Some(&fired), Some(&measured))
    }

    fn build(program: &Program, fired: Option<&[u64]>, measured: Option<&[Vec<f64>]>) -> Self {
        let n = program.rules.len();
        let mut rule_order: Vec<usize> = (0..n).collect();
        if let Some(fired) = fired {
            // Stable sort: ties (and the all-zero cold start) keep source
            // order, so plans are deterministic.
            rule_order.sort_by_key(|&i| std::cmp::Reverse(fired.get(i).copied().unwrap_or(0)));
        }
        let conjunct_orders = program
            .rules
            .iter()
            .enumerate()
            .map(|(i, rule)| {
                let parts = conjuncts(&rule.condition);
                let mut order: Vec<usize> = (0..parts.len()).collect();
                let ranks: Vec<f64> = parts
                    .iter()
                    .enumerate()
                    .map(|(j, part)| {
                        let p = measured
                            .and_then(|m| m.get(i).and_then(|r| r.get(j)).copied())
                            .unwrap_or_else(|| p_true(part));
                        expr_cost(part) / (1.0 - p).max(MIN_REJECT_RATE)
                    })
                    .collect();
                // Stable by rank; equal ranks keep source order.
                order.sort_by(|&a, &b| ranks[a].total_cmp(&ranks[b]));
                order
            })
            .collect();
        Plan {
            rule_order,
            conjunct_orders,
            cse: true,
        }
    }

    /// The planned block order, as original rule indices.
    pub fn rule_order(&self) -> &[usize] {
        &self.rule_order
    }

    /// The planned evaluation order of `rule`'s top-level conjuncts, as
    /// indices into the source-order conjunct list.
    pub fn conjunct_order(&self, rule: usize) -> &[usize] {
        &self.conjunct_orders[rule]
    }
}

/// The top-level conjuncts of a rule condition: the parts of an `and`, or
/// the whole expression when it is not a conjunction.
pub(crate) fn conjuncts(condition: &Expr) -> Vec<&Expr> {
    match condition {
        Expr::And(parts, _) => parts.iter().collect(),
        other => vec![other],
    }
}

/// Abstract evaluation cost of an expression, in [`CostClass::weight`]
/// units. Comparisons cost a little; field references and literals are
/// free; calls cost their builtin's class.
fn expr_cost(e: &Expr) -> f64 {
    match e {
        Expr::Or(parts, _) | Expr::And(parts, _) => parts.iter().map(expr_cost).sum(),
        Expr::Not(inner, _) => expr_cost(inner),
        Expr::Cmp(_, l, r, _) => 2.0 + expr_cost(l) + expr_cost(r),
        Expr::Call(name, args, _) => {
            let own = lookup(name).map_or(CostClass::Moderate.weight(), |b| b.cost.weight());
            own + args.iter().map(expr_cost).sum::<f64>()
        }
        Expr::FieldRef(..) | Expr::Num(..) | Expr::Str(..) | Expr::Bool(..) => 0.0,
    }
}

/// Prior probability that a predicate holds on a random near-neighbor pair.
/// These only matter relative to each other; calibration replaces them with
/// measured rates.
fn p_true(e: &Expr) -> f64 {
    match e {
        Expr::Bool(b, _) => {
            if *b {
                1.0
            } else {
                0.0
            }
        }
        Expr::Not(inner, _) => 1.0 - p_true(inner),
        Expr::And(parts, _) => parts.iter().map(p_true).product(),
        Expr::Or(parts, _) => 1.0 - parts.iter().map(|p| 1.0 - p_true(p)).product::<f64>(),
        Expr::Cmp(op, l, r, _) => match op {
            // Window neighbors share a sort key, but full-field equality is
            // still the most selective common predicate.
            CmpOp::Eq => {
                if matches!(**l, Expr::Str(..)) || matches!(**r, Expr::Str(..)) {
                    0.05
                } else {
                    0.08
                }
            }
            CmpOp::Ne => 0.9,
            // Threshold tests on similarity kernels.
            _ => 0.15,
        },
        Expr::Call(name, ..) => match name.as_str() {
            "is_empty" => 0.1,
            "nickname_eq" => 0.05,
            "digits_transposed" => 0.02,
            "initials_match" => 0.15,
            "soundex_eq" | "nysiis_eq" => 0.12,
            "differ_slightly" => 0.15,
            "contains" | "starts_with" => 0.2,
            _ => 0.5,
        },
        Expr::FieldRef(..) | Expr::Num(..) | Expr::Str(..) => 0.5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::employee::employee_program;

    #[test]
    fn static_plan_keeps_rule_order_and_enables_cse() {
        let rules = employee_program();
        let plan = Plan::of(rules.ast());
        assert_eq!(plan.rule_order, (0..26).collect::<Vec<_>>());
        assert!(plan.cse);
        assert_eq!(plan.conjunct_orders.len(), 26);
    }

    #[test]
    fn conjunct_orders_are_permutations() {
        let rules = employee_program();
        let plan = Plan::of(rules.ast());
        for (rule, order) in rules.ast().rules.iter().zip(&plan.conjunct_orders) {
            let n = conjuncts(&rule.condition).len();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "rule {}", rule.name);
        }
    }

    #[test]
    fn cheap_equality_ordered_before_expensive_kernels() {
        // The paper's worked example: `last_name ==` (free) must evaluate
        // before `differ_slightly` / `edit_sim` (expensive DP kernels).
        let rules = employee_program();
        let plan = Plan::of(rules.ast());
        let idx = rules
            .ast()
            .rules
            .iter()
            .position(|r| r.name == "same_last_close_first_same_address")
            .unwrap();
        let order = plan.conjunct_order(idx);
        // Source conjunct 0 is `r1.last_name == r2.last_name`; source
        // conjunct 2 is the differ_slightly kernel.
        let pos = |c: usize| order.iter().position(|&o| o == c).unwrap();
        assert!(pos(0) < pos(2), "order = {order:?}");
        assert!(pos(3) < pos(2), "street_number == before kernel: {order:?}");
    }

    #[test]
    fn stats_reorder_rules_by_firing_counts() {
        let rules = employee_program();
        let mut fired = vec![0u64; 26];
        fired[7] = 100;
        fired[3] = 50;
        let plan = Plan::with_stats(
            rules.ast(),
            &PlanStats {
                fired,
                misses: 1_000,
            },
        );
        assert_eq!(plan.rule_order[0], 7);
        assert_eq!(plan.rule_order[1], 3);
        // The remaining (all-zero) rules keep source order.
        let rest: Vec<usize> = plan.rule_order[2..].to_vec();
        let expected: Vec<usize> = (0..26).filter(|&i| i != 7 && i != 3).collect();
        assert_eq!(rest, expected);
    }

    #[test]
    fn calibrated_on_empty_sample_is_static_plan() {
        let rules = employee_program();
        assert_eq!(Plan::calibrated(&rules, &[]), Plan::of(rules.ast()));
    }
}
