//! Parallel merge/purge: concurrent independent passes, each internally
//! parallel, exactly the §4 configuration — and a verification that the
//! parallel engines return bit-identical results to the serial ones.
//!
//! Run with: `cargo run --release --example parallel_dedup`

use merge_purge::{ClusteringConfig, Evaluation, KeySpec, MultiPass};
use mp_datagen::{DatabaseGenerator, GeneratorConfig};
use mp_parallel::{parallel_multipass, ParallelClustering, ParallelPass, ParallelSnm};
use mp_rules::NativeEmployeeTheory;
use std::time::Instant;

fn main() {
    let procs = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let mut db = DatabaseGenerator::new(
        GeneratorConfig::new(20_000)
            .duplicate_fraction(0.4)
            .seed(11),
    )
    .generate();
    mp_record::normalize::condition_all(&mut db.records, &mp_record::NicknameTable::standard());
    println!(
        "{} records, {} true pairs, {} worker threads per pass",
        db.records.len(),
        db.truth.true_pair_count(),
        procs
    );
    let theory = NativeEmployeeTheory::new();

    // Three concurrent passes: two band-replicated SNM passes and one
    // histogram-clustered pass (100 clusters per processor, LPT balanced).
    let passes = vec![
        ParallelPass::Snm(ParallelSnm::new(KeySpec::last_name_key(), 10, procs)),
        ParallelPass::Snm(ParallelSnm::new(KeySpec::first_name_key(), 10, procs)),
        ParallelPass::Clustering(ParallelClustering::new(
            KeySpec::address_key(),
            ClusteringConfig {
                clusters: 100,
                histogram_prefix: 3,
                cluster_key_len: 12,
                window: 10,
            },
            procs,
        )),
    ];

    let t0 = Instant::now();
    let parallel = parallel_multipass(&passes, &db.records, &theory);
    let parallel_time = t0.elapsed();

    let t1 = Instant::now();
    let serial = MultiPass::standard_three(10).run(&db.records, &theory);
    let serial_time = t1.elapsed();

    let eval = Evaluation::score(&parallel.closed_pairs, &db.truth);
    println!(
        "parallel multi-pass: {} groups, {:.1}% detected, wall {parallel_time:.1?}",
        parallel.classes.len(),
        eval.percent_detected
    );
    let eval_s = Evaluation::score(&serial.closed_pairs, &db.truth);
    println!(
        "serial   multi-pass: {} groups, {:.1}% detected, wall {serial_time:.1?}",
        serial.classes.len(),
        eval_s.percent_detected
    );

    // The SNM engines are exact: same key + window => same pairs, serial or
    // parallel, any processor count. (The third pass differs by design —
    // the clustering method trades a little accuracy for locality.)
    let serial_last = &serial.passes[0];
    let parallel_last = &parallel.passes[0];
    assert_eq!(
        serial_last.pairs.sorted(),
        parallel_last.pairs.sorted(),
        "parallel SNM must be bit-identical to serial"
    );
    println!(
        "\nverified: parallel last-name pass produced the exact same {} pairs \
         as the serial pass",
        parallel_last.pairs.len()
    );
    println!(
        "per-worker comparison split of the last-name pass: {:?}",
        parallel_last.worker_comparisons
    );
}
